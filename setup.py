"""Legacy shim: lets `pip install -e . --no-build-isolation` work in
environments without the `wheel` package (offline editable install)."""

from setuptools import setup

setup()
