"""Legacy shim: lets `pip install -e . --no-build-isolation` work in
environments without the `wheel` package (offline editable install).

All real metadata — name, dynamic version from ``repro.__version__``,
requires-python, and the ``repro`` console-script entry point — lives in
the ``[project]`` table of ``pyproject.toml``; ``setup()`` here only
triggers the setuptools build backend."""

from setuptools import setup

setup()
