"""E2 / E2z — Theorem 2.6/2.7: CSSP time scales near-linearly in n.

Sweeps n across families, fits ``rounds = a * n^b``, and checks the
exponent is consistent with ``~O(n)`` (b between ~0.7 and ~1.6 — the
log^2 n factor shows up as mild super-linearity at small scale).
"""

from _bench import record_table, run_once
from repro.analysis import fit_power_law
from repro.bench import E2_SIZES as SIZES, e2_measure as measure, e2_sweep as run_sweep


def test_e2_cssp_time_scaling(benchmark):
    rows, fits = run_once(benchmark, run_sweep)
    for family, fit in fits.items():
        rows.append([f"{family} FIT", "-", f"n^{fit.exponent:.2f}", f"r2={fit.r2:.3f}", "-"])
    record_table(
        "E2_cssp_time",
        "E2: CSSP rounds vs n (Thm 2.6 claims ~O(n))",
        ["family", "n", "rounds", "messages", "congestion"],
        rows,
    )
    for family, fit in fits.items():
        assert 0.5 < fit.exponent < 1.8, (family, fit)


def test_e2z_zero_weight_extension(benchmark):
    def sweep():
        rows = []
        ns, rounds = [], []
        for n in SIZES:
            real_n, m = measure("er", n, zero_weights=True)
            ns.append(real_n)
            rounds.append(m.rounds)
            rows.append(["er+zeros", real_n, m.rounds, m.max_congestion])
        return rows, fit_power_law(ns, rounds)

    rows, fit = run_once(benchmark, sweep)
    rows.append(["FIT", "-", f"n^{fit.exponent:.2f}", f"r2={fit.r2:.3f}"])
    record_table(
        "E2z_zero_weights",
        "E2z: CSSP with zero-weight edges (Thm 2.7, same bounds)",
        ["family", "n", "rounds", "congestion"],
        rows,
    )
    assert 0.5 < fit.exponent < 1.9, fit
