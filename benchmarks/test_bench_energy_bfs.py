"""E6 — Theorems 3.8/3.13: low-energy BFS time ~O(D), energy decomposition.

Two tables:

* time: query rounds vs D on paths — the slope vs D must be ~linear
  (the polylog slowdown sigma is n-independent once cover geometry
  stabilizes);
* energy: the decomposition the paper's proof uses — wakes per
  (node, cluster role) stays flat in n, roles per node stays small —
  versus the always-awake baseline whose awake time *is* D.
"""

from _bench import record_table, run_once
from repro.bench import E6_SIZES as SIZES, e6_measure as measure, e6_sweep as run_sweep


def test_e6_energy_bfs(benchmark):
    data = run_once(benchmark, run_sweep)
    rows = [
        [d["n"], d["D"], d["rounds"], d["sigma"], d["omega"], d["energy"],
         d["mega_wakes"], d["max_roles"], d["wakes_per_role"], d["awake_fraction"]]
        for d in data
    ]
    record_table(
        "E6_energy_bfs",
        "E6: low-energy BFS on paths (Thm 3.8/3.13) — awake fraction falls, "
        "always-awake baseline is 1.0",
        ["n", "D", "rounds", "sigma", "omega", "energy", "mega-wakes",
         "roles/node", "wakes/role", "awake-frac"],
        rows,
    )
    # Time ~O(D): rounds / (sigma * omega * D) stays within a narrow band.
    norm = [d["rounds"] / (d["sigma"] * d["omega"] * d["D"]) for d in data]
    assert max(norm) / min(norm) < 3.0, norm
    # Energy: awake fraction strictly below always-awake and non-increasing
    # at the large end (the polylog-vs-linear gap opens with n).
    fracs = [d["awake_fraction"] for d in data]
    assert all(f < 0.95 for f in fracs), fracs
    assert fracs[-1] <= fracs[0], fracs
    # Per-role wake cost normalized by sigma is flat — the proof's invariant.
    per_role_norm = [d["wakes_per_role"] / d["sigma"] for d in data]
    assert max(per_role_norm) / min(per_role_norm) < 4.0, per_role_norm
