"""E6 — Theorems 3.8/3.13: low-energy BFS time ~O(D), energy decomposition.

Two tables:

* time: query rounds vs D on paths — the slope vs D must be ~linear
  (the polylog slowdown sigma is n-independent once cover geometry
  stabilizes);
* energy: the decomposition the paper's proof uses — wakes per
  (node, cluster role) stays flat in n, roles per node stays small —
  versus the always-awake baseline whose awake time *is* D.
"""

from _bench import record_table, run_once
from repro import graphs
from repro.analysis import fit_power_law
from repro.energy.covers import build_layered_cover
from repro.energy.low_energy_bfs import run_low_energy_bfs
from repro.sim import Metrics

SIZES = [16, 32, 64, 128]


def measure(n):
    g = graphs.path_graph(n)
    cover = build_layered_cover(g, n, base=4, stretch=3)
    m = Metrics()
    dist, sched = run_low_energy_bfs(g, cover, {0: 0}, n, metrics=m)
    assert dist == g.hop_distances([0])
    roles = max(
        sum(1 for c in cov.clusters if u in c.tree_parent)
        for u in g.nodes()
        for cov in [cover.levels[0]]
    )
    total_roles = {}
    for cov in cover.levels:
        for c in cov.clusters:
            for u in c.tree_parent:
                total_roles[u] = total_roles.get(u, 0) + 1
    max_roles = max(total_roles.values())
    mega_wakes = m.max_energy // sched.omega
    return {
        "n": n,
        "D": n - 1,
        "rounds": m.rounds,
        "sigma": sched.sigma,
        "omega": sched.omega,
        "energy": m.max_energy,
        "mega_wakes": mega_wakes,
        "max_roles": max_roles,
        "wakes_per_role": round(mega_wakes / max_roles, 1),
        "awake_fraction": round(m.max_energy / m.rounds, 3),
    }


def run_sweep():
    return [measure(n) for n in SIZES]


def test_e6_energy_bfs(benchmark):
    data = run_once(benchmark, run_sweep)
    rows = [
        [d["n"], d["D"], d["rounds"], d["sigma"], d["omega"], d["energy"],
         d["mega_wakes"], d["max_roles"], d["wakes_per_role"], d["awake_fraction"]]
        for d in data
    ]
    record_table(
        "E6_energy_bfs",
        "E6: low-energy BFS on paths (Thm 3.8/3.13) — awake fraction falls, "
        "always-awake baseline is 1.0",
        ["n", "D", "rounds", "sigma", "omega", "energy", "mega-wakes",
         "roles/node", "wakes/role", "awake-frac"],
        rows,
    )
    # Time ~O(D): rounds / (sigma * omega * D) stays within a narrow band.
    norm = [d["rounds"] / (d["sigma"] * d["omega"] * d["D"]) for d in data]
    assert max(norm) / min(norm) < 3.0, norm
    # Energy: awake fraction strictly below always-awake and non-increasing
    # at the large end (the polylog-vs-linear gap opens with n).
    fracs = [d["awake_fraction"] for d in data]
    assert all(f < 0.95 for f in fracs), fracs
    assert fracs[-1] <= fracs[0], fracs
    # Per-role wake cost normalized by sigma is flat — the proof's invariant.
    per_role_norm = [d["wakes_per_role"] / d["sigma"] for d in data]
    assert max(per_role_norm) / min(per_role_norm) < 4.0, per_role_norm
