"""E11 — Theorems 3.10/3.11: decomposition and sparse-cover quality.

Measures, across n: cluster-membership per node (claim: O(log n)),
max Steiner-tree load per edge (claim: polylog), cover stretch
(tree radius / d), and construction cost.
"""

from _bench import record_table, run_once
from repro import graphs
from repro.analysis import fit_power_law
from repro.energy.covers import build_sparse_cover
from repro.sim import Metrics

SIZES = [24, 48, 96, 160]
D = 2


def run_sweep():
    rows, ns, memberships, loads = [], [], [], []
    for n in SIZES:
        g = graphs.random_connected_graph(n, extra_edge_prob=2.0 / n, seed=n)
        m = Metrics()
        cover = build_sparse_cover(g, D, stretch=3, metrics=m)
        # Validate the ball property while we're here.
        for v in list(g.nodes())[:10]:
            ball = {u for u, dist in g.dijkstra([v]).items() if dist <= D}
            assert ball <= cover.home[v].members
        edge_load = max(cover.edge_tree_load().values(), default=0)
        ns.append(n)
        memberships.append(cover.max_membership())
        loads.append(edge_load)
        rows.append([n, len(cover.clusters), cover.max_membership(), edge_load,
                     cover.max_tree_depth(), round(cover.max_tree_radius() / D, 1),
                     m.rounds])
    return rows, ns, memberships, loads


def test_e11_cover_quality(benchmark):
    rows, ns, memberships, loads = run_once(benchmark, run_sweep)
    fit_mem = fit_power_law(ns, memberships)
    fit_load = fit_power_law(ns, loads)
    rows.append(["FIT", "-", f"n^{fit_mem.exponent:.2f}", f"n^{fit_load.exponent:.2f}",
                 "-", "-", "-"])
    record_table(
        "E11_covers",
        f"E11: sparse {D}-cover quality (membership O(log n), polylog edge load)",
        ["n", "clusters", "max membership", "max edge load", "max tree depth",
         "stretch", "construction rounds"],
        rows,
    )
    assert fit_mem.exponent < 0.6, fit_mem
    assert fit_load.exponent < 0.7, fit_load
