"""E8 — head-to-head: the paper's SSSP vs Bellman-Ford vs naive Dijkstra.

One table per size with all four currencies.  Shape claims: Dijkstra's
time is worst (O(nD)); Bellman-Ford's congestion is worst (Theta(n));
the recursion's congestion wins on dense graphs while staying ~O(n) time.
"""

from _bench import record_table, run_once
from repro import graphs, sssp, run_bellman_ford, run_distributed_dijkstra
from repro.sim import Metrics

SIZES = [16, 24, 32, 48]


def run_sweep():
    rows = []
    summary = []
    for n in SIZES:
        g = graphs.random_weights(
            graphs.random_connected_graph(n, extra_edge_prob=4.0 / n, seed=n), 9, seed=n
        )
        res = sssp(g, 0)
        m_bf, m_dij = Metrics(), Metrics()
        run_bellman_ford(g, 0, metrics=m_bf)
        run_distributed_dijkstra(g, 0, metrics=m_dij)
        for name, m in (
            ("cssp-sssp", res.metrics), ("bellman-ford", m_bf), ("dijkstra", m_dij)
        ):
            rows.append([n, name, m.rounds, m.total_messages, m.max_congestion])
        summary.append((n, res.metrics, m_bf, m_dij))
    return rows, summary


def test_e8_baseline_comparison(benchmark):
    rows, summary = run_once(benchmark, run_sweep)
    record_table(
        "E8_baselines",
        "E8: SSSP implementations head-to-head",
        ["n", "algorithm", "rounds", "messages", "congestion"],
        rows,
    )
    for n, ours, bf, dij in summary:
        # Bellman-Ford congestion ~ Theta(n) is the worst of the three.
        assert bf.max_congestion >= max(8, n // 3), (n, bf.max_congestion)
        # Dijkstra burns the most rounds once n is non-trivial.
        assert dij.rounds > bf.rounds, (n, dij.rounds, bf.rounds)
    # At the largest size, our congestion beats Bellman-Ford's relative to n:
    n, ours, bf, _ = summary[-1]
    assert ours.max_congestion / n < bf.max_congestion / (n / 4), (
        ours.max_congestion, bf.max_congestion,
    )
