"""E8 — head-to-head: the paper's SSSP vs Bellman-Ford vs naive Dijkstra.

One table per size with all four currencies.  Shape claims: Dijkstra's
time is worst (O(nD)); Bellman-Ford's congestion is worst (Theta(n));
the recursion's congestion wins on dense graphs while staying ~O(n) time.
"""

from _bench import record_table, run_once
from repro.bench import E8_SIZES as SIZES, e8_sweep as run_sweep


def test_e8_baseline_comparison(benchmark):
    rows, summary = run_once(benchmark, run_sweep)
    record_table(
        "E8_baselines",
        "E8: SSSP implementations head-to-head",
        ["n", "algorithm", "rounds", "messages", "congestion"],
        rows,
    )
    for n, ours, bf, dij in summary:
        # Bellman-Ford congestion ~ Theta(n) is the worst of the three.
        assert bf.max_congestion >= max(8, n // 3), (n, bf.max_congestion)
        # Dijkstra burns the most rounds once n is non-trivial.
        assert dij.rounds > bf.rounds, (n, dij.rounds, bf.rounds)
    # At the largest size, our congestion beats Bellman-Ford's relative to n:
    n, ours, bf, _ = summary[-1]
    assert ours.max_congestion / n < bf.max_congestion / (n / 4), (
        ours.max_congestion, bf.max_congestion,
    )
