"""E13 — ablations on the design knobs DESIGN.md calls out.

* eps of the cutter: time/accuracy trade inside the full CSSP;
* B (layer base) and stretch of the layered cover: energy/time trade of
  the low-energy BFS;
* send-on-change Bellman-Ford: the folk optimization's message savings.
"""

from _bench import record_table, run_once
from repro import graphs, cssp, run_bellman_ford
from repro.energy.covers import build_layered_cover
from repro.energy.low_energy_bfs import run_low_energy_bfs
from repro.sim import Metrics


def ablate_eps():
    g = graphs.random_weights(graphs.random_connected_graph(32, seed=13), 9, seed=13)
    truth = g.dijkstra([0])
    rows = []
    for eps in (0.1, 0.25, 0.5, 0.9):
        m = Metrics()
        d, _ = cssp(g, {0: 0}, eps=eps, metrics=m)
        rows.append([f"eps={eps}", m.rounds, m.total_messages, m.max_congestion,
                     d == truth])
    return rows


def ablate_cover_geometry():
    g = graphs.path_graph(48)
    truth = g.hop_distances([0])
    rows = []
    for base, stretch in ((3, 2), (4, 3), (6, 4)):
        cover = build_layered_cover(g, 48, base=base, stretch=stretch)
        m = Metrics()
        d, sched = run_low_energy_bfs(g, cover, {0: 0}, 48, metrics=m)
        rows.append([f"B={base},s={stretch}", len(cover.levels), sched.sigma,
                     sched.omega, m.rounds, m.max_energy, d == truth])
    return rows


def ablate_bellman_ford():
    g = graphs.random_weights(graphs.random_connected_graph(32, seed=14), 9, seed=14)
    rows = []
    for optimized in (False, True):
        m = Metrics()
        run_bellman_ford(g, 0, send_on_change=optimized, metrics=m)
        rows.append(["send-on-change" if optimized else "naive",
                     m.rounds, m.total_messages, m.max_congestion])
    return rows


def test_e13_eps_ablation(benchmark):
    rows = run_once(benchmark, ablate_eps)
    record_table(
        "E13a_eps",
        "E13a: cutter eps ablation inside full CSSP (all must stay exact)",
        ["eps", "rounds", "messages", "congestion", "exact"],
        rows,
    )
    for row in rows:
        assert row[4] is True, row
    # Inside the full recursion a looser eps admits more nodes into V1
    # (bigger subproblems), which dominates the cutter's own round savings
    # at this scale: rounds increase with eps.
    assert rows[0][1] <= rows[-1][1], rows


def test_e13_cover_geometry_ablation(benchmark):
    rows = run_once(benchmark, ablate_cover_geometry)
    record_table(
        "E13b_cover",
        "E13b: layered-cover geometry ablation for low-energy BFS",
        ["geometry", "levels", "sigma", "omega", "rounds", "energy", "exact"],
        rows,
    )
    for row in rows:
        assert row[6] is True, row


def test_e13_bellman_ford_ablation(benchmark):
    rows = run_once(benchmark, ablate_bellman_ford)
    record_table(
        "E13c_bf",
        "E13c: Bellman-Ford send-on-change ablation",
        ["variant", "rounds", "messages", "congestion"],
        rows,
    )
    naive, opt = rows
    assert opt[2] < naive[2], rows
