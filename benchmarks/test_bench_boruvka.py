"""E10 — Theorem 2.2/3.1: Boruvka forest in O(n log n) time, polylog congestion,
and low awake time (the Thm 3.1 energy profile)."""

from _bench import record_table, run_once
from repro import graphs, build_maximal_forest
from repro.analysis import fit_power_law
from repro.core.boruvka import boruvka_round_bound
from repro.sim import Metrics

SIZES = [16, 32, 64, 128]


def run_sweep():
    rows, ns, rounds, congestion = [], [], [], []
    for n in SIZES:
        g = graphs.random_connected_graph(n, extra_edge_prob=4.0 / n, seed=n)
        m = Metrics()
        forest = build_maximal_forest(g, metrics=m)
        forest.validate_against(g)
        ns.append(n)
        rounds.append(m.rounds)
        congestion.append(m.max_congestion)
        rows.append([n, m.rounds, boruvka_round_bound(n), m.max_congestion,
                     m.max_energy, round(m.max_energy / m.rounds, 3)])
    return rows, ns, rounds, congestion


def test_e10_boruvka(benchmark):
    rows, ns, rounds, congestion = run_once(benchmark, run_sweep)
    fit_time = fit_power_law(ns, rounds)
    fit_cong = fit_power_law(ns, congestion)
    rows.append(["FIT", f"n^{fit_time.exponent:.2f}", "-", f"n^{fit_cong.exponent:.2f}", "-", "-"])
    record_table(
        "E10_boruvka",
        "E10: Boruvka maximal forest — O(n log n) time, polylog congestion, low awake",
        ["n", "rounds", "round bound", "congestion", "max energy", "awake frac"],
        rows,
    )
    assert 0.8 < fit_time.exponent < 1.5, fit_time  # ~n log n
    assert fit_cong.exponent < 0.6, fit_cong  # polylog
    for row in rows[:-1]:
        assert row[1] <= row[2], row  # within the schedule bound
        assert row[5] < 0.5, row  # nodes sleep most of the time
