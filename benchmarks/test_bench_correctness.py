"""E1 — correctness table: every algorithm vs the Dijkstra oracle.

The reproduction's "Table 1": exact-match rates for every shortest-path
implementation in the library over a battery of graph families.  All
entries must be 100%.
"""

from _bench import record_table, run_once
from repro import graphs, sssp, run_bellman_ford, run_distributed_dijkstra
from repro.energy import energy_cssp, low_energy_bfs_from_scratch


FAMILIES = [
    ("path", lambda: graphs.random_weights(graphs.path_graph(24), 9, seed=1)),
    ("cycle", lambda: graphs.random_weights(graphs.cycle_graph(20), 9, seed=2)),
    ("grid", lambda: graphs.random_weights(graphs.grid_graph(5, 5), 9, seed=3)),
    ("tree", lambda: graphs.random_weights(graphs.random_tree(24, seed=4), 9, seed=4)),
    ("er", lambda: graphs.random_weights(graphs.random_connected_graph(24, seed=5), 9, seed=5)),
    ("zero-w", lambda: graphs.random_weights(graphs.random_connected_graph(20, seed=6), 5, seed=6, min_weight=0)),
]


def _match_rate(distances, reference):
    hits = sum(1 for u in reference if distances[u] == reference[u])
    return 100.0 * hits / len(reference)


def run_sweep():
    rows = []
    for name, build in FAMILIES:
        g = build()
        ref = g.dijkstra([0])
        row = [name, g.num_nodes]
        row.append(_match_rate(sssp(g, 0).distances, ref))
        row.append(_match_rate(run_bellman_ford(g, 0), ref))
        row.append(_match_rate(run_distributed_dijkstra(g, 0), ref))
        if name != "zero-w":
            row.append(_match_rate(energy_cssp(g, {0: 0})[0], ref))
            hop_ref = g.hop_distances([0])
            row.append(_match_rate(low_energy_bfs_from_scratch(g, {0: 0})[0], hop_ref))
        else:
            row.extend(["n/a", "n/a"])
        rows.append(row)
    return rows


def test_e1_correctness(benchmark):
    rows = run_once(benchmark, run_sweep)
    record_table(
        "E1_correctness",
        "E1: exact-match % vs Dijkstra oracle (all must be 100)",
        ["family", "n", "cssp-sssp", "bellman-ford", "dijkstra", "energy-cssp", "energy-bfs"],
        rows,
    )
    for row in rows:
        for cell in row[2:]:
            if cell != "n/a":
                assert cell == 100.0, row
