"""E3 — Theorem 2.6: per-edge congestion of CSSP stays polylog.

The discriminating comparison: CSSP congestion vs Bellman-Ford congestion
as n grows.  Bellman-Ford's grows linearly (each reached node re-sends
every round); CSSP's must grow far slower (polylog, i.e. a small power at
this scale).
"""

from _bench import record_table, run_once
from repro import graphs, cssp, run_bellman_ford
from repro.analysis import fit_power_law
from repro.sim import Metrics

SIZES = [16, 24, 32, 48, 64]


def run_sweep():
    rows, ns, ours, bfs = [], [], [], []
    for n in SIZES:
        g = graphs.random_weights(
            graphs.random_connected_graph(n, extra_edge_prob=4.0 / n, seed=n), 9, seed=n
        )
        m_cssp, m_bf = Metrics(), Metrics()
        cssp(g, {0: 0}, metrics=m_cssp)
        run_bellman_ford(g, 0, metrics=m_bf)
        ns.append(n)
        ours.append(m_cssp.max_congestion)
        bfs.append(m_bf.max_congestion)
        rows.append([n, m_cssp.max_congestion, m_bf.max_congestion])
    return rows, fit_power_law(ns, ours), fit_power_law(ns, bfs)


def test_e3_congestion(benchmark):
    rows, fit_ours, fit_bf = run_once(benchmark, run_sweep)
    rows.append(["FIT", f"n^{fit_ours.exponent:.2f}", f"n^{fit_bf.exponent:.2f}"])
    record_table(
        "E3_congestion",
        "E3: max per-edge messages — CSSP (polylog) vs Bellman-Ford (Theta(n))",
        ["n", "cssp congestion", "bellman-ford congestion"],
        rows,
    )
    # Bellman-Ford congestion grows essentially linearly; ours much slower.
    assert fit_bf.exponent > 0.7, fit_bf
    assert fit_ours.exponent < fit_bf.exponent - 0.25, (fit_ours, fit_bf)
