"""Benchmark collection config: everything here carries the ``bench`` marker.

The root ``pyproject.toml`` deselects ``bench`` by default so tier-1 test
runs stay fast; run the benchmarks explicitly with::

    PYTHONPATH=src python -m pytest benchmarks -m bench --benchmark-only

Shared helpers live in ``_bench.py`` (a plain importable module).
"""

from __future__ import annotations

import sys
from pathlib import Path

# Make `from _bench import ...` robust no matter which rootdir pytest picked.
sys.path.insert(0, str(Path(__file__).parent))


def pytest_collection_modifyitems(items):
    # This hook sees every collected item, including tests/ when both trees
    # are collected in one run — mark only the items that live here.
    here = Path(__file__).parent
    for item in items:
        if Path(item.fspath).is_relative_to(here):
            item.add_marker("bench")
