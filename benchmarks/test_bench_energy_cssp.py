"""E12 — Theorem 3.15: weighted CSSP with low-energy subroutines.

Checks exactness and that the sleeping-model execution actually sleeps
(awake fraction well below the always-awake baseline of 1.0), across a
small n sweep — the full recursive stack is simulation-heavy.
"""

from _bench import record_table, run_once
from repro import graphs
from repro.energy import energy_cssp
from repro.sim import Metrics

SIZES = [8, 12, 16, 20]


def run_sweep():
    rows = []
    for n in SIZES:
        g = graphs.random_weights(graphs.random_connected_graph(n, seed=n), 5, seed=n)
        d, m = energy_cssp(g, {0: 0})
        truth = g.dijkstra([0])
        exact = all(d[u] == truth[u] for u in g.nodes())
        rows.append([n, exact, m.rounds, m.max_energy,
                     round(m.max_energy / m.rounds, 3), m.lost_messages])
    return rows


def test_e12_energy_cssp(benchmark):
    rows = run_once(benchmark, run_sweep)
    record_table(
        "E12_energy_cssp",
        "E12: energy-model weighted CSSP (Thm 3.15) — exact, awake-frac < 1",
        ["n", "exact", "rounds", "max energy", "awake frac", "lost msgs"],
        rows,
    )
    for row in rows:
        assert row[1] is True, row
        assert row[4] < 0.9, row
