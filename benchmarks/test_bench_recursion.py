"""E5 — Lemma 2.4: each node appears in O(log D) recursive subproblems.

Sweeps the distance bound D (via max edge weight) at fixed topology and
checks max per-node participation grows with log D, not with D.
"""

import math

from _bench import record_table, run_once
from repro import graphs, cssp
from repro.analysis import linear_regression
from repro.core.cssp import distance_upper_bound
from repro.sim import Metrics

WEIGHTS = [1, 4, 16, 64, 256]


def run_sweep():
    rows, log_ds, parts = [], [], []
    for w in WEIGHTS:
        g = graphs.random_weights(graphs.random_connected_graph(32, seed=3), w, seed=w)
        m = Metrics()
        cssp(g, {0: 0}, metrics=m)
        log_d = math.log2(distance_upper_bound(g))
        log_ds.append(log_d)
        parts.append(m.max_participation)
        rows.append([w, int(distance_upper_bound(g)), round(log_d, 1), m.max_participation,
                     round(m.max_participation / log_d, 2)])
    return rows, log_ds, parts


def test_e5_participation_logarithmic_in_d(benchmark):
    rows, log_ds, parts = run_once(benchmark, run_sweep)
    _, slope, r2 = linear_regression(log_ds, [float(p) for p in parts])
    rows.append(["FIT", "-", "-", f"{slope:.2f}/logD", f"r2={r2:.3f}"])
    record_table(
        "E5_recursion",
        "E5: max subproblem participation vs log D (Lemma 2.4: O(log D))",
        ["maxW", "D bound", "log2 D", "max participation", "participation/logD"],
        rows,
    )
    # Participation per unit of log D must stay within a constant band.
    ratios = [p / l for p, l in zip(parts, log_ds)]
    assert max(ratios) < 4.0, ratios
    assert max(ratios) / min(ratios) < 2.5, ratios
