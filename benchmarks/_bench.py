"""Shared infrastructure for the experiment benchmarks.

Every benchmark (a) runs its experiment sweep exactly once under
``pytest-benchmark`` so wall-clock cost is tracked, (b) renders the table
the paper's evaluation section would contain and appends it to
``benchmarks/results/<experiment>.txt``, and (c) asserts the claim's
*shape* (who wins, how things scale) rather than absolute numbers.

This is a plain module (imported as ``from _bench import ...``) rather than
conftest magic: ``from conftest import ...`` binds to whichever conftest
pytest happened to import first, which broke collection when ``tests/`` and
``benchmarks/`` were collected together.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis import render_table

RESULTS_DIR = Path(__file__).parent / "results"


def record_table(experiment: str, title: str, headers: list, rows: list) -> str:
    """Render, persist and return an experiment table.

    Each table lands twice: human-readable ``<experiment>.txt`` and
    machine-readable ``<experiment>.json`` (title/headers/rows), so the
    recorded results can be diffed and post-processed across PRs.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    text = render_table(title, headers, rows)
    out = RESULTS_DIR / f"{experiment}.txt"
    out.write_text(text + "\n")
    payload = {
        "experiment": experiment,
        "title": title,
        "headers": list(headers),
        "rows": [list(row) for row in rows],
    }
    (RESULTS_DIR / f"{experiment}.json").write_text(
        json.dumps(payload, indent=2, default=str) + "\n"
    )
    print("\n" + text)
    return text


def run_once(benchmark, fn):
    """Execute ``fn`` exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
