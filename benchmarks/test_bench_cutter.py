"""E9 — Lemma 2.1: cutter guarantees, time O(n/eps), congestion O(1)."""

from _bench import record_table, run_once
from repro import graphs, approx_cssp
from repro.graphs import INFINITY
from repro.sim import Metrics

EPSILONS = [0.1, 0.25, 0.5, 0.9]


def run_sweep():
    n = 48
    g = graphs.random_weights(graphs.random_connected_graph(n, seed=9), 50, seed=9)
    truth = g.dijkstra([0])
    bound = max(v for v in truth.values() if v != INFINITY)
    rows = []
    for eps in EPSILONS:
        m = Metrics()
        approx = approx_cssp(g, {0: 0}, eps, bound, metrics=m)
        max_err = max(
            approx[u] - truth[u]
            for u in g.nodes()
            if approx[u] != INFINITY and truth[u] != INFINITY
        )
        violations = sum(
            1
            for u in g.nodes()
            if (approx[u] != INFINITY and not truth[u] <= approx[u] < truth[u] + eps * bound)
            or (approx[u] == INFINITY and truth[u] <= 2 * bound)
        )
        rows.append([eps, m.rounds, m.max_congestion, max_err,
                     round(eps * bound, 1), violations])
    return rows


def test_e9_cutter(benchmark):
    rows = run_once(benchmark, run_sweep)
    record_table(
        "E9_cutter",
        "E9: approximate cutter (Lemma 2.1) — error < eps*W, congestion O(1)",
        ["eps", "rounds", "congestion", "max error", "eps*W budget", "violations"],
        rows,
    )
    for row in rows:
        assert row[2] <= 1, row  # one message per edge direction
        assert row[3] < row[4] + 1e-9, row  # error within budget
        assert row[5] == 0, row  # no guarantee violations
    # Smaller eps costs more rounds (the O(n/eps) trade).
    assert rows[0][1] >= rows[-1][1], rows
