"""Perf smoke gate (tier-2): the CLI surfaces stay fast.

Runs the two cheap CI entry points as real subprocesses with a generous
wall-clock budget:

* ``python -m repro sweep --smoke`` — the fixed tiny sweep must complete;
* ``python -m repro bench --quick`` — one repetition of the pinned
  benchmark subset, compared in-process by the CLI against the recorded
  ``BENCH.json`` baseline; the command exits non-zero (failing this test
  loudly) if any experiment regressed beyond 2x its recorded median.

Runs under the ``bench`` marker (tier-2) like everything in this tree —
tier-1 never pays for it.  The wall-clock budgets are deliberately loose
(shared CI machines); the 2x factor against the recorded medians is the
actual regression tripwire.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

from _bench import run_once

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Generous ceilings — an outright hang, not jitter, is what they catch.
SMOKE_BUDGET_S = 120
BENCH_BUDGET_S = 300


def _run(args: list[str], timeout: int) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=timeout,
    )


def test_smoke_sweep_completes(benchmark):
    # Runs under the benchmark fixture so `--benchmark-only` (the documented
    # tier-2 invocation) executes the gate instead of deselecting it.
    result = run_once(benchmark, lambda: _run(["sweep", "--smoke"], SMOKE_BUDGET_S))
    assert result.returncode == 0, result.stderr
    assert "smoke sweep" in result.stdout


def test_bench_quick_within_recorded_baseline(benchmark):
    if not (REPO_ROOT / "BENCH.json").is_file():
        import pytest

        pytest.skip("no recorded BENCH.json baseline to gate against")
    result = run_once(benchmark, lambda: _run(["bench", "--quick"], BENCH_BUDGET_S))
    assert result.returncode == 0, (
        "perf smoke gate tripped:\n" + result.stdout + result.stderr
    )
    assert "within" in result.stdout
