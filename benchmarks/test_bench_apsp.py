"""E7 — APSP via n concurrent SSSPs under random delays: makespan ~O(n).

The paper's Section 1.1 implication: polylog congestion per instance makes
n instances schedulable concurrently.  We measure the concurrent makespan
against the sequential sum and check the per-slot load stays within the
O(log n) capacity.
"""

from _bench import record_table, run_once
from repro import graphs, apsp
from repro.analysis import fit_power_law

SIZES = [8, 12, 16, 24]


def run_sweep():
    rows, ns, makespans = [], [], []
    for n in SIZES:
        g = graphs.random_weights(graphs.random_connected_graph(n, seed=n), 5, seed=n)
        result = apsp(g, seed=n)
        sequential = sum(r.rounds for r in result.per_source.values())
        s = result.schedule
        rows.append([n, s.makespan, sequential, round(sequential / s.makespan, 1),
                     s.max_slot_load, s.capacity, s.feasible])
        ns.append(n)
        makespans.append(s.makespan)
    return rows, ns, makespans


def test_e7_apsp_makespan(benchmark):
    rows, ns, makespans = run_once(benchmark, run_sweep)
    fit = fit_power_law(ns, makespans)
    rows.append(["FIT", f"n^{fit.exponent:.2f}", "-", "-", "-", "-", "-"])
    record_table(
        "E7_apsp",
        "E7: APSP random-delay schedule — makespan ~O(n), slot load <= O(log n)",
        ["n", "makespan", "sequential", "speedup", "max slot load", "capacity", "feasible"],
        rows,
    )
    # Near-linear makespan (n SSSPs in ~ the time of one) and feasibility.
    assert fit.exponent < 1.7, fit
    for row in rows[:-1]:
        assert row[6] is True, row
        assert row[3] >= 2.0, row  # concurrency buys at least 2x over sequential
