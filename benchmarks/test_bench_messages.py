"""E4 — message complexity ~O(m): total messages scale with edges.

Fixes n and sweeps density; the paper claims ~O(m) messages for SSSP
(vs Theta(m n) for naive Bellman-Ford).
"""

from _bench import record_table, run_once
from repro import graphs, cssp, run_bellman_ford
from repro.analysis import linear_regression
from repro.sim import Metrics

N = 40
DENSITIES = [0.05, 0.1, 0.2, 0.35, 0.5]


def run_sweep():
    rows, ms, ours, bf = [], [], [], []
    for p in DENSITIES:
        g = graphs.random_weights(
            graphs.random_connected_graph(N, extra_edge_prob=p, seed=int(p * 100)), 9,
            seed=int(p * 100),
        )
        m_cssp, m_bf = Metrics(), Metrics()
        cssp(g, {0: 0}, metrics=m_cssp)
        run_bellman_ford(g, 0, metrics=m_bf)
        ms.append(g.num_edges)
        ours.append(m_cssp.total_messages)
        bf.append(m_bf.total_messages)
        rows.append([g.num_edges, m_cssp.total_messages,
                     round(m_cssp.total_messages / g.num_edges, 1),
                     m_bf.total_messages, round(m_bf.total_messages / g.num_edges, 1)])
    return rows, ms, ours, bf


def test_e4_messages_linear_in_m(benchmark):
    rows, ms, ours, bf = run_once(benchmark, run_sweep)
    record_table(
        "E4_messages",
        f"E4: total messages vs m at n={N} — CSSP ~O(m) vs Bellman-Ford Theta(mn)",
        ["m", "cssp msgs", "cssp msgs/m", "bf msgs", "bf msgs/m"],
        rows,
    )
    # CSSP messages per edge stay within a narrow polylog band; Bellman-Ford's
    # per-edge count sits near n.
    per_edge = [o / m for o, m in zip(ours, ms)]
    assert max(per_edge) / min(per_edge) < 3.0, per_edge
    bf_per_edge = [o / m for o, m in zip(bf, ms)]
    assert min(bf_per_edge) > N / 3, bf_per_edge
