"""Lemma 2.1: the approximate cutter's guarantees, timing and congestion."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.testing import oracle_distances, small_weighted_graph
from repro import graphs
from repro.core.cutter import approx_cssp, cutter_quantum
from repro.graphs import INFINITY
from repro.sim import Metrics


class TestQuantum:
    def test_exact_when_error_budget_small(self):
        # eps * W < n forces q = 1, i.e. no rounding at all.
        assert cutter_quantum(100, 0.5, 100) == 1

    def test_scales_with_bound(self):
        assert cutter_quantum(10, 0.5, 1000) == 45  # floor(500 / 11)

    def test_at_least_one(self):
        assert cutter_quantum(1000, 0.01, 10) == 1


class TestCutterGuarantees:
    def check_lemma(self, g, sources, eps, bound):
        truth = oracle_distances(g, sources)
        approx = approx_cssp(g, sources, eps, bound)
        for u in g.nodes():
            if approx[u] != INFINITY:
                assert truth[u] <= approx[u] < truth[u] + eps * bound + 1e-9, (
                    u, approx[u], truth[u],
                )
            else:
                assert truth[u] > 2 * bound, (u, truth[u])

    def test_small_path(self):
        g = graphs.path_graph(10).reweighted(lambda w: 7)
        self.check_lemma(g, {0: 0}, 0.5, 20)

    def test_random_graphs_eps_half(self):
        for seed in range(5):
            g = small_weighted_graph(20, seed, max_weight=50)
            self.check_lemma(g, {0: 0}, 0.5, 100)

    def test_random_graphs_small_eps(self):
        g = small_weighted_graph(20, 9, max_weight=50)
        self.check_lemma(g, {0: 0}, 0.1, 200)

    def test_multi_source_with_offsets(self):
        g = small_weighted_graph(24, 3, max_weight=20)
        self.check_lemma(g, {0: 0, 5: 13, 11: 4}, 0.5, 60)

    def test_all_within_2w_have_finite_output(self):
        g = graphs.path_graph(30)
        approx = approx_cssp(g, {0: 0}, 0.5, 10)
        truth = g.dijkstra([0])
        for u in g.nodes():
            if truth[u] <= 2 * 10:
                assert approx[u] != INFINITY

    def test_no_sources(self):
        g = graphs.path_graph(4)
        assert all(v == INFINITY for v in approx_cssp(g, {}, 0.5, 10).values())

    def test_invalid_eps(self):
        g = graphs.path_graph(3)
        with pytest.raises(ValueError):
            approx_cssp(g, {0: 0}, 0.0, 10)
        with pytest.raises(ValueError):
            approx_cssp(g, {0: 0}, 1.0, 10)

    def test_invalid_bound(self):
        with pytest.raises(ValueError):
            approx_cssp(graphs.path_graph(3), {0: 0}, 0.5, 0)


class TestCutterCosts:
    def test_congestion_constant(self):
        g = graphs.random_connected_graph(40, seed=2)
        g = graphs.random_weights(g, 100, seed=3)
        m = Metrics()
        approx_cssp(g, {0: 0}, 0.5, 2000, metrics=m)
        assert m.max_congestion <= 1

    def test_rounds_bounded_by_n_over_eps(self):
        # Time O(W/q + n) = O(n / eps + n).
        n = 40
        g = graphs.random_weights(graphs.random_connected_graph(n, seed=5), 100, seed=6)
        for eps in (0.5, 0.25):
            m = Metrics()
            bound = n * 100
            approx_cssp(g, {0: 0}, eps, bound, metrics=m)
            assert m.rounds <= 2 * bound / cutter_quantum(n, eps, bound) + 2 * n + 10


@settings(max_examples=25, deadline=None)
@given(
    st.integers(min_value=3, max_value=20),
    st.integers(min_value=0, max_value=10**6),
    st.sampled_from([0.2, 0.5, 0.9]),
    st.integers(min_value=2, max_value=400),
)
def test_property_cutter_sandwich(n, seed, eps, bound):
    g = graphs.random_weights(graphs.random_connected_graph(n, seed=seed), 9, seed=seed)
    truth = g.dijkstra([0])
    approx = approx_cssp(g, {0: 0}, eps, bound)
    for u in g.nodes():
        if approx[u] != INFINITY:
            assert truth[u] <= approx[u] < truth[u] + eps * bound + 1e-9
        else:
            assert truth[u] > 2 * bound
