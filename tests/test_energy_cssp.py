"""From-scratch low-energy BFS (Thm 3.13/3.14) and energy CSSP (Thm 3.15)."""

import pytest

from repro.testing import assert_distances_equal, oracle_distances
from repro import graphs
from repro.energy import energy_approx_cssp, energy_cssp, low_energy_bfs_from_scratch
from repro.graphs import Graph, INFINITY
from repro.sim import Metrics


class TestFromScratchBFS:
    def test_path(self):
        g = graphs.path_graph(20)
        dist, cover = low_energy_bfs_from_scratch(g, {0: 0})
        assert dist == g.hop_distances([0])

    def test_grid(self):
        g = graphs.grid_graph(5, 5)
        dist, _ = low_energy_bfs_from_scratch(g, {0: 0})
        assert dist == g.hop_distances([0])

    def test_random(self):
        g = graphs.random_connected_graph(20, seed=3)
        dist, _ = low_energy_bfs_from_scratch(g, {0: 0})
        assert dist == g.hop_distances([0])

    def test_thresholded(self):
        g = graphs.path_graph(25)
        dist, _ = low_energy_bfs_from_scratch(g, {0: 0}, threshold=7)
        for u in g.nodes():
            assert dist[u] == (u if u <= 7 else INFINITY)

    def test_metrics_separated(self):
        g = graphs.path_graph(16)
        cm, qm = Metrics(), Metrics()
        low_energy_bfs_from_scratch(
            g, {0: 0}, construction_metrics=cm, query_metrics=qm
        )
        assert cm.rounds > 0 and qm.rounds > 0
        assert qm.max_energy < qm.rounds  # query phase genuinely sleeps

    def test_weights_ignored_for_bfs(self):
        g = graphs.random_weights(graphs.path_graph(10), 9, seed=1)
        dist, _ = low_energy_bfs_from_scratch(g, {0: 0})
        assert dist == {u: u for u in g.nodes()}


class TestEnergyCutter:
    def test_lemma_guarantees(self):
        g = graphs.random_weights(graphs.random_connected_graph(12, seed=2), 5, seed=3)
        truth = g.dijkstra([0])
        bound = 20
        eps = 0.5
        approx = energy_approx_cssp(g, {0: 0}, eps, bound)
        for u in g.nodes():
            if approx[u] != INFINITY:
                assert truth[u] <= approx[u] < truth[u] + eps * bound + 1e-9
            else:
                assert truth[u] > 2 * bound

    def test_no_sources(self):
        g = graphs.path_graph(4)
        out = energy_approx_cssp(g, {}, 0.5, 5)
        assert all(v == INFINITY for v in out.values())


class TestEnergyCSSP:
    def test_exact_small_random(self):
        for seed in range(3):
            g = graphs.random_weights(
                graphs.random_connected_graph(12, seed=seed), 5, seed=seed + 9
            )
            d, m = energy_cssp(g, {0: 0})
            assert_distances_equal(d, g.dijkstra([0]), f"seed {seed}")

    def test_exact_path(self):
        g = graphs.random_weights(graphs.path_graph(14), 4, seed=11)
        d, _ = energy_cssp(g, {0: 0})
        assert_distances_equal(d, g.dijkstra([0]), "path")

    def test_multi_source_offsets(self):
        g = graphs.random_weights(graphs.random_connected_graph(10, seed=5), 4, seed=6)
        sources = {0: 3, 9: 0}
        d, _ = energy_cssp(g, sources)
        assert_distances_equal(d, oracle_distances(g, sources), "offsets")

    def test_unweighted(self):
        g = graphs.grid_graph(3, 4)
        d, _ = energy_cssp(g, [0])
        assert_distances_equal(d, g.hop_distances([0]), "grid")

    def test_zero_weights_rejected(self):
        g = Graph.from_edges([(0, 1, 0)])
        with pytest.raises(ValueError):
            energy_cssp(g, {0: 0})

    def test_empty_and_sourceless(self):
        d, _ = energy_cssp(Graph(), {})
        assert d == {}
        g = graphs.path_graph(3)
        d, _ = energy_cssp(g, {})
        assert all(v == INFINITY for v in d.values())

    def test_disconnected(self):
        g = Graph.from_edges([(0, 1, 2), (2, 3, 1)])
        d, _ = energy_cssp(g, {0: 0})
        assert d[1] == 2 and d[2] == INFINITY
