"""Differential tests: the indexed Runner vs the retained reference engine.

Seeded synthetic protocols — gossipy CONGEST traffic and lossy sleeping
schedules — run on random graphs through both :class:`repro.sim.Runner`
(indexed, batched) and :class:`repro.sim.ReferenceRunner` (the original
dict-of-objects implementation).  The two executions must agree on *every*
metric: rounds, messages, lost messages, energy, congestion, and the full
per-edge / per-node counters.

The protocols are deliberately order-insensitive (they aggregate their
inbox, never index into it), because the engines step awake nodes in
different deterministic orders (node-index vs ``repr``-sorted) and the model
makes no promise about mailbox ordering.
"""

import random

import pytest

from repro import graphs
from repro.sim import Metrics, Mode, NodeAlgorithm, ReferenceRunner, Runner


class Gossip(NodeAlgorithm):
    """CONGEST chatter: seeded random sends, naps, idles; halts at a horizon.

    Exercises wake-on-message, rescheduling to earlier rounds (stale wake
    entries), idling, and halting mid-conversation.
    """

    def __init__(self, node, seed, horizon=14):
        self.node = node
        self.rng = random.Random(seed * 1_000_003 + node * 7919)
        self.horizon = horizon
        self.heard = 0

    def on_round(self, ctx, inbox):
        self.heard += sum(payload for _, payload in inbox)  # order-insensitive
        if ctx.round >= self.horizon:
            ctx.halt()
            return
        for v in ctx.neighbors:
            if self.rng.random() < 0.35:
                ctx.send(v, (self.node + self.heard + ctx.round) % 97)
        choice = self.rng.random()
        if choice < 0.25:
            ctx.sleep_for(1 + int(choice * 20))
        elif choice < 0.35:
            ctx.idle()
        # else: default — awake again next round


class SleepyBeacon(NodeAlgorithm):
    """Sleeping-model protocol: staggered wake schedules, lossy sends.

    Nodes wake on their own seeded schedule and broadcast to random
    neighbors; whether a message lands depends on the recipient's schedule,
    so this exercises the lost-message accounting of Section 1.2.
    """

    def __init__(self, node, seed, budget=8):
        self.node = node
        self.rng = random.Random(seed * 998_244_353 + node * 104_729)
        self.budget = budget

    def on_round(self, ctx, inbox):
        self.budget -= 1
        if self.budget <= 0:
            ctx.halt()
            return
        for v in ctx.neighbors:
            if self.rng.random() < 0.5:
                ctx.send(v, self.budget)
        ctx.wake_at(ctx.round + 1 + self.rng.randrange(4))


def both_metrics(graph, make_algorithms, mode, **kwargs):
    runs = []
    for engine in (Runner, ReferenceRunner):
        metrics = Metrics()
        engine(graph, make_algorithms(), mode, metrics=metrics, **kwargs).run()
        runs.append(metrics)
    return runs


def assert_identical(new: Metrics, ref: Metrics) -> None:
    assert new.summary() == ref.summary()
    assert new.edge_messages == ref.edge_messages
    assert new.awake_rounds == ref.awake_rounds


@pytest.mark.parametrize("seed", range(8))
def test_congest_parity_on_random_graphs(seed):
    rng = random.Random(seed)
    n = rng.randrange(5, 40)
    g = graphs.random_connected_graph(n, extra_edge_prob=rng.choice([0.0, 0.1, 0.3]), seed=seed)
    new, ref = both_metrics(g, lambda: {u: Gossip(u, seed) for u in g.nodes()}, Mode.CONGEST)
    assert_identical(new, ref)
    assert new.lost_messages == 0  # CONGEST never loses messages


@pytest.mark.parametrize("seed", range(8))
def test_sleeping_parity_on_random_graphs(seed):
    rng = random.Random(1000 + seed)
    n = rng.randrange(5, 40)
    g = graphs.random_connected_graph(n, extra_edge_prob=0.15, seed=seed)
    new, ref = both_metrics(
        g, lambda: {u: SleepyBeacon(u, seed) for u in g.nodes()}, Mode.SLEEPING
    )
    assert_identical(new, ref)
    assert new.lost_messages > 0  # the schedules are staggered enough to lose some


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_megaround_parity(seed):
    g = graphs.random_connected_graph(16, extra_edge_prob=0.2, seed=seed)
    new, ref = both_metrics(
        g,
        lambda: {u: Gossip(u, seed, horizon=9) for u in g.nodes()},
        Mode.CONGEST,
        round_width=3,
        edge_capacity=3,
    )
    assert_identical(new, ref)


def test_parity_on_disconnected_graph():
    g = graphs.random_graph(24, p=0.05, seed=7)  # usually several components
    new, ref = both_metrics(g, lambda: {u: Gossip(u, 7) for u in g.nodes()}, Mode.CONGEST)
    assert_identical(new, ref)


class Chatter(NodeAlgorithm):
    """Broadcast-heavy protocol: exercises the columnar broadcast fast path.

    Every awake round the node broadcasts (sometimes repeatedly, to stress
    ``edge_capacity > 1``), occasionally unicasts on top of the broadcast in
    the same round, and follows a seeded nap schedule so both CONGEST
    wake-on-message and SLEEPING loss accounting are hit.
    """

    def __init__(self, node, seed, horizon=12, extra_sends=0):
        self.node = node
        self.rng = random.Random(seed * 69_061 + node * 50_021)
        self.horizon = horizon
        self.extra_sends = extra_sends
        self.heard = 0

    def on_round(self, ctx, inbox):
        self.heard += sum(payload for _, payload in inbox)  # order-insensitive
        if ctx.round >= self.horizon:
            ctx.halt()
            return
        if self.rng.random() < 0.7:
            ctx.broadcast((self.node + ctx.round) % 89)
        for _ in range(self.extra_sends):
            # A unicast on top of the broadcast meters the same per-port
            # capacity accounting (needs edge_capacity > 1 to be legal).
            v = self.rng.choice(ctx.neighbors) if ctx.neighbors else None
            if v is not None and self.rng.random() < 0.5:
                ctx.send(v, 1)
        choice = self.rng.random()
        if choice < 0.2:
            ctx.sleep_for(1 + int(choice * 15))


class LoopBroadcast(NodeAlgorithm):
    """Same traffic as ``Chatter`` but via per-neighbor ``send`` calls.

    Drives the property test that ``broadcast`` and a send-loop meter
    capacity and metrics identically on the fast engine.
    """

    def __init__(self, node, seed, horizon=12, extra_sends=0):
        self._inner = Chatter(node, seed, horizon, extra_sends)

    @property
    def heard(self):
        return self._inner.heard

    def on_round(self, ctx, inbox):
        inner = self._inner
        inner.heard += sum(payload for _, payload in inbox)
        if ctx.round >= inner.horizon:
            ctx.halt()
            return
        if inner.rng.random() < 0.7:
            payload = (inner.node + ctx.round) % 89
            for v in ctx.neighbors:
                ctx.send(v, payload)
        for _ in range(inner.extra_sends):
            v = inner.rng.choice(ctx.neighbors) if ctx.neighbors else None
            if v is not None and inner.rng.random() < 0.5:
                ctx.send(v, 1)
        choice = inner.rng.random()
        if choice < 0.2:
            ctx.sleep_for(1 + int(choice * 15))


@pytest.mark.parametrize("seed", range(6))
def test_broadcast_congest_parity(seed):
    rng = random.Random(4000 + seed)
    n = rng.randrange(5, 32)
    g = graphs.random_connected_graph(n, extra_edge_prob=rng.choice([0.0, 0.2]), seed=seed)
    new, ref = both_metrics(g, lambda: {u: Chatter(u, seed) for u in g.nodes()}, Mode.CONGEST)
    assert_identical(new, ref)
    assert new.total_messages > 0
    assert new.lost_messages == 0


@pytest.mark.parametrize("seed", range(6))
def test_broadcast_sleeping_parity_with_loss(seed):
    rng = random.Random(5000 + seed)
    n = rng.randrange(6, 32)
    g = graphs.random_connected_graph(n, extra_edge_prob=0.15, seed=seed)
    new, ref = both_metrics(
        g, lambda: {u: Chatter(u, seed) for u in g.nodes()}, Mode.SLEEPING
    )
    assert_identical(new, ref)
    assert new.lost_messages > 0  # staggered naps lose some broadcasts


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_broadcast_capacity_gt_one_parity(seed):
    g = graphs.random_connected_graph(14, extra_edge_prob=0.25, seed=seed)
    new, ref = both_metrics(
        g,
        lambda: {u: Chatter(u, seed, extra_sends=2) for u in g.nodes()},
        Mode.CONGEST,
        edge_capacity=3,
    )
    assert_identical(new, ref)


@pytest.mark.parametrize("seed", [0, 1])
def test_broadcast_megaround_parity(seed):
    g = graphs.random_connected_graph(12, extra_edge_prob=0.2, seed=seed)
    new, ref = both_metrics(
        g,
        lambda: {u: Chatter(u, seed, horizon=8, extra_sends=1) for u in g.nodes()},
        Mode.CONGEST,
        round_width=4,
        edge_capacity=4,
    )
    assert_identical(new, ref)


@pytest.mark.parametrize("seed", range(5))
@pytest.mark.parametrize("mode", [Mode.CONGEST, Mode.SLEEPING])
@pytest.mark.parametrize("edge_capacity", [1, 3])
def test_broadcast_equals_send_loop(seed, mode, edge_capacity):
    """Property: broadcast and the equivalent send-loop meter identically.

    Same seeded traffic through ``Chatter`` (broadcast fast path) and
    ``LoopBroadcast`` (per-neighbor sends) on the fast engine must agree on
    every metric *and* on each node's aggregated inbox contents — mixed
    ``send`` + ``broadcast`` rounds included.
    """
    rng = random.Random(7000 + seed)
    n = rng.randrange(5, 26)
    g = graphs.random_connected_graph(n, extra_edge_prob=0.2, seed=seed)
    extra = 1 if edge_capacity > 1 else 0
    results = []
    for make in (Chatter, LoopBroadcast):
        algorithms = {u: make(u, seed, extra_sends=extra) for u in g.nodes()}
        metrics = Metrics()
        Runner(g, algorithms, mode, metrics=metrics, edge_capacity=edge_capacity).run()
        results.append((metrics, {u: algorithms[u].heard for u in g.nodes()}))
    (m_bcast, heard_bcast), (m_loop, heard_loop) = results
    assert_identical(m_bcast, m_loop)
    assert heard_bcast == heard_loop


def test_broadcast_capacity_breach_detected():
    """Two broadcasts in one round breach capacity 1 on both engines."""
    from repro.sim import SimulationError

    class DoubleCast(NodeAlgorithm):
        def on_round(self, ctx, inbox):
            ctx.broadcast("a")
            ctx.broadcast("b")

    g = graphs.path_graph(3)
    for engine in (Runner, ReferenceRunner):
        with pytest.raises(SimulationError, match="capacity"):
            engine(g, {u: DoubleCast() for u in g.nodes()}, Mode.CONGEST).run()


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_real_algorithms_run_under_the_reference_oracle(seed):
    """The oracle must execute the library's actual protocols, not just the
    synthetic differential ones — they read the columnar inbox view."""
    from repro.baselines.bellman_ford import BellmanFordNode
    from repro.core.bfs import WeightedBFS

    g = graphs.random_weights(
        graphs.random_connected_graph(12, extra_edge_prob=0.2, seed=seed), 7, seed=seed
    )
    source = next(iter(g.nodes()))
    oracle = g.dijkstra([source])
    for make in (
        lambda u: BellmanFordNode(u, u == source, g.num_nodes, send_on_change=False),
        lambda u: WeightedBFS(
            u, g.num_nodes * 7, source_offset=0 if u == source else None
        ),
    ):
        results = []
        for engine in (Runner, ReferenceRunner):
            algorithms = {u: make(u) for u in g.nodes()}
            metrics = Metrics()
            engine(g, algorithms, Mode.CONGEST, metrics=metrics).run()
            results.append((metrics, {u: algorithms[u].dist for u in g.nodes()}))
        (m_new, d_new), (m_ref, d_ref) = results
        assert d_new == d_ref == oracle
        assert_identical(m_new, m_ref)


def test_engine_pool_checkout_does_not_corrupt_live_runner():
    """A runner whose pooled state was checked out by a newer runner must
    rebuild private state instead of leaking into the thief's buffers."""

    class CastOnce(NodeAlgorithm):
        def on_round(self, ctx, inbox):
            if ctx.round == 0:
                ctx.broadcast(1)
            else:
                ctx.halt()

    g = graphs.path_graph(4)
    a = Runner(g, {u: CastOnce() for u in g.nodes()}, Mode.CONGEST)
    baseline = a.run().total_messages  # clean run returns state to the pool
    assert baseline == 6  # one broadcast per node: 2 messages per edge

    # b's __init__ checks the pooled state out and repoints it at b.  A
    # second run of a (stateless algorithms, so semantically a replay) must
    # rebuild its own state rather than metering into b's buffers.
    b = Runner(g, {u: CastOnce() for u in g.nodes()}, Mode.CONGEST)
    a.metrics = Metrics()
    assert a.run().total_messages == baseline
    assert b._bcast_src == [] and b._out_ports == []  # nothing leaked into b
    assert b.run().total_messages == baseline


def test_parity_with_non_integer_labels():
    base = graphs.random_connected_graph(12, seed=3)
    g = graphs.Graph.from_edges(
        ((f"v{u}", f"v{v}", w) for u, v, w in base.edges()),
        nodes=(f"v{u}" for u in base.nodes()),
    )
    index_of = {label: i for i, label in enumerate(g.nodes())}
    new, ref = both_metrics(
        g, lambda: {u: Gossip(index_of[u], 3) for u in g.nodes()}, Mode.CONGEST
    )
    assert_identical(new, ref)
