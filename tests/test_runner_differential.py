"""Differential tests: the indexed Runner vs the retained reference engine.

Seeded synthetic protocols — gossipy CONGEST traffic and lossy sleeping
schedules — run on random graphs through both :class:`repro.sim.Runner`
(indexed, batched) and :class:`repro.sim.ReferenceRunner` (the original
dict-of-objects implementation).  The two executions must agree on *every*
metric: rounds, messages, lost messages, energy, congestion, and the full
per-edge / per-node counters.

The protocols are deliberately order-insensitive (they aggregate their
inbox, never index into it), because the engines step awake nodes in
different deterministic orders (node-index vs ``repr``-sorted) and the model
makes no promise about mailbox ordering.
"""

import random

import pytest

from repro import graphs
from repro.sim import Metrics, Mode, NodeAlgorithm, ReferenceRunner, Runner


class Gossip(NodeAlgorithm):
    """CONGEST chatter: seeded random sends, naps, idles; halts at a horizon.

    Exercises wake-on-message, rescheduling to earlier rounds (stale wake
    entries), idling, and halting mid-conversation.
    """

    def __init__(self, node, seed, horizon=14):
        self.node = node
        self.rng = random.Random(seed * 1_000_003 + node * 7919)
        self.horizon = horizon
        self.heard = 0

    def on_round(self, ctx, inbox):
        self.heard += sum(payload for _, payload in inbox)  # order-insensitive
        if ctx.round >= self.horizon:
            ctx.halt()
            return
        for v in ctx.neighbors:
            if self.rng.random() < 0.35:
                ctx.send(v, (self.node + self.heard + ctx.round) % 97)
        choice = self.rng.random()
        if choice < 0.25:
            ctx.sleep_for(1 + int(choice * 20))
        elif choice < 0.35:
            ctx.idle()
        # else: default — awake again next round


class SleepyBeacon(NodeAlgorithm):
    """Sleeping-model protocol: staggered wake schedules, lossy sends.

    Nodes wake on their own seeded schedule and broadcast to random
    neighbors; whether a message lands depends on the recipient's schedule,
    so this exercises the lost-message accounting of Section 1.2.
    """

    def __init__(self, node, seed, budget=8):
        self.node = node
        self.rng = random.Random(seed * 998_244_353 + node * 104_729)
        self.budget = budget

    def on_round(self, ctx, inbox):
        self.budget -= 1
        if self.budget <= 0:
            ctx.halt()
            return
        for v in ctx.neighbors:
            if self.rng.random() < 0.5:
                ctx.send(v, self.budget)
        ctx.wake_at(ctx.round + 1 + self.rng.randrange(4))


def both_metrics(graph, make_algorithms, mode, **kwargs):
    runs = []
    for engine in (Runner, ReferenceRunner):
        metrics = Metrics()
        engine(graph, make_algorithms(), mode, metrics=metrics, **kwargs).run()
        runs.append(metrics)
    return runs


def assert_identical(new: Metrics, ref: Metrics) -> None:
    assert new.summary() == ref.summary()
    assert new.edge_messages == ref.edge_messages
    assert new.awake_rounds == ref.awake_rounds


@pytest.mark.parametrize("seed", range(8))
def test_congest_parity_on_random_graphs(seed):
    rng = random.Random(seed)
    n = rng.randrange(5, 40)
    g = graphs.random_connected_graph(n, extra_edge_prob=rng.choice([0.0, 0.1, 0.3]), seed=seed)
    new, ref = both_metrics(g, lambda: {u: Gossip(u, seed) for u in g.nodes()}, Mode.CONGEST)
    assert_identical(new, ref)
    assert new.lost_messages == 0  # CONGEST never loses messages


@pytest.mark.parametrize("seed", range(8))
def test_sleeping_parity_on_random_graphs(seed):
    rng = random.Random(1000 + seed)
    n = rng.randrange(5, 40)
    g = graphs.random_connected_graph(n, extra_edge_prob=0.15, seed=seed)
    new, ref = both_metrics(
        g, lambda: {u: SleepyBeacon(u, seed) for u in g.nodes()}, Mode.SLEEPING
    )
    assert_identical(new, ref)
    assert new.lost_messages > 0  # the schedules are staggered enough to lose some


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_megaround_parity(seed):
    g = graphs.random_connected_graph(16, extra_edge_prob=0.2, seed=seed)
    new, ref = both_metrics(
        g,
        lambda: {u: Gossip(u, seed, horizon=9) for u in g.nodes()},
        Mode.CONGEST,
        round_width=3,
        edge_capacity=3,
    )
    assert_identical(new, ref)


def test_parity_on_disconnected_graph():
    g = graphs.random_graph(24, p=0.05, seed=7)  # usually several components
    new, ref = both_metrics(g, lambda: {u: Gossip(u, 7) for u in g.nodes()}, Mode.CONGEST)
    assert_identical(new, ref)


def test_parity_with_non_integer_labels():
    base = graphs.random_connected_graph(12, seed=3)
    g = graphs.Graph.from_edges(
        ((f"v{u}", f"v{v}", w) for u, v, w in base.edges()),
        nodes=(f"v{u}" for u in base.nodes()),
    )
    index_of = {label: i for i, label in enumerate(g.nodes())}
    new, ref = both_metrics(
        g, lambda: {u: Gossip(index_of[u], 3) for u in g.nodes()}, Mode.CONGEST
    )
    assert_identical(new, ref)
