"""Sleeping-model BFS (Thm 3.8) and cluster communication (Sec 3.1.1)."""

import pytest

from repro import graphs
from repro.core.trees import bfs_forest
from repro.energy.cluster_comm import run_periodic_aggregation
from repro.energy.covers import build_layered_cover
from repro.energy.low_energy_bfs import make_schedule, run_low_energy_bfs
from repro.graphs import Graph, INFINITY
from repro.sim import Metrics


def energy_bfs(g, sources, threshold, **cover_kw):
    cover = build_layered_cover(g, threshold, **cover_kw)
    m = Metrics()
    dist, sched = run_low_energy_bfs(g, cover, sources, threshold, metrics=m)
    return dist, sched, m


class TestPeriodicAggregation:
    def test_aggregate_reaches_everyone(self):
        g = graphs.path_graph(8)
        forest = bfs_forest(g, roots=[0])
        m = Metrics()
        result = run_periodic_aggregation(
            g, forest, {u: u for u in g.nodes()}, max, cycles=3, metrics=m
        )
        assert all(v == 7 for v in result.values())
        assert m.lost_messages == 0

    def test_energy_four_wakes_per_cycle(self):
        g = graphs.path_graph(20)
        forest = bfs_forest(g, roots=[0])
        m = Metrics()
        cycles = 5
        run_periodic_aggregation(g, forest, {u: 1 for u in g.nodes()}, sum, cycles, metrics=m)
        # At most 4 wakes per cycle plus the final halt wake.
        assert m.max_energy <= 4 * cycles + 2

    def test_updates_flow_between_cycles(self):
        # The value folded each cycle is the node's *current* value; the
        # protocol re-aggregates every cycle, which is what the BFS's
        # "has the wave arrived yet" flags rely on.
        g = graphs.path_graph(5)
        forest = bfs_forest(g, roots=[0])
        result = run_periodic_aggregation(
            g, forest, {u: u == 3 for u in g.nodes()}, any, cycles=2
        )
        assert all(result.values())

    def test_forest_with_multiple_trees(self):
        g = Graph.from_edges([(0, 1), (2, 3)])
        forest = bfs_forest(g)
        result = run_periodic_aggregation(g, forest, {0: 1, 1: 2, 2: 5, 3: 6}, sum, 2)
        assert result[0] == 3 and result[3] == 11


class TestLowEnergyBFSCorrectness:
    @pytest.mark.parametrize(
        "builder",
        [
            lambda: graphs.path_graph(24),
            lambda: graphs.cycle_graph(20),
            lambda: graphs.grid_graph(5, 5),
            lambda: graphs.balanced_tree(2, 4),
            lambda: graphs.random_connected_graph(24, seed=2),
            lambda: graphs.caterpillar_graph(8, 2),
        ],
    )
    def test_exact_under_lossy_sleep(self, builder):
        g = builder()
        dist, sched, m = energy_bfs(g, {0: 0}, g.num_nodes, base=4, stretch=3)
        truth = g.hop_distances([0])
        assert dist == truth

    def test_multi_source(self):
        g = graphs.path_graph(20)
        dist, _, _ = energy_bfs(g, {0: 0, 19: 0}, 20, base=4, stretch=3)
        truth = g.hop_distances([0, 19])
        assert dist == truth

    def test_source_offsets(self):
        g = graphs.path_graph(12)
        dist, _, _ = energy_bfs(g, {0: 3, 11: 0}, 20, base=4, stretch=3)
        for u in g.nodes():
            assert dist[u] == min(3 + u, 11 - u)

    def test_thresholded(self):
        g = graphs.path_graph(30)
        tau = 9
        dist, _, _ = energy_bfs(g, {0: 0}, tau, base=4, stretch=3)
        for u in g.nodes():
            assert dist[u] == (u if u <= tau else INFINITY)

    def test_weighted_graph(self):
        g = graphs.random_weights(graphs.path_graph(12), 3, seed=4)
        truth = g.dijkstra([0])
        tau = int(max(truth.values()))
        dist, _, _ = energy_bfs(g, {0: 0}, tau, base=4, stretch=3)
        assert dist == truth

    def test_weighted_random_graph(self):
        g = graphs.random_weights(graphs.random_connected_graph(14, seed=6), 3, seed=7)
        truth = g.dijkstra([0])
        dist, _, _ = energy_bfs(g, {0: 0}, int(max(truth.values())), base=4, stretch=3)
        assert dist == truth

    def test_source_in_middle(self):
        g = graphs.path_graph(21)
        dist, _, _ = energy_bfs(g, {10: 0}, 21, base=4, stretch=3)
        assert dist == {u: abs(u - 10) for u in g.nodes()}


class TestLowEnergyBFSCosts:
    def test_sleeping_mode_actually_sleeps(self):
        g = graphs.path_graph(32)
        dist, sched, m = energy_bfs(g, {0: 0}, 32, base=4, stretch=3)
        # The whole point: no node is awake for more than a fraction of the
        # execution (an always-awake node would have energy == rounds).
        assert m.max_energy < m.rounds
        assert m.max_energy > 0

    def test_messages_are_lost_but_harmlessly(self):
        # Desynchronized deactivations lose some tree messages; the BFS
        # offers that define the output are never lost.
        g = graphs.path_graph(32)
        dist, sched, m = energy_bfs(g, {0: 0}, 32, base=4, stretch=3)
        assert dist == g.hop_distances([0])

    def test_rounds_scale_with_threshold_not_n(self):
        g = graphs.path_graph(40)
        _, sched_small, m_small = energy_bfs(g, {0: 0}, 5, base=4, stretch=3)
        _, sched_big, m_big = energy_bfs(g, {0: 0}, 39, base=4, stretch=3)
        assert m_small.rounds < m_big.rounds

    def test_schedule_constants(self):
        g = graphs.path_graph(24)
        cover = build_layered_cover(g, 24, base=4, stretch=3)
        sched = make_schedule(g, cover, 24)
        assert sched.sigma >= 2
        assert sched.omega >= 1
        assert sched.t_end > sched.t0 > 0
        assert sched.step_round(0) == sched.t0
        assert sched.step_of(sched.t0 + sched.sigma) == 1

    def test_energy_concentrated_near_bfs_route(self):
        # Nodes far beyond the threshold stay near-idle after init.
        g = graphs.path_graph(40)
        tau = 6
        cover = build_layered_cover(g, tau, base=4, stretch=3)
        m = Metrics()
        dist, sched = run_low_energy_bfs(g, cover, {0: 0}, tau, metrics=m)
        near = max(m.energy_of(u) for u in range(5))
        far = m.energy_of(39)
        assert far <= near
