"""Sparse covers (Def 3.2 / Thm 3.11) and layered covers (Def 3.4)."""

import pytest

from repro import graphs
from repro.energy.covers import build_layered_cover, build_sparse_cover
from repro.graphs import Graph


def ball(g, v, d):
    return {u for u, dist in g.dijkstra([v]).items() if dist <= d}


class TestSparseCover:
    @pytest.mark.parametrize(
        "builder,d",
        [
            (lambda: graphs.path_graph(24), 2),
            (lambda: graphs.grid_graph(5, 5), 2),
            (lambda: graphs.cycle_graph(16), 3),
            (lambda: graphs.random_connected_graph(25, seed=1), 2),
        ],
    )
    def test_home_contains_ball(self, builder, d):
        g = builder()
        cover = build_sparse_cover(g, d, stretch=3)
        for v in g.nodes():
            assert ball(g, v, d) <= cover.home[v].members, f"ball({v}) escapes home"

    def test_membership_bounded_by_colors(self):
        g = graphs.path_graph(40)
        cover = build_sparse_cover(g, 2, stretch=3)
        memberships = cover.memberships()
        assert set(memberships) == set(g.nodes())
        # Expansion adds at most one cluster per color.
        assert cover.max_membership() <= 12

    def test_trees_are_graph_edges_and_rooted(self):
        g = graphs.grid_graph(5, 5)
        cover = build_sparse_cover(g, 2, stretch=3)
        for cluster in cover.clusters:
            for u, p in cluster.tree_edges():
                assert g.has_edge(u, p)
            assert cluster.tree_parent[cluster.root] is None
            for u in cluster.members:
                assert u in cluster.tree_parent

    def test_tree_hops_consistent(self):
        g = graphs.path_graph(20)
        cover = build_sparse_cover(g, 2, stretch=3)
        for cluster in cover.clusters:
            for u, p in cluster.tree_parent.items():
                if p is not None:
                    assert cluster.tree_hops[u] == cluster.tree_hops[p] + 1

    def test_tree_wdist_consistent(self):
        g = graphs.random_weights(graphs.path_graph(15), 4, seed=3)
        cover = build_sparse_cover(g, 4, stretch=3)
        for cluster in cover.clusters:
            for u, p in cluster.tree_parent.items():
                if p is not None:
                    assert cluster.tree_wdist[u] == cluster.tree_wdist[p] + g.weight(u, p)

    def test_weighted_cover_ball_property(self):
        g = graphs.random_weights(graphs.cycle_graph(14), 3, seed=5)
        d = 4
        cover = build_sparse_cover(g, d, stretch=3)
        for v in g.nodes():
            assert ball(g, v, d) <= cover.home[v].members

    def test_edge_tree_load(self):
        g = graphs.path_graph(30)
        cover = build_sparse_cover(g, 2, stretch=3)
        load = cover.edge_tree_load()
        assert max(load.values()) <= len(cover.clusters)

    def test_universal_cluster_detection(self):
        g = graphs.path_graph(6)
        cover = build_sparse_cover(g, 10, stretch=10)
        assert cover.has_universal_cluster(g)


class TestLayeredCover:
    def test_radii_strictly_increase(self):
        g = graphs.path_graph(48)
        layered = build_layered_cover(g, 47, base=4, stretch=3)
        assert all(b > a for a, b in zip(layered.radii, layered.radii[1:]))

    def test_parent_containment(self):
        g = graphs.path_graph(48)
        layered = build_layered_cover(g, 47, base=4, stretch=3)
        for j in range(len(layered.levels) - 1):
            upper = {c.cid: c for c in layered.levels[j + 1].clusters}
            for c in layered.levels[j].clusters:
                parent = upper[layered.parent_of[c.cid]]
                assert c.tree_nodes <= parent.members

    def test_parent_contains_half_radius_neighborhood(self):
        g = graphs.grid_graph(7, 7)
        layered = build_layered_cover(g, 12, base=4, stretch=3)
        for j in range(len(layered.levels) - 1):
            upper = {c.cid: c for c in layered.levels[j + 1].clusters}
            r_next = layered.radii[j + 1]
            for c in layered.levels[j].clusters:
                parent = upper[layered.parent_of[c.cid]]
                for u in c.members:
                    assert ball(g, u, r_next // 2) <= parent.members

    def test_top_level_terminates(self):
        g = graphs.path_graph(30)
        layered = build_layered_cover(g, 29, base=4, stretch=3)
        top = layered.levels[-1]
        assert top.has_universal_cluster(g) or layered.radii[-1] >= 2 * 29

    def test_every_non_top_cluster_has_parent(self):
        g = graphs.path_graph(30)
        layered = build_layered_cover(g, 29, base=4, stretch=3)
        for j in range(len(layered.levels) - 1):
            for c in layered.levels[j].clusters:
                assert c.cid in layered.parent_of

    def test_max_edge_load_positive(self):
        g = graphs.path_graph(30)
        layered = build_layered_cover(g, 29, base=4, stretch=3)
        assert layered.max_edge_load() >= 1

    def test_cluster_by_id(self):
        g = graphs.path_graph(12)
        layered = build_layered_cover(g, 11, base=4, stretch=3)
        c = layered.levels[0].clusters[0]
        assert layered.cluster_by_id(c.cid) is c
        with pytest.raises(KeyError):
            layered.cluster_by_id(("nope",))

    def test_invalid_base(self):
        with pytest.raises(ValueError):
            build_layered_cover(graphs.path_graph(4), 3, base=1)

    def test_weighted_layered_cover(self):
        g = graphs.random_weights(graphs.path_graph(20), 3, seed=7)
        target = 20
        layered = build_layered_cover(g, target, base=4, stretch=3)
        for j in range(len(layered.levels) - 1):
            upper = {c.cid: c for c in layered.levels[j + 1].clusters}
            for c in layered.levels[j].clusters:
                assert c.tree_nodes <= upper[layered.parent_of[c.cid]].members
