"""Documentation consistency: the docs reference things that exist."""

import importlib
import re
from pathlib import Path

import pytest

ROOT = Path(__file__).parent.parent


class TestDocsExist:
    @pytest.mark.parametrize("name", ["README.md", "DESIGN.md", "EXPERIMENTS.md"])
    def test_present_and_nonempty(self, name):
        path = ROOT / name
        assert path.exists(), name
        assert len(path.read_text()) > 1000, f"{name} looks like a stub"

    def test_design_confirms_paper_identity(self):
        text = (ROOT / "DESIGN.md").read_text()
        assert "Paper identity confirmed" in text

    def test_experiments_cover_all_recorded_tables(self):
        results = ROOT / "benchmarks" / "results"
        if not results.is_dir():
            pytest.skip("benchmarks not recorded yet")
        text = (ROOT / "EXPERIMENTS.md").read_text()
        for table in results.glob("E*.txt"):
            stem = table.stem.split("_")[0].rstrip("abc")
            assert stem in text, f"{table.stem} not discussed in EXPERIMENTS.md"


class TestDesignModuleReferences:
    def test_referenced_modules_import(self):
        text = (ROOT / "DESIGN.md").read_text()
        for match in set(re.findall(r"`(repro(?:\.\w+)+)`", text)):
            module = match
            attr = None
            try:
                importlib.import_module(module)
            except ModuleNotFoundError:
                module, _, attr = match.rpartition(".")
                mod = importlib.import_module(module)
                assert hasattr(mod, attr), f"DESIGN.md references missing {match}"


class TestPublicAPIHasDocstrings:
    @pytest.mark.parametrize(
        "module_name",
        [
            "repro",
            "repro.graphs",
            "repro.sim",
            "repro.core",
            "repro.baselines",
            "repro.energy",
            "repro.analysis",
        ],
    )
    def test_every_export_documented(self, module_name):
        module = importlib.import_module(module_name)
        for name in getattr(module, "__all__", []):
            if name.startswith("__"):
                continue
            obj = getattr(module, name)
            if callable(obj) or isinstance(obj, type):
                assert obj.__doc__, f"{module_name}.{name} lacks a docstring"
