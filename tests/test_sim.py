"""Simulator semantics: rounds, delivery, sleeping loss, capacity, metrics."""

import pytest

from repro.graphs import Graph, path_graph
from repro.sim import Context, Metrics, Mode, NodeAlgorithm, Runner, SimulationError


class Echo(NodeAlgorithm):
    """Round 0: node 0 sends 'ping'; receiver records and halts."""

    def __init__(self, node):
        self.node = node
        self.got = []

    def on_round(self, ctx, inbox):
        self.got.extend(inbox)
        if ctx.round == 0 and self.node == 0:
            ctx.send(1, "ping")
            ctx.halt()
        elif self.got:
            ctx.halt()
        else:
            ctx.idle()


def two_nodes():
    return Graph.from_edges([(0, 1)])


class TestDelivery:
    def test_message_arrives_next_round(self):
        g = two_nodes()
        algs = {u: Echo(u) for u in g.nodes()}
        m = Runner(g, algs, Mode.CONGEST).run()
        assert algs[1].got == [(0, "ping")]
        assert m.rounds == 2  # round 0 send, round 1 receive

    def test_total_messages_counted(self):
        g = two_nodes()
        m = Runner(g, {u: Echo(u) for u in g.nodes()}, Mode.CONGEST).run()
        assert m.total_messages == 1
        assert m.lost_messages == 0

    def test_send_to_non_neighbor_rejected(self):
        class Bad(NodeAlgorithm):
            def on_round(self, ctx, inbox):
                ctx.send(99, "x")

        g = two_nodes()
        with pytest.raises(SimulationError):
            Runner(g, {0: Bad(), 1: Bad()}, Mode.CONGEST).run()

    def test_missing_algorithm_rejected(self):
        g = two_nodes()
        with pytest.raises(SimulationError):
            Runner(g, {0: Echo(0)}, Mode.CONGEST)

    def test_edge_capacity_enforced(self):
        class Spam(NodeAlgorithm):
            def on_round(self, ctx, inbox):
                ctx.send(1, "a")
                ctx.send(1, "b")

        g = two_nodes()
        with pytest.raises(SimulationError):
            Runner(g, {0: Spam(), 1: Echo(1)}, Mode.CONGEST).run()

    def test_edge_capacity_raised(self):
        class Spam(NodeAlgorithm):
            def __init__(self, node):
                self.node = node

            def on_round(self, ctx, inbox):
                if self.node == 0 and ctx.round == 0:
                    ctx.send(1, "a")
                    ctx.send(1, "b")
                ctx.halt()

        g = two_nodes()
        m = Runner(g, {u: Spam(u) for u in g.nodes()}, Mode.CONGEST, edge_capacity=2).run()
        assert m.total_messages == 2


class TestSleepingModel:
    def test_message_to_sleeping_node_lost(self):
        class Sender(NodeAlgorithm):
            def on_round(self, ctx, inbox):
                if ctx.round == 0:
                    ctx.wake_at(2)  # stay scheduled, send later
                    return
                if ctx.round == 2:
                    ctx.send(1, "late")
                    ctx.halt()

        class Sleeper(NodeAlgorithm):
            def __init__(self):
                self.got = []

            def on_round(self, ctx, inbox):
                self.got.extend(inbox)
                if ctx.round == 0:
                    ctx.wake_at(5)  # asleep at round 2 when the send happens
                else:
                    ctx.halt()

        g = two_nodes()
        sleeper = Sleeper()
        m = Runner(g, {0: Sender(), 1: sleeper}, Mode.SLEEPING).run()
        assert sleeper.got == []
        assert m.lost_messages == 1

    def test_message_to_awake_node_delivered(self):
        class Sender(NodeAlgorithm):
            def on_round(self, ctx, inbox):
                if ctx.round == 0:
                    ctx.send(1, "hi")
                ctx.halt()

        class Listener(NodeAlgorithm):
            def __init__(self):
                self.got = []

            def on_round(self, ctx, inbox):
                self.got.extend(inbox)
                if ctx.round >= 1:
                    ctx.halt()
                else:
                    ctx.wake_at(1)

        g = two_nodes()
        listener = Listener()
        m = Runner(g, {0: Sender(), 1: listener}, Mode.SLEEPING).run()
        assert listener.got == [(0, "hi")]
        assert m.lost_messages == 0

    def test_energy_counts_awake_rounds_only(self):
        class Napper(NodeAlgorithm):
            def on_round(self, ctx, inbox):
                if ctx.round == 0:
                    ctx.wake_at(10)
                else:
                    ctx.halt()

        g = two_nodes()
        m = Runner(g, {0: Napper(), 1: Napper()}, Mode.SLEEPING).run()
        assert m.max_energy == 2  # rounds 0 and 10
        assert m.rounds == 11

    def test_no_wake_on_message_in_sleeping_mode(self):
        class Sender(NodeAlgorithm):
            def on_round(self, ctx, inbox):
                if ctx.round == 0:
                    ctx.send(1, "x")
                ctx.halt()

        class IdleNode(NodeAlgorithm):
            def __init__(self):
                self.woken = 0

            def on_round(self, ctx, inbox):
                self.woken += 1
                ctx.idle()

        g = two_nodes()
        idle = IdleNode()
        Runner(g, {0: Sender(), 1: idle}, Mode.SLEEPING).run()
        assert idle.woken == 1  # only the initial round-0 wake


class TestWakeScheduling:
    def test_wake_on_message_in_congest_mode(self):
        class Sender(NodeAlgorithm):
            def on_round(self, ctx, inbox):
                if ctx.round == 3:
                    ctx.send(1, "x")
                    ctx.halt()
                else:
                    ctx.wake_at(3)

        class IdleNode(NodeAlgorithm):
            def __init__(self):
                self.got = []

            def on_round(self, ctx, inbox):
                self.got.extend(inbox)
                if self.got:
                    ctx.halt()
                else:
                    ctx.idle()

        g = two_nodes()
        idle = IdleNode()
        m = Runner(g, {0: Sender(), 1: idle}, Mode.CONGEST).run()
        assert idle.got == [(0, "x")]
        assert m.rounds == 5

    def test_wake_at_past_round_rejected(self):
        class Bad(NodeAlgorithm):
            def on_round(self, ctx, inbox):
                ctx.wake_at(ctx.round)

        g = two_nodes()
        with pytest.raises(SimulationError):
            Runner(g, {0: Bad(), 1: Bad()}, Mode.CONGEST).run()

    def test_halted_node_never_runs_again(self):
        class Once(NodeAlgorithm):
            def __init__(self):
                self.runs = 0

            def on_round(self, ctx, inbox):
                self.runs += 1
                ctx.halt()

        g = two_nodes()
        algs = {0: Once(), 1: Once()}
        Runner(g, algs, Mode.CONGEST).run()
        assert algs[0].runs == 1

    def test_max_rounds_guard(self):
        class Forever(NodeAlgorithm):
            def on_round(self, ctx, inbox):
                pass  # default: wake next round, forever

        g = two_nodes()
        with pytest.raises(SimulationError):
            Runner(g, {0: Forever(), 1: Forever()}, Mode.CONGEST, max_rounds=50).run()

    def test_round_skipping_is_fast_and_correct(self):
        class LongNap(NodeAlgorithm):
            def on_round(self, ctx, inbox):
                if ctx.round == 0:
                    ctx.wake_at(100000)
                else:
                    ctx.halt()

        g = two_nodes()
        m = Runner(g, {0: LongNap(), 1: LongNap()}, Mode.CONGEST).run()
        assert m.rounds == 100001


class TestMegarounds:
    def test_round_width_scales_rounds_and_energy(self):
        class OneShot(NodeAlgorithm):
            def on_round(self, ctx, inbox):
                ctx.halt()

        g = two_nodes()
        m = Runner(g, {0: OneShot(), 1: OneShot()}, Mode.CONGEST, round_width=5).run()
        assert m.rounds == 5
        assert m.max_energy == 5

    def test_capacity_with_megarounds(self):
        class Multi(NodeAlgorithm):
            def __init__(self, node):
                self.node = node

            def on_round(self, ctx, inbox):
                if self.node == 0 and ctx.round == 0:
                    for i in range(3):
                        ctx.send(1, i)
                ctx.halt()

        g = two_nodes()
        m = Runner(
            g, {u: Multi(u) for u in g.nodes()}, Mode.CONGEST,
            round_width=3, edge_capacity=3,
        ).run()
        assert m.total_messages == 3


class TestMetrics:
    def test_merge_sequential_adds_rounds(self):
        a, b = Metrics(), Metrics()
        a.record_rounds(10)
        b.record_rounds(7)
        a.merge(b)
        assert a.rounds == 17

    def test_merge_concurrent_takes_max_rounds(self):
        a, b = Metrics(), Metrics()
        a.record_rounds(10)
        b.record_rounds(7)
        a.merge(b, sequential=False)
        assert a.rounds == 10

    def test_merge_always_adds_messages(self):
        a, b = Metrics(), Metrics()
        a.record_send(0, 1, True)
        b.record_send(0, 1, True)
        b.record_send(1, 0, False)
        a.merge(b, sequential=False)
        assert a.total_messages == 3
        assert a.lost_messages == 1
        assert a.edge_messages[(0, 1)] == 2

    def test_congestion_is_max_directed_edge(self):
        m = Metrics()
        for _ in range(5):
            m.record_send(0, 1, True)
        m.record_send(1, 0, True)
        assert m.max_congestion == 5
        assert m.congestion_of(0, 1) == 6

    def test_energy_is_max_node(self):
        m = Metrics()
        m.record_awake("a", 3)
        m.record_awake("b", 9)
        assert m.max_energy == 9
        assert m.energy_of("a") == 3
        assert m.energy_of("zzz") == 0

    def test_participation(self):
        m = Metrics()
        m.record_participation(1)
        m.record_participation(1)
        assert m.max_participation == 2

    def test_summary_keys(self):
        s = Metrics().summary()
        assert set(s) == {
            "rounds", "messages", "lost_messages", "congestion", "energy",
            "max_participation",
        }

    def test_copy_is_independent(self):
        a = Metrics()
        a.record_rounds(5)
        b = a.copy()
        b.record_rounds(5)
        assert a.rounds == 5 and b.rounds == 10

    def test_empty_metrics(self):
        m = Metrics()
        assert m.max_congestion == 0
        assert m.max_energy == 0
        assert m.max_participation == 0
