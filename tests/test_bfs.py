"""Thresholded weighted BFS: exactness, thresholds, offsets, congestion."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.testing import assert_distances_equal, oracle_distances, small_weighted_graph
from repro import graphs
from repro.core.bfs import run_bfs, run_weighted_bfs
from repro.graphs import Graph, INFINITY
from repro.sim import Metrics


class TestUnweightedBFS:
    def test_path(self):
        g = graphs.path_graph(8)
        assert run_bfs(g, [0]) == {i: i for i in range(8)}

    def test_multi_source(self):
        g = graphs.path_graph(9)
        d = run_bfs(g, [0, 8])
        assert d[4] == 4
        assert d[1] == 1 and d[7] == 1

    def test_weights_ignored(self):
        g = Graph.from_edges([(0, 1, 50), (1, 2, 50)])
        assert run_bfs(g, [0]) == {0: 0, 1: 1, 2: 2}

    def test_threshold_cuts(self):
        g = graphs.path_graph(10)
        d = run_bfs(g, [0], threshold=3)
        assert d[3] == 3
        assert d[4] == INFINITY

    def test_disconnected_unreachable(self):
        g = Graph.from_edges([(0, 1)], nodes=[2])
        assert run_bfs(g, [0])[2] == INFINITY

    def test_grid_matches_oracle(self):
        g = graphs.grid_graph(5, 6)
        assert_distances_equal(run_bfs(g, [0]), g.hop_distances([0]), "grid")


class TestWeightedBFS:
    def test_simple_detour(self):
        g = Graph.from_edges([(0, 1, 10), (0, 2, 1), (2, 1, 2)])
        d = run_weighted_bfs(g, {0: 0}, 100)
        assert d[1] == 3

    def test_matches_dijkstra_random(self):
        for seed in range(6):
            g = small_weighted_graph(22, seed)
            d = run_weighted_bfs(g, {0: 0}, 10**6)
            assert_distances_equal(d, g.dijkstra([0]), f"seed {seed}")

    def test_multi_source_offsets(self):
        g = graphs.path_graph(10).reweighted(lambda w: 2)
        d = run_weighted_bfs(g, {0: 5, 9: 0}, 10**6)
        expected = oracle_distances(g, {0: 5, 9: 0})
        assert_distances_equal(d, expected, "offsets")

    def test_source_beaten_by_other_source(self):
        # A source with a huge offset should take the shorter route through
        # the other source rather than its own offset.
        g = Graph.from_edges([(0, 1, 1)])
        d = run_weighted_bfs(g, {0: 100, 1: 0}, 10**6)
        assert d[0] == 1
        assert d[1] == 0

    def test_threshold_semantics_exact_boundary(self):
        g = graphs.path_graph(6).reweighted(lambda w: 3)
        d = run_weighted_bfs(g, {0: 0}, 9)
        assert d[3] == 9
        assert d[4] == INFINITY

    def test_offset_beyond_threshold(self):
        g = graphs.path_graph(3)
        d = run_weighted_bfs(g, {0: 99}, 10)
        assert all(v == INFINITY for v in d.values())

    def test_zero_weight_rejected(self):
        g = Graph.from_edges([(0, 1, 0)])
        with pytest.raises(ValueError):
            run_weighted_bfs(g, {0: 0}, 5)

    def test_unknown_source_rejected(self):
        with pytest.raises(KeyError):
            run_weighted_bfs(graphs.path_graph(3), {9: 0}, 5)

    def test_negative_offset_rejected(self):
        with pytest.raises(ValueError):
            run_weighted_bfs(graphs.path_graph(3), {0: -1}, 5)

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            run_weighted_bfs(graphs.path_graph(3), {0: 0}, -1)

    def test_no_sources(self):
        d = run_weighted_bfs(graphs.path_graph(3), {}, 5)
        assert all(v == INFINITY for v in d.values())

    def test_collect_parents_form_shortest_path_tree(self):
        from repro.core.bfs import WeightedBFS
        from repro.sim import Mode, Runner

        g = small_weighted_graph(18, seed=3)
        algs = {
            u: WeightedBFS(u, 10**6, source_offset=0 if u == 0 else None,
                           collect_parent=True)
            for u in g.nodes()
        }
        Runner(g, algs, Mode.CONGEST).run()
        truth = g.dijkstra([0])
        for u in g.nodes():
            parent = algs[u].parent
            if u == 0 or truth[u] == INFINITY:
                assert parent is None
            else:
                assert truth[u] == truth[parent] + g.weight(u, parent)


class TestBFSCosts:
    def test_congestion_is_one_per_direction(self):
        g = graphs.grid_graph(5, 5)
        m = Metrics()
        run_bfs(g, [0], metrics=m)
        assert m.max_congestion <= 1

    def test_message_complexity_at_most_2m(self):
        g = graphs.random_connected_graph(30, seed=4)
        m = Metrics()
        run_bfs(g, [0], metrics=m)
        assert m.total_messages <= 2 * g.num_edges

    def test_rounds_about_threshold(self):
        g = graphs.path_graph(12)
        m = Metrics()
        run_bfs(g, [0], threshold=5, metrics=m)
        # The thresholded BFS honestly charges Theta(tau) rounds.
        assert 5 <= m.rounds <= 8


@settings(max_examples=25, deadline=None)
@given(
    st.integers(min_value=2, max_value=24),
    st.integers(min_value=0, max_value=10**6),
    st.integers(min_value=1, max_value=12),
)
def test_property_weighted_bfs_equals_dijkstra(n, seed, max_w):
    g = graphs.random_weights(graphs.random_connected_graph(n, seed=seed), max_w, seed=seed)
    d = run_weighted_bfs(g, {0: 0}, n * max_w + 1)
    truth = g.dijkstra([0])
    assert d == truth


@settings(max_examples=20, deadline=None)
@given(
    st.integers(min_value=3, max_value=20),
    st.integers(min_value=0, max_value=10**6),
    st.integers(min_value=1, max_value=30),
)
def test_property_threshold_is_exact_filter(n, seed, tau):
    g = graphs.random_weights(graphs.random_connected_graph(n, seed=seed), 5, seed=seed)
    d = run_weighted_bfs(g, {0: 0}, tau)
    truth = g.dijkstra([0])
    for u in g.nodes():
        if truth[u] <= tau:
            assert d[u] == truth[u]
        else:
            assert d[u] == INFINITY
