"""Whole-program flow analysis: project model, F rules, SARIF, cache."""

import ast
import json
import subprocess
import sys
from pathlib import Path

from repro.__main__ import main
from repro.lint import LintCache, RULES, lint_paths, lint_source
from repro.lint.flow import FlowAnalysis
from repro.lint.project import ProjectModel
from repro.lint.sarif import sarif_document
from repro.testing import subprocess_env

FIXTURES = Path(__file__).parent / "lint_fixtures"
FLOWPKG = FIXTURES / "flowpkg"
SUBPROCESS_ENV = subprocess_env()


def make_model(tmp_path, files) -> ProjectModel:
    """Build a :class:`ProjectModel` from ``{relative_path: source}``."""
    triples = []
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source)
        triples.append((str(path), source, ast.parse(source)))
    return ProjectModel(triples)


def resolved_edges(model) -> set:
    return {
        (edge.caller.qualname, edge.callee.qualname)
        for edge in model.edges
        if edge.resolved
    }


# ----------------------------------------------------------------------
# call graph: module/symbol resolution edge cases
# ----------------------------------------------------------------------
class TestCallGraph:
    def test_plain_import_attribute_call(self, tmp_path):
        model = make_model(tmp_path, {
            "util.py": "def helper():\n    return 1\n",
            "app.py": "import util\n\n\ndef go():\n    return util.helper()\n",
        })
        assert ("app:go", "util:helper") in resolved_edges(model)

    def test_import_as_alias_resolves(self, tmp_path):
        model = make_model(tmp_path, {
            "util.py": "def helper():\n    return 1\n",
            "app.py": "import util as zed\n\n\ndef go():\n    return zed.helper()\n",
        })
        assert ("app:go", "util:helper") in resolved_edges(model)

    def test_from_import_as_alias_resolves(self, tmp_path):
        model = make_model(tmp_path, {
            "util.py": "def helper():\n    return 1\n",
            "app.py": (
                "from util import helper as h\n\n\ndef go():\n    return h()\n"
            ),
        })
        assert ("app:go", "util:helper") in resolved_edges(model)

    def test_relative_import_inside_package(self, tmp_path):
        model = make_model(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/util.py": "def helper():\n    return 1\n",
            "pkg/app.py": (
                "from .util import helper\n\n\ndef go():\n    return helper()\n"
            ),
        })
        assert ("pkg.app:go", "pkg.util:helper") in resolved_edges(model)

    def test_import_cycle_resolves_both_directions(self, tmp_path):
        model = make_model(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/a.py": (
                "from . import b\n\n\ndef fa():\n    return b.fb()\n"
            ),
            "pkg/b.py": (
                "from . import a\n\n\ndef fb():\n    return 0\n"
                "\n\ndef back():\n    return a.fa()\n"
            ),
        })
        edges = resolved_edges(model)
        assert ("pkg.a:fa", "pkg.b:fb") in edges
        assert ("pkg.b:back", "pkg.a:fa") in edges

    def test_nested_def_gets_dotted_qualname_and_scope_chain(self, tmp_path):
        model = make_model(tmp_path, {
            "app.py": (
                "def outer():\n"
                "    def inner():\n"
                "        return helper()\n"
                "    return inner()\n"
                "\n\ndef helper():\n    return 1\n"
            ),
        })
        assert "app:outer.inner" in model.functions
        edges = resolved_edges(model)
        assert ("app:outer", "app:outer.inner") in edges
        assert ("app:outer.inner", "app:helper") in edges

    def test_self_method_call_resolves_to_the_class(self, tmp_path):
        model = make_model(tmp_path, {
            "app.py": (
                "class Box:\n"
                "    def get(self):\n"
                "        return self._load()\n"
                "\n"
                "    def _load(self):\n"
                "        return 1\n"
            ),
        })
        assert ("app:Box.get", "app:Box._load") in resolved_edges(model)

    def test_instance_method_call_resolves_via_constructor_type(self, tmp_path):
        model = make_model(tmp_path, {
            "app.py": (
                "class Box:\n"
                "    def get(self):\n"
                "        return 1\n"
                "\n\ndef go():\n    box = Box()\n    return box.get()\n"
            ),
        })
        assert ("app:go", "app:Box.get") in resolved_edges(model)

    def test_lambda_call_is_an_explicit_unresolved_edge(self, tmp_path):
        model = make_model(tmp_path, {
            "app.py": "def go():\n    fn = lambda x: x\n    return fn(2)\n",
        })
        assert ("app:go", "app:__module__") not in resolved_edges(model)
        unresolved = model.unresolved_edges()
        assert any(edge.caller.qualname == "app:go" for edge in unresolved)

    def test_external_calls_are_unresolved_never_silent(self, tmp_path):
        model = make_model(tmp_path, {
            "app.py": "import math\n\n\ndef go():\n    return math.sqrt(4)\n",
        })
        unresolved = model.unresolved_edges()
        assert len(unresolved) == 1
        assert unresolved[0].reason
        # internal_only filters the library noise out of the warning count
        assert model.unresolved_edges(internal_only=True) == []

    def test_import_dependencies_follow_the_import_graph(self, tmp_path):
        model = make_model(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/util.py": "def helper():\n    return 1\n",
            "pkg/app.py": "from .util import helper\n",
        })
        deps = model.import_dependencies()
        app = str(tmp_path / "pkg" / "app.py")
        util = str(tmp_path / "pkg" / "util.py")
        assert util in deps[app]


# ----------------------------------------------------------------------
# process topology: worker- vs supervisor-side classification
# ----------------------------------------------------------------------
class TestTopology:
    def test_process_target_and_its_callees_are_worker_side(self, tmp_path):
        model = make_model(tmp_path, {
            "app.py": (
                "from multiprocessing import Process\n"
                "\n\ndef helper():\n    return 1\n"
                "\n\ndef worker(q):\n    q.put(helper())\n"
                "\n\ndef launch(q):\n"
                "    Process(target=worker, args=(q,)).start()\n"
            ),
        })
        topo = model.topology
        assert {s.kind for s in topo.spawn_sites} == {"process"}
        assert topo.is_worker(model.functions["app:worker"])
        assert topo.is_worker(model.functions["app:helper"])
        assert topo.is_supervisor(model.functions["app:launch"])
        assert not topo.is_worker(model.functions["app:launch"])

    def test_pool_submit_classifies_the_submitted_function(self, tmp_path):
        model = make_model(tmp_path, {
            "app.py": (
                "def task(n):\n    return n * 2\n"
                "\n\ndef run(pool):\n    return pool.submit(task, 3)\n"
            ),
        })
        topo = model.topology
        assert {s.kind for s in topo.spawn_sites} == {"pool"}
        assert topo.is_worker(model.functions["app:task"])


# ----------------------------------------------------------------------
# the flowpkg golden package: every F rule, cross-module, exact lines
# ----------------------------------------------------------------------
def flowpkg_markers() -> list:
    marks = []
    for path in sorted(FLOWPKG.glob("*.py")):
        for lineno, line in enumerate(path.read_text().splitlines(), 1):
            if "# expect: " in line:
                marks.append((path.name, line.split("# expect: ")[1].strip(), lineno))
    return sorted(marks)


class TestFlowpkgGolden:
    def test_every_planted_hazard_fires_at_its_exact_line(self):
        findings, checked = lint_paths([str(FLOWPKG)])
        got = sorted((Path(f.path).name, f.rule, f.line) for f in findings)
        assert got == flowpkg_markers()
        assert len(checked) == 6

    def test_markers_cover_all_four_f_rules(self):
        assert {rule for _, rule, _ in flowpkg_markers()} == {
            "F301", "F302", "F303", "F304",
        }

    def test_no_flow_drops_exactly_the_f_findings(self):
        findings, _ = lint_paths([str(FLOWPKG)], flow=False)
        assert findings == []

    def test_select_family_f_keeps_only_flow_findings(self):
        findings, _ = lint_paths([str(FLOWPKG)], select=("F",))
        assert findings and all(f.rule.startswith("F") for f in findings)
        findings, _ = lint_paths([str(FLOWPKG)], ignore=("F",))
        assert findings == []


# ----------------------------------------------------------------------
# degradation contract: missing evidence silences, never lies
# ----------------------------------------------------------------------
class TestDegradation:
    def test_seed_escaping_into_unresolved_call_is_not_laundering(self):
        source = (
            "import mystery\n"
            "\n\n"
            "def drive_demo(graph, seed, metrics):\n"
            "    return {\"x\": mystery.run(graph, seed)}\n"
        )
        assert [f for f in lint_source(source) if f.rule == "F301"] == []

    def test_seed_reaching_a_resolved_launderer_is_caught(self):
        source = (
            "def launder(seed):\n"
            "    return None\n"
            "\n\n"
            "def drive_demo(graph, seed, metrics):\n"
            "    launder(seed)\n"
            "    return {}\n"
        )
        findings = [f for f in lint_source(source) if f.rule == "F301"]
        assert len(findings) == 1
        assert findings[0].line == 5
        assert "launder" in findings[0].message

    def test_unresolved_edge_count_lands_in_stats(self):
        stats: dict = {}
        lint_paths([str(FLOWPKG)], stats=stats)
        flow = stats["flow"]
        assert flow["functions"] > 0
        assert flow["call_edges"] > 0
        assert "unresolved_edges" in flow
        assert flow["spawn_sites"] >= 1


# ----------------------------------------------------------------------
# pragma placement regressions: multi-line statements, decorated defs
# ----------------------------------------------------------------------
class TestPragmaPlacement:
    def test_pragma_on_the_closing_line_of_a_multiline_call(self):
        source = (
            "import random\n"
            "\n\n"
            "def f(options):\n"
            "    return random.choice(\n"
            "        sorted(options),\n"
            "    )  # repro: lint-ok[D101] demo fixture for span pragmas\n"
        )
        assert lint_source(source) == []

    def test_pragma_on_an_inner_line_of_a_multiline_call(self):
        source = (
            "import random\n"
            "\n\n"
            "def f(options):\n"
            "    return random.choice(\n"
            "        sorted(options),  # repro: lint-ok[D101] span pragma demo\n"
            "    )\n"
        )
        assert lint_source(source) == []

    def test_pragma_above_a_decorated_def_covers_the_def_line(self):
        source = (
            "def trace(fn):\n"
            "    return fn\n"
            "\n\n"
            "# repro: lint-ok[F301] fixture: decorated driver, reviewed\n"
            "@trace\n"
            "def drive_demo(graph, seed, metrics):\n"
            "    return {}\n"
        )
        assert lint_source(source) == []

    def test_pragma_on_the_signature_line_of_a_decorated_def(self):
        source = (
            "def trace(fn):\n"
            "    return fn\n"
            "\n\n"
            "@trace\n"
            "def drive_demo(\n"
            "    graph,\n"
            "    seed,\n"
            "    metrics,\n"
            "):  # repro: lint-ok[F301] fixture: split signature, reviewed\n"
            "    return {}\n"
        )
        assert lint_source(source) == []

    def test_checked_in_pragma_fixtures_lint_clean(self):
        findings, checked = lint_paths([
            str(FIXTURES / "pragma_multiline.py"),
            str(FIXTURES / "pragma_decorated.py"),
        ])
        assert findings == []
        assert len(checked) == 2

    def test_compound_statement_bodies_are_not_blanket_covered(self):
        # A pragma on a `def` line must not suppress findings deep in the
        # body — only simple statements group their physical lines.
        source = (
            "import random\n"
            "\n\n"
            "def f():  # repro: lint-ok[D101] must not reach the body\n"
            "    return random.random()\n"
        )
        assert [f.rule for f in lint_source(source)] == ["D101"]


# ----------------------------------------------------------------------
# SARIF output
# ----------------------------------------------------------------------
class TestSarif:
    def test_document_shape_rules_and_result_anchors(self):
        findings, _ = lint_paths([str(FLOWPKG)])
        doc = sarif_document(findings, RULES, "0.0-test")
        assert doc["version"] == "2.1.0"
        assert doc["$schema"].endswith("sarif-schema-2.1.0.json")
        run = doc["runs"][0]
        driver = run["tool"]["driver"]
        assert driver["name"] == "repro-lint"
        ids = [rule["id"] for rule in driver["rules"]]
        assert [rule.id for rule in RULES] == ids[: len(RULES)]
        assert {"X000", "X100", "X200"} <= set(ids)
        assert len(run["results"]) == len(findings)
        for result, finding in zip(run["results"], findings):
            assert result["ruleId"] == finding.rule
            assert driver["rules"][result["ruleIndex"]]["id"] == finding.rule
            region = result["locations"][0]["physicalLocation"]["region"]
            assert region["startLine"] == finding.line
            assert region["startColumn"] == finding.col + 1
            assert "lint-ok" in result["message"]["text"]

    def test_cli_output_sarif_exit_and_parse(self, capsys):
        assert main(["lint", str(FLOWPKG), "--output", "sarif"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["runs"][0]["results"]

    def test_cli_output_sarif_clean_run(self, capsys):
        good = str(FIXTURES / "f301_good.py")
        assert main(["lint", good, "--output", "sarif"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["runs"][0]["results"] == []


# ----------------------------------------------------------------------
# incremental cache
# ----------------------------------------------------------------------
def run_cached(tmp_path, target, **kwargs):
    stats: dict = {}
    cache = LintCache(tmp_path / "lint-cache.json")
    findings, checked = lint_paths(
        [str(target)], cache=cache, stats=stats, **kwargs
    )
    return findings, stats["cache"], stats["flow"]


class TestCache:
    def project(self, tmp_path):
        root = tmp_path / "proj"
        root.mkdir()
        (root / "__init__.py").write_text("")
        (root / "util.py").write_text("def helper(seed):\n    return None\n")
        (root / "app.py").write_text(
            "from .util import helper\n"
            "\n\n"
            "def drive_demo(graph, seed, metrics):\n"
            "    helper(seed)\n"
            "    return {}\n"
        )
        return root

    def test_cold_then_warm_run(self, tmp_path):
        root = self.project(tmp_path)
        findings, cache_stats, flow = run_cached(tmp_path, root)
        assert [f.rule for f in findings] == ["F301"]
        assert cache_stats == {"hits": 0, "misses": 3, "flow": "recomputed"}
        findings, cache_stats, flow = run_cached(tmp_path, root)
        assert [f.rule for f in findings] == ["F301"]
        assert cache_stats == {"hits": 3, "misses": 0, "flow": "reused"}
        assert flow == {"source": "cache"}

    def test_editing_a_dependency_recomputes_flow(self, tmp_path):
        root = self.project(tmp_path)
        run_cached(tmp_path, root)
        # The fix lives in util.py: app.py itself is byte-identical, but
        # its import closure changed, so the F301 must disappear.
        (root / "util.py").write_text(
            "import random\n"
            "\n\n"
            "def helper(seed):\n"
            "    return random.Random(seed).random()\n"
        )
        findings, cache_stats, flow = run_cached(tmp_path, root)
        assert findings == []
        assert cache_stats["hits"] == 2
        assert cache_stats["misses"] == 1
        assert cache_stats["flow"] == "recomputed"

    def test_changing_the_rule_set_drops_the_cache(self, tmp_path):
        root = self.project(tmp_path)
        run_cached(tmp_path, root)
        _, cache_stats, _ = run_cached(tmp_path, root, select=("D",))
        assert cache_stats["hits"] == 0
        assert cache_stats["misses"] == 3

    def test_corrupt_cache_file_degrades_to_cold(self, tmp_path):
        root = self.project(tmp_path)
        (tmp_path / "lint-cache.json").write_text("{not json")
        findings, cache_stats, _ = run_cached(tmp_path, root)
        assert [f.rule for f in findings] == ["F301"]
        assert cache_stats["misses"] == 3

    def test_cached_findings_round_trip_exactly(self, tmp_path):
        root = self.project(tmp_path)
        cold, _, _ = run_cached(tmp_path, root)
        warm, _, _ = run_cached(tmp_path, root)
        assert [f.to_dict() for f in warm] == [f.to_dict() for f in cold]

    def test_cli_cache_flag_end_to_end(self, tmp_path, capsys):
        root = self.project(tmp_path)
        cache_file = tmp_path / "cli-cache.json"
        assert main(["lint", str(root), "--cache", str(cache_file), "--json"]) == 1
        first = json.loads(capsys.readouterr().out)
        assert first["cache"]["misses"] == 3
        assert main(["lint", str(root), "--cache", str(cache_file), "--json"]) == 1
        second = json.loads(capsys.readouterr().out)
        assert second["cache"]["hits"] == 3
        assert second["findings"] == first["findings"]


# ----------------------------------------------------------------------
# plugins mode: the flow gate over the resolved registry
# ----------------------------------------------------------------------
LAUNDERING_PLUGIN = '''\
"""Deliberately seed-laundering plugin: the CI --plugins leg must catch it."""

from repro.api import AlgorithmSpec, register_algorithm_spec


def drive_rogue(graph, seed, metrics):
    order = sorted(graph.nodes(), key=repr)
    return {"rogue_first": repr(order[:1])}


def register():
    register_algorithm_spec(
        AlgorithmSpec("rogue", "lint_launder_plugin:drive_rogue",
                      description="drops its seed on the floor")
    )
'''


class TestPluginsFlow:
    def test_seed_laundering_plugin_is_caught_as_f301(self, tmp_path):
        (tmp_path / "lint_launder_plugin.py").write_text(LAUNDERING_PLUGIN)
        env = dict(SUBPROCESS_ENV)
        env["PYTHONPATH"] = str(tmp_path) + ":" + env["PYTHONPATH"]
        env["REPRO_PLUGINS"] = "lint_launder_plugin:register"
        result = subprocess.run(
            [sys.executable, "-m", "repro", "lint", "--plugins", "--json"],
            capture_output=True, text=True, env=env,
        )
        assert result.returncode == 1, result.stdout + result.stderr
        data = json.loads(result.stdout)
        laundering = [f for f in data["findings"] if f["rule"] == "F301"]
        assert laundering, data["findings"]
        assert laundering[0]["path"].endswith("lint_launder_plugin.py")

    def test_plugins_flow_stats_surface_in_json(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro", "lint", "--plugins", "--json"],
            capture_output=True, text=True, env=SUBPROCESS_ENV,
        )
        assert result.returncode == 0, result.stdout + result.stderr
        data = json.loads(result.stdout)
        assert data["flow"]["functions"] > 0


# ----------------------------------------------------------------------
# analysis internals worth pinning
# ----------------------------------------------------------------------
class TestFlowAnalysis:
    def test_analysis_is_memoized_per_model(self, tmp_path):
        model = make_model(tmp_path, {
            "app.py": "def f():\n    return 1\n",
        })
        assert FlowAnalysis.of(model) is FlowAnalysis.of(model)

    def test_sorted_sanitizes_set_order_taint(self):
        source = (
            "import hashlib\n"
            "\n\n"
            "def key(row):\n"
            "    tags = {t for t in row}\n"
            "    clean = sorted(tags)\n"
            "    return hashlib.sha256(repr(clean).encode()).hexdigest()\n"
        )
        assert [f for f in lint_source(source) if f.rule == "F302"] == []

    def test_wall_clock_reaching_a_digest_is_f302(self):
        source = (
            "import hashlib\n"
            "import time\n"
            "\n\n"
            "def key():\n"
            "    stamp = time.time()  # repro: lint-ok[D105] fixture taint source\n"
            "    return hashlib.sha256(repr(stamp).encode()).hexdigest()\n"
        )
        findings = [f for f in lint_source(source) if f.rule == "F302"]
        assert len(findings) == 1
        assert findings[0].line == 7
