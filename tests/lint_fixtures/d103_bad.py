def emit_rows(cells, rows):
    pending = {cell for cell in cells if cell.dirty}
    for cell in pending:  # expect: D103
        rows.append(cell.row())
    return list(set(cells))  # expect: D103
