def register(register_scenario, Scenario):
    register_scenario(Scenario(
        "demo/er", "er", "demo",
        params=(("quanta", (1, 2)),),  # expect: P204
    ))
