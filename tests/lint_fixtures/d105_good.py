def probe_timing(graph, metrics):
    return {"probe_depth": metrics.summary()["rounds"]}
