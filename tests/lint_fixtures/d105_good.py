def drive_demo(graph, seed, metrics):
    return {"probe_depth": metrics.summary()["rounds"]}
