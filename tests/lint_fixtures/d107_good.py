def horizon(bound: int = 16) -> int:
    return bound
