def emit_rows(cells, rows):
    pending = {cell for cell in cells if cell.dirty}
    for cell in sorted(pending, key=repr):
        rows.append(cell.row())
    total = sum(cell.n for cell in pending)
    return sorted(set(cells), key=repr) + [total]
