import random


def drive_demo(graph, seed, metrics):
    rng = random.Random(42)  # expect: P203
    return {"draw": rng.random()}
