class Flood:
    def on_round(self, ctx, inbox):
        best = min(inbox.payloads, default=None)
        if best is not None:
            ctx.broadcast(best)
