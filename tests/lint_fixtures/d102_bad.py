import random


def drive_demo(graph, seed, metrics):
    random.seed(seed)  # expect: D102
    return None
