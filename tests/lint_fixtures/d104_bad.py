import hashlib
import json


def digest(payload: dict) -> str:
    text = json.dumps(payload)  # expect: D104
    return hashlib.sha256(text.encode()).hexdigest()
