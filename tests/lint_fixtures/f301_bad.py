def pick_source(nodes, seed):
    return nodes[0]


def drive_demo(graph, seed, metrics):  # expect: F301
    nodes = sorted(graph.nodes(), key=repr)
    return {"probe": repr(pick_source(nodes, seed))}
