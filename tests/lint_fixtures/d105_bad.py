import time


def probe_timing(graph, metrics):
    start = time.perf_counter()  # expect: D105
    return {"elapsed": time.perf_counter() - start}  # expect: D105
