class Kernel:
    def on_round_batch(self, r, awake, inboxes, out_ports,
                       out_payloads, bcast_src, bcast_payloads):
        for i in awake:
            inboxes[i].clear()  # expect: P206
            self._wt[i] = 0  # expect: P206
        return [-2] * len(awake)
