class Kernel:
    def on_round_batch(self, r, awake, inboxes, out_ports,
                       out_payloads, bcast_src, bcast_payloads):
        for i in awake:
            for _sender, payload in inboxes[i]:
                self._dist[i] = min(self._dist[i], payload)
        return [-2] * len(awake)
