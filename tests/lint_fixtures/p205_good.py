def drive_demo(graph, seed, metrics):
    return {"tree_weight": 3}
