def drive_demo(graph, metrics):
    return {"tree_weight": 3}
