"""Fixture package: one planted instance of each F rule, cross-module.

Every hazard here crosses a module boundary on purpose — the helpers live
in :mod:`flowpkg.helpers`/:mod:`flowpkg.workers` and the findings anchor
in the modules that call them, so the golden test proves the project
model resolves relative imports and the taint pass carries summaries
across files, not just within one.
"""
