"""The F301 seed launderer and the F302 dirty resume key."""

from .helpers import canonical_digest, pick_source


def drive_probe(graph, seed, metrics):  # expect: F301
    nodes = sorted(graph.nodes(), key=repr)
    return {"probe": repr(pick_source(nodes, seed))}


def dirty_tags(row):
    return {tag for tag in row["tags"]}


def resume_key(row):
    tags = list(dirty_tags(row))
    return canonical_digest(tags)  # expect: F302
