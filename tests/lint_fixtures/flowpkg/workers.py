"""Worker-side F304 hazards: fork-captured mutation and shm unlink."""

from multiprocessing import shared_memory


def worker(results, segment, cache):
    cache["warm"] = True  # expect: F304
    shm = shared_memory.SharedMemory(name=segment)
    results.send(bytes(shm.buf[:4]))
    shm.unlink()  # expect: F304
    shm.close()
