"""Helpers the planted flows route through; clean on their own."""

import hashlib
import json


def pick_source(nodes, seed):
    return nodes[0]


def canonical_digest(values):
    payload = json.dumps(values, sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def scale_weights(column, factor):
    for index in range(len(column)):
        column[index] = column[index] * factor
