"""The F303 shared-column mutation, routed through a helper."""

from .helpers import scale_weights


class Kernel:
    def __init__(self, graph):
        self._wt = graph.wt

    def rescale(self, factor):
        scale_weights(self._wt, factor)  # expect: F303
