"""The launcher: spawns the worker, then writes on the worker's pipe end."""

from multiprocessing import Pipe, Process

from .workers import worker


def launch(segment):
    reader, writer = Pipe(duplex=False)
    cache = {}
    proc = Process(target=worker, args=(writer, segment, cache))
    proc.start()
    writer.send(b"boot")  # expect: F304
    return reader.recv()
