def stable_nodes(nodes):
    return sorted(nodes, key=id)  # expect: D106
