from multiprocessing import Pipe, Process, shared_memory


def worker(results, segment, cache):
    cache["warm"] = True  # expect: F304
    shm = shared_memory.SharedMemory(name=segment)
    results.send(bytes(shm.buf[:4]))
    shm.unlink()  # expect: F304
    shm.close()


def launch(segment):
    reader, writer = Pipe(duplex=False)
    cache = {}
    proc = Process(target=worker, args=(writer, segment, cache))
    proc.start()
    writer.send(b"boot")  # expect: F304
    return reader.recv()
