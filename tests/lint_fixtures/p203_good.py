import random


def drive_demo(graph, seed, metrics):
    rng = random.Random(seed)
    return {"draw": rng.random()}
