from multiprocessing import Pipe, Process, shared_memory


def worker(results, segment):
    shm = shared_memory.SharedMemory(name=segment)
    results.send(bytes(shm.buf[:4]))
    shm.close()


def launch(segment):
    reader, writer = Pipe(duplex=False)
    proc = Process(target=worker, args=(writer, segment))
    proc.start()
    writer.close()
    payload = reader.recv()
    reader.close()
    return payload
