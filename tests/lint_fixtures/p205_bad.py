def drive_demo(graph, seed, metrics):
    return {"rounds": 3}  # expect: P205
