def drive_demo(graph, metrics):
    return {"rounds": 3}  # expect: P205
