import random


def drive_demo(graph, seed, metrics):
    rng = random.Random(seed)
    del rng
    return None
