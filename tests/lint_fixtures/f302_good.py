import hashlib
import json


def dirty_tags(row):
    return {tag for tag in row["tags"]}


def canonical_digest(values):
    payload = json.dumps(values, sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def resume_key(row):
    tags = sorted(dirty_tags(row))
    return canonical_digest(tags)
