import random


def pick_source(nodes, seed):
    rng = random.Random(seed)
    return nodes[rng.randrange(len(nodes))]


def drive_demo(graph, seed, metrics):
    nodes = sorted(graph.nodes(), key=repr)
    return {"probe": repr(pick_source(nodes, seed))}
