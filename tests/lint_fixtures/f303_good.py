def scaled_copy(column, factor):
    return [value * factor for value in column]


class Kernel:
    def __init__(self, graph):
        self._wt = graph.wt

    def rescale(self, factor):
        return scaled_copy(self._wt, factor)
