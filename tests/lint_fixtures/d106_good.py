def stable_nodes(nodes):
    return sorted(nodes, key=repr)
