import os


def horizon():
    return int(os.environ.get("REPRO_HORIZON", "16"))  # expect: D107
