import hashlib
import json


def digest(payload: dict) -> str:
    text = json.dumps(payload, sort_keys=True)
    return hashlib.sha256(text.encode()).hexdigest()
