def scale_weights(column, factor):
    for index in range(len(column)):
        column[index] = column[index] * factor


class Kernel:
    def __init__(self, graph):
        self._wt = graph.wt

    def rescale(self, factor):
        scale_weights(self._wt, factor)  # expect: F303
