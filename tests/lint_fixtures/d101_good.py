import random


def drive_demo(graph, seed, metrics):
    rng = random.Random(seed)
    source = rng.choice(sorted(graph.nodes()))
    return {"source": repr(source)}
