class Flood:
    def on_round(self, ctx, inbox):
        self.last_round = ctx.round
        ctx.broadcast(1)
