import random
import numpy as np


def drive_demo(graph, metrics):
    source = random.choice(sorted(graph.nodes()))  # expect: D101
    noise = np.random.rand()  # expect: D101
    rng = random.Random()  # expect: D101
    return {"noise": noise, "source": repr(source), "r": rng.random()}
