"""Pragma-placement regression: multi-line statements.

The D101 finding anchors on the first line of each call, but the pragma
is written where the author's cursor is — the closing line, or an inner
argument line.  Both placements must suppress; this file lints clean.
"""

import random


def pick(options):
    return random.choice(
        sorted(options),
    )  # repro: lint-ok[D101] fixture: closing-line pragma on a span

def pick_inner(options):
    return random.choice(
        sorted(options),  # repro: lint-ok[D101] fixture: inner-line pragma
    )
