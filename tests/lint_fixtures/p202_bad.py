class Flood:
    def on_round(self, ctx, inbox):
        self.ctx = ctx  # expect: P202
        self.ctx.broadcast(1)
