"""Pragma-placement regression: decorated and split-signature defs.

F301 anchors on the ``def`` line, which may sit below a decorator stack
or above a multi-line signature.  A pragma above the first decorator,
or trailing the closing-paren line, must reach it; this file lints
clean.
"""


def trace(fn):
    return fn


# repro: lint-ok[F301] fixture: comment-above-decorator placement
@trace
def drive_decorated(graph, seed, metrics):
    return {}


@trace
def drive_split(
    graph,
    seed,
    metrics,
):  # repro: lint-ok[F301] fixture: closing-paren-line placement
    return {}
