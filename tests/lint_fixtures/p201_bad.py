class Flood:
    def on_round(self, ctx, inbox):
        best = min(inbox.payloads, default=None)
        inbox.senders.clear()  # expect: P201
        if best is not None:
            ctx.broadcast(best)
