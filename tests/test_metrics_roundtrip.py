"""Metrics (de)serialization: lossless round-trips through dict and JSON."""

import json
import random

import pytest

from repro.sim import Metrics


def random_metrics(rng: random.Random, nodes: int = 12) -> Metrics:
    """A randomly-populated accumulator exercising every recorded field."""
    m = Metrics()
    for _ in range(rng.randrange(0, 60)):
        src, dst = rng.randrange(nodes), rng.randrange(nodes)
        m.record_send(src, dst, delivered=rng.random() < 0.9)
    for _ in range(rng.randrange(0, 30)):
        m.record_awake(rng.randrange(nodes), rounds=rng.randrange(1, 4))
    for _ in range(rng.randrange(0, 20)):
        m.record_participation(rng.randrange(nodes))
    m.record_rounds(rng.randrange(0, 50))
    m.current_round = rng.randrange(0, 10)
    return m


def assert_equivalent(a: Metrics, b: Metrics) -> None:
    assert a.summary() == b.summary()
    assert a.rounds == b.rounds
    assert a.total_messages == b.total_messages
    assert a.lost_messages == b.lost_messages
    assert a.current_round == b.current_round
    assert a.edge_messages == b.edge_messages
    assert a.awake_rounds == b.awake_rounds
    assert a.subproblem_participation == b.subproblem_participation


class TestRoundTrip:
    @pytest.mark.parametrize("trial", range(25))
    def test_dict_round_trip_is_lossless(self, trial):
        m = random_metrics(random.Random(1000 + trial))
        assert_equivalent(Metrics.from_dict(m.to_dict()), m)

    @pytest.mark.parametrize("trial", range(25))
    def test_json_round_trip_is_lossless(self, trial):
        m = random_metrics(random.Random(2000 + trial))
        assert_equivalent(Metrics.from_dict(json.loads(json.dumps(m.to_dict()))), m)

    def test_empty_metrics_round_trip(self):
        assert_equivalent(Metrics.from_dict(Metrics().to_dict()), Metrics())

    def test_to_dict_is_insertion_order_independent(self):
        a, b = Metrics(), Metrics()
        for src, dst in [(0, 1), (2, 3), (1, 0)]:
            a.record_send(src, dst, True)
        for src, dst in [(1, 0), (0, 1), (2, 3)]:
            b.record_send(src, dst, True)
        for node in (5, 3):
            a.record_awake(node)
        for node in (3, 5):
            b.record_awake(node)
        assert json.dumps(a.to_dict()) == json.dumps(b.to_dict())


class TestFoldingProperty:
    """Serialization commutes with folding: the four complexity currencies
    of a sequential merge are preserved whether the fold happens before or
    after a (de)serialization round-trip."""

    @pytest.mark.parametrize("trial", range(20))
    def test_fold_then_serialize_equals_serialize_then_fold(self, trial):
        rng = random.Random(3000 + trial)
        phases = [random_metrics(rng) for _ in range(rng.randrange(1, 5))]

        folded = Metrics()
        for phase in phases:
            folded.merge(phase)

        refolded = Metrics()
        for phase in phases:
            refolded.merge(Metrics.from_dict(json.loads(json.dumps(phase.to_dict()))))

        assert_equivalent(refolded, folded)
        # The four currencies, explicitly (rounds/messages/congestion/energy).
        assert refolded.rounds == folded.rounds
        assert refolded.total_messages == folded.total_messages
        assert refolded.max_congestion == folded.max_congestion
        assert refolded.max_energy == folded.max_energy

    @pytest.mark.parametrize("trial", range(10))
    def test_concurrent_fold_survives_round_trip(self, trial):
        rng = random.Random(4000 + trial)
        phases = [random_metrics(rng) for _ in range(3)]
        folded, refolded = Metrics(), Metrics()
        for phase in phases:
            folded.merge(phase, sequential=False)
            refolded.merge(Metrics.from_dict(phase.to_dict()), sequential=False)
        assert_equivalent(refolded, folded)

    def test_real_execution_metrics_round_trip(self):
        from repro import graphs, sssp

        g = graphs.random_weights(graphs.random_connected_graph(16, seed=3), 9, seed=4)
        metrics = sssp(g, 0).metrics
        assert_equivalent(Metrics.from_dict(json.loads(json.dumps(metrics.to_dict()))), metrics)
