"""SSSP public API and the random-delay APSP scheduler."""

import math

import pytest

from repro.testing import assert_distances_equal, small_weighted_graph
from repro import graphs
from repro.core.apsp import apsp, schedule_with_random_delays
from repro.core.sssp import sssp, sssp_distances
from repro.graphs import INFINITY
from collections import Counter


class TestSSSP:
    def test_distances_match_oracle(self):
        g = small_weighted_graph(22, 1)
        result = sssp(g, 0)
        assert_distances_equal(result.distances, g.dijkstra([0]), "sssp")

    def test_result_accessors(self):
        g = graphs.path_graph(5)
        result = sssp(g, 0)
        assert result.source == 0
        assert result.distance(4) == 4
        assert result.reachable() == set(range(5))
        assert result.rounds > 0
        assert result.messages > 0
        assert result.congestion >= 1

    def test_unreachable_excluded_from_reachable(self):
        from repro.graphs import Graph

        g = Graph.from_edges([(0, 1, 2)], nodes=[5])
        result = sssp(g, 0)
        assert 5 not in result.reachable()
        assert result.distance(5) == INFINITY

    def test_distances_only_helper(self):
        g = graphs.path_graph(4)
        assert sssp_distances(g, 0) == {0: 0, 1: 1, 2: 2, 3: 3}

    def test_deterministic(self):
        g = small_weighted_graph(15, 2)
        a = sssp(g, 0)
        b = sssp(g, 0)
        assert a.distances == b.distances
        assert a.metrics.summary() == b.metrics.summary()


class TestAPSP:
    def test_all_pairs_exact(self):
        g = small_weighted_graph(12, 3)
        result = apsp(g, seed=1)
        for s in g.nodes():
            truth = g.dijkstra([s])
            for v in g.nodes():
                assert result.distance(s, v) == truth[v]

    def test_symmetry(self):
        g = small_weighted_graph(10, 4)
        result = apsp(g, seed=2)
        for u in g.nodes():
            for v in g.nodes():
                assert result.distance(u, v) == result.distance(v, u)

    def test_per_source_results_present(self):
        g = graphs.path_graph(6)
        result = apsp(g, seed=3)
        assert set(result.per_source) == set(g.nodes())

    def test_schedule_feasible_at_log_capacity(self):
        g = small_weighted_graph(16, 5)
        result = apsp(g, seed=4)
        assert result.schedule.feasible, (
            result.schedule.max_slot_load, result.schedule.capacity,
        )

    def test_makespan_at_most_delay_window_plus_duration(self):
        g = small_weighted_graph(10, 6)
        result = apsp(g, seed=5)
        longest = max(r.rounds for r in result.per_source.values())
        assert result.schedule.makespan <= 2 * longest

    def test_concurrent_makespan_beats_sequential(self):
        g = small_weighted_graph(14, 7)
        result = apsp(g, seed=6)
        sequential = sum(r.rounds for r in result.per_source.values())
        assert result.schedule.makespan < sequential / 2


class TestScheduler:
    def test_single_instance(self):
        traces = {0: Counter({(("a", "b"), 5): 1})}
        report = schedule_with_random_delays(traces, {0: 10}, window=1, capacity=1, seed=0)
        assert report.makespan == 10
        assert report.max_slot_load == 1
        assert report.feasible

    def test_collision_detection(self):
        trace = Counter({(("a", "b"), 0): 1})
        traces = {i: trace for i in range(5)}
        report = schedule_with_random_delays(
            traces, {i: 1 for i in range(5)}, window=1, capacity=1, seed=0
        )
        # window=1 forces all delays to 0: five messages share one slot.
        assert report.max_slot_load == 5
        assert not report.feasible

    def test_spreading_with_window(self):
        trace = Counter({(("a", "b"), 0): 1})
        traces = {i: trace for i in range(20)}
        report = schedule_with_random_delays(
            traces, {i: 1 for i in range(20)}, window=100, capacity=3, seed=1
        )
        assert report.max_slot_load <= 3

    def test_empty(self):
        report = schedule_with_random_delays({}, {}, window=5, capacity=1, seed=0)
        assert report.makespan == 0
        assert report.feasible

    def test_delays_within_window(self):
        traces = {i: Counter() for i in range(10)}
        report = schedule_with_random_delays(
            traces, {i: 0 for i in range(10)}, window=7, capacity=1, seed=2
        )
        assert all(0 <= d < 7 for d in report.delays.values())
