"""``repro.lint``: rule engine, rule set, pragmas, CLI, and ``--plugins``."""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.__main__ import main
from repro.lint import (
    PRAGMA_RULE_ID,
    RULES,
    SYNTAX_RULE_ID,
    Finding,
    lint_paths,
    lint_source,
    resolve_rule_selection,
)
from repro.lint.rules import ROW_FIELDS_SNAPSHOT
from repro.testing import subprocess_env

FIXTURES = Path(__file__).parent / "lint_fixtures"
SRC_REPRO = Path(__file__).parent.parent / "src" / "repro"
SUBPROCESS_ENV = subprocess_env()

RULE_IDS = [rule.id for rule in RULES]


def expected_lines(source: str, rule_id: str) -> list:
    """The 1-based lines a bad fixture marks with ``# expect: <id>``."""
    return sorted(
        lineno
        for lineno, line in enumerate(source.splitlines(), start=1)
        if f"# expect: {rule_id}" in line
    )


# ----------------------------------------------------------------------
# golden fixtures: one violating and one clean snippet per rule
# ----------------------------------------------------------------------
class TestGoldenFixtures:
    @pytest.mark.parametrize("rule", RULES, ids=RULE_IDS)
    def test_fixture_files_pin_the_rule_examples(self, rule):
        # The checked-in fixture *is* the rule's example attribute, so the
        # two can never drift: editing one without the other fails here.
        bad_file = FIXTURES / f"{rule.id.lower()}_bad.py"
        good_file = FIXTURES / f"{rule.id.lower()}_good.py"
        assert bad_file.read_text() == rule.example_bad
        assert good_file.read_text() == rule.example_good

    @pytest.mark.parametrize("rule", RULES, ids=RULE_IDS)
    def test_bad_fixture_reports_the_marked_lines(self, rule):
        marked = expected_lines(rule.example_bad, rule.id)
        assert marked, f"{rule.id}: bad fixture carries no # expect markers"
        findings = lint_source(rule.example_bad, path=f"{rule.id.lower()}_bad.py")
        assert sorted(f.line for f in findings if f.rule == rule.id) == marked
        # ... and nothing *else* fires: each fixture isolates its rule.
        assert [f for f in findings if f.rule != rule.id] == []
        for finding in findings:
            assert finding.name == rule.name
            assert finding.severity == rule.severity
            assert finding.message

    @pytest.mark.parametrize("rule", RULES, ids=RULE_IDS)
    def test_good_fixture_is_clean_under_every_rule(self, rule):
        assert lint_source(rule.example_good) == []

    @pytest.mark.parametrize("rule", RULES, ids=RULE_IDS)
    def test_cli_exits_1_on_each_bad_fixture(self, rule, capsys):
        bad_file = FIXTURES / f"{rule.id.lower()}_bad.py"
        assert main(["lint", str(bad_file)]) == 1
        out = capsys.readouterr().out
        assert rule.id in out
        assert rule.name in out

    def test_cli_exits_0_on_the_good_fixtures(self, capsys):
        good = [str(FIXTURES / f"{rule.id.lower()}_good.py") for rule in RULES]
        assert main(["lint", *good]) == 0
        assert "clean" in capsys.readouterr().out


# ----------------------------------------------------------------------
# engine: pragmas, selection, meta rules
# ----------------------------------------------------------------------
BAD_SNIPPET = "import random\n\n\ndef f():\n    return random.random()\n"


class TestPragmas:
    def test_same_line_pragma_suppresses_with_reason(self):
        source = (
            "import random\n"
            "\n"
            "\n"
            "def f():\n"
            "    return random.random()  # repro: lint-ok[D101] demo of the pragma\n"
        )
        assert lint_source(source) == []

    def test_comment_line_pragma_covers_the_next_line(self):
        source = (
            "import random\n"
            "\n"
            "\n"
            "def f():\n"
            "    # repro: lint-ok[D101] demo of the pragma\n"
            "    return random.random()\n"
        )
        assert lint_source(source) == []

    def test_pragma_without_reason_is_itself_a_finding(self):
        source = BAD_SNIPPET.replace(
            "random.random()", "random.random()  # repro: lint-ok[D101]"
        )
        findings = lint_source(source)
        rules = {f.rule for f in findings}
        # The bare pragma suppresses nothing and is reported itself.
        assert rules == {PRAGMA_RULE_ID, "D101"}

    def test_pragma_with_unknown_rule_id_is_a_finding(self):
        source = BAD_SNIPPET.replace(
            "random.random()",
            "random.random()  # repro: lint-ok[D999] not a rule",
        )
        rules = {f.rule for f in lint_source(source)}
        assert rules == {PRAGMA_RULE_ID, "D101"}

    def test_pragma_suppresses_only_the_named_rules(self):
        source = (
            "import random\n"
            "\n"
            "\n"
            "def f():\n"
            "    random.seed(0)  # repro: lint-ok[D101] wrong id on purpose\n"
        )
        assert {f.rule for f in lint_source(source)} == {"D102"}

    def test_one_pragma_can_name_several_rules(self):
        source = (
            "import os\n"
            "import random\n"
            "\n"
            "\n"
            "def f():\n"
            "    # repro: lint-ok[D101,D107] fixture exercising a shared pragma\n"
            "    return random.random(), os.getenv('HOME')\n"
        )
        assert lint_source(source) == []


class TestSelection:
    def test_select_runs_only_named_rules(self):
        source = BAD_SNIPPET.replace(
            "return random.random()", "random.seed(0)\n    return random.random()"
        )
        assert {f.rule for f in lint_source(source)} == {"D101", "D102"}
        assert {f.rule for f in lint_source(source, select=("D102",))} == {"D102"}

    def test_ignore_drops_named_rules(self):
        assert lint_source(BAD_SNIPPET, ignore=("D101",)) == []

    def test_family_prefix_selects_the_whole_family(self):
        assert {f.rule for f in lint_source(BAD_SNIPPET, select=("P",))} == set()
        assert {f.rule for f in lint_source(BAD_SNIPPET, select=("D",))} == {"D101"}

    def test_unknown_rule_raises_value_error(self):
        with pytest.raises(ValueError, match="BOGUS"):
            resolve_rule_selection(("BOGUS",), None)
        with pytest.raises(ValueError, match="--ignore"):
            resolve_rule_selection(None, ("D999",))

    def test_syntax_error_is_a_finding_not_a_crash(self):
        findings = lint_source("def broken(:\n")
        assert [f.rule for f in findings] == [SYNTAX_RULE_ID]
        assert findings[0].line == 1

    def test_exempt_paths_skip_the_rule(self):
        timed = "import time\n\n\ndef f():\n    return time.time()\n"
        assert {f.rule for f in lint_source(timed)} == {"D105"}
        assert lint_source(timed, path="src/repro/bench.py") == []


# ----------------------------------------------------------------------
# CLI: exits, filtering, JSON schema
# ----------------------------------------------------------------------
class TestLintCLI:
    def test_usage_errors_exit_2(self, capsys):
        assert main(["lint"]) == 2
        assert main(["lint", "--select", "BOGUS", str(FIXTURES)]) == 2
        assert main(["lint", "/no/such/path"]) == 2
        capsys.readouterr()

    def test_select_filters_findings(self, capsys):
        bad = str(FIXTURES / "d101_bad.py")
        assert main(["lint", bad, "--select", "P"]) == 0
        capsys.readouterr()
        assert main(["lint", bad, "--ignore", "D101"]) == 0
        capsys.readouterr()
        assert main(["lint", bad, "--select", "D"]) == 1
        capsys.readouterr()

    def test_list_rules_prints_the_catalog(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in RULES:
            assert rule.id in out
            assert rule.name in out

    def test_list_rules_json(self, capsys):
        assert main(["lint", "--list-rules", "--json"]) == 0
        catalog = json.loads(capsys.readouterr().out)
        assert [entry["id"] for entry in catalog] == RULE_IDS
        assert all(entry["summary"] for entry in catalog)

    def test_json_schema_round_trips(self, capsys):
        bad = str(FIXTURES / "d104_bad.py")
        assert main(["lint", bad, "--json"]) == 1
        data = json.loads(capsys.readouterr().out)
        assert data["version"] == 1
        assert data["files_checked"] == [bad]
        assert data["findings"]
        for raw in data["findings"]:
            finding = Finding.from_dict(raw)
            assert finding.to_dict() == raw
            assert finding.rule == "D104"

    def test_self_lint_src_repro_is_clean(self):
        # The acceptance gate CI enforces, kept honest in-process too.
        findings, checked = lint_paths([str(SRC_REPRO)])
        assert findings == []
        assert len(checked) > 40

    def test_cli_subprocess_end_to_end(self):
        # One real process: the CI job invokes the same entry point.
        result = subprocess.run(
            [sys.executable, "-m", "repro", "lint", str(FIXTURES / "p203_bad.py")],
            capture_output=True, text=True, env=SUBPROCESS_ENV,
        )
        assert result.returncode == 1
        assert "P203" in result.stdout


# ----------------------------------------------------------------------
# --plugins: the registry gate
# ----------------------------------------------------------------------
ROGUE_PLUGIN = '''\
import random

from repro.api import AlgorithmSpec, register_algorithm_spec


def drive_rogue(graph, seed, metrics):
    return {"rogue_pick": random.random()}


def register():
    register_algorithm_spec(
        AlgorithmSpec("rogue", "lint_rogue_plugin:drive_rogue",
                      description="deliberately unseeded test plugin")
    )
'''


class TestPluginsMode:
    def test_builtin_registry_lints_clean(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro", "lint", "--plugins"],
            capture_output=True, text=True, env=SUBPROCESS_ENV,
        )
        assert result.returncode == 0, result.stdout + result.stderr
        assert "clean" in result.stdout

    def test_unseeded_plugin_driver_is_caught(self, tmp_path):
        (tmp_path / "lint_rogue_plugin.py").write_text(ROGUE_PLUGIN)
        env = dict(SUBPROCESS_ENV)
        env["PYTHONPATH"] = str(tmp_path) + ":" + env["PYTHONPATH"]
        env["REPRO_PLUGINS"] = "lint_rogue_plugin:register"
        result = subprocess.run(
            [sys.executable, "-m", "repro", "lint", "--plugins", "--json"],
            capture_output=True, text=True, env=env,
        )
        assert result.returncode == 1, result.stdout + result.stderr
        data = json.loads(result.stdout)
        rogue = [f for f in data["findings"] if f["rule"] == "D101"]
        assert rogue, data["findings"]
        assert rogue[0]["path"].endswith("lint_rogue_plugin.py")
        # The checked-file listing names which algorithms each file backs.
        assert any("rogue" in entry for entry in data["files_checked"])


# ----------------------------------------------------------------------
# cross-pins against the live system
# ----------------------------------------------------------------------
class TestCrossPins:
    def test_row_fields_snapshot_matches_experiments(self):
        from repro.sim.experiments import ROW_FIELDS

        assert ROW_FIELDS_SNAPSHOT == ROW_FIELDS

    def test_rule_ids_are_unique_and_well_formed(self):
        assert len(RULE_IDS) == len(set(RULE_IDS))
        for rule in RULES:
            assert rule.id[0] in ("D", "P", "F")
            assert rule.id[1:].isdigit()
            assert rule.name and rule.summary
            assert rule.severity in ("error", "warning")
