"""Property-based tests for the frozen CSR view (seeded, no new deps)."""

import random

import pytest

from repro import graphs
from repro.graphs import Graph, IndexedGraph


def random_instance(rng: random.Random) -> Graph:
    n = rng.randrange(1, 60)
    p = rng.choice([0.0, 0.05, 0.2, 0.6])
    g = graphs.random_graph(n, p, seed=rng.randrange(2**31))
    if rng.random() < 0.5 and g.num_edges:
        g = graphs.random_weights(g, rng.randrange(1, 50), seed=rng.randrange(2**31))
    return g


@pytest.mark.parametrize("trial", range(25))
def test_round_trip_preserves_graph(trial):
    rng = random.Random(9000 + trial)
    g = random_instance(rng)
    indexed = IndexedGraph.of(g)
    back = indexed.to_graph()

    assert list(back.nodes()) == list(g.nodes())
    assert back.num_nodes == g.num_nodes == indexed.num_nodes
    assert back.num_edges == g.num_edges == indexed.num_edges
    assert sorted(map(repr, back.edges())) == sorted(map(repr, g.edges()))
    for u in g.nodes():
        assert sorted(map(repr, back.neighbors(u))) == sorted(map(repr, g.neighbors(u)))
        for v in g.neighbors(u):
            assert back.weight(u, v) == g.weight(u, v)


@pytest.mark.parametrize("trial", range(10))
def test_csr_structure_matches_adjacency(trial):
    rng = random.Random(4242 + trial)
    g = random_instance(rng)
    indexed = IndexedGraph.of(g)
    assert indexed.indptr[0] == 0
    assert indexed.indptr[-1] == len(indexed.nbr) == len(indexed.wt)
    for i, label in enumerate(indexed.labels):
        assert indexed.index_of[label] == i
        assert indexed.degree(i) == g.degree(label)
        neighbor_labels = {indexed.labels[j] for j in indexed.neighbor_indices(i)}
        assert neighbor_labels == set(g.neighbors(label))
        for j, w in zip(indexed.neighbor_indices(i), indexed.neighbor_weights(i)):
            assert g.weight(label, indexed.labels[j]) == w


def test_view_is_cached_until_mutation():
    g = graphs.random_connected_graph(20, seed=1)
    first = IndexedGraph.of(g)
    assert IndexedGraph.of(g) is first  # cached
    g.add_edge(0, 19, 5)
    second = IndexedGraph.of(g)
    assert second is not first  # mutation dropped the cache
    assert second.num_edges == first.num_edges + (0 if first.num_edges == g.num_edges else 1)
    assert any(
        (u, v) in ((0, 19), (19, 0)) for u, v, _ in second.edges()
    )


def test_add_node_invalidates_cache():
    g = graphs.path_graph(4)
    first = IndexedGraph.of(g)
    g.add_node(99)
    second = IndexedGraph.of(g)
    assert second is not first
    assert second.num_nodes == 5
    assert second.labels[-1] == 99


def test_node_views_shared_and_consistent():
    g = graphs.random_weights(graphs.random_connected_graph(15, seed=2), 9, seed=3)
    indexed = IndexedGraph.of(g)
    views = indexed.node_views()
    assert indexed.node_views() is views  # built once
    for i, (neighbors, weights, ports, lo, hi) in enumerate(views):
        label = indexed.labels[i]
        assert set(neighbors) == set(g.neighbors(label))
        assert (lo, hi) == (indexed.indptr[i], indexed.indptr[i + 1])
        assert hi - lo == len(neighbors) == len(weights)
        for k, v in enumerate(neighbors):
            port_id, dst_index, w = ports[v]
            assert port_id == lo + k
            assert weights[k] == w == g.weight(label, v)
            assert indexed.nbr[port_id] == dst_index
            assert indexed.labels[dst_index] == v


def test_port_pairs_and_broadcast_views_align_with_csr():
    g = graphs.random_weights(graphs.random_connected_graph(18, seed=5), 7, seed=6)
    indexed = IndexedGraph.of(g)
    pairs = indexed.port_pairs()
    assert indexed.port_pairs() is pairs  # built once
    assert len(pairs) == len(indexed.nbr)
    for i, label in enumerate(indexed.labels):
        for port_id in range(indexed.indptr[i], indexed.indptr[i + 1]):
            assert pairs[port_id] == (label, indexed.labels[indexed.nbr[port_id]])
    srcs = indexed.port_src_labels()
    assert indexed.port_src_labels() is srcs  # built once
    assert srcs == [pair[0] for pair in pairs]
    bviews = indexed.broadcast_views()
    assert indexed.broadcast_views() is bviews
    for i in range(indexed.num_nodes):
        lo, hi = indexed.indptr[i], indexed.indptr[i + 1]
        assert bviews[i] == indexed.nbr[lo:hi]


def test_tuple_labels_round_trip():
    g = Graph.from_edges([((0, "a"), (1, "b"), 3), ((1, "b"), (2, "c"), 7)])
    indexed = IndexedGraph.of(g)
    back = indexed.to_graph()
    assert set(back.nodes()) == set(g.nodes())
    assert back.weight((0, "a"), (1, "b")) == 3
    assert back.weight((1, "b"), (2, "c")) == 7
