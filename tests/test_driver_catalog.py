"""The full algorithm catalog: registry integrity, oracles, seeds, resume.

This file covers the catalog-growth contract:

* every registered :class:`~repro.api.AlgorithmSpec` resolves, validates
  its param schema against the driver signature, and round-trips through
  its dict form (and scenario names round-trip through ``SweepSpec`` JSON);
* every newly registered driver runs — self-verifying against its
  sequential oracle/validator — across at least three graph families
  (tree, grid, random-connected);
* seeds actually vary the run: distinct seeds sample distinct sources even
  on unweighted families (the silent-corruption bug where every
  ``(scenario, n, seed)`` cell recomputed the identical run);
* resume keys carry the scenario-definition digest, so a store written
  under old params never silently satisfies a sweep under new ones.
"""

import json

import pytest

from repro.api import (
    AlgorithmSpec,
    ResultSet,
    SweepSpec,
    get_algorithm_spec,
    list_algorithm_specs,
    run_sweep_spec,
)
from repro.graphs import generators
from repro.sim import experiments
from repro.sim.experiments import (
    ROW_FIELDS,
    Scenario,
    SweepError,
    register_scenario,
    run_scenario,
    scenario_digest,
)

#: The three-family differential matrix the catalog contract requires.
FAMILIES = ("tree", "grid", "er")

#: algorithm -> (max_weight, size) used for the per-family differential runs.
#: Unit weights where the oracle demands them (Boruvka's MST-weight check is
#: exact only when every spanning forest is minimum).
CATALOG_CASES = {
    "boruvka": (1, 12),
    "apsp": (5, 10),
    "labeled-bfs": (7, 12),
    "decomposition": (1, 12),
    "sparse-cover": (1, 12),
    "layered-cover": (1, 12),
    "tree-aggregation": (1, 12),
    "energy-bfs-scratch": (1, 12),
    "energy-cssp": (3, 10),
}


@pytest.fixture
def temp_scenario():
    """Register throwaway scenarios; unregister them afterwards."""
    registered = []

    def register(scenario: Scenario) -> Scenario:
        registered.append(scenario.name)
        return register_scenario(scenario)

    yield register
    for name in registered:
        experiments._SCENARIOS.pop(name, None)


class TestRegistryIntegrity:
    def test_catalog_has_at_least_twelve_algorithms(self):
        assert len(list_algorithm_specs()) >= 12

    def test_every_spec_resolves_and_validates(self):
        for spec in list_algorithm_specs():
            assert callable(spec.resolve()), spec.name
            assert spec.validate() is spec

    def test_every_spec_round_trips_through_dict(self):
        for spec in list_algorithm_specs():
            clone = AlgorithmSpec.from_dict(spec.to_dict())
            assert clone == spec
            assert clone.param_schema == spec.param_schema

    def test_every_scenario_round_trips_through_sweep_spec_json(self):
        names = tuple(experiments.list_scenarios())
        assert len(names) >= 12
        spec = SweepSpec(scenarios=names, sizes=(8,), seeds=(0,))
        clone = SweepSpec.from_json(spec.to_json())
        assert clone == spec
        for name in clone.scenarios:
            scenario = experiments.get_scenario(name)  # resolves, no raise
            get_algorithm_spec(scenario.algorithm)

    def test_param_schema_rejects_unknown_type(self):
        spec = AlgorithmSpec(
            "bad-type", "repro.api.drivers:drive_bfs",
            param_schema=(("x", "complex"),),
        )
        with pytest.raises(ValueError, match="unknown.*type"):
            spec.validate()

    def test_param_schema_rejects_param_the_driver_lacks(self):
        spec = AlgorithmSpec(
            "bad-param", "repro.api.drivers:drive_bfs",
            param_schema=(("no_such_param", "int"),),
        )
        with pytest.raises(ValueError, match="does not accept"):
            spec.validate()

    def test_register_algorithm_spec_rejects_bad_schema_shape(self):
        from repro.api import register_algorithm_spec

        with pytest.raises(ValueError, match="unknown.*type"):
            register_algorithm_spec(
                AlgorithmSpec("bad-shape", "repro.api.drivers:drive_bfs",
                              param_schema=(("x", "integer"),))
            )
        with pytest.raises(ValueError, match="model"):
            register_algorithm_spec(
                AlgorithmSpec("bad-model", "repro.api.drivers:drive_bfs",
                              model="quantum")
            )

    def test_register_scenario_rejects_undeclared_param(self):
        with pytest.raises(SweepError, match="unknown param"):
            register_scenario(
                Scenario("bad/undeclared", "tree", "energy-bfs",
                         params=(("bases", 4),))
            )

    def test_register_scenario_rejects_mistyped_param(self):
        with pytest.raises(SweepError, match="must be int"):
            register_scenario(
                Scenario("bad/mistyped", "tree", "energy-bfs",
                         params=(("base", "four"),))
            )


class TestCatalogDifferential:
    """Each new driver self-verifies against its oracle on >= 3 families."""

    @pytest.mark.parametrize("family", FAMILIES)
    @pytest.mark.parametrize("algorithm", sorted(CATALOG_CASES))
    def test_driver_passes_its_oracle(self, temp_scenario, algorithm, family):
        max_weight, size = CATALOG_CASES[algorithm]
        name = f"test-catalog/{algorithm}-{family}"
        temp_scenario(
            Scenario(name, family, algorithm, max_weight=max_weight)
        )
        row = run_scenario(name, size, seed=0)  # DriverError -> SweepError
        assert row["algorithm"] == algorithm
        assert row["rounds"] > 0
        assert row["messages"] > 0

    def test_boruvka_reports_exact_mst_weight(self, temp_scenario):
        temp_scenario(Scenario("test-catalog/boruvka", "er", "boruvka"))
        row = run_scenario("test-catalog/boruvka", 14, seed=2)
        graph = generators.make_family("er", 14, 1, seed=2)
        assert row["mst_weight"] == graph.mst_weight()
        assert row["forest_weight"] == row["mst_weight"]  # unit weights

    def test_boruvka_tolerates_weighted_instances(self, temp_scenario):
        # The Thm 2.2 forest is maximal, not minimum: on non-uniform
        # weights the driver must not flag correct output as an oracle
        # disagreement — the weight check relaxes to the MST lower bound.
        temp_scenario(Scenario("test-catalog/boruvka-w", "er", "boruvka",
                               max_weight=9))
        row = run_scenario("test-catalog/boruvka-w", 14, seed=2)
        assert row["forest_weight"] >= row["mst_weight"]

    def test_cover_scenarios_report_quality_columns(self, temp_scenario):
        temp_scenario(Scenario("test-catalog/cover", "grid", "sparse-cover"))
        row = run_scenario("test-catalog/cover", 12, seed=0)
        assert row["cover_clusters"] >= 1
        assert row["cover_degree"] >= 1
        assert row["cover_radius"] >= 0

    def test_energy_scenarios_report_per_node_energy(self, temp_scenario):
        temp_scenario(
            Scenario("test-catalog/agg", "tree", "tree-aggregation")
        )
        row = run_scenario("test-catalog/agg", 12, seed=0)
        assert row["energy"] >= row["energy_avg"] > 0

    def test_preprocess_columns_meter_cover_construction(self):
        # The Thm 3.8 query columns must not absorb the Thm 3.11
        # construction; the construction must still be visible (the
        # under-counting bug: the cover used to be built outside metrics).
        row = run_scenario("energy-bfs/path", 12, seed=0)
        assert row["preprocess_rounds"] > 0
        assert row["preprocess_messages"] > 0
        assert row["preprocess_energy"] > 0
        scratch = run_scenario("energy-bfs-scratch/tree", 12, seed=0)
        assert scratch["preprocess_rounds"] > 0

    def test_extras_flow_through_tables_fits_and_stores(self, temp_scenario, tmp_path):
        from repro.analysis import fit_sweep, sweep_columns, sweep_table

        temp_scenario(Scenario("test-catalog/boruvka-flow", "er", "boruvka"))
        spec = SweepSpec(scenarios=("test-catalog/boruvka-flow",),
                         sizes=(10, 14, 18), seeds=(0,),
                         output=str(tmp_path / "runs.jsonl"))
        rows = run_sweep_spec(spec)
        assert "mst_weight" in sweep_columns(rows)
        assert "mst_weight" in sweep_table(rows)
        fits = fit_sweep(rows, y="mst_weight")
        assert "test-catalog/boruvka-flow" in fits
        # Store round-trip: resumed rows carry the quality columns too.
        resumed = run_sweep_spec(spec)
        assert resumed == rows

    def test_core_row_fields_precede_extras(self, temp_scenario):
        temp_scenario(Scenario("test-catalog/apsp-order", "tree", "apsp",
                               max_weight=5))
        row = run_scenario("test-catalog/apsp-order", 10, seed=1)
        assert tuple(row)[: len(ROW_FIELDS)] == ROW_FIELDS
        assert sorted(tuple(row)[len(ROW_FIELDS):]) == list(tuple(row)[len(ROW_FIELDS):])


class TestSeedVariation:
    """Distinct seeds must sample distinct sources (the seed-ignored bug)."""

    def test_source_node_varies_with_seed(self):
        from repro.api.drivers import _source_node

        graph = generators.make_family("grid", 16, 1, seed=0)
        sources = {_source_node(graph, seed) for seed in range(6)}
        assert len(sources) > 1

    def test_unweighted_scenario_rows_vary_across_seeds(self):
        # On an unweighted family the instance is seed-independent, so any
        # row variation can only come from the seeded source draw.
        rows = [run_scenario("bfs/grid", 16, seed=seed) for seed in range(6)]
        assert len({row["rounds"] for row in rows}) > 1

    def test_two_seeds_differ_for_sleeping_scenario(self):
        rows = [run_scenario("energy-bfs/path", 12, seed=seed) for seed in range(4)]
        assert len({(row["rounds"], row["energy"]) for row in rows}) > 1


class TestParamsAwareResume:
    """Resume keys carry the scenario-definition digest (the stale-params bug)."""

    def test_digest_changes_with_params_family_and_weights(self):
        base = Scenario("x", "tree", "labeled-bfs")
        assert scenario_digest(base) == scenario_digest(
            Scenario("renamed", "tree", "labeled-bfs")
        )  # the *name* is not part of the definition
        assert scenario_digest(base) != scenario_digest(
            Scenario("x", "tree", "labeled-bfs", params=(("num_sources", 2),))
        )
        assert scenario_digest(base) != scenario_digest(
            Scenario("x", "grid", "labeled-bfs")
        )
        assert scenario_digest(base) != scenario_digest(
            Scenario("x", "tree", "labeled-bfs", max_weight=9)
        )

    def test_digest_accepts_dict_params(self):
        # Every other consumer of Scenario.params goes through dict(), so
        # a plugin passing a mapping instead of the canonical pair-tuple
        # must digest identically, not crash in a forked worker.
        pairs = Scenario("x", "tree", "labeled-bfs", params=(("num_sources", 2),))
        mapping = Scenario("x", "tree", "labeled-bfs", params={"num_sources": 2})
        assert scenario_digest(pairs) == scenario_digest(mapping)

    def test_rows_record_the_digest(self):
        row = run_scenario("bfs/grid", 9, seed=0)
        assert row["params_digest"] == scenario_digest(
            experiments.get_scenario("bfs/grid")
        )

    def test_resume_with_changed_params_reruns_stale_cells(self, temp_scenario, tmp_path):
        name = "test-catalog/resume-params"
        spec = SweepSpec(scenarios=(name,), sizes=(10,), seeds=(0,),
                         output=str(tmp_path / "runs.jsonl"))

        temp_scenario(Scenario(name, "tree", "labeled-bfs",
                               params=(("num_sources", 2),)))
        first = run_sweep_spec(spec)

        # Same definition -> full reuse.
        executed = []
        run_sweep_spec(spec, progress=lambda d, t, row: executed.append(row))
        assert executed == []

        # Changed params under the same scenario name -> the stored cell is
        # stale and MUST re-run (this used to silently reuse it).
        temp_scenario(Scenario(name, "tree", "labeled-bfs",
                               params=(("num_sources", 4),)))
        executed = []
        second = run_sweep_spec(spec, progress=lambda d, t, row: executed.append(row))
        assert len(executed) == 1
        assert second[0]["params_digest"] != first[0]["params_digest"]

        # And resuming *again* under the new definition reuses the new cell.
        executed = []
        third = run_sweep_spec(spec, progress=lambda d, t, row: executed.append(row))
        assert executed == []
        assert third == second

        # The store supersedes the stale cell: tables/fits built straight
        # from the ResultSet must not double-count the re-run cell.
        store = ResultSet(spec.output)
        assert len(store.rows()) == 1
        assert store.rows()[0]["params_digest"] == second[0]["params_digest"]

    def test_pre_digest_store_is_not_trusted(self, tmp_path):
        # A store written before the digest column keys with "" — it must
        # miss the lookup and re-run rather than be silently reused.
        path = tmp_path / "runs.jsonl"
        spec = SweepSpec(scenarios=("bfs/grid",), sizes=(9,), seeds=(0,),
                         output=str(path))
        run_sweep_spec(spec)
        record = json.loads(path.read_text().splitlines()[0])
        del record["params_digest"]
        record["rounds"] = -1  # poison: reuse would be visible
        path.write_text(json.dumps(record) + "\n")
        rows = run_sweep_spec(spec)
        assert rows[0]["rounds"] > 0
