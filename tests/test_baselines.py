"""Baselines: distributed Bellman-Ford and naive distributed Dijkstra."""

from repro.testing import assert_distances_equal, small_weighted_graph
from repro import graphs
from repro.baselines import run_bellman_ford, run_distributed_dijkstra
from repro.graphs import Graph, INFINITY
from repro.sim import Metrics


class TestBellmanFord:
    def test_exact_random(self):
        for seed in range(5):
            g = small_weighted_graph(20, seed)
            assert_distances_equal(run_bellman_ford(g, 0), g.dijkstra([0]), f"seed {seed}")

    def test_exact_optimized_variant(self):
        g = small_weighted_graph(20, 9)
        assert_distances_equal(
            run_bellman_ford(g, 0, send_on_change=True), g.dijkstra([0]), "opt"
        )

    def test_unreachable(self):
        g = Graph.from_edges([(0, 1, 3)], nodes=[2])
        assert run_bellman_ford(g, 0)[2] == INFINITY

    def test_rounds_linear(self):
        g = graphs.path_graph(30)
        m = Metrics()
        run_bellman_ford(g, 0, metrics=m)
        assert m.rounds <= 31

    def test_naive_congestion_is_theta_n(self):
        # The paper's point: every reached node re-sends every round.
        g = graphs.complete_graph(15)
        m = Metrics()
        run_bellman_ford(g, 0, metrics=m)
        assert m.max_congestion >= g.num_nodes - 2

    def test_optimized_sends_fewer_messages(self):
        g = small_weighted_graph(25, 11)
        naive, opt = Metrics(), Metrics()
        run_bellman_ford(g, 0, metrics=naive)
        run_bellman_ford(g, 0, send_on_change=True, metrics=opt)
        assert opt.total_messages < naive.total_messages

    def test_naive_messages_theta_mn_on_dense(self):
        g = graphs.complete_graph(12)
        m = Metrics()
        run_bellman_ford(g, 0, metrics=m)
        # All nodes reached after round 1; m edges active nearly n rounds.
        assert m.total_messages >= g.num_edges * (g.num_nodes - 3)


class TestDistributedDijkstra:
    def test_exact_random(self):
        for seed in range(4):
            g = small_weighted_graph(15, seed + 50)
            assert_distances_equal(
                run_distributed_dijkstra(g, 0), g.dijkstra([0]), f"seed {seed}"
            )

    def test_unweighted(self):
        g = graphs.grid_graph(4, 4)
        assert_distances_equal(run_distributed_dijkstra(g, 0), g.hop_distances([0]), "grid")

    def test_unreachable(self):
        g = Graph.from_edges([(0, 1, 2)], nodes=[2])
        d = run_distributed_dijkstra(g, 0)
        assert d[2] == INFINITY

    def test_time_scales_with_n_times_depth(self):
        # O(n * D) rounds: each visit costs a convergecast over the tree.
        g = graphs.path_graph(12)
        m = Metrics()
        run_distributed_dijkstra(g, 0, metrics=m)
        assert m.rounds >= 12 * 5  # clearly super-linear in n

    def test_congestion_grows_near_root(self):
        g = graphs.path_graph(15)
        m = Metrics()
        run_distributed_dijkstra(g, 0, metrics=m)
        # The root edge carries one convergecast per iteration: Theta(n).
        assert m.max_congestion >= 14

    def test_message_complexity_quadratic(self):
        g = graphs.path_graph(15)
        m = Metrics()
        run_distributed_dijkstra(g, 0, metrics=m)
        assert m.total_messages >= 15 * 14  # ~n per visited node
