"""Regression tests for Runner protocol violations and engine edge cases.

The violation battery pins the :class:`SimulationError` contract of the
indexed engine (capacity breach, non-neighbor send, ``wake_at`` in the past,
``max_rounds`` overrun); the edge cases target the machinery the rewrite
introduced — the bucketed wake ring's far-future overflow and the cached
indexed view.
"""

import pytest

from repro.graphs import Graph, IndexedGraph, path_graph
from repro.sim import Mode, NodeAlgorithm, Runner, SimulationError


def two_nodes() -> Graph:
    return Graph.from_edges([(0, 1)])


class Quiet(NodeAlgorithm):
    def on_round(self, ctx, inbox):
        ctx.halt()


class TestViolations:
    def test_capacity_breach(self):
        class Spam(NodeAlgorithm):
            def on_round(self, ctx, inbox):
                ctx.send(1, "a")
                ctx.send(1, "b")

        g = two_nodes()
        with pytest.raises(SimulationError, match="capacity"):
            Runner(g, {0: Spam(), 1: Quiet()}, Mode.CONGEST).run()

    def test_non_neighbor_send(self):
        class Bad(NodeAlgorithm):
            def on_round(self, ctx, inbox):
                ctx.send(99, "x")

        g = two_nodes()
        with pytest.raises(SimulationError, match="non-neighbor"):
            Runner(g, {0: Bad(), 1: Quiet()}, Mode.CONGEST).run()

    def test_wake_at_in_the_past(self):
        class Bad(NodeAlgorithm):
            def on_round(self, ctx, inbox):
                ctx.wake_at(ctx.round)

        g = two_nodes()
        with pytest.raises(SimulationError, match="scheduled wake"):
            Runner(g, {0: Bad(), 1: Bad()}, Mode.CONGEST).run()

    def test_max_rounds_overrun(self):
        class Forever(NodeAlgorithm):
            def on_round(self, ctx, inbox):
                pass  # default: wake next round, forever

        g = two_nodes()
        with pytest.raises(SimulationError, match="max_rounds"):
            Runner(g, {0: Forever(), 1: Forever()}, Mode.CONGEST, max_rounds=40).run()

    def test_missing_algorithm(self):
        with pytest.raises(SimulationError, match="without an algorithm"):
            Runner(two_nodes(), {0: Quiet()}, Mode.CONGEST)


class TestRingScheduler:
    """Wakes beyond the ring window must survive the overflow map."""

    @pytest.mark.parametrize("gap", [1023, 1024, 1025, 5000, 123_456])
    def test_far_future_wake(self, gap):
        class LongNap(NodeAlgorithm):
            def __init__(self):
                self.wakes = 0

            def on_round(self, ctx, inbox):
                self.wakes += 1
                if ctx.round == 0:
                    ctx.wake_at(gap)
                else:
                    assert ctx.round == gap
                    ctx.halt()

        g = two_nodes()
        algorithms = {0: LongNap(), 1: LongNap()}
        metrics = Runner(g, algorithms, Mode.CONGEST).run()
        assert metrics.rounds == gap + 1
        assert algorithms[0].wakes == 2

    def test_mixed_near_and_far_wakes(self):
        class Stagger(NodeAlgorithm):
            def __init__(self, node):
                self.node = node
                self.seen = []

            def on_round(self, ctx, inbox):
                self.seen.append(ctx.round)
                if ctx.round == 0:
                    ctx.wake_at(3 if self.node == 0 else 2000)
                else:
                    ctx.halt()

        g = two_nodes()
        algorithms = {u: Stagger(u) for u in g.nodes()}
        metrics = Runner(g, algorithms, Mode.SLEEPING).run()
        assert algorithms[0].seen == [0, 3]
        assert algorithms[1].seen == [0, 2000]
        assert metrics.rounds == 2001
        assert metrics.max_energy == 2

    def test_wake_on_message_supersedes_far_wake(self):
        class Poker(NodeAlgorithm):
            def on_round(self, ctx, inbox):
                if ctx.round == 0:
                    ctx.send(1, "poke")
                ctx.halt()

        class FarSleeper(NodeAlgorithm):
            def __init__(self):
                self.seen = []

            def on_round(self, ctx, inbox):
                self.seen.append((ctx.round, list(inbox)))
                if ctx.round == 0:
                    ctx.wake_at(9999)
                else:
                    ctx.halt()

        g = two_nodes()
        sleeper = FarSleeper()
        metrics = Runner(g, {0: Poker(), 1: sleeper}, Mode.CONGEST).run()
        # The message wakes node 1 at round 1; the stale round-9999 entry
        # must not produce a second wake after it halts.
        assert sleeper.seen == [(0, []), (1, [(0, "poke")])]
        assert metrics.rounds == 2


class TestIndexedConstruction:
    def test_runner_accepts_indexed_graph_directly(self):
        g = path_graph(6)
        indexed = IndexedGraph.of(g)
        metrics = Runner(indexed, {u: Quiet() for u in g.nodes()}, Mode.CONGEST).run()
        assert metrics.rounds == 1
        assert metrics.max_energy == 1

    def test_runners_share_the_cached_view(self):
        g = path_graph(10)
        first = Runner(g, {u: Quiet() for u in g.nodes()})
        second = Runner(g, {u: Quiet() for u in g.nodes()})
        assert first.indexed is second.indexed

    def test_empty_graph(self):
        metrics = Runner(Graph(), {}, Mode.CONGEST).run()
        assert metrics.rounds == 0
        assert metrics.total_messages == 0
