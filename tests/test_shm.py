"""Zero-copy shared-memory graph plane: round-trip and cleanup guarantees.

Covers the segment lifecycle (publish -> worker attach -> supervisor
unlink), byte-identity of the attached graph (adjacency order, labels,
weights, and the seeded indexed view all match the publisher's), and the
cleanup contract: no segment survives a finished sweep, a crashed worker,
a timeout-killed worker, or a KeyboardInterrupt — the leak paths the
PR 5 interrupted-shard scenario exercises for the store layer.

Fault drivers are module-level functions (fork-started workers inherit
them with the registry); registrations happen under the ``registry``
fixture so the shared catalog never grows a crashing scenario.
"""

import os
import time

import pytest

from repro.api import SweepSpec, is_failure, run_sweep_spec
from repro.graphs.generators import random_connected_graph
from repro.graphs.indexed import IndexedGraph
from repro.sim import experiments, shm
from repro.sim.experiments import Scenario, register_algorithm, register_scenario


def _crash(graph, seed, metrics):
    os._exit(23)


def _hang(graph, seed, metrics):
    time.sleep(3600)


def _interrupt(graph, seed, metrics):
    raise KeyboardInterrupt


@pytest.fixture
def registry():
    """Snapshot/restore the scenario + algorithm registries around a test."""
    from repro.api import algorithms

    scenarios = dict(experiments._SCENARIOS)
    algos = dict(algorithms._SPECS)
    yield
    experiments._SCENARIOS.clear()
    experiments._SCENARIOS.update(scenarios)
    algorithms._SPECS.clear()
    algorithms._SPECS.update(algos)


def register_fault(scenario_name: str, driver) -> Scenario:
    algo = scenario_name.split("/")[0]
    register_algorithm(algo, driver)
    return register_scenario(Scenario(scenario_name, "path", algo))


def _segments() -> set:
    try:
        return {f for f in os.listdir("/dev/shm") if f.startswith("psm_")}
    except FileNotFoundError:  # platform without /dev/shm
        return set()


@pytest.fixture
def no_leaks():
    """Assert the test leaves /dev/shm and the publish registry clean."""
    before = _segments()
    yield
    experiments._SHM_ATTACH.clear()
    assert shm.active_segments() == []
    assert _segments() - before == set()


pytestmark = pytest.mark.skipif(not shm.available(), reason="no shared memory")


class TestRoundTrip:
    def test_attached_graph_is_byte_identical(self, no_leaks):
        graph = random_connected_graph(40, 0.1, seed=9)
        handle = shm.publish_graph(graph)
        assert handle is not None
        assert shm.active_segments() == [handle.name]
        try:
            attached = shm.attach_graph(handle.name)
            assert attached is not None
            assert list(attached.nodes()) == list(graph.nodes())
            for u in graph.nodes():
                # Insertion order AND weights — drivers iterate by label.
                assert list(attached.neighbors(u)) == list(graph.neighbors(u))
                assert all(
                    attached.weight(u, v) == graph.weight(u, v)
                    for v in graph.neighbors(u)
                )
            assert attached.num_edges == graph.num_edges
            a, b = IndexedGraph.of(attached), IndexedGraph.of(graph)
            assert (a.labels, a.indptr, a.nbr, a.wt) == (
                b.labels, b.indptr, b.nbr, b.wt)
        finally:
            handle.unlink()
        assert shm.active_segments() == []

    def test_attached_csr_views_are_zero_copy_and_read_only(self, no_leaks):
        np = pytest.importorskip("numpy")
        graph = random_connected_graph(12, 0.3, seed=1)
        handle = shm.publish_graph(graph)
        try:
            attached = shm.attach_graph(handle.name)
            csr = IndexedGraph.of(attached).csr()
            assert csr is not None
            indptr, nbr, wt = csr
            assert not indptr.flags.writeable
            assert nbr.tolist() == IndexedGraph.of(graph).nbr
            with pytest.raises(ValueError):
                wt[0] = 99
        finally:
            handle.unlink()

    def test_unlink_is_idempotent(self, no_leaks):
        handle = shm.publish_graph(random_connected_graph(6, 0.5, seed=0))
        handle.unlink()
        handle.unlink()  # second unlink must not raise
        assert shm.active_segments() == []

    def test_attach_missing_segment_returns_none(self, no_leaks):
        assert shm.attach_graph("psm_definitely_not_there") is None

    def test_cached_graph_falls_back_when_segment_is_gone(self, no_leaks):
        scenario = experiments.get_scenario("sssp/path")
        key = experiments._instance_key(scenario, 9, 0)
        experiments.clear_graph_cache()
        experiments._SHM_ATTACH[key] = "psm_definitely_not_there"
        try:
            graph = experiments._cached_graph(scenario, 9, 0)
        finally:
            experiments._SHM_ATTACH.clear()
            experiments.clear_graph_cache()
        assert graph.num_nodes == 9  # built locally, attach was a no-op


class TestSweepCleanup:
    SPEC = dict(scenarios=("sssp/path", "bfs/grid"), sizes=(9, 16), seeds=(0, 1))

    def test_parallel_rows_match_serial_and_segments_unlinked(self, no_leaks):
        serial = run_sweep_spec(SweepSpec(**self.SPEC, workers=1))
        parallel = run_sweep_spec(SweepSpec(**self.SPEC, workers=3))
        assert parallel == serial
        assert shm.active_segments() == []

    def test_worker_crash_leaves_no_segment(self, registry, no_leaks):
        register_fault("test-shm-crash/path", _crash)
        spec = SweepSpec(scenarios=("test-shm-crash/path", "bfs/grid"),
                         sizes=(9, 16), seeds=(0,), workers=2, max_retries=0)
        rows = run_sweep_spec(spec)
        assert any(is_failure(row) for row in rows)
        assert shm.active_segments() == []

    def test_timeout_killed_worker_leaves_no_segment(self, registry, no_leaks):
        register_fault("test-shm-hang/path", _hang)
        spec = SweepSpec(scenarios=("test-shm-hang/path", "bfs/grid"),
                         sizes=(9, 16), seeds=(0,), workers=2,
                         max_retries=0, task_timeout=0.3)
        rows = run_sweep_spec(spec)
        assert any(is_failure(row) for row in rows)
        assert shm.active_segments() == []

    def test_interrupt_unwinds_and_unlinks(self, registry, no_leaks, tmp_path):
        register_fault("test-shm-interrupt/path", _interrupt)
        spec = SweepSpec(scenarios=("test-shm-interrupt/path", "bfs/grid"),
                         sizes=(9, 16), seeds=(0,), workers=2, max_retries=0,
                         output=str(tmp_path / "rows.jsonl"))
        run_sweep_spec(spec)  # worker deaths become failed rows, not raises
        assert shm.active_segments() == []

    def test_supervisor_interrupt_mid_sweep_unlinks(self, no_leaks, monkeypatch):
        # Simulate Ctrl-C landing in the supervisor itself after segments
        # are published: the dispatcher raises and the finally must unlink.
        from repro.api import run as run_mod

        def boom(*args, **kwargs):
            assert shm.active_segments() != []  # segments were published
            raise KeyboardInterrupt

        monkeypatch.setattr(run_mod, "_run_groups_supervised", boom)
        with pytest.raises(KeyboardInterrupt):
            run_sweep_spec(SweepSpec(**self.SPEC, workers=3))
        assert shm.active_segments() == []
