"""Rooted forests and the convergecast/broadcast tree protocol."""

import pytest

from repro import graphs
from repro.core.trees import (
    ConvergecastBroadcast,
    RootedForest,
    bfs_forest,
    run_convergecast_broadcast,
)
from repro.graphs import Graph
from repro.sim import Metrics


class TestRootedForest:
    def test_single_tree(self):
        f = RootedForest({0: None, 1: 0, 2: 0, 3: 1})
        assert f.roots == [0]
        assert f.depth == {0: 0, 1: 1, 2: 1, 3: 2}
        assert f.root_of[3] == 0
        assert f.children[0] == [1, 2]

    def test_forest_with_two_trees(self):
        f = RootedForest({0: None, 1: 0, 2: None, 3: 2})
        assert set(f.roots) == {0, 2}
        assert f.component(0) == {0, 1}
        assert f.components()[2] == {2, 3}

    def test_tree_depth(self):
        f = RootedForest({0: None, 1: 0, 2: 1, 3: 2})
        assert f.tree_depth(0) == 3

    def test_cycle_detected(self):
        with pytest.raises(ValueError):
            RootedForest({0: 1, 1: 0})

    def test_dangling_parent_detected(self):
        with pytest.raises(ValueError):
            RootedForest({0: 5})

    def test_validate_against_graph(self):
        g = graphs.path_graph(4)
        f = RootedForest({0: None, 1: 0, 2: 1, 3: 2})
        f.validate_against(g)

    def test_validate_rejects_non_edges(self):
        g = graphs.path_graph(4)
        f = RootedForest({0: None, 1: 0, 2: 0, 3: 2})  # 2-0 not an edge
        with pytest.raises(ValueError):
            f.validate_against(g)

    def test_validate_rejects_non_spanning(self):
        g = Graph.from_edges([(0, 1), (1, 2)])
        f = RootedForest({0: None, 1: 0, 2: None})  # 2 split off its component
        with pytest.raises(ValueError):
            f.validate_against(g)


class TestBFSForest:
    def test_spans_and_validates(self):
        for seed in range(4):
            g = graphs.random_graph(20, 0.15, seed=seed)
            f = bfs_forest(g)
            f.validate_against(g)

    def test_respects_requested_roots(self):
        g = graphs.path_graph(6)
        f = bfs_forest(g, roots=[3])
        assert f.roots == [3]

    def test_depth_is_hop_distance(self):
        g = graphs.grid_graph(4, 4)
        f = bfs_forest(g, roots=[0])
        truth = g.hop_distances([0])
        for u in g.nodes():
            assert f.depth[u] == truth[u]


class TestConvergecastBroadcast:
    def test_sum_aggregate(self):
        g = graphs.path_graph(6)
        f = bfs_forest(g, roots=[0])
        result = run_convergecast_broadcast(g, f, {u: 1 for u in g.nodes()}, sum)
        assert all(v == 6 for v in result.values())

    def test_max_aggregate(self):
        g = graphs.balanced_tree(2, 3)
        f = bfs_forest(g, roots=[0])
        result = run_convergecast_broadcast(g, f, {u: u for u in g.nodes()}, max)
        assert all(v == 14 for v in result.values())

    def test_all_aggregate_detects_false(self):
        g = graphs.path_graph(5)
        f = bfs_forest(g, roots=[0])
        values = {u: u != 3 for u in g.nodes()}
        result = run_convergecast_broadcast(g, f, values, all)
        assert all(v is False for v in result.values())

    def test_per_tree_aggregation(self):
        g = Graph.from_edges([(0, 1), (2, 3)])
        f = bfs_forest(g)
        result = run_convergecast_broadcast(g, f, {0: 1, 1: 2, 2: 10, 3: 20}, sum)
        assert result[0] == 3 and result[1] == 3
        assert result[2] == 30 and result[3] == 30

    def test_singleton_tree(self):
        g = Graph()
        g.add_node(7)
        f = bfs_forest(g)
        result = run_convergecast_broadcast(g, f, {7: 42}, sum)
        assert result[7] == 42

    def test_costs_two_messages_per_tree_edge(self):
        g = graphs.path_graph(10)
        f = bfs_forest(g, roots=[0])
        m = Metrics()
        run_convergecast_broadcast(g, f, {u: 0 for u in g.nodes()}, sum, metrics=m)
        assert m.total_messages == 2 * 9
        assert m.max_congestion == 1

    def test_time_linear_in_depth(self):
        g = graphs.path_graph(20)
        f = bfs_forest(g, roots=[0])
        m = Metrics()
        run_convergecast_broadcast(g, f, {u: 0 for u in g.nodes()}, sum, metrics=m)
        assert m.rounds <= 2 * 20 + 4

    def test_none_values_supported(self):
        g = graphs.path_graph(3)
        f = bfs_forest(g, roots=[0])
        pick = lambda vals: next((v for v in vals if v is not None), None)
        result = run_convergecast_broadcast(g, f, {0: None, 1: None, 2: None}, pick)
        assert all(v is None for v in result.values())
