"""The scenario registry, spec-driven sweep executor, and ``sweep`` CLI."""

import random

import pytest

from repro.__main__ import main
from repro.analysis import fit_sweep, sweep_report, sweep_table
from repro.api import SweepSpec, run_sweep_spec
from repro.sim.experiments import (
    ROW_FIELDS,
    Scenario,
    SweepError,
    clear_graph_cache,
    get_scenario,
    list_algorithms,
    list_scenarios,
    register_scenario,
    run_scenario,
    smoke_sweep,
)


def sweep(scenarios, sizes, seeds=(0,), workers=1):
    """Run the cross product through the spec path (in-memory store)."""
    return run_sweep_spec(
        SweepSpec(scenarios=tuple(scenarios), sizes=tuple(sizes),
                  seeds=tuple(seeds), workers=workers)
    )


class TestRegistry:
    def test_builtin_scenarios_present(self):
        names = list_scenarios()
        assert "sssp/er" in names
        assert "bellman-ford/er" in names
        assert "energy-bfs/path" in names

    def test_builtin_algorithms_present(self):
        assert {"sssp", "cssp", "bellman-ford", "dijkstra", "bfs", "energy-bfs"} <= set(
            list_algorithms()
        )

    def test_unknown_scenario_rejected(self):
        with pytest.raises(SweepError, match="unknown scenario"):
            get_scenario("no-such-scenario")

    def test_register_rejects_unknown_family(self):
        with pytest.raises(SweepError, match="unknown family"):
            register_scenario(Scenario("bad", "nope", "sssp"))

    def test_register_rejects_unknown_algorithm(self):
        with pytest.raises(SweepError, match="unknown algorithm"):
            register_scenario(Scenario("bad", "er", "nope"))

    def test_register_and_run_custom_scenario(self):
        name = "test-only/dijkstra-path"
        register_scenario(Scenario(name, "path", "dijkstra", max_weight=5))
        try:
            row = run_scenario(name, 8, seed=3)
            assert row["algorithm"] == "dijkstra"
            assert row["n"] == 8
        finally:
            from repro.sim import experiments

            experiments._SCENARIOS.pop(name, None)

    def test_legacy_register_algorithm_callable(self):
        from repro.api import algorithms
        from repro.sim import experiments
        from repro.sim.experiments import register_algorithm

        calls = []

        def driver(graph, seed, metrics):
            calls.append(seed)
            metrics.record_rounds(1)

        register_algorithm("test-only-driver", driver)
        register_scenario(Scenario("test-only/driver", "path", "test-only-driver"))
        try:
            row = run_scenario("test-only/driver", 6, seed=9)
            assert calls == [9]
            assert row["rounds"] == 1
        finally:
            experiments._SCENARIOS.pop("test-only/driver", None)
            algorithms._SPECS.pop("test-only-driver", None)


class TestRunScenario:
    def test_row_shape(self):
        row = run_scenario("bfs/grid", 16, seed=0)
        assert tuple(row) == ROW_FIELDS
        assert row["scenario"] == "bfs/grid"
        assert row["rounds"] > 0
        assert row["lost_messages"] == 0

    def test_energy_scenario_reports_energy(self):
        row = run_scenario("energy-bfs/path", 12, seed=0)
        assert row["energy"] > 0
        assert row["lost_messages"] > 0  # sleeping model loses off-schedule sends

    def test_sweep_fails_fast_on_unknown_scenario(self):
        with pytest.raises(SweepError, match="unknown scenario"):
            sweep(["definitely-not-registered"], sizes=(8,))


class TestSweepDeterminism:
    @pytest.mark.parametrize("trial", range(4))
    def test_same_seed_same_table_across_worker_counts(self, trial):
        rng = random.Random(777 + trial)
        sizes = tuple(sorted(rng.sample(range(9, 30), k=2)))
        seeds = tuple(range(rng.randrange(1, 3)))
        scenarios = rng.sample(["bfs/grid", "bellman-ford/er", "dijkstra/er"], k=2)
        sequential = sweep(scenarios, sizes=sizes, seeds=seeds, workers=1)
        parallel = sweep(scenarios, sizes=sizes, seeds=seeds, workers=3)
        assert sequential == parallel

    def test_rows_follow_task_order(self):
        rows = sweep(["bfs/grid"], sizes=(9, 16), seeds=(0, 1))
        key = [(r["scenario"], r["n"], r["seed"]) for r in rows]
        assert key == [("bfs/grid", 9, 0), ("bfs/grid", 9, 1), ("bfs/grid", 16, 0), ("bfs/grid", 16, 1)]

    def test_smoke_sweep_is_small_and_deterministic(self):
        first = smoke_sweep()
        second = smoke_sweep(workers=2)
        assert first == second
        # Every registered scenario appears (the CI oracle coverage), at
        # two sizes and one seed each.
        assert {row["scenario"] for row in first} == set(list_scenarios())
        assert len(first) == 2 * len(list_scenarios())


class TestGraphCache:
    def test_cells_sharing_an_instance_reuse_one_graph(self):
        from repro.sim import experiments

        clear_graph_cache()
        # Same family / max_weight / size / seed across two scenarios ->
        # one cached instance serves both cells.
        run_scenario("bellman-ford/er", 14, seed=3)
        assert len(experiments._GRAPH_CACHE) == 1
        run_scenario("dijkstra/er", 14, seed=3)
        assert len(experiments._GRAPH_CACHE) == 1
        run_scenario("dijkstra/er", 14, seed=4)  # new seed -> new instance
        assert len(experiments._GRAPH_CACHE) == 2
        clear_graph_cache()

    def test_rows_identical_with_cold_and_warm_cache(self):
        scenarios = ["bellman-ford/er", "dijkstra/er", "bfs/grid"]
        clear_graph_cache()
        cold = sweep(scenarios, sizes=(10, 14), seeds=(0, 1))
        warm = sweep(scenarios, sizes=(10, 14), seeds=(0, 1))
        clear_graph_cache()
        fresh = sweep(scenarios, sizes=(10, 14), seeds=(0, 1))
        assert cold == warm == fresh

    def test_cache_determinism_across_worker_counts(self):
        scenarios = ["bellman-ford/er", "dijkstra/er"]
        clear_graph_cache()
        sequential = sweep(scenarios, sizes=(9, 13), seeds=(0, 1), workers=1)
        parallel = sweep(scenarios, sizes=(9, 13), seeds=(0, 1), workers=4)
        assert sequential == parallel

    def test_cache_is_bounded(self):
        from repro.sim import experiments

        clear_graph_cache()
        for seed in range(experiments._GRAPH_CACHE_CAP + 8):
            run_scenario("bfs/grid", 9, seed=seed)
        assert len(experiments._GRAPH_CACHE) <= experiments._GRAPH_CACHE_CAP
        clear_graph_cache()


class TestAnalysisWiring:
    def test_sweep_table_has_all_columns(self):
        rows = sweep(["bfs/grid"], sizes=(9, 16))
        table = sweep_table(rows)
        for field in ROW_FIELDS:
            if field in ("size", "params_digest"):
                assert field not in table  # resume provenance, not a measurement
            else:
                assert field in table

    def test_sweep_table_accepts_a_resultset(self, tmp_path):
        from repro.api import ResultSet

        spec = SweepSpec(scenarios=("bfs/grid",), sizes=(9, 16),
                         output=str(tmp_path / "runs.jsonl"))
        run_sweep_spec(spec)
        store = ResultSet(spec.output)
        assert sweep_table(store) == sweep_table(store.rows())
        assert set(fit_sweep(store)) == {"bfs/grid"}

    def test_fit_sweep_groups_by_scenario(self):
        rows = sweep(["bellman-ford/er"], sizes=(12, 20, 32))
        fits = fit_sweep(rows, y="rounds")
        assert set(fits) == {"bellman-ford/er"}
        assert 0.5 < fits["bellman-ford/er"].exponent < 1.5  # rounds ~ n

    def test_sweep_report_contains_table_and_fits(self):
        rows = sweep(["bellman-ford/er"], sizes=(12, 20))
        report = sweep_report(rows, title="unit sweep")
        assert "## unit sweep" in report
        assert "bellman-ford/er" in report
        assert "n^" in report


class TestSweepCLI:
    def test_smoke_output_format(self, capsys):
        assert main(["sweep", "--smoke"]) == 0
        out = capsys.readouterr().out
        lines = out.strip().splitlines()
        assert lines[0].startswith("== smoke sweep ==")
        header = lines[1]
        for field in ROW_FIELDS:
            if field not in ("size", "params_digest"):  # kept out of display columns
                assert field in header
        assert len(lines) >= 3 + 4  # title + header + rule + at least one row per scenario

    def test_explicit_selectors_and_fit(self, capsys):
        code = main(
            ["sweep", "--scenarios", "bfs/grid", "--sizes", "9,16", "--seeds", "0", "--fit"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "bfs/grid" in out
        assert "fit bfs/grid: rounds ~ n^" in out

    def test_list_scenarios(self, capsys):
        assert main(["sweep", "--list"]) == 0
        out = capsys.readouterr().out
        assert "sssp/er" in out

    def test_report_file(self, tmp_path, capsys):
        target = tmp_path / "sweep.md"
        assert main(["sweep", "--smoke", "--report", str(target)]) == 0
        text = target.read_text()
        assert "## smoke sweep" in text
        assert "sssp/er" in text

    def test_unknown_option_rejected(self, capsys):
        assert main(["sweep", "--frobnicate"]) == 2

    def test_parallel_smoke_matches_sequential(self, capsys):
        assert main(["sweep", "--smoke"]) == 0
        sequential = capsys.readouterr().out
        assert main(["sweep", "--smoke", "--workers", "4"]) == 0
        parallel = capsys.readouterr().out
        assert sequential == parallel
