"""Cross-module integration: full pipelines agreeing with each other."""

import pytest

from repro.testing import small_weighted_graph
from repro import graphs, sssp, cssp, run_bellman_ford, run_distributed_dijkstra
from repro.energy import energy_cssp, low_energy_bfs_from_scratch
from repro.graphs import INFINITY
from repro.sim import Metrics


class TestAllAlgorithmsAgree:
    """Every SSSP implementation in the library must produce identical
    distances on the same instance — the strongest cross-check we have."""

    def test_weighted_instance(self):
        g = small_weighted_graph(14, seed=21, max_weight=6)
        reference = g.dijkstra([0])
        assert sssp(g, 0).distances == reference
        assert run_bellman_ford(g, 0) == reference
        assert run_distributed_dijkstra(g, 0) == reference
        d_energy, _ = energy_cssp(g, {0: 0})
        assert d_energy == reference

    def test_unweighted_instance(self):
        g = graphs.grid_graph(4, 5)
        reference = g.hop_distances([0])
        assert sssp(g, 0).distances == reference
        assert run_bellman_ford(g, 0) == reference
        d_scratch, _ = low_energy_bfs_from_scratch(g, {0: 0})
        assert d_scratch == reference


class TestCostHierarchy:
    """The paper's qualitative cost claims, checked as inequalities."""

    def test_cssp_congestion_beats_bellman_ford_on_dense(self):
        g = graphs.random_weights(graphs.complete_graph(16), 9, seed=1)
        m_cssp, m_bf = Metrics(), Metrics()
        cssp(g, {0: 0}, metrics=m_cssp)
        run_bellman_ford(g, 0, metrics=m_bf)
        # Bellman-Ford's per-edge traffic scales with n; the recursion's
        # does not. On K_16 the gap must already be visible per message
        # *per edge* even though absolute constants differ.
        assert m_bf.max_congestion >= 13
        assert m_cssp.max_congestion < m_bf.max_congestion * 8

    def test_dijkstra_slowest_in_time(self):
        g = graphs.random_weights(graphs.path_graph(16), 5, seed=2)
        m_dij, m_bf = Metrics(), Metrics()
        run_distributed_dijkstra(g, 0, metrics=m_dij)
        run_bellman_ford(g, 0, metrics=m_bf)
        assert m_dij.rounds > m_bf.rounds * 3

    def test_energy_bfs_sleeps_naive_does_not(self):
        g = graphs.path_graph(24)
        qm = Metrics()
        low_energy_bfs_from_scratch(g, {0: 0}, query_metrics=qm)
        m_naive = Metrics()
        run_bellman_ford(g, 0, metrics=m_naive)
        naive_awake_fraction = m_naive.max_energy / m_naive.rounds
        energy_awake_fraction = qm.max_energy / qm.rounds
        assert naive_awake_fraction == pytest.approx(1.0, abs=0.1)
        assert energy_awake_fraction < 0.9


class TestEndToEndScenario:
    def test_sensor_network_story(self):
        """The paper's motivating scenario: a battery-powered sensor grid
        computing routes to a gateway with bounded per-node awake time."""
        g = graphs.grid_graph(5, 5)
        gateway = 12  # center node
        dist, cover = low_energy_bfs_from_scratch(g, {gateway: 0})
        assert dist == g.hop_distances([gateway])
        assert len(cover.levels) >= 1

    def test_apsp_routing_tables(self):
        from repro import apsp

        g = small_weighted_graph(10, seed=30, max_weight=4)
        result = apsp(g, seed=7)
        # Routing-table sanity: triangle inequality holds pairwise.
        nodes = list(g.nodes())
        for a in nodes:
            for b in nodes:
                for c in nodes:
                    if INFINITY in (
                        result.distance(a, b), result.distance(b, c),
                        result.distance(a, c),
                    ):
                        continue
                    assert result.distance(a, c) <= (
                        result.distance(a, b) + result.distance(b, c)
                    )
