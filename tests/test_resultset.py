"""ResultSet persistence and the resumable sweep executor."""

import json

import pytest

from repro.api import ResultSet, SweepSpec, cell_key, run_sweep_spec
from repro.sim import Metrics
from repro.sim.experiments import ROW_FIELDS, run_sweep

SCENARIOS = ("bfs/grid", "bellman-ford/er")
SPEC = SweepSpec(scenarios=SCENARIOS, sizes=(9, 16), seeds=(0, 1))


class TestResultSetStore:
    def test_streams_one_json_line_per_append(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        store = ResultSet.open(path)
        store.append({"scenario": "s", "n": 8, "seed": 0, "rounds": 3})
        store.append({"scenario": "s", "n": 8, "seed": 1, "rounds": 4})
        # Flushed line-by-line: readable mid-run, before close().
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0])["rounds"] == 3
        store.close()

    def test_reload_restores_rows_and_completed_index(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        with ResultSet.open(path) as store:
            store.append({"scenario": "s", "n": 8, "seed": 0,
                          "params_digest": "d0", "rounds": 3})
        reloaded = ResultSet(path)
        assert len(reloaded) == 1
        assert reloaded.completed() == {("s", 8, 0, "d0")}
        assert reloaded.get(("s", 8, 0, "d0"))["rounds"] == 3

    def test_duplicate_cells_keep_first_write(self, tmp_path):
        store = ResultSet.open(tmp_path / "runs.jsonl")
        store.append({"scenario": "s", "n": 8, "seed": 0, "rounds": 3})
        store.append({"scenario": "s", "n": 8, "seed": 0, "rounds": 99})
        store.close()
        assert len(store) == 1
        assert store.get(("s", 8, 0, ""))["rounds"] == 3

    def test_truncated_trailing_line_is_dropped(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        good = json.dumps({"scenario": "s", "n": 8, "seed": 0, "rounds": 3})
        path.write_text(good + "\n" + '{"scenario": "s", "n": 16, "se')
        store = ResultSet(path)
        assert store.completed() == {("s", 8, 0, "")}

    def test_appending_after_a_torn_tail_keeps_the_file_loadable(self, tmp_path):
        # The torn line must be truncated away on disk, or the next append
        # would concatenate onto it and corrupt the store permanently.
        path = tmp_path / "runs.jsonl"
        good = json.dumps({"scenario": "s", "n": 8, "seed": 0, "rounds": 3})
        path.write_text(good + "\n" + '{"scenario": "s", "n": 16, "se')
        store = ResultSet(path)
        store.append({"scenario": "s", "n": 16, "seed": 0, "rounds": 5})
        store.close()
        reloaded = ResultSet(path)
        assert reloaded.completed() == {("s", 8, 0, ""), ("s", 16, 0, "")}
        assert reloaded.get(("s", 16, 0, ""))["rounds"] == 5

    def test_corrupt_interior_line_is_loud(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        good = json.dumps({"scenario": "s", "n": 8, "seed": 0, "rounds": 3})
        path.write_text("not json\n" + good + "\n")
        with pytest.raises(ValueError, match="corrupt result line"):
            ResultSet(path)

    def test_memory_store_has_no_file(self):
        store = ResultSet()
        store.append({"scenario": "s", "n": 8, "seed": 0})
        assert store.path is None
        assert ("s", 8, 0, "") in store


class TestSweepSpecExecution:
    def test_rows_follow_cross_product_order(self):
        rows = run_sweep_spec(SPEC)
        key = [(r["scenario"], r["n"], r["seed"]) for r in rows]
        assert key == [(name, n, seed) for name in SCENARIOS for n in (9, 16) for seed in (0, 1)]
        assert all(tuple(row) == ROW_FIELDS for row in rows)

    @pytest.mark.parametrize("workers", [1, 3])
    def test_store_records_carry_serialized_metrics(self, tmp_path, workers):
        path = tmp_path / "runs.jsonl"
        spec = SweepSpec(scenarios=SCENARIOS, sizes=(9, 16), seeds=(0,),
                         workers=workers, output=str(path))
        rows = run_sweep_spec(spec)
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert {cell_key(r) for r in records} == {cell_key(r) for r in rows}
        for record in records:
            metrics = Metrics.from_dict(record["metrics"])
            assert metrics.rounds == record["rounds"]
            assert metrics.total_messages == record["messages"]
            assert metrics.max_congestion == record["congestion"]
            assert metrics.max_energy == record["energy"]


class TestResume:
    @pytest.mark.parametrize("workers", [1, 3])
    def test_resume_equals_fresh_at_any_worker_count(self, tmp_path, workers):
        fresh = run_sweep_spec(SPEC)
        path = tmp_path / "runs.jsonl"
        spec = SweepSpec(scenarios=SCENARIOS, sizes=(9, 16), seeds=(0, 1),
                         workers=workers, output=str(path))
        first = run_sweep_spec(spec)
        # Simulate an interruption: drop all but the first three cells
        # (plus a torn trailing write).
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:3]) + "\n" + lines[3][:17])
        resumed = run_sweep_spec(spec)
        assert resumed == first == fresh

    def test_resume_skips_completed_cells(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        spec = SweepSpec(scenarios=("bfs/grid",), sizes=(9, 16), seeds=(0, 1),
                         output=str(path))
        run_sweep_spec(spec)
        executed = []
        run_sweep_spec(spec, progress=lambda done, total, row: executed.append(row))
        assert executed == []  # everything was reused from the store

    def test_resume_runs_only_missing_cells(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        spec = SweepSpec(scenarios=("bfs/grid",), sizes=(9, 16), seeds=(0, 1),
                         output=str(path))
        full = run_sweep_spec(spec)
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:2]) + "\n")
        executed = []
        resumed = run_sweep_spec(
            spec, progress=lambda done, total, row: executed.append(cell_key(row))
        )
        assert resumed == full
        kept = {cell_key(json.loads(line)) for line in lines[:2]}
        assert set(executed) == {cell_key(r) for r in full} - kept

    def test_widening_a_spec_reuses_the_narrow_run(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        narrow = SweepSpec(scenarios=("bfs/grid",), sizes=(9,), seeds=(0,),
                           output=str(path))
        run_sweep_spec(narrow)
        wide = SweepSpec(scenarios=("bfs/grid",), sizes=(9, 16), seeds=(0, 1),
                         output=str(path))
        executed = []
        rows = run_sweep_spec(
            wide, progress=lambda done, total, row: executed.append(cell_key(row))
        )
        assert len(rows) == 4
        assert ("bfs/grid", 9, 0) not in executed
        assert len(executed) == 3


class TestProgressCallback:
    def test_counts_cover_reused_and_fresh_cells(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        spec = SweepSpec(scenarios=("bfs/grid",), sizes=(9, 16), seeds=(0, 1),
                         output=str(path))
        seen = []
        run_sweep_spec(spec, progress=lambda done, total, row: seen.append((done, total)))
        assert seen == [(1, 4), (2, 4), (3, 4), (4, 4)]
        # Drop half the store: resume reports progress starting past the
        # reused cells.
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:2]) + "\n")
        seen.clear()
        run_sweep_spec(spec, progress=lambda done, total, row: seen.append((done, total)))
        assert seen == [(3, 4), (4, 4)]


class TestLegacyShim:
    def test_run_sweep_is_deprecated_but_identical(self):
        spec_rows = run_sweep_spec(SPEC)
        with pytest.deprecated_call():
            legacy = run_sweep(list(SCENARIOS), sizes=(9, 16), seeds=(0, 1))
        assert legacy == spec_rows

    def test_shim_preserves_empty_cross_product_contract(self):
        # The pre-spec run_sweep returned [] for an empty cross product;
        # the shim must not surface SweepSpec's stricter validation.
        with pytest.deprecated_call():
            assert run_sweep([], sizes=(8,)) == []
        with pytest.deprecated_call():
            assert run_sweep(["bfs/grid"], sizes=()) == []
        with pytest.deprecated_call():
            assert run_sweep(["bfs/grid"], sizes=(8,), seeds=()) == []
        with pytest.deprecated_call():
            assert run_sweep(iter(["bfs/grid"]), sizes=(9,)) != []  # generators work

    @pytest.mark.parametrize("workers", [None, 3])
    def test_shim_worker_counts_match_spec_path(self, workers):
        with pytest.deprecated_call():
            legacy = run_sweep(list(SCENARIOS), sizes=(9, 16), seeds=(0, 1),
                               workers=workers)
        spec = SweepSpec(scenarios=SCENARIOS, sizes=(9, 16), seeds=(0, 1),
                         workers=workers or 1)
        assert legacy == run_sweep_spec(spec)
