"""ResultSet persistence and the resumable sweep executor."""

import json

import pytest

from repro.api import ResultSet, SweepSpec, cell_key, run_sweep_spec
from repro.sim import Metrics
from repro.sim.experiments import ROW_FIELDS, run_sweep

SCENARIOS = ("bfs/grid", "bellman-ford/er")
SPEC = SweepSpec(scenarios=SCENARIOS, sizes=(9, 16), seeds=(0, 1))


class TestResultSetStore:
    def test_streams_one_json_line_per_append(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        store = ResultSet.open(path)
        store.append({"scenario": "s", "n": 8, "seed": 0, "rounds": 3})
        store.append({"scenario": "s", "n": 8, "seed": 1, "rounds": 4})
        # Flushed line-by-line: readable mid-run, before close().
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0])["rounds"] == 3
        store.close()

    def test_reload_restores_rows_and_completed_index(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        with ResultSet.open(path) as store:
            store.append({"scenario": "s", "n": 8, "seed": 0,
                          "params_digest": "d0", "rounds": 3})
        reloaded = ResultSet(path)
        assert len(reloaded) == 1
        assert reloaded.completed() == {("s", 8, 0, "d0")}
        assert reloaded.get(("s", 8, 0, "d0"))["rounds"] == 3

    def test_duplicate_cells_keep_first_write(self, tmp_path):
        store = ResultSet.open(tmp_path / "runs.jsonl")
        store.append({"scenario": "s", "n": 8, "seed": 0, "rounds": 3})
        store.append({"scenario": "s", "n": 8, "seed": 0, "rounds": 99})
        store.close()
        assert len(store) == 1
        assert store.get(("s", 8, 0, ""))["rounds"] == 3

    def test_truncated_trailing_line_is_dropped(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        good = json.dumps({"scenario": "s", "n": 8, "seed": 0, "rounds": 3})
        path.write_text(good + "\n" + '{"scenario": "s", "n": 16, "se')
        store = ResultSet(path)
        assert store.completed() == {("s", 8, 0, "")}

    def test_appending_after_a_torn_tail_keeps_the_file_loadable(self, tmp_path):
        # The torn line must be truncated away on disk, or the next append
        # would concatenate onto it and corrupt the store permanently.
        path = tmp_path / "runs.jsonl"
        good = json.dumps({"scenario": "s", "n": 8, "seed": 0, "rounds": 3})
        path.write_text(good + "\n" + '{"scenario": "s", "n": 16, "se')
        store = ResultSet(path)
        store.append({"scenario": "s", "n": 16, "seed": 0, "rounds": 5})
        store.close()
        reloaded = ResultSet(path)
        assert reloaded.completed() == {("s", 8, 0, ""), ("s", 16, 0, "")}
        assert reloaded.get(("s", 16, 0, ""))["rounds"] == 5

    def test_corrupt_interior_line_is_skipped_with_a_warning(self, tmp_path):
        # A torn line mid-file (a writer crashed, a later run appended past
        # it) loses exactly that cell — the load must keep every intact
        # record instead of aborting the whole store.
        path = tmp_path / "runs.jsonl"
        good = json.dumps({"scenario": "s", "n": 8, "seed": 0, "rounds": 3})
        path.write_text("not json\n" + good + "\n")
        with pytest.warns(RuntimeWarning, match="skipping corrupt result line"):
            store = ResultSet(path)
        assert store.completed() == {("s", 8, 0, "")}

    def test_mid_file_torn_line_then_valid_append_loads(self, tmp_path):
        # The crash-during-concurrent-write shape: a torn JSON prefix,
        # *then* later valid appends.  Only the torn cell is lost.
        path = tmp_path / "runs.jsonl"
        first = json.dumps({"scenario": "s", "n": 8, "seed": 0, "rounds": 3})
        torn = '{"scenario": "s", "n": 16, "se'
        later = json.dumps({"scenario": "s", "n": 32, "seed": 0, "rounds": 7})
        path.write_text(first + "\n" + torn + "\n" + later + "\n")
        with pytest.warns(RuntimeWarning, match="runs.jsonl:2"):
            store = ResultSet(path)
        assert store.completed() == {("s", 8, 0, ""), ("s", 32, 0, "")}
        # The torn cell re-runs on resume and appends cleanly.
        store.append({"scenario": "s", "n": 16, "seed": 0, "rounds": 5})
        store.close()
        with pytest.warns(RuntimeWarning):
            reloaded = ResultSet(path)
        assert reloaded.get(("s", 16, 0, ""))["rounds"] == 5

    def test_memory_store_has_no_file(self):
        store = ResultSet()
        store.append({"scenario": "s", "n": 8, "seed": 0})
        assert store.path is None
        assert ("s", 8, 0, "") in store


class TestSweepSpecExecution:
    def test_rows_follow_cross_product_order(self):
        rows = run_sweep_spec(SPEC)
        key = [(r["scenario"], r["n"], r["seed"]) for r in rows]
        assert key == [(name, n, seed) for name in SCENARIOS for n in (9, 16) for seed in (0, 1)]
        assert all(tuple(row) == ROW_FIELDS for row in rows)

    @pytest.mark.parametrize("workers", [1, 3])
    def test_store_records_carry_serialized_metrics(self, tmp_path, workers):
        path = tmp_path / "runs.jsonl"
        spec = SweepSpec(scenarios=SCENARIOS, sizes=(9, 16), seeds=(0,),
                         workers=workers, output=str(path))
        rows = run_sweep_spec(spec)
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert {cell_key(r) for r in records} == {cell_key(r) for r in rows}
        for record in records:
            metrics = Metrics.from_dict(record["metrics"])
            assert metrics.rounds == record["rounds"]
            assert metrics.total_messages == record["messages"]
            assert metrics.max_congestion == record["congestion"]
            assert metrics.max_energy == record["energy"]


class TestResume:
    @pytest.mark.parametrize("workers", [1, 3])
    def test_resume_equals_fresh_at_any_worker_count(self, tmp_path, workers):
        fresh = run_sweep_spec(SPEC)
        path = tmp_path / "runs.jsonl"
        spec = SweepSpec(scenarios=SCENARIOS, sizes=(9, 16), seeds=(0, 1),
                         workers=workers, output=str(path))
        first = run_sweep_spec(spec)
        # Simulate an interruption: drop all but the first three cells
        # (plus a torn trailing write).
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:3]) + "\n" + lines[3][:17])
        resumed = run_sweep_spec(spec)
        assert resumed == first == fresh

    def test_resume_skips_completed_cells(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        spec = SweepSpec(scenarios=("bfs/grid",), sizes=(9, 16), seeds=(0, 1),
                         output=str(path))
        run_sweep_spec(spec)
        executed = []
        run_sweep_spec(spec, progress=lambda done, total, row: executed.append(row))
        assert executed == []  # everything was reused from the store

    def test_resume_runs_only_missing_cells(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        spec = SweepSpec(scenarios=("bfs/grid",), sizes=(9, 16), seeds=(0, 1),
                         output=str(path))
        full = run_sweep_spec(spec)
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:2]) + "\n")
        executed = []
        resumed = run_sweep_spec(
            spec, progress=lambda done, total, row: executed.append(cell_key(row))
        )
        assert resumed == full
        kept = {cell_key(json.loads(line)) for line in lines[:2]}
        assert set(executed) == {cell_key(r) for r in full} - kept

    def test_resume_hits_when_the_family_rounds_the_requested_size(self, tmp_path):
        # A grid at size 12 builds a 3x3 = 9-node instance.  Resume must
        # address the cell by the REQUESTED size (the "size" record field):
        # keying on the built size made every resume of such a cell miss
        # and silently re-run it.
        path = tmp_path / "runs.jsonl"
        spec = SweepSpec(scenarios=("bfs/grid",), sizes=(12,), seeds=(0,),
                         output=str(path))
        rows = run_sweep_spec(spec)
        assert rows[0]["n"] == 9 and rows[0]["size"] == 12  # rounded instance
        executed = []
        run_sweep_spec(spec, progress=lambda done, total, row: executed.append(row))
        assert executed == []

    def test_resuming_a_pre_size_store_supersedes_not_duplicates(self, tmp_path):
        # A PR4-era store recorded rounding-family cells under the BUILT
        # size (grid 12 -> n=9, no "size" field).  Resuming re-runs the
        # cell under requested-size addressing; the fresh record must
        # supersede the legacy row in place, not sit beside it (tables and
        # fits double-counting the cell would be silent corruption).
        from repro.sim.experiments import get_scenario, scenario_digest

        path = tmp_path / "runs.jsonl"
        digest = scenario_digest(get_scenario("bfs/grid"))
        legacy = {"scenario": "bfs/grid", "family": "grid", "algorithm": "bfs",
                  "n": 9, "m": 12, "seed": 0, "params_digest": digest,
                  "rounds": 5, "messages": 48, "lost_messages": 0,
                  "congestion": 1, "energy": 2}
        path.write_text(json.dumps(legacy) + "\n")
        spec = SweepSpec(scenarios=("bfs/grid",), sizes=(12,), seeds=(0,),
                         output=str(path))
        rows = run_sweep_spec(spec)
        assert len(rows) == 1 and rows[0]["size"] == 12
        reloaded = ResultSet(path)
        assert len(reloaded) == 1  # superseded, not duplicated
        assert reloaded.rows()[0]["size"] == 12

    def test_pre_size_records_are_rerun_not_reused_and_never_evicted_live(self, tmp_path):
        # The ambiguous case: a legacy n=9 grid record could be the size-9
        # OR the size-12 cell.  It must not be reused for either (it is
        # re-run, like pre-digest records), and the store must end up with
        # exactly one row per requested size — whichever fresh record
        # lands first recycles the stale slot, the other appends.
        from repro.sim.experiments import get_scenario, scenario_digest

        path = tmp_path / "runs.jsonl"
        digest = scenario_digest(get_scenario("bfs/grid"))
        legacy = {"scenario": "bfs/grid", "family": "grid", "algorithm": "bfs",
                  "n": 9, "m": 12, "seed": 0, "params_digest": digest,
                  "rounds": 5, "messages": 48, "lost_messages": 0,
                  "congestion": 1, "energy": 2}
        path.write_text(json.dumps(legacy) + "\n")
        spec = SweepSpec(scenarios=("bfs/grid",), sizes=(9, 12), seeds=(0,),
                         output=str(path))
        executed = []
        rows = run_sweep_spec(spec, progress=lambda d, t, r: executed.append(r["size"]))
        assert executed == [9, 12]  # neither cell trusted the legacy record
        assert [r["size"] for r in rows] == [9, 12]
        reloaded = ResultSet(path)
        assert sorted(r["size"] for r in reloaded.rows()) == [9, 12]
        assert all("size" in r for r in reloaded.rows())

    def test_a_sized_record_never_masquerades_as_its_built_size_cell(self, tmp_path):
        # grid sizes 9 and 12 both build 9-node instances: two DISTINCT
        # cells with identical measurements.  The legacy-supersede path
        # must only absorb records that LACK a size field.
        store = ResultSet.open(tmp_path / "runs.jsonl")
        store.append({"scenario": "g", "n": 9, "seed": 0, "size": 9,
                      "params_digest": "d", "rounds": 3})
        store.append({"scenario": "g", "n": 9, "seed": 0, "size": 12,
                      "params_digest": "d", "rounds": 3})
        store.close()
        assert len(store) == 2
        assert {("g", 9, 0, "d"), ("g", 12, 0, "d")} == store.completed()

    def test_widening_a_spec_reuses_the_narrow_run(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        narrow = SweepSpec(scenarios=("bfs/grid",), sizes=(9,), seeds=(0,),
                           output=str(path))
        run_sweep_spec(narrow)
        wide = SweepSpec(scenarios=("bfs/grid",), sizes=(9, 16), seeds=(0, 1),
                         output=str(path))
        executed = []
        rows = run_sweep_spec(
            wide, progress=lambda done, total, row: executed.append(cell_key(row))
        )
        assert len(rows) == 4
        assert ("bfs/grid", 9, 0) not in executed
        assert len(executed) == 3


class TestProgressCallback:
    def test_counts_cover_reused_and_fresh_cells(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        spec = SweepSpec(scenarios=("bfs/grid",), sizes=(9, 16), seeds=(0, 1),
                         output=str(path))
        seen = []
        run_sweep_spec(spec, progress=lambda done, total, row: seen.append((done, total)))
        assert seen == [(1, 4), (2, 4), (3, 4), (4, 4)]
        # Drop half the store: resume reports progress starting past the
        # reused cells.
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:2]) + "\n")
        seen.clear()
        run_sweep_spec(spec, progress=lambda done, total, row: seen.append((done, total)))
        assert seen == [(3, 4), (4, 4)]


class TestLegacyShim:
    def test_run_sweep_is_deprecated_but_identical(self):
        spec_rows = run_sweep_spec(SPEC)
        with pytest.deprecated_call():
            legacy = run_sweep(list(SCENARIOS), sizes=(9, 16), seeds=(0, 1))
        assert legacy == spec_rows

    def test_shim_preserves_empty_cross_product_contract(self):
        # The pre-spec run_sweep returned [] for an empty cross product;
        # the shim must not surface SweepSpec's stricter validation.
        with pytest.deprecated_call():
            assert run_sweep([], sizes=(8,)) == []
        with pytest.deprecated_call():
            assert run_sweep(["bfs/grid"], sizes=()) == []
        with pytest.deprecated_call():
            assert run_sweep(["bfs/grid"], sizes=(8,), seeds=()) == []
        with pytest.deprecated_call():
            assert run_sweep(iter(["bfs/grid"]), sizes=(9,)) != []  # generators work

    @pytest.mark.parametrize("workers", [None, 3])
    def test_shim_worker_counts_match_spec_path(self, workers):
        with pytest.deprecated_call():
            legacy = run_sweep(list(SCENARIOS), sizes=(9, 16), seeds=(0, 1),
                               workers=workers)
        spec = SweepSpec(scenarios=SCENARIOS, sizes=(9, 16), seeds=(0, 1),
                         workers=workers or 1)
        assert legacy == run_sweep_spec(spec)
