"""Shared helpers for the test suite."""

from __future__ import annotations

import random

import pytest

from repro import graphs
from repro.graphs import Graph, INFINITY


def oracle_distances(graph: Graph, sources: dict) -> dict:
    """Offset-aware ground truth: ``min_s (offset_s + dist(s, v))``."""
    best = {u: INFINITY for u in graph.nodes()}
    for s, offset in sources.items():
        d = graph.dijkstra([s])
        for u in graph.nodes():
            best[u] = min(best[u], offset + d[u])
    return best


def assert_distances_equal(actual: dict, expected: dict, context: str = "") -> None:
    bad = [
        (u, actual[u], expected[u])
        for u in expected
        if actual.get(u) != expected[u]
    ]
    assert not bad, f"{context}: first mismatches {bad[:5]}"


def small_weighted_graph(n: int, seed: int, max_weight: int = 10) -> Graph:
    return graphs.random_weights(
        graphs.random_connected_graph(n, seed=seed), max_weight, seed=seed + 1000
    )


@pytest.fixture
def rng():
    return random.Random(12345)
