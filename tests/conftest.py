"""Fixtures for the test suite.

Shared helper *functions* live in :mod:`repro.testing` (importable from any
test or benchmark); only pytest fixtures belong here.
"""

from __future__ import annotations

import random

import pytest


@pytest.fixture
def rng():
    return random.Random(12345)
