"""The seeded fault-injection plane: grammar, determinism, both engines.

Covers the fault axis end to end: the ``FaultModel`` parse/canonical
grammar, process-stable draw keying, crash-restart semantics in the
synchronous and event engines (byte-identical under unit latency), the
``fault_model="none"`` differential guarantee (rows, metrics payloads and
resume digests unchanged from the pre-fault engines), worker-count and
shard stability of faulted sweeps, the sweep-level tolerance gate with
its ``force_faults`` override, the negative control (drop-injected BFS
demonstrably breaks), and the ``stop_reason``/``virtual_time`` columns of
duration-bounded scenarios.
"""

import json

import pytest

from repro.api import (
    ResultSet,
    SpecError,
    SweepSpec,
    get_algorithm_spec,
    merge_shards,
    run_sweep_spec,
)
from repro.graphs import INFINITY, generators
from repro.sim import (
    FaultModel,
    Metrics,
    canonical_fault,
    parse_fault_model,
    simulation_engine,
)
from repro.sim.experiments import (
    Scenario,
    SweepError,
    _run_cell,
    get_scenario,
    list_scenarios,
    register_scenario,
    run_scenario,
    scenario_digest,
)
from repro.__main__ import main

#: The registered scenarios that carry their own non-none fault plane.
FAULT_SCENARIOS = (
    "bellman-ford/er@drop5",
    "bellman-ford/grid@lossy",
    "bellman-ford/er@crashrestart",
    "bfs/grid@crash2",
)


# ----------------------------------------------------------------------
# grammar: parse / canonical round-trips and rejections
# ----------------------------------------------------------------------
def test_none_and_zero_rates_parse_to_no_plane():
    assert parse_fault_model(None) is None
    assert parse_fault_model("none") is None
    assert parse_fault_model("drop:0") is None
    assert parse_fault_model("drop:0+dup:0") is None
    assert canonical_fault("none") == "none"
    assert canonical_fault("dup:0.0") == "none"


def test_canonical_orders_terms_and_normalizes_numbers():
    assert canonical_fault("dup:0.010+drop:0.050") == "drop:0.05+dup:0.01"
    assert canonical_fault("restart:6+crash:2@3") == "crash:2@3+restart:6"
    assert canonical_fault("crash:1@0") == "crash:1@0"
    # Canonical strings are fixed points of the grammar.
    for spec in ("drop:0.1", "drop:0.05+dup:0.01", "crash:2@3+restart:6",
                 "drop:0.1+dup:0.05+crash:1@2+restart:4"):
        assert canonical_fault(canonical_fault(spec)) == canonical_fault(spec)


def test_model_instance_passes_through_with_its_own_seed():
    plane = FaultModel(drop=0.25, seed=9)
    assert parse_fault_model(plane, seed=0) is plane
    assert plane.name == "drop:0.25"
    assert plane.kinds == frozenset({"drop"})


def test_kinds_reflect_active_hazards():
    assert parse_fault_model("drop:0.1+dup:0.2").kinds == frozenset({"drop", "dup"})
    assert parse_fault_model("crash:1@5").kinds == frozenset({"crash"})


@pytest.mark.parametrize("bad", [
    "drop:1.0", "dup:-0.1", "drop:1.5", "drop", "drop:", "drop:x",
    "restart:3", "crash:0@2", "crash:2", "crash:2@-1", "crash:2@3+restart:0",
    "drop:0.1+drop:0.2", "gamma:0.5", "", "none+drop:0.1",
])
def test_malformed_specs_raise_value_error(bad):
    with pytest.raises(ValueError):
        parse_fault_model(bad)


def test_parse_errors_pinpoint_the_offending_term():
    # A composed spec must name which term broke, its 1-based position,
    # and the text that failed — not make the user diff the spec by eye.
    with pytest.raises(ValueError, match=r"term 2 of 2 \('crash:2@x'\)") as exc:
        parse_fault_model("drop:0.1+crash:2@x")
    assert "expected an integer for the crash time (after '@'), got 'x'" in str(exc.value)

    with pytest.raises(ValueError, match=r"term 3 of 3 \('restart:0'\)"):
        parse_fault_model("drop:0.1+crash:2@5+restart:0")

    with pytest.raises(ValueError, match=r"repeats 'drop' \(already given at term 1\)"):
        parse_fault_model("drop:0.1+drop:0.2")

    # Single-term specs name the term without position noise.
    with pytest.raises(
        ValueError, match=r"term 'drop:x'.*expected a number for the drop probability, got 'x'"
    ):
        parse_fault_model("drop:x")

    # Range errors from probability checks carry the term context too.
    with pytest.raises(ValueError, match=r"term 2 of 2 \('dup:1.5'\).*\[0, 1\)"):
        parse_fault_model("drop:0.1+dup:1.5")


# ----------------------------------------------------------------------
# determinism: draws and crash plans are pure functions of their keys
# ----------------------------------------------------------------------
def test_draws_are_deterministic_across_instances_and_seed_sensitive():
    a = parse_fault_model("drop:0.3+dup:0.2", seed=5)
    b = parse_fault_model("drop:0.3+dup:0.2", seed=5)
    other = parse_fault_model("drop:0.3+dup:0.2", seed=6)
    keys = [(s, d, t, i) for s in range(4) for d in range(4) for t in range(3)
            for i in range(2)]
    drops_a = [a.drop_message(*k) for k in keys]
    assert drops_a == [b.drop_message(*k) for k in keys]
    assert [a.duplicate_message(*k) for k in keys] == \
        [b.duplicate_message(*k) for k in keys]
    assert drops_a != [other.drop_message(*k) for k in keys]
    assert any(drops_a) and not all(drops_a)


def test_composing_dup_does_not_perturb_drop_draws():
    # Draws key off the individual rate, not the whole model name.
    bare = parse_fault_model("drop:0.3", seed=5)
    composed = parse_fault_model("drop:0.3+dup:0.2", seed=5)
    keys = [(s, d, t, i) for s in range(6) for d in range(6) for t in range(4)
            for i in range(2)]
    assert [bare.drop_message(*k) for k in keys] == \
        [composed.drop_message(*k) for k in keys]


def test_crash_plan_is_label_set_deterministic_and_staggered():
    plane = parse_fault_model("crash:3@4+restart:2", seed=1)
    labels = list(range(10))
    plan = plane.crash_plan(labels)
    assert plan == plane.crash_plan(list(reversed(labels)))  # order-free
    assert len(plan) == 3
    crash_times = sorted(when for when, _ in plan.values())
    assert crash_times == [4, 5, 6]  # staggered, j-th victim at r + j
    for when, restart in plan.values():
        assert restart == when + 2
    # Clamped to the network size; restart None without a restart term.
    assert len(parse_fault_model("crash:5@0").crash_plan([1, 2])) == 2
    assert all(r is None for _, r in
               parse_fault_model("crash:2@1").crash_plan(labels).values())


# ----------------------------------------------------------------------
# engines: identical faulted executions, correct metering, restarts
# ----------------------------------------------------------------------
def _bellman_ford_under(fault, engine, seed=3):
    from repro.baselines import run_bellman_ford

    graph = generators.make_family("er", 16, 9, seed=seed)
    metrics = Metrics()
    with simulation_engine(engine, "unit", seed=seed, faults=fault):
        distances = run_bellman_ford(graph, next(iter(graph.nodes())), metrics=metrics)
    return distances, metrics


@pytest.mark.parametrize("fault", [
    "drop:0.1", "dup:0.2", "drop:0.1+dup:0.05",
    "crash:2@2+restart:3", "crash:1@4",
])
def test_faulted_runs_byte_identical_across_engines(fault):
    sync_dist, sync_metrics = _bellman_ford_under(fault, "round")
    event_dist, event_metrics = _bellman_ford_under(fault, "event")
    assert event_dist == sync_dist
    assert event_metrics.to_dict() == sync_metrics.to_dict()


def test_fault_counters_meter_what_happened():
    _, metrics = _bellman_ford_under("drop:0.1+dup:0.05", "round")
    assert metrics.messages_dropped > 0
    assert metrics.messages_duplicated > 0
    assert metrics.nodes_crashed == 0 and metrics.recoveries == 0
    _, metrics = _bellman_ford_under("crash:2@2+restart:3", "round")
    assert metrics.nodes_crashed == 2 and metrics.recoveries == 2
    assert metrics.messages_dropped > 0  # deliveries to the dead are dropped
    payload = metrics.to_dict()["faults"]
    assert payload["nodes_crashed"] == 2 and payload["recoveries"] == 2
    assert Metrics.from_dict(metrics.to_dict()).to_dict() == metrics.to_dict()


def test_crash_without_restart_partitions_and_restart_relearns():
    from repro.baselines import run_bellman_ford

    graph = generators.path_graph(8)
    plane = parse_fault_model("crash:1@2", seed=0)
    victim = next(iter(plane.crash_plan(graph.nodes())))
    metrics = Metrics()
    with simulation_engine("round", "unit", seed=0, faults="crash:1@2"):
        dead = run_bellman_ford(graph, 0, metrics=metrics)
    assert metrics.nodes_crashed == 1 and metrics.recoveries == 0
    if victim != 0:
        # Everything strictly past a mid-path crash is unreachable.
        assert all(dead[u] == INFINITY for u in graph.nodes() if u > victim)
    with simulation_engine("round", "unit", seed=0, faults="crash:1@2+restart:2"):
        revived = run_bellman_ford(graph, 0, metrics=Metrics())
    # With a restart, re-broadcasts reteach the rebooted node: exact again.
    assert revived == graph.dijkstra([0])


# ----------------------------------------------------------------------
# the "none" differential guarantee and resume-digest stability
# ----------------------------------------------------------------------
def test_pre_fault_digests_are_pinned():
    # Byte-compat with stores written before the fault plane existed: the
    # fault-free digest payload must hash exactly as it did in PR 6.
    assert scenario_digest(get_scenario("bellman-ford/er")) == "442c56e17a83"
    assert scenario_digest(
        get_scenario("bellman-ford/er"), fault_model="none"
    ) == "442c56e17a83"
    assert scenario_digest(
        get_scenario("bellman-ford/er"), fault_model="drop:0.05"
    ) != "442c56e17a83"


@pytest.mark.parametrize("engine", ["round", "event"])
def test_none_rows_and_metrics_carry_no_fault_columns(engine):
    for name in list_scenarios():
        scenario = get_scenario(name)
        if scenario.fault_model != "none" or scenario.max_time is not None:
            continue
        row, metrics = _run_cell(name, 12, 0, engine=None if engine == "round" else engine,
                                 fault_model="none")
        for column in ("fault_model", "robustness", "messages_dropped",
                       "messages_duplicated", "nodes_crashed", "recoveries",
                       "stop_reason", "virtual_time"):
            assert column not in row, (name, column)
        assert "faults" not in metrics.to_dict()


def test_none_resumes_pre_fault_stores_verbatim(tmp_path):
    # A store written with no fault axis must satisfy a fault_model="none"
    # resume without re-running a single cell — and vice versa.
    path = tmp_path / "runs.jsonl"
    spec = SweepSpec(scenarios=("bellman-ford/er", "bfs/grid"), sizes=(12, 18),
                     seeds=(0,), output=str(path))
    baseline = run_sweep_spec(spec)
    executed = []
    resumed = run_sweep_spec(
        spec.replace(fault_model="none"),
        progress=lambda done, total, row: executed.append(row),
    )
    assert executed == []
    assert resumed == baseline


# ----------------------------------------------------------------------
# the sweep axis: rows, worker counts, shards, resume
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", FAULT_SCENARIOS)
def test_fault_scenarios_expose_robustness_columns_on_both_engines(name):
    row, metrics = _run_cell(name, 16, 1)
    event_row, event_metrics = _run_cell(name, 16, 1, engine="event")
    assert event_row == row
    assert event_metrics.to_dict() == metrics.to_dict()
    assert row["fault_model"] == canonical_fault(get_scenario(name).fault_model)
    assert row["robustness"] in ("exact", "survivors")
    assert {"messages_dropped", "messages_duplicated", "nodes_crashed",
            "recoveries"} <= set(row)


def test_faulted_sweep_rows_stable_across_worker_counts():
    spec = SweepSpec(scenarios=("bellman-ford/er", "bellman-ford/grid@lossy"),
                     sizes=(12, 18), seeds=(0, 1), fault_model="drop:0.1")
    solo = run_sweep_spec(spec)
    assert run_sweep_spec(spec.replace(workers=2)) == solo
    assert all(row["fault_model"] == "drop:0.1" for row in solo)
    assert all(row["params_digest"] != scenario_digest(get_scenario(row["scenario"]))
               for row in solo)  # the non-none plane joins the resume digest


def test_faulted_shards_merge_to_the_unsharded_table(tmp_path):
    spec = SweepSpec(scenarios=("bellman-ford/er", "bellman-ford/grid@lossy"),
                     sizes=(12, 18), seeds=(0, 1), fault_model="drop:0.1",
                     output=str(tmp_path / "faulted.jsonl"))
    for shard in spec.shard(2):
        run_sweep_spec(shard)
    merged = merge_shards(spec.output)
    assert [r["scenario"] for r in merged] != []
    executed = []
    rows = run_sweep_spec(spec, progress=lambda d, t, row: executed.append(row))
    assert executed == []  # the merged store already held every faulted cell
    assert rows == run_sweep_spec(spec.replace(output=None))


def test_faulted_resume_reuses_only_matching_fault_cells(tmp_path):
    path = tmp_path / "runs.jsonl"
    spec = SweepSpec(scenarios=("bellman-ford/er",), sizes=(12,), seeds=(0,),
                     output=str(path), fault_model="drop:0.1")
    run_sweep_spec(spec)
    # Same plane: full reuse.  Different plane: full re-run.
    for fault, expected_new in (("drop:0.1", 0), ("drop:0.2", 1)):
        executed = []
        run_sweep_spec(spec.replace(fault_model=fault),
                       progress=lambda d, t, row: executed.append(row))
        assert len(executed) == expected_new, fault


# ----------------------------------------------------------------------
# tolerance gate, force override, negative control
# ----------------------------------------------------------------------
def test_gate_rejects_explicit_non_tolerant_scenarios():
    spec = SweepSpec(scenarios=("sssp/er",), sizes=(12,), fault_model="drop:0.1")
    with pytest.raises(SpecError, match="tolerance"):
        run_sweep_spec(spec)


def test_gate_auto_restricts_catalog_sweeps_to_tolerant_scenarios():
    rows = run_sweep_spec(SweepSpec(sizes=(12,), fault_model="dup:0.1"))
    ran = {row["scenario"] for row in rows}
    assert ran  # dup-tolerant scenarios exist (bellman-ford + bfs families)
    for name in ran:
        tolerance = get_algorithm_spec(get_scenario(name).algorithm).fault_tolerance
        assert "dup" in tolerance


def test_force_faults_bypasses_the_gate_and_the_protocol_breaks():
    spec = SweepSpec(scenarios=("bfs/grid",), sizes=(36,), fault_model="drop:0.3",
                     force_faults=True)
    with pytest.raises(SweepError, match="sandwich"):
        run_sweep_spec(spec)


def test_negative_control_bfs_breaks_under_drops_but_not_dup():
    # The ungated single-cell API shows exactly how a non-tolerant protocol
    # fails: BFS offers are one-shot, so drops lose distances for good...
    with pytest.raises(SweepError, match="bfs"):
        run_scenario("bfs/grid", 36, seed=0, fault_model="drop:0.3")
    # ...while duplication is idempotent and stays exact.
    row = run_scenario("bfs/grid", 36, seed=0, fault_model="dup:0.3")
    assert row["robustness"] == "exact"
    assert row["messages_duplicated"] > 0


def test_registering_a_non_tolerant_faulted_scenario_fails():
    with pytest.raises(SweepError, match="tolerance"):
        register_scenario(Scenario("sssp/er@bad", "er", "sssp", max_weight=9,
                                   fault_model="drop:0.1"))
    with pytest.raises(SweepError, match="fault"):
        register_scenario(Scenario("bfs/grid@bad", "grid", "bfs",
                                   fault_model="drop:nope"))


def test_cli_gate_exits_2_without_force_faults(capsys):
    code = main(["sweep", "--scenarios", "bfs/grid", "--sizes", "12",
                 "--fault-model", "drop:0.3"])
    assert code == 2
    err = capsys.readouterr().err
    assert "tolerance" in err and "force" in err
    code = main(["sweep", "--scenarios", "bfs/grid", "--sizes", "12",
                 "--fault-model", "drop:0.3", "--force-faults"])
    assert code == 2  # the gate lifted; the oracle failure is the stop now
    assert "sandwich" in capsys.readouterr().err


# ----------------------------------------------------------------------
# duration-bounded runs: stop_reason / virtual_time columns
# ----------------------------------------------------------------------
def test_budgeted_scenario_surfaces_stop_reason_and_virtual_time():
    scenario = get_scenario("bellman-ford/er@budget")
    assert scenario.max_time == 24
    cut = run_scenario("bellman-ford/er@budget", 18, seed=0)
    assert cut["stop_reason"] == "max_time"
    assert 0 < cut["virtual_time"] <= scenario.max_time + 1
    # Small instances finish before the budget: completed, not cut.
    done = run_scenario("bellman-ford/er@budget", 12, seed=0)
    assert done["stop_reason"] == "completed"
    assert done["virtual_time"] == done["rounds"]
    # The bound forces the event engine by default and pins round parity.
    assert run_scenario("bellman-ford/er@budget", 18, seed=0, engine="event") == cut


def test_budget_columns_flow_through_stores_and_reports(tmp_path):
    from repro.analysis.sweeps import sweep_report, sweep_table

    spec = SweepSpec(scenarios=("bellman-ford/er@budget",), sizes=(12, 18),
                     seeds=(0,), output=str(tmp_path / "budget.jsonl"))
    rows = run_sweep_spec(spec)
    reloaded = run_sweep_spec(spec)
    assert reloaded == rows  # store round-trip keeps the extra columns
    table = sweep_table(rows)
    report = sweep_report(rows, title="budget")
    for text in (table, report):
        assert "stop_reason" in text and "max_time" in text
        assert "virtual_time" in text
    faulted = sweep_table([run_scenario("bellman-ford/grid@lossy", 16, seed=1)])
    assert "fault_model" in faulted and "robustness" in faulted


# ----------------------------------------------------------------------
# CLI surfaces: info / sweep --list print declared tolerances
# ----------------------------------------------------------------------
def test_info_and_list_print_declared_fault_tolerance(capsys):
    assert main(["info"]) == 0
    out = capsys.readouterr().out
    assert "faults=drop,dup,crash" in out  # bellman-ford
    assert "faults=dup,crash" in out       # bfs
    assert main(["sweep", "--list"]) == 0
    out = capsys.readouterr().out
    assert "faults=drop,dup,crash" in out
    assert "bellman-ford/er@drop5" in out
    assert main(["sweep", "--list", "--json"]) == 0
    catalog = json.loads(capsys.readouterr().out)
    by_name = {entry["name"]: entry for entry in catalog}
    assert by_name["bellman-ford/er@drop5"]["fault_model"] == "drop:0.05"
    assert by_name["bfs/grid"]["fault_tolerance"] == ["dup", "crash"]
    assert by_name["sssp/er"]["fault_tolerance"] == []
