"""Distributed Boruvka: spanning-forest validity and cost bounds (Thm 2.2)."""

from hypothesis import given, settings, strategies as st

from repro import graphs
from repro.core.boruvka import (
    boruvka_phase_count,
    boruvka_round_bound,
    build_maximal_forest,
)
from repro.graphs import Graph
from repro.sim import Metrics


class TestForestValidity:
    def test_path(self):
        g = graphs.path_graph(10)
        build_maximal_forest(g).validate_against(g)

    def test_cycle(self):
        g = graphs.cycle_graph(9)
        f = build_maximal_forest(g)
        f.validate_against(g)
        assert len(f.roots) == 1

    def test_complete(self):
        g = graphs.complete_graph(8)
        build_maximal_forest(g).validate_against(g)

    def test_grid(self):
        g = graphs.grid_graph(5, 5)
        build_maximal_forest(g).validate_against(g)

    def test_star(self):
        g = graphs.star_graph(12)
        build_maximal_forest(g).validate_against(g)

    def test_disconnected(self):
        g = Graph.from_edges([(0, 1), (2, 3), (3, 4)], nodes=[9])
        f = build_maximal_forest(g)
        f.validate_against(g)
        assert len(f.roots) == 3

    def test_singleton(self):
        g = Graph()
        g.add_node(0)
        f = build_maximal_forest(g)
        assert f.roots == [0]

    def test_empty(self):
        assert build_maximal_forest(Graph()).parent == {}

    def test_weighted_edges_do_not_matter(self):
        g = graphs.random_weights(graphs.random_connected_graph(15, seed=1), 9, seed=2)
        build_maximal_forest(g).validate_against(g)

    def test_many_random_graphs(self):
        for seed in range(8):
            g = graphs.random_graph(18, 0.12, seed=seed)
            build_maximal_forest(g).validate_against(g)

    def test_deterministic(self):
        g = graphs.random_graph(15, 0.2, seed=3)
        f1 = build_maximal_forest(g)
        f2 = build_maximal_forest(g)
        assert f1.parent == f2.parent


class TestBoruvkaCosts:
    def test_round_bound_respected(self):
        g = graphs.random_connected_graph(25, seed=4)
        m = Metrics()
        build_maximal_forest(g, metrics=m)
        assert m.rounds <= boruvka_round_bound(25)

    def test_congestion_logarithmic(self):
        g = graphs.random_connected_graph(40, seed=5)
        m = Metrics()
        build_maximal_forest(g, metrics=m)
        # O(1) messages per edge per phase; phases = O(log n).
        assert m.max_congestion <= 4 * boruvka_phase_count(40)

    def test_low_awake_time(self):
        # The event-driven protocol leaves nodes asleep between their
        # scheduled segment actions — the Thm 3.1 energy profile.
        g = graphs.path_graph(50)
        m = Metrics()
        build_maximal_forest(g, metrics=m)
        assert m.max_energy < m.rounds / 3

    def test_phase_count_bounds(self):
        assert boruvka_phase_count(2) == 2
        assert boruvka_phase_count(1024) == 11


@settings(max_examples=20, deadline=None)
@given(
    st.integers(min_value=1, max_value=20),
    st.floats(min_value=0.0, max_value=0.5),
    st.integers(min_value=0, max_value=10**6),
)
def test_property_forest_always_valid(n, p, seed):
    g = graphs.random_graph(n, p, seed=seed)
    build_maximal_forest(g).validate_against(g)


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=2, max_value=18), st.integers(min_value=0, max_value=10**6))
def test_property_tree_edge_count(n, seed):
    g = graphs.random_connected_graph(n, seed=seed)
    f = build_maximal_forest(g)
    non_roots = [u for u, p in f.parent.items() if p is not None]
    assert len(non_roots) == n - 1
