"""Unit tests for the graph substrate: structure, generators, IO, oracles."""

import pytest
from hypothesis import given, settings, strategies as st

from repro import graphs
from repro.graphs import Graph, INFINITY, dumps, loads


class TestGraphBasics:
    def test_empty_graph(self):
        g = Graph()
        assert g.num_nodes == 0
        assert g.num_edges == 0
        assert list(g.edges()) == []
        assert g.is_connected()

    def test_add_node_idempotent(self):
        g = Graph()
        g.add_node(1)
        g.add_node(1)
        assert g.num_nodes == 1

    def test_add_edge_creates_nodes(self):
        g = Graph()
        g.add_edge(1, 2, 5)
        assert g.has_node(1) and g.has_node(2)
        assert g.weight(1, 2) == 5
        assert g.weight(2, 1) == 5

    def test_self_loop_rejected(self):
        g = Graph()
        with pytest.raises(ValueError):
            g.add_edge(3, 3)

    def test_negative_weight_rejected(self):
        g = Graph()
        with pytest.raises(ValueError):
            g.add_edge(1, 2, -1)

    def test_non_integer_weight_rejected(self):
        g = Graph()
        with pytest.raises(ValueError):
            g.add_edge(1, 2, 1.5)

    def test_zero_weight_allowed(self):
        g = Graph()
        g.add_edge(1, 2, 0)
        assert g.weight(1, 2) == 0

    def test_duplicate_edge_keeps_minimum(self):
        g = Graph()
        g.add_edge(1, 2, 7)
        g.add_edge(1, 2, 3)
        assert g.weight(1, 2) == 3
        assert g.num_edges == 1

    def test_degree_and_neighbors(self):
        g = graphs.star_graph(5)
        assert g.degree(0) == 4
        assert set(g.neighbors(0)) == {1, 2, 3, 4}
        assert g.degree(1) == 1

    def test_edges_iterated_once(self):
        g = graphs.complete_graph(5)
        assert len(list(g.edges())) == 10

    def test_max_weight(self):
        g = Graph.from_edges([(0, 1, 3), (1, 2, 9)])
        assert g.max_weight() == 9
        assert Graph().max_weight() == 0

    def test_contains_and_len(self):
        g = graphs.path_graph(4)
        assert 2 in g
        assert 9 not in g
        assert len(g) == 4

    def test_repr(self):
        assert "n=3" in repr(graphs.path_graph(3))

    def test_from_edges_with_isolated_nodes(self):
        g = Graph.from_edges([(0, 1)], nodes=[5])
        assert g.has_node(5)
        assert g.degree(5) == 0


class TestDerivedGraphs:
    def test_induced_subgraph(self):
        g = graphs.path_graph(5)
        sub = g.induced_subgraph({1, 2, 4})
        assert sub.num_nodes == 3
        assert sub.has_edge(1, 2)
        assert not sub.has_edge(2, 4)

    def test_induced_subgraph_keeps_weights(self):
        g = Graph.from_edges([(0, 1, 7), (1, 2, 3)])
        sub = g.induced_subgraph({0, 1})
        assert sub.weight(0, 1) == 7

    def test_reweighted(self):
        g = Graph.from_edges([(0, 1, 2), (1, 2, 5)])
        doubled = g.reweighted(lambda w: 2 * w)
        assert doubled.weight(0, 1) == 4
        assert g.weight(0, 1) == 2  # original untouched

    def test_reweighted_preserves_isolated_nodes(self):
        g = Graph.from_edges([(0, 1)], nodes=[9])
        assert 9 in g.reweighted(lambda w: w)


class TestConnectivity:
    def test_connected_components_path(self):
        g = graphs.path_graph(4)
        assert len(g.connected_components()) == 1

    def test_connected_components_disjoint(self):
        g = Graph.from_edges([(0, 1), (2, 3)], nodes=[4])
        comps = g.connected_components()
        assert len(comps) == 3
        assert {4} in comps

    def test_is_connected(self):
        assert graphs.cycle_graph(5).is_connected()
        assert not Graph.from_edges([(0, 1)], nodes=[2]).is_connected()


class TestOracles:
    def test_dijkstra_path(self):
        g = graphs.path_graph(5)
        d = g.dijkstra([0])
        assert d == {i: i for i in range(5)}

    def test_dijkstra_weighted(self):
        g = Graph.from_edges([(0, 1, 10), (0, 2, 1), (2, 1, 2)])
        assert g.dijkstra([0])[1] == 3

    def test_dijkstra_multi_source(self):
        g = graphs.path_graph(10)
        d = g.dijkstra([0, 9])
        assert d[5] == 4

    def test_dijkstra_unreachable(self):
        g = Graph.from_edges([(0, 1)], nodes=[2])
        assert g.dijkstra([0])[2] == INFINITY

    def test_dijkstra_missing_source(self):
        with pytest.raises(KeyError):
            graphs.path_graph(3).dijkstra([7])

    def test_hop_distances_ignore_weights(self):
        g = Graph.from_edges([(0, 1, 100), (1, 2, 100)])
        assert g.hop_distances([0]) == {0: 0, 1: 1, 2: 2}

    def test_hop_diameter_path(self):
        assert graphs.path_graph(6).hop_diameter() == 5

    def test_hop_diameter_disconnected_raises(self):
        with pytest.raises(ValueError):
            Graph.from_edges([(0, 1)], nodes=[2]).hop_diameter()

    def test_hop_eccentricity(self):
        g = graphs.path_graph(5)
        assert g.hop_eccentricity(0) == 4
        assert g.hop_eccentricity(2) == 2

    def test_weighted_diameter_upper_bound(self):
        g = Graph.from_edges([(0, 1, 5)])
        assert g.weighted_diameter_upper_bound() >= 5

    def test_dijkstra_matches_networkx(self):
        nx = pytest.importorskip("networkx")
        g = graphs.random_weights(graphs.random_connected_graph(30, seed=7), 9, seed=8)
        ng = nx.Graph()
        for u, v, w in g.edges():
            ng.add_edge(u, v, weight=w)
        truth = nx.single_source_dijkstra_path_length(ng, 0)
        mine = g.dijkstra([0])
        for u in g.nodes():
            assert mine[u] == truth.get(u, INFINITY)


class TestGenerators:
    def test_path_sizes(self):
        g = graphs.path_graph(7)
        assert g.num_nodes == 7 and g.num_edges == 6

    def test_path_rejects_zero(self):
        with pytest.raises(ValueError):
            graphs.path_graph(0)

    def test_cycle_sizes(self):
        g = graphs.cycle_graph(8)
        assert g.num_nodes == 8 and g.num_edges == 8
        assert all(g.degree(u) == 2 for u in g.nodes())

    def test_cycle_rejects_small(self):
        with pytest.raises(ValueError):
            graphs.cycle_graph(2)

    def test_grid(self):
        g = graphs.grid_graph(3, 4)
        assert g.num_nodes == 12
        assert g.num_edges == 3 * 3 + 2 * 4
        assert g.hop_diameter() == 2 + 3

    def test_star(self):
        g = graphs.star_graph(6)
        assert g.degree(0) == 5

    def test_complete(self):
        g = graphs.complete_graph(6)
        assert g.num_edges == 15

    def test_balanced_tree(self):
        g = graphs.balanced_tree(2, 3)
        assert g.num_nodes == 15
        assert g.num_edges == 14
        assert g.is_connected()

    def test_random_tree_is_tree(self):
        g = graphs.random_tree(20, seed=3)
        assert g.num_edges == 19 and g.is_connected()

    def test_caterpillar(self):
        g = graphs.caterpillar_graph(4, 2)
        assert g.num_nodes == 4 + 8
        assert g.is_connected()

    def test_lollipop(self):
        g = graphs.lollipop_graph(4, 3)
        assert g.num_nodes == 7 and g.is_connected()

    def test_barbell(self):
        g = graphs.barbell_graph(3, 2)
        assert g.num_nodes == 8 and g.is_connected()

    def test_random_graph_bounds(self):
        g = graphs.random_graph(10, 0.0, seed=1)
        assert g.num_edges == 0
        g2 = graphs.random_graph(10, 1.0, seed=1)
        assert g2.num_edges == 45

    def test_random_graph_deterministic_by_seed(self):
        a = graphs.random_graph(15, 0.3, seed=5)
        b = graphs.random_graph(15, 0.3, seed=5)
        assert sorted(a.edges()) == sorted(b.edges())

    def test_random_connected_graph_connected(self):
        for seed in range(5):
            assert graphs.random_connected_graph(25, seed=seed).is_connected()

    def test_random_weights_range(self):
        g = graphs.random_weights(graphs.path_graph(20), 5, seed=2)
        assert all(1 <= w <= 5 for _, _, w in g.edges())

    def test_random_weights_zero_min(self):
        g = graphs.random_weights(graphs.path_graph(50), 3, seed=2, min_weight=0)
        assert any(w == 0 for _, _, w in g.edges())

    def test_random_weights_invalid(self):
        with pytest.raises(ValueError):
            graphs.random_weights(graphs.path_graph(3), 0, min_weight=1)

    def test_with_random_weights_wrapper(self):
        build = graphs.with_random_weights(graphs.path_graph, 9, seed=4)
        g = build(10)
        assert g.num_nodes == 10 and g.max_weight() <= 9

    def test_make_family_all(self):
        for name in graphs.FAMILIES:
            g = graphs.make_family(name, 20)
            assert g.num_nodes >= 5, name

    def test_make_family_weighted(self):
        g = graphs.make_family("er", 20, max_weight=7, seed=1)
        assert g.max_weight() <= 7

    def test_make_family_unknown(self):
        with pytest.raises(KeyError):
            graphs.make_family("nope", 10)


def _edge_set(g):
    return {(frozenset((u, v)), w) for u, v, w in g.edges()}


class TestIO:
    def test_roundtrip(self):
        g = graphs.random_weights(graphs.random_connected_graph(12, seed=1), 9, seed=2)
        g2 = loads(dumps(g))
        assert _edge_set(g) == _edge_set(g2)
        assert set(g.nodes()) == set(g2.nodes())

    def test_roundtrip_isolated_nodes(self):
        g = Graph.from_edges([(0, 1)], nodes=[7])
        g2 = loads(dumps(g))
        assert g2.has_node(7)

    def test_file_roundtrip(self, tmp_path):
        from repro.graphs import read_edge_list, write_edge_list

        g = graphs.grid_graph(3, 3)
        path = tmp_path / "g.edges"
        write_edge_list(g, path)
        g2 = read_edge_list(path)
        assert _edge_set(g) == _edge_set(g2)


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=2, max_value=40), st.integers(min_value=0, max_value=10**6))
def test_property_random_tree_always_spanning(n, seed):
    g = graphs.random_tree(n, seed=seed)
    assert g.num_edges == n - 1
    assert g.is_connected()


@settings(max_examples=25, deadline=None)
@given(
    st.integers(min_value=2, max_value=25),
    st.floats(min_value=0.0, max_value=1.0),
    st.integers(min_value=0, max_value=10**6),
)
def test_property_er_graph_valid(n, p, seed):
    g = graphs.random_graph(n, p, seed=seed)
    assert g.num_nodes == n
    assert 0 <= g.num_edges <= n * (n - 1) // 2


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=2, max_value=30), st.integers(min_value=0, max_value=10**6))
def test_property_dijkstra_triangle_inequality(n, seed):
    g = graphs.random_weights(graphs.random_connected_graph(n, seed=seed), 9, seed=seed)
    d = g.dijkstra([0])
    for u, v, w in g.edges():
        assert d[u] <= d[v] + w
        assert d[v] <= d[u] + w
