"""Report compilation from recorded experiment tables."""

import pytest

from repro.analysis.report import compile_report, write_report


@pytest.fixture
def results_dir(tmp_path):
    d = tmp_path / "results"
    d.mkdir()
    (d / "E1_correctness.txt").write_text("== E1 ==\na | b\n1 | 2\n")
    (d / "E3_congestion.txt").write_text("== E3 ==\nx\n9\n")
    (d / "Ecustom_extra.txt").write_text("== extra ==\n")
    return d


class TestCompile:
    def test_orders_known_experiments(self, results_dir):
        report = compile_report(results_dir)
        assert report.index("E1_correctness") < report.index("E3_congestion")
        assert "Ecustom_extra" in report

    def test_contains_table_bodies(self, results_dir):
        report = compile_report(results_dir)
        assert "1 | 2" in report

    def test_missing_dir_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            compile_report(tmp_path / "nope")

    def test_empty_dir_raises(self, tmp_path):
        empty = tmp_path / "results"
        empty.mkdir()
        with pytest.raises(FileNotFoundError):
            compile_report(empty)

    def test_write_report(self, results_dir, tmp_path):
        out = write_report(results_dir, tmp_path / "report.md")
        assert out.exists()
        assert "# Recorded experiment tables" in out.read_text()

    def test_real_results_if_present(self):
        from pathlib import Path

        real = Path(__file__).parent.parent / "benchmarks" / "results"
        if not real.is_dir() or not list(real.glob("*.txt")):
            pytest.skip("benchmarks not yet recorded")
        report = compile_report(real)
        assert "E1_correctness" in report
