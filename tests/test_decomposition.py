"""Network decomposition (Thm 3.10 substrate): separation, coverage, trees."""

import pytest
from hypothesis import given, settings, strategies as st

from repro import graphs
from repro.energy.decomposition import build_decomposition
from repro.energy.labeled_bfs import run_labeled_bfs
from repro.graphs import Graph, INFINITY
from repro.sim import Metrics


def check_decomposition(g, k, deco):
    """Assert all Theorem 3.10-style properties that must hold exactly."""
    seen = {}
    for cluster in deco.clusters:
        for u in cluster.members:
            assert u not in seen, f"{u!r} in two clusters"
            seen[u] = cluster
    assert set(seen) == set(g.nodes()), "decomposition must cover every node"
    for color in deco.colors:
        for i, a in enumerate(color):
            others = set()
            for b in color[i + 1:]:
                others |= b.members
            for u in a.members:
                dist = g.dijkstra([u])
                for v in others:
                    assert dist[v] > k, f"separation {k} violated: {u!r}-{v!r}"
    for cluster in deco.clusters:
        forest = cluster.as_forest()  # raises on cycles
        for u, p in cluster.tree_parent.items():
            if p is not None:
                assert g.has_edge(u, p)
        assert cluster.root in cluster.tree_parent
        for u in cluster.members:
            assert u in cluster.tree_parent, "member missing from Steiner tree"


class TestDecomposition:
    @pytest.mark.parametrize(
        "builder,k",
        [
            (lambda: graphs.path_graph(20), 2),
            (lambda: graphs.cycle_graph(14), 3),
            (lambda: graphs.grid_graph(5, 5), 3),
            (lambda: graphs.balanced_tree(2, 4), 2),
            (lambda: graphs.random_connected_graph(25, seed=3), 3),
            (lambda: graphs.star_graph(15), 5),
        ],
    )
    def test_families(self, builder, k):
        g = builder()
        check_decomposition(g, k, build_decomposition(g, k))

    def test_weighted_separation(self):
        g = graphs.random_weights(graphs.path_graph(15), 4, seed=2)
        k = 6
        check_decomposition(g, k, build_decomposition(g, k))

    def test_radius_cap_respected(self):
        g = graphs.path_graph(60)
        cap = 8
        deco = build_decomposition(g, 2, radius_cap=cap)
        check_decomposition(g, 2, deco)
        for cluster in deco.clusters:
            dists = g.dijkstra([cluster.root])
            for u in cluster.members:
                assert dists[u] <= 2 * cap + 2

    def test_radius_cap_yields_multiple_clusters(self):
        g = graphs.path_graph(60)
        deco = build_decomposition(g, 2, radius_cap=8)
        assert len(deco.clusters) > 3

    def test_color_count_reasonable(self):
        g = graphs.random_connected_graph(40, seed=5)
        deco = build_decomposition(g, 3, radius_cap=20)
        assert len(deco.colors) <= 4 * 6 + 8

    def test_empty_graph(self):
        deco = build_decomposition(Graph(), 3)
        assert deco.clusters == []

    def test_singleton(self):
        g = Graph()
        g.add_node(0)
        deco = build_decomposition(g, 3)
        assert len(deco.clusters) == 1

    def test_invalid_separation(self):
        with pytest.raises(ValueError):
            build_decomposition(graphs.path_graph(3), 0)

    def test_deterministic(self):
        g = graphs.random_connected_graph(20, seed=7)
        a = build_decomposition(g, 3)
        b = build_decomposition(g, 3)
        assert [sorted(map(repr, c.members)) for c in a.clusters] == [
            sorted(map(repr, c.members)) for c in b.clusters
        ]

    def test_cluster_of_mapping(self):
        g = graphs.grid_graph(4, 4)
        deco = build_decomposition(g, 2)
        mapping = deco.cluster_of()
        assert set(mapping) == set(g.nodes())

    def test_edge_tree_load_reported(self):
        g = graphs.path_graph(30)
        deco = build_decomposition(g, 2, radius_cap=6)
        load = deco.edge_tree_load()
        assert all(v >= 1 for v in load.values())

    def test_metrics_accumulate(self):
        g = graphs.path_graph(20)
        m = Metrics()
        build_decomposition(g, 2, metrics=m)
        assert m.rounds > 0 and m.total_messages > 0


class TestLabeledBFS:
    def test_nearest_label_assignment(self):
        g = graphs.path_graph(11)
        out = run_labeled_bfs(g, {0: "L", 10: "R"}, 10)
        assert out[2][1] == "L" and out[8][1] == "R"
        assert out[3][0] == 3

    def test_tie_breaks_by_label_key(self):
        g = graphs.path_graph(5)
        out = run_labeled_bfs(g, {0: "A", 4: "B"}, 10)
        assert out[2][1] == "A"  # equidistant; smaller label key wins

    def test_threshold(self):
        g = graphs.path_graph(10)
        out = run_labeled_bfs(g, {0: "A"}, 3)
        assert out[3][0] == 3
        assert out[4][0] == INFINITY and out[4][1] is None

    def test_parents_point_to_source(self):
        g = graphs.grid_graph(4, 4)
        out = run_labeled_bfs(g, {0: "A"}, 20)
        for u in g.nodes():
            dist, label, parent, hops = out[u]
            if u == 0:
                assert parent is None
                continue
            walker, steps = u, 0
            while out[walker][2] is not None:
                walker = out[walker][2]
                steps += 1
            assert walker == 0
            assert steps == hops

    def test_weighted_distances(self):
        g = Graph.from_edges([(0, 1, 5), (1, 2, 1), (0, 2, 10)])
        out = run_labeled_bfs(g, {0: "A"}, 100)
        assert out[2][0] == 6

    def test_congestion_one(self):
        g = graphs.grid_graph(5, 5)
        m = Metrics()
        run_labeled_bfs(g, {0: "A", 24: "B"}, 20, metrics=m)
        assert m.max_congestion <= 1


@settings(max_examples=12, deadline=None)
@given(st.integers(min_value=2, max_value=16), st.integers(min_value=0, max_value=10**6))
def test_property_decomposition_covers_and_separates(n, seed):
    g = graphs.random_connected_graph(n, seed=seed)
    k = 2
    deco = build_decomposition(g, k)
    check_decomposition(g, k, deco)
