"""Smoke tests: every example script runs to completion and self-verifies."""

import subprocess
import sys
from pathlib import Path

import pytest

from repro.testing import subprocess_env

EXAMPLES = sorted((Path(__file__).parent.parent / "examples").glob("*.py"))
SUBPROCESS_ENV = subprocess_env()


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script):
    proc = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=600,
        env=SUBPROCESS_ENV,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip(), "example produced no output"


def test_examples_exist():
    names = {p.stem for p in EXAMPLES}
    assert "quickstart" in names
    assert len(EXAMPLES) >= 3
