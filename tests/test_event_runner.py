"""Unit tests for the event-driven core (:mod:`repro.sim.events`).

Covers the latency-model grammar and determinism, the engine-selection
context, EventRunner's unit-latency parity with the synchronous Runner on
synthetic protocols (CONGEST, sleeping, megarounds, capacity > 1), its
asynchronous behaviors (delay stretching, wake-on-message under latency,
per-edge tables), and the new stopping conditions.
"""

import random

import pytest

from repro import graphs
from repro.sim import (
    Context,
    EdgeTableLatency,
    EventRunner,
    Metrics,
    Mode,
    NodeAlgorithm,
    RandomDelayLatency,
    Runner,
    SimulationError,
    TracingMetrics,
    UniformLatency,
    canonical_latency,
    current_engine,
    latency_bound,
    make_runner,
    parse_latency_model,
    simulation_engine,
)
from repro.graphs.indexed import IndexedGraph


class Gossip(NodeAlgorithm):
    """Seeded CONGEST chatter: sends, naps, idles, halts (order-insensitive)."""

    def __init__(self, node, seed, horizon=14):
        self.node = node
        self.rng = random.Random(seed * 1_000_003 + node * 7919)
        self.horizon = horizon
        self.heard = 0

    def on_round(self, ctx, inbox):
        self.heard += sum(payload for _, payload in inbox)
        if ctx.round >= self.horizon:
            ctx.halt()
            return
        for v in ctx.neighbors:
            if self.rng.random() < 0.35:
                ctx.send(v, (self.node + self.heard + ctx.round) % 97)
        choice = self.rng.random()
        if choice < 0.25:
            ctx.sleep_for(1 + int(choice * 20))
        elif choice < 0.35:
            ctx.idle()


class SleepyBeacon(NodeAlgorithm):
    """Sleeping-model traffic on staggered seeded schedules (lossy)."""

    def __init__(self, node, seed, budget=8):
        self.node = node
        self.rng = random.Random(seed * 998_244_353 + node * 104_729)
        self.budget = budget

    def on_round(self, ctx, inbox):
        self.budget -= 1
        if self.budget <= 0:
            ctx.halt()
            return
        for v in ctx.neighbors:
            if self.rng.random() < 0.5:
                ctx.send(v, self.budget)
        ctx.wake_at(ctx.round + 1 + self.rng.randrange(4))


class Broadcaster(NodeAlgorithm):
    """Broadcast-heavy chatter (exercises the bcast delivery plane)."""

    def __init__(self, node, seed, horizon=10):
        self.node = node
        self.rng = random.Random(seed * 31 + node)
        self.horizon = horizon
        self.heard = 0

    def on_round(self, ctx, inbox):
        self.heard += len(inbox)
        if ctx.round >= self.horizon:
            ctx.halt()
            return
        if self.rng.random() < 0.6:
            ctx.broadcast(self.node)


def run_both(graph, make_algorithms, mode, **kwargs):
    """The same protocol through Runner and unit-latency EventRunner."""
    out = []
    for engine in (Runner, EventRunner):
        metrics = Metrics()
        engine(graph, make_algorithms(), mode, metrics=metrics, **kwargs).run()
        out.append(metrics)
    return out


def assert_identical(sync: Metrics, event: Metrics) -> None:
    # to_dict() is the serialized store payload — byte-level equivalence,
    # current_round included.
    assert sync.to_dict() == event.to_dict()


# ----------------------------------------------------------------------
# latency models
# ----------------------------------------------------------------------
class TestLatencyModels:
    def test_parse_grammar(self):
        assert parse_latency_model("unit").name == "unit"
        assert parse_latency_model("sync").name == "unit"
        assert parse_latency_model("uniform").name == "unit"
        assert parse_latency_model("uniform:1").name == "unit"
        assert parse_latency_model("random:1").name == "unit"
        assert parse_latency_model("uniform:3").name == "uniform:3"
        assert parse_latency_model("random:4", seed=2).name == "random:4"
        model = UniformLatency(5)
        assert parse_latency_model(model) is model

    def test_parse_rejects_garbage(self):
        for bad in ("fast", "uniform:x", "random:0", "uniform:-1", "", 3):
            with pytest.raises(ValueError):
                parse_latency_model(bad)

    def test_parse_errors_name_the_offending_text(self):
        with pytest.raises(
            ValueError, match=r"expected an integer bound after 'uniform:', got 'x'"
        ):
            parse_latency_model("uniform:x")
        with pytest.raises(
            ValueError, match=r"expected an integer bound after 'random:', got ''"
        ):
            parse_latency_model("random:")
        with pytest.raises(ValueError, match=r"unknown kind 'bogus' before ':'"):
            parse_latency_model("bogus:3")

    def test_canonical_latency(self):
        assert canonical_latency("sync") == "unit"
        assert canonical_latency("uniform:1") == "unit"
        assert canonical_latency("random:1") == "unit"
        assert canonical_latency("uniform:7") == "uniform:7"

    def test_uniform_bounds_and_table(self):
        g = IndexedGraph.of(graphs.path_graph(4))
        model = UniformLatency(3)
        assert model.bound == 3
        assert model.port_delays(g) == [3] * len(g.nbr)

    def test_random_delay_deterministic_and_symmetric(self):
        g = IndexedGraph.of(graphs.random_connected_graph(12, extra_edge_prob=0.3, seed=5))
        model = RandomDelayLatency(4, seed=9)
        delays = model.port_delays(g)
        assert delays == RandomDelayLatency(4, seed=9).port_delays(g)
        assert all(1 <= d <= 4 for d in delays)
        assert len(set(delays)) > 1  # actually heterogeneous on 12+ edges
        # Symmetric per undirected edge: u->v and v->u draw the same delay.
        for i in range(g.num_nodes):
            u = g.labels[i]
            for k in range(g.indptr[i], g.indptr[i + 1]):
                v = g.labels[g.nbr[k]]
                assert model.edge_delay(u, v) == model.edge_delay(v, u)
                assert delays[k] == model.edge_delay(u, v)

    def test_random_delay_seed_sensitivity(self):
        g = IndexedGraph.of(graphs.random_connected_graph(16, extra_edge_prob=0.3, seed=1))
        a = RandomDelayLatency(4, seed=0).port_delays(g)
        b = RandomDelayLatency(4, seed=1).port_delays(g)
        assert a != b

    def test_edge_table_latency(self):
        g = IndexedGraph.of(graphs.path_graph(3))
        model = EdgeTableLatency({(0, 1): 5}, default=2)
        assert model.bound == 5
        assert model.edge_delay(0, 1) == 5
        assert model.edge_delay(1, 0) == 5  # symmetric fallback
        assert model.edge_delay(1, 2) == 2  # default
        delays = model.port_delays(g)
        assert sorted(delays) == [2, 2, 5, 5]

    def test_edge_table_rejects_bad_delays(self):
        with pytest.raises(ValueError):
            EdgeTableLatency({(0, 1): 0})
        with pytest.raises(ValueError):
            EdgeTableLatency({}, default=-1)


# ----------------------------------------------------------------------
# engine selection
# ----------------------------------------------------------------------
class TestEngineContext:
    def test_default_is_synchronous(self):
        assert current_engine() is None
        assert latency_bound() == 1
        g = graphs.path_graph(3)
        runner = make_runner(g, {u: Gossip(u, 0, horizon=2) for u in g.nodes()})
        assert type(runner) is Runner

    def test_event_context_dispatches(self):
        g = graphs.path_graph(3)
        with simulation_engine("event", "uniform:3"):
            assert latency_bound() == 3
            runner = make_runner(g, {u: Gossip(u, 0, horizon=2) for u in g.nodes()})
            assert type(runner) is EventRunner
            assert runner.latency.name == "uniform:3"
        assert current_engine() is None

    def test_contexts_nest(self):
        with simulation_engine("event", "uniform:2"):
            with simulation_engine("round"):
                assert latency_bound() == 1
                assert current_engine().engine == "round"
            assert latency_bound() == 2

    def test_round_engine_rejects_latency(self):
        with pytest.raises(ValueError):
            with simulation_engine("round", "uniform:2"):
                pass

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            with simulation_engine("warp"):
                pass


# ----------------------------------------------------------------------
# unit-latency differential parity (the equivalence guarantee)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", range(6))
def test_congest_parity(seed):
    rng = random.Random(seed)
    n = rng.randrange(5, 32)
    g = graphs.random_connected_graph(n, extra_edge_prob=rng.choice([0.0, 0.2]), seed=seed)
    sync, event = run_both(g, lambda: {u: Gossip(u, seed) for u in g.nodes()}, Mode.CONGEST)
    assert_identical(sync, event)


@pytest.mark.parametrize("seed", range(6))
def test_sleeping_parity(seed):
    g = graphs.random_connected_graph(5 + seed * 4, extra_edge_prob=0.15, seed=seed)
    sync, event = run_both(
        g, lambda: {u: SleepyBeacon(u, seed) for u in g.nodes()}, Mode.SLEEPING
    )
    assert_identical(sync, event)
    assert event.lost_messages > 0


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_broadcast_parity(seed):
    g = graphs.random_connected_graph(18, extra_edge_prob=0.25, seed=seed)
    sync, event = run_both(
        g, lambda: {u: Broadcaster(u, seed) for u in g.nodes()}, Mode.CONGEST
    )
    assert_identical(sync, event)


@pytest.mark.parametrize("seed", [0, 1])
def test_megaround_parity(seed):
    g = graphs.random_connected_graph(14, extra_edge_prob=0.2, seed=seed)
    sync, event = run_both(
        g,
        lambda: {u: Gossip(u, seed, horizon=9) for u in g.nodes()},
        Mode.CONGEST,
        round_width=3,
        edge_capacity=3,
    )
    assert_identical(sync, event)


def test_tracing_metrics_parity():
    # The slow path (metric subclasses) must agree too — current_round
    # stamping and per-event record_* calls included.
    g = graphs.random_connected_graph(12, extra_edge_prob=0.2, seed=3)
    out = []
    for engine in (Runner, EventRunner):
        t = TracingMetrics()
        engine(g, {u: Gossip(u, 3) for u in g.nodes()}, Mode.CONGEST, metrics=t).run()
        out.append(t)
    sync, event = out
    assert sync.to_dict() == event.to_dict()
    assert sync.messages_by_round == event.messages_by_round
    assert sync.awake_by_round == event.awake_by_round
    assert sync.edge_timeline == event.edge_timeline


def test_parity_on_disconnected_graph():
    g = graphs.random_graph(20, p=0.05, seed=7)
    sync, event = run_both(g, lambda: {u: Gossip(u, 7) for u in g.nodes()}, Mode.CONGEST)
    assert_identical(sync, event)


def test_empty_graph():
    g = graphs.Graph()
    metrics = EventRunner(g, {}, Mode.CONGEST).run()
    assert metrics.rounds == 0


# ----------------------------------------------------------------------
# asynchronous behaviors
# ----------------------------------------------------------------------
class FloodOnce(NodeAlgorithm):
    """Node 0 broadcasts at time 0; everyone records first-arrival time."""

    def __init__(self, node):
        self.node = node
        self.arrival = 0 if node == 0 else None

    def on_round(self, ctx, inbox):
        if inbox and self.arrival is None:
            self.arrival = ctx.round
        if ctx.round == 0 and self.node == 0:
            ctx.broadcast("wave")
        if self.arrival is not None and ctx.round > 0:
            ctx.halt()
            return
        ctx.idle()  # wake-on-message


def test_uniform_delay_stretches_time():
    g = graphs.path_graph(4)
    algorithms = {u: FloodOnce(u) for u in g.nodes()}

    class Relay(FloodOnce):
        def on_round(self, ctx, inbox):
            if inbox and self.arrival is None:
                self.arrival = ctx.round
                ctx.broadcast("wave")  # relay onward
            super().on_round(ctx, inbox)

    algorithms = {u: Relay(u) for u in g.nodes()}
    runner = EventRunner(g, algorithms, Mode.CONGEST, latency=UniformLatency(3))
    runner.run()
    # Hop h hears the wave at time 3 * h: wake-on-message under latency.
    assert [algorithms[u].arrival for u in g.nodes()] == [0, 3, 6, 9]


def test_edge_table_delays_shape_arrivals():
    g = graphs.Graph()
    for edge in ((0, 1), (0, 2)):
        g.add_edge(*edge)
    algorithms = {u: FloodOnce(u) for u in g.nodes()}
    latency = EdgeTableLatency({(0, 1): 7}, default=2)
    EventRunner(g, algorithms, Mode.CONGEST, latency=latency).run()
    assert algorithms[1].arrival == 7
    assert algorithms[2].arrival == 2


def test_sleeping_delivery_decided_at_send_time():
    # Under SLEEPING semantics a delayed message is delivered iff the
    # receiver was awake at the *send* time — schedule a receiver awake at
    # the send time but asleep at the arrival time.
    g = graphs.path_graph(2)

    class Sender(NodeAlgorithm):
        def on_round(self, ctx, inbox):
            if ctx.round == 0:
                ctx.send(1, "hello")
                ctx.halt()

    class Receiver(NodeAlgorithm):
        def __init__(self):
            self.got = []

        def on_round(self, ctx, inbox):
            self.got.extend(inbox)
            if ctx.round >= 10:
                ctx.halt()
                return
            ctx.wake_at(10)  # awake at 0, then asleep until long after arrival

    receiver = Receiver()
    metrics = EventRunner(
        g, {0: Sender(), 1: receiver}, Mode.SLEEPING, latency=UniformLatency(4)
    ).run()
    assert metrics.lost_messages == 0  # receiver was awake at send time 0
    assert receiver.got == [(0, "hello")]  # read at its own wake, time 10


def test_sleeping_loss_when_asleep_at_send_time():
    g = graphs.path_graph(2)

    class Sender(NodeAlgorithm):
        def on_round(self, ctx, inbox):
            if ctx.round == 0:
                ctx.sleep_for(1)
                return
            ctx.send(1, "late")  # round 1: receiver sleeps
            ctx.halt()

    class Napper(NodeAlgorithm):
        def __init__(self):
            self.got = []

        def on_round(self, ctx, inbox):
            self.got.extend(inbox)
            if ctx.round >= 5:
                ctx.halt()
                return
            ctx.wake_at(5)

    napper = Napper()
    metrics = EventRunner(
        g, {0: Sender(), 1: napper}, Mode.SLEEPING, latency=UniformLatency(2)
    ).run()
    assert metrics.lost_messages == 1
    assert napper.got == []


def test_capacity_is_per_send_time():
    g = graphs.path_graph(2)

    class DoubleSend(NodeAlgorithm):
        def on_round(self, ctx, inbox):
            ctx.send(1, "a")
            ctx.send(1, "b")
            ctx.halt()

    class Quiet(NodeAlgorithm):
        def on_round(self, ctx, inbox):
            ctx.idle()

    with pytest.raises(SimulationError):
        EventRunner(g, {0: DoubleSend(), 1: Quiet()}, Mode.CONGEST).run()
    # capacity 2 admits both
    EventRunner(g, {0: DoubleSend(), 1: Quiet()}, Mode.CONGEST, edge_capacity=2).run()


# ----------------------------------------------------------------------
# stopping conditions
# ----------------------------------------------------------------------
class Ticker(NodeAlgorithm):
    """Pings its neighbors forever (never halts on its own)."""

    def on_round(self, ctx, inbox):
        ctx.broadcast("tick")


def test_max_time_stops_gracefully():
    g = graphs.path_graph(3)
    runner = EventRunner(
        g, {u: Ticker() for u in g.nodes()}, Mode.CONGEST, max_time=20
    )
    metrics = runner.run()
    assert runner.stop_reason == "max_time"
    assert metrics.rounds == 21  # steps at times 0..20 inclusive


def test_message_budget_stops_gracefully():
    g = graphs.path_graph(3)
    runner = EventRunner(
        g, {u: Ticker() for u in g.nodes()}, Mode.CONGEST, message_budget=50
    )
    metrics = runner.run()
    assert runner.stop_reason == "message_budget"
    assert metrics.total_messages >= 50
    # The in-flight batch resolves whole: 4 sends per time unit.
    assert metrics.total_messages < 50 + 4


def test_max_rounds_still_hard():
    g = graphs.path_graph(3)
    runner = EventRunner(
        g, {u: Ticker() for u in g.nodes()}, Mode.CONGEST, max_rounds=15
    )
    with pytest.raises(SimulationError):
        runner.run()


def test_quiescent_run_has_no_stop_reason():
    g = graphs.path_graph(3)
    runner = EventRunner(
        g, {u: Gossip(u, 0, horizon=5) for u in g.nodes()}, Mode.CONGEST,
        max_time=10_000, message_budget=1_000_000,
    )
    runner.run()
    assert runner.stop_reason is None
