"""Routing trees, path extraction, and distributed distance verification."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.testing import small_weighted_graph
from repro import graphs, cssp
from repro.core.paths import (
    build_shortest_path_tree,
    extract_path,
    verify_distances,
)
from repro.graphs import Graph, INFINITY
from repro.sim import Metrics


class TestRoutingTree:
    def test_parents_support_distances(self):
        g = small_weighted_graph(20, 1)
        dist = g.dijkstra([0])
        tree = build_shortest_path_tree(g, dist, {0: 0})
        for v in g.nodes():
            p = tree.parent[v]
            if v == 0 or dist[v] == INFINITY:
                assert p is None
            else:
                assert dist[v] == dist[p] + g.weight(v, p)

    def test_path_extraction_lengths(self):
        g = small_weighted_graph(18, 2)
        dist = g.dijkstra([0])
        tree = build_shortest_path_tree(g, dist, {0: 0})
        for v in g.nodes():
            if dist[v] == INFINITY:
                continue
            path = extract_path(tree, v)
            assert path[0] == v and path[-1] == 0
            total = sum(g.weight(a, b) for a, b in zip(path, path[1:]))
            assert total == dist[v]

    def test_multi_source_paths_end_at_some_source(self):
        g = graphs.path_graph(11)
        dist = g.dijkstra([0, 10])
        tree = build_shortest_path_tree(g, dist, {0: 0, 10: 0})
        for v in g.nodes():
            assert extract_path(tree, v)[-1] in (0, 10)

    def test_unreachable_path_raises(self):
        g = Graph.from_edges([(0, 1, 2)], nodes=[5])
        dist = g.dijkstra([0])
        tree = build_shortest_path_tree(g, dist, {0: 0})
        with pytest.raises(ValueError):
            extract_path(tree, 5)

    def test_inconsistent_distances_rejected(self):
        g = graphs.path_graph(4)
        bogus = {0: 0, 1: 1, 2: 5, 3: 6}  # node 2 unsupported
        with pytest.raises(ValueError):
            build_shortest_path_tree(g, bogus, {0: 0})

    def test_deterministic_tie_break(self):
        g = Graph.from_edges([(0, 1, 1), (0, 2, 1), (1, 3, 1), (2, 3, 1)])
        dist = g.dijkstra([0])
        a = build_shortest_path_tree(g, dist, {0: 0})
        b = build_shortest_path_tree(g, dist, {0: 0})
        assert a.parent == b.parent

    def test_tree_from_cssp_output(self):
        g = small_weighted_graph(16, 3)
        d, _ = cssp(g, {0: 0})
        tree = build_shortest_path_tree(g, d, {0: 0})
        forest = tree.as_forest()
        assert forest.root_of[5] == 0

    def test_one_exchange_round_cost(self):
        g = graphs.grid_graph(4, 4)
        dist = g.hop_distances([0])
        m = Metrics()
        build_shortest_path_tree(g, dist, {0: 0}, metrics=m)
        assert m.max_congestion <= 1
        assert m.rounds <= 2


class TestVerification:
    def test_accepts_correct_distances(self):
        g = small_weighted_graph(20, 4)
        report = verify_distances(g, {0: 0}, g.dijkstra([0]))
        assert report.valid and bool(report)

    def test_accepts_offsets(self):
        from repro.testing import oracle_distances

        g = small_weighted_graph(15, 5)
        sources = {0: 4, 7: 0}
        report = verify_distances(g, sources, oracle_distances(g, sources))
        assert report.valid

    def test_detects_tense_edge(self):
        g = graphs.path_graph(4)
        bogus = {0: 0, 1: 1, 2: 9, 3: 10}
        report = verify_distances(g, {0: 0}, bogus)
        assert not report.valid
        assert report.tense_edges

    def test_detects_unsupported_node(self):
        g = Graph.from_edges([(0, 1, 5)])
        bogus = {0: 0, 1: 3}  # too small: 1 is tense-free but unsupported
        report = verify_distances(g, {0: 0}, bogus)
        assert not report.valid
        assert report.unsupported_nodes

    def test_detects_bad_source(self):
        g = graphs.path_graph(3)
        bogus = {0: 2, 1: 3, 2: 4}
        report = verify_distances(g, {0: 0}, bogus)
        assert not report.valid
        assert report.bad_sources

    def test_detects_false_infinity(self):
        g = graphs.path_graph(3)
        bogus = {0: 0, 1: 1, 2: INFINITY}
        report = verify_distances(g, {0: 0}, bogus)
        assert not report.valid
        assert report.tense_edges  # finite neighbor makes the inf edge tense

    def test_verifies_every_library_algorithm(self):
        from repro import run_bellman_ford, sssp
        from repro.energy import energy_cssp

        g = small_weighted_graph(14, 6)
        assert verify_distances(g, {0: 0}, sssp(g, 0).distances).valid
        assert verify_distances(g, {0: 0}, run_bellman_ford(g, 0)).valid
        assert verify_distances(g, {0: 0}, energy_cssp(g, {0: 0})[0]).valid


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=2, max_value=16), st.integers(min_value=0, max_value=10**6))
def test_property_tree_paths_realize_distances(n, seed):
    g = graphs.random_weights(graphs.random_connected_graph(n, seed=seed), 7, seed=seed)
    dist = g.dijkstra([0])
    tree = build_shortest_path_tree(g, dist, {0: 0})
    for v in g.nodes():
        path = extract_path(tree, v)
        assert sum(g.weight(a, b) for a, b in zip(path, path[1:])) == dist[v]


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=2, max_value=14), st.integers(min_value=0, max_value=10**6))
def test_property_verifier_rejects_perturbations(n, seed):
    import random as _random

    g = graphs.random_weights(graphs.random_connected_graph(n, seed=seed), 7, seed=seed)
    dist = dict(g.dijkstra([0]))
    rng = _random.Random(seed)
    victim = rng.choice([u for u in g.nodes() if u != 0])
    dist[victim] += rng.choice([-1, 1, 5])
    if dist[victim] < 0:
        dist[victim] = 0
    report = verify_distances(g, {0: 0}, dist)
    assert not report.valid
