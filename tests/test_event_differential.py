"""The async-vs-sync differential oracle (the PR's acceptance gate).

Every registered scenario, run under the event engine with uniform unit
latency, must produce tidy rows — and serialized metrics payloads —
identical to the synchronous round engine: through the cell runner
directly, through :func:`repro.api.run_sweep_spec` at multiple worker
counts, and under resume against a store written by the other engine.
The latency-heterogeneous axis is exercised the other way: non-unit
models must change the digest (forcing re-runs, not silent reuse) and
flow through to tidy rows, stores, and rendered reports.
"""

import json

import pytest

from repro.analysis.sweeps import sweep_columns, sweep_report, sweep_table
from repro.api import ResultSet, SpecError, SweepSpec, run_sweep_spec, smoke_spec
from repro.sim.experiments import _run_cell, list_scenarios, run_scenario

SMOKE_SIZES = (12, 18)

#: A fast, representative subset for the sweep-level tests (full catalog
#: parity is covered cell-by-cell below).
FAST_SCENARIOS = ("bfs/grid", "bellman-ford/er", "energy-bfs/path", "tree-aggregation/tree")


@pytest.mark.parametrize("name", list_scenarios())
def test_every_scenario_row_identical_under_event_engine(name):
    for n in SMOKE_SIZES:
        sync_row, sync_metrics = _run_cell(name, n, 0)
        event_row, event_metrics = _run_cell(name, n, 0, engine="event")
        assert event_row == sync_row
        assert event_metrics.to_dict() == sync_metrics.to_dict()


@pytest.mark.parametrize("workers", [1, 2])
def test_sweep_rows_identical_at_worker_counts(workers):
    base = SweepSpec(scenarios=FAST_SCENARIOS, sizes=SMOKE_SIZES, seeds=(0, 1),
                     workers=workers)
    sync_rows = run_sweep_spec(base)
    event_rows = run_sweep_spec(base.replace(engine="event"))
    assert event_rows == sync_rows


def test_resume_across_engines_reuses_cells(tmp_path):
    # Engine choice is provenance, not identity: a store written by the
    # round engine must satisfy a resume under the event engine verbatim.
    path = tmp_path / "runs.jsonl"
    spec = SweepSpec(scenarios=FAST_SCENARIOS, sizes=SMOKE_SIZES, seeds=(0,),
                     output=str(path))
    sync_rows = run_sweep_spec(spec)
    executed = []
    event_rows = run_sweep_spec(
        spec.replace(engine="event"),
        progress=lambda done, total, row: executed.append(row),
    )
    assert executed == []  # every cell reused from the sync store
    assert event_rows == sync_rows


def test_interrupted_event_sweep_resumes_to_sync_rows(tmp_path):
    path = tmp_path / "runs.jsonl"
    spec = SweepSpec(scenarios=FAST_SCENARIOS, sizes=SMOKE_SIZES, seeds=(0,),
                     output=str(path), engine="event")
    fresh = run_sweep_spec(SweepSpec(scenarios=FAST_SCENARIOS, sizes=SMOKE_SIZES,
                                     seeds=(0,)))
    first = run_sweep_spec(spec)
    lines = path.read_text().splitlines()
    path.write_text("\n".join(lines[:3]) + "\n" + lines[3][:11])  # torn tail
    resumed = run_sweep_spec(spec)
    assert resumed == first == fresh


def test_stored_metrics_payloads_identical(tmp_path):
    sync_store = tmp_path / "sync.jsonl"
    event_store = tmp_path / "event.jsonl"
    base = SweepSpec(scenarios=FAST_SCENARIOS, sizes=(12,), seeds=(0,))
    run_sweep_spec(base.replace(output=str(sync_store)))
    run_sweep_spec(base.replace(output=str(event_store), engine="event"))
    sync_records = [json.loads(line) for line in sync_store.read_text().splitlines()]
    event_records = [json.loads(line) for line in event_store.read_text().splitlines()]
    assert event_records == sync_records  # full records, metrics payloads included


def test_smoke_catalog_identical_under_event_engine():
    sync_rows = run_sweep_spec(smoke_spec())
    event_rows = run_sweep_spec(smoke_spec().replace(engine="event"))
    assert event_rows == sync_rows


# ----------------------------------------------------------------------
# the latency_model sweep axis
# ----------------------------------------------------------------------
def test_latency_override_changes_digest_and_rows():
    unit = run_scenario("bellman-ford/er", 18, 0)
    delayed = run_scenario("bellman-ford/er", 18, 0, latency_model="random:4")
    assert unit["latency_model"] == "unit"
    assert delayed["latency_model"] == "random:4"
    assert delayed["params_digest"] != unit["params_digest"]
    assert delayed["rounds"] > unit["rounds"]  # delays stretch virtual time


def test_latency_axis_sweeps_and_resumes(tmp_path):
    path = tmp_path / "latency.jsonl"
    spec = SweepSpec(scenarios=("bellman-ford/er",), sizes=(12, 18), seeds=(0, 1),
                     latency_model="uniform:2", output=str(path))
    rows = run_sweep_spec(spec)
    assert all(row["latency_model"] == "uniform:2" for row in rows)
    executed = []
    resumed = run_sweep_spec(spec, progress=lambda d, t, row: executed.append(row))
    assert executed == [] and resumed == rows
    # A different latency model misses the resume key and re-runs.
    executed = []
    run_sweep_spec(spec.replace(latency_model="uniform:3"),
                   progress=lambda d, t, row: executed.append(row))
    assert len(executed) == 4


def test_heterogeneous_scenarios_registered_and_deterministic():
    names = list_scenarios()
    assert "bellman-ford/er@delay4" in names
    assert "bellman-ford/grid@stretch3" in names
    a = run_scenario("bellman-ford/er@delay4", 18, 0)
    b = run_scenario("bellman-ford/er@delay4", 18, 0)
    assert a == b  # seeded per-edge delays are fork- and process-stable
    assert a["latency_model"] == "random:4"
    # Distinct seeds draw distinct delay tables: a real per-cell axis.
    other = run_scenario("bellman-ford/er@delay4", 18, 1)
    assert (other["rounds"], other["messages"]) != (a["rounds"], a["messages"])


def test_round_engine_rejects_latency_scenarios():
    with pytest.raises(SpecError):
        SweepSpec(scenarios=("bellman-ford/er",), engine="round",
                  latency_model="random:4").validate()
    spec = SweepSpec(scenarios=("bellman-ford/er@delay4",), sizes=(12,), engine="round")
    with pytest.raises(SpecError):
        run_sweep_spec(spec)


def test_latency_model_rendered_in_tables_and_reports():
    rows = run_sweep_spec(
        SweepSpec(scenarios=("bellman-ford/er", "bellman-ford/er@delay4"),
                  sizes=(12,), seeds=(0,))
    )
    assert "latency_model" in sweep_columns(rows)
    table = sweep_table(rows)
    report = sweep_report(rows)
    for text in (table, report):
        assert "latency_model" in text
        assert "random:4" in text


def test_old_stores_without_latency_column_still_resume(tmp_path):
    # Simulate a pre-latency store: strip the latency_model field from the
    # records.  The resume must still hit (unit digests are unchanged) and
    # the reloaded rows must default the column to "unit".
    path = tmp_path / "old.jsonl"
    spec = SweepSpec(scenarios=("bfs/grid",), sizes=(12,), seeds=(0,),
                     output=str(path))
    fresh = run_sweep_spec(spec)
    records = [json.loads(line) for line in path.read_text().splitlines()]
    for record in records:
        record.pop("latency_model")
    path.write_text("".join(json.dumps(r) + "\n" for r in records))
    executed = []
    resumed = run_sweep_spec(spec, progress=lambda d, t, row: executed.append(row))
    assert executed == []
    assert resumed == fresh


def test_in_memory_store_roundtrip_with_latency():
    store = ResultSet()
    rows = run_sweep_spec(
        SweepSpec(scenarios=("bellman-ford/grid@stretch3",), sizes=(12,), seeds=(0,)),
        store=store,
    )
    assert rows[0]["latency_model"] == "uniform:3"
