"""The recursive CSSP (Section 2.3): exactness, thresholds, zero weights,
participation bounds, and complexity profiles."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.testing import assert_distances_equal, oracle_distances, small_weighted_graph
from repro import graphs
from repro.core.cssp import cssp, distance_upper_bound, thresholded_cssp
from repro.graphs import Graph, INFINITY
from repro.sim import Metrics


class TestCSSPExactness:
    def test_single_source_random(self):
        for seed in range(6):
            g = small_weighted_graph(20, seed, max_weight=15)
            d, _ = cssp(g, {0: 0})
            assert_distances_equal(d, g.dijkstra([0]), f"seed {seed}")

    def test_unweighted(self):
        g = graphs.grid_graph(5, 5)
        d, _ = cssp(g, [0])
        assert_distances_equal(d, g.hop_distances([0]), "grid")

    def test_path_extreme_diameter(self):
        g = graphs.path_graph(40).reweighted(lambda w: 13)
        d, _ = cssp(g, {0: 0})
        assert_distances_equal(d, g.dijkstra([0]), "path")

    def test_multi_source(self):
        g = small_weighted_graph(25, 4)
        d, _ = cssp(g, {0: 0, 12: 0, 24: 0})
        assert_distances_equal(d, g.dijkstra([0, 12, 24]), "multi")

    def test_sources_as_list(self):
        g = graphs.path_graph(6)
        d, _ = cssp(g, [2, 5])
        assert d[0] == 2 and d[4] == 1

    def test_source_offsets(self):
        for seed in range(4):
            g = small_weighted_graph(18, seed, max_weight=8)
            sources = {0: 7, 9: 0, 17: 21}
            d, _ = cssp(g, sources)
            assert_distances_equal(d, oracle_distances(g, sources), f"seed {seed}")

    def test_disconnected(self):
        g = Graph.from_edges([(0, 1, 2), (2, 3, 4)])
        d, _ = cssp(g, {0: 0})
        assert d[1] == 2 and d[2] == INFINITY and d[3] == INFINITY

    def test_star_and_caterpillar(self):
        for g in (graphs.star_graph(20), graphs.caterpillar_graph(7, 2)):
            gw = graphs.random_weights(g, 9, seed=5)
            d, _ = cssp(gw, {0: 0})
            assert_distances_equal(d, gw.dijkstra([0]), "family")

    def test_lollipop_uneven_split(self):
        g = graphs.random_weights(graphs.lollipop_graph(6, 10), 7, seed=6)
        d, _ = cssp(g, {0: 0})
        assert_distances_equal(d, g.dijkstra([0]), "lollipop")

    def test_heavy_weights(self):
        g = graphs.random_weights(graphs.random_connected_graph(15, seed=7), 997, seed=8)
        d, _ = cssp(g, {0: 0})
        assert_distances_equal(d, g.dijkstra([0]), "heavy")

    def test_eps_variants(self):
        g = small_weighted_graph(16, 9)
        for eps in (0.1, 0.25, 0.5, 0.9):
            d, _ = cssp(g, {0: 0}, eps=eps)
            assert_distances_equal(d, g.dijkstra([0]), f"eps {eps}")

    def test_empty_graph(self):
        d, _ = cssp(Graph(), {})
        assert d == {}

    def test_no_sources(self):
        g = graphs.path_graph(3)
        d, _ = cssp(g, {})
        assert all(v == INFINITY for v in d.values())

    def test_unknown_source(self):
        with pytest.raises(KeyError):
            cssp(graphs.path_graph(3), {9: 0})


class TestZeroWeights:
    def test_zero_weight_edge_basic(self):
        g = Graph.from_edges([(0, 1, 0), (1, 2, 5)])
        d, _ = cssp(g, {0: 0})
        assert d == {0: 0, 1: 0, 2: 5}

    def test_zero_components_contracted(self):
        g = Graph.from_edges([(0, 1, 0), (1, 2, 0), (2, 3, 7), (3, 4, 0)])
        d, _ = cssp(g, {0: 0})
        assert d == {0: 0, 1: 0, 2: 0, 3: 7, 4: 7}

    def test_random_zero_weight_graphs(self):
        for seed in range(5):
            g = graphs.random_weights(
                graphs.random_connected_graph(20, seed=seed), 6, seed=seed, min_weight=0
            )
            d, _ = cssp(g, {0: 0})
            assert_distances_equal(d, g.dijkstra([0]), f"zero seed {seed}")

    def test_all_zero_graph(self):
        g = graphs.path_graph(6).reweighted(lambda w: 0)
        d, _ = cssp(g, {3: 0})
        assert all(v == 0 for v in d.values())

    def test_zero_with_multi_source_offsets(self):
        g = Graph.from_edges([(0, 1, 0), (1, 2, 3), (2, 3, 0)])
        sources = {0: 5, 3: 1}
        d, _ = cssp(g, sources)
        assert_distances_equal(d, oracle_distances(g, sources), "zero offsets")


class TestThresholdedSemantics:
    def test_definition_2_3(self):
        g = small_weighted_graph(18, 11)
        truth = g.dijkstra([0])
        finite = sorted(v for v in truth.values() if v != INFINITY)
        tau = int(finite[len(finite) // 2])
        d = thresholded_cssp(g, {0: 0}, tau)
        for u in g.nodes():
            if truth[u] <= tau:
                assert d[u] == truth[u]
            else:
                assert d[u] == INFINITY

    def test_non_power_of_two_threshold(self):
        g = graphs.path_graph(20).reweighted(lambda w: 3)
        d = thresholded_cssp(g, {0: 0}, 10)
        assert d[3] == 9
        assert d[4] == INFINITY

    def test_threshold_zero(self):
        g = graphs.path_graph(4)
        d = thresholded_cssp(g, {0: 0}, 0)
        assert d[0] == 0 and d[1] == INFINITY

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            thresholded_cssp(graphs.path_graph(3), {0: 0}, -1)


class TestRecursionStructure:
    def test_participation_logarithmic(self):
        # Lemma 2.4: every node appears in O(log D) subproblems.
        g = small_weighted_graph(30, 13, max_weight=20)
        m = Metrics()
        cssp(g, {0: 0}, metrics=m)
        log_d = math.log2(distance_upper_bound(g))
        assert m.max_participation <= 3 * log_d + 5

    def test_distance_upper_bound_is_power_of_two(self):
        g = graphs.random_weights(graphs.path_graph(10), 13, seed=1)
        bound = distance_upper_bound(g)
        assert bound & (bound - 1) == 0
        assert bound >= 10 * 13

    def test_congestion_well_below_bellman_ford(self):
        g = small_weighted_graph(30, 14)
        m = Metrics()
        cssp(g, {0: 0}, metrics=m)
        # Theta(n) congestion would be ~30 per round x n rounds; the
        # recursion stays within polylog x log D of constants.
        assert m.max_congestion < g.num_nodes * 10

    def test_messages_near_linear_in_m(self):
        g = graphs.random_connected_graph(40, extra_edge_prob=0.1, seed=15)
        g = graphs.random_weights(g, 9, seed=16)
        m = Metrics()
        cssp(g, {0: 0}, metrics=m)
        polylog = math.log2(40) * math.log2(distance_upper_bound(g))
        assert m.total_messages <= 6 * g.num_edges * polylog

    def test_metrics_shared_accumulator(self):
        g = small_weighted_graph(12, 17)
        m = Metrics()
        _, returned = cssp(g, {0: 0}, metrics=m)
        assert returned is m
        assert m.rounds > 0 and m.total_messages > 0


@settings(max_examples=20, deadline=None)
@given(
    st.integers(min_value=2, max_value=18),
    st.integers(min_value=0, max_value=10**6),
    st.integers(min_value=1, max_value=12),
)
def test_property_cssp_equals_dijkstra(n, seed, max_w):
    g = graphs.random_weights(graphs.random_connected_graph(n, seed=seed), max_w, seed=seed)
    d, _ = cssp(g, {0: 0})
    assert d == g.dijkstra([0])


@settings(max_examples=12, deadline=None)
@given(
    st.integers(min_value=3, max_value=14),
    st.integers(min_value=0, max_value=10**6),
    st.integers(min_value=0, max_value=20),
)
def test_property_cssp_offsets(n, seed, offset):
    g = graphs.random_weights(graphs.random_connected_graph(n, seed=seed), 7, seed=seed)
    sources = {0: offset, n - 1: 0}
    d, _ = cssp(g, sources)
    assert d == oracle_distances(g, sources)


@settings(max_examples=12, deadline=None)
@given(st.integers(min_value=3, max_value=14), st.integers(min_value=0, max_value=10**6))
def test_property_cssp_zero_weights(n, seed):
    g = graphs.random_weights(
        graphs.random_connected_graph(n, seed=seed), 4, seed=seed, min_weight=0
    )
    d, _ = cssp(g, {0: 0})
    assert d == g.dijkstra([0])
