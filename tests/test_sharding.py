"""Sharded sweeps and the fault-tolerant supervised executor.

Covers the shard lifecycle (partition -> per-shard stores -> merge -> the
canonical table), the supervised dispatcher's fault paths (dead workers
retried on fresh processes, stuck workers killed at the deadline, retry
budgets exhausted into ``failed`` rows), and the interrupt/exception
guarantees (stores always flush and close, resume retries exactly the
missing and failed cells).

Fault drivers are module-level functions (fork-started workers inherit
them with the registry), but every *registration* happens inside a test
under the ``registry`` fixture, which snapshots and restores the global
scenario/algorithm registries — the smoke catalog other tests see must
never grow a crashing scenario as a side effect.
"""

import json
import os
import time

import pytest

from repro.api import (
    ResultSet,
    SpecError,
    SweepSpec,
    cell_key,
    failure_record,
    find_shard_stores,
    is_failure,
    merge_shards,
    run_sweep_spec,
    shard_store_path,
    shard_store_paths,
)
from repro.api.shard import partition_cells, shard_cells
from repro.sim.experiments import (
    Scenario,
    SweepError,
    register_algorithm,
    register_scenario,
)

SCENARIOS = ("bfs/grid", "bellman-ford/er", "sssp/er")
SPEC = SweepSpec(scenarios=SCENARIOS, sizes=(9, 16), seeds=(0, 1))


# ----------------------------------------------------------------------
# fault-injection drivers (registered per-test via the registry fixture)
# ----------------------------------------------------------------------
def _crash_once(graph, seed, metrics, sentinel=""):
    """Kill the whole worker process the first time any process runs this."""
    if sentinel and not os.path.exists(sentinel):
        open(sentinel, "w").close()
        os._exit(17)


def _always_crash(graph, seed, metrics):
    os._exit(23)


def _raise_mid_sweep(graph, seed, metrics):
    raise RuntimeError("injected driver failure")


def _hang(graph, seed, metrics):
    time.sleep(3600)


def _interrupt(graph, seed, metrics):
    raise KeyboardInterrupt


@pytest.fixture
def registry():
    """Snapshot/restore the scenario + algorithm registries around a test."""
    from repro.api import algorithms
    from repro.sim import experiments

    scenarios = dict(experiments._SCENARIOS)
    algos = dict(algorithms._SPECS)
    yield
    experiments._SCENARIOS.clear()
    experiments._SCENARIOS.update(scenarios)
    algorithms._SPECS.clear()
    algorithms._SPECS.update(algos)


def register_fault(scenario_name: str, driver, params: tuple = ()) -> Scenario:
    algo = scenario_name.split("/")[0]
    register_algorithm(algo, driver)
    return register_scenario(Scenario(scenario_name, "path", algo, params=params))


class TestShardSpec:
    def test_shard_fields_round_trip_json(self):
        spec = SweepSpec(scenarios=("bfs/grid",), shard_index=2, shard_count=3,
                         max_retries=5, task_timeout=1.5)
        assert SweepSpec.from_json(spec.to_json()) == spec

    def test_shard_method_yields_k_subspecs(self):
        shards = SPEC.shard(3)
        assert [s.shard_index for s in shards] == [1, 2, 3]
        assert all(s.shard_count == 3 for s in shards)
        assert {s.scenarios for s in shards} == {SPEC.scenarios}

    def test_sharding_a_shard_is_rejected(self):
        with pytest.raises(SpecError, match="already sharded"):
            SPEC.shard(2)[0].shard(2)

    @pytest.mark.parametrize("fields", [
        {"shard_index": 1},                       # index without count
        {"shard_count": 2},                       # count without index
        {"shard_index": 0, "shard_count": 2},     # 1-based
        {"shard_index": 3, "shard_count": 2},     # out of range
        {"shard_index": True, "shard_count": 2},  # bool is not an int
        {"max_retries": -1},
        {"max_retries": 1.5},
        {"task_timeout": 0},
        {"task_timeout": -2.0},
    ])
    def test_bad_shard_fields_rejected(self, fields):
        with pytest.raises(SpecError):
            SweepSpec(**fields).validate()

    def test_shard_store_paths(self):
        assert shard_store_path("runs.jsonl", 1, 2).name == "runs.jsonl.shard-1-of-2.jsonl"
        assert shard_store_paths("runs.jsonl", 2) == [
            shard_store_path("runs.jsonl", 1, 2), shard_store_path("runs.jsonl", 2, 2)
        ]


class TestPartition:
    def test_partition_is_disjoint_and_complete(self):
        names = list(SCENARIOS)
        all_cells = SPEC.cells(names)
        shards = [shard_cells(spec, names) for spec in SPEC.shard(2)]
        assert sorted(shards[0] + shards[1]) == sorted(all_cells)
        assert not set(shards[0]) & set(shards[1])

    def test_partition_keeps_instance_groups_whole(self):
        # bellman-ford/er and sssp/er at the same (n, seed) share one graph
        # instance; splitting them across shards would rebuild it twice.
        from repro.sim.experiments import _instance_key, get_scenario

        names = list(SCENARIOS)
        for spec in SPEC.shard(3):
            cells = shard_cells(spec, names)
            keys = {_instance_key(get_scenario(name), n, seed) for name, n, seed in cells}
            for name, n, seed in SPEC.cells(names):
                if _instance_key(get_scenario(name), n, seed) in keys:
                    assert (name, n, seed) in cells

    def test_partition_is_deterministic(self):
        cells = [("a", n, s) for n in (1, 2, 3) for s in (0, 1)]
        keys = [(n,) for _, n, _ in cells]
        assert partition_cells(cells, keys, 2) == partition_cells(list(cells), list(keys), 2)

    def test_single_shard_is_the_whole_job(self):
        names = list(SCENARIOS)
        [only] = SPEC.shard(1)
        assert shard_cells(only, names) == SPEC.cells(names)


class TestShardRunAndMerge:
    @pytest.mark.parametrize("workers", [1, 3])
    def test_two_shards_merge_to_the_single_process_table(self, tmp_path, workers):
        single = run_sweep_spec(SPEC)
        output = tmp_path / "runs.jsonl"
        spec = SweepSpec(scenarios=SCENARIOS, sizes=(9, 16), seeds=(0, 1),
                         workers=workers, output=str(output))
        for shard in spec.shard(2):
            run_sweep_spec(shard)
        assert not output.exists()  # shards never touch the canonical store
        merged = merge_shards(output)
        assert not merged.failures()
        # Resuming the unsharded spec against the merged store reuses every
        # cell: the assembled table is identical to the uninterrupted run.
        executed = []
        rows = run_sweep_spec(spec, progress=lambda d, t, row: executed.append(row))
        assert executed == []
        assert rows == single

    def test_shard_stores_use_the_derived_paths(self, tmp_path):
        output = tmp_path / "runs.jsonl"
        spec = SweepSpec(scenarios=("bfs/grid",), sizes=(9, 16), seeds=(0,),
                         output=str(output))
        run_sweep_spec(spec.shard(2)[0])
        assert shard_store_path(output, 1, 2).exists()
        assert find_shard_stores(output) == [shard_store_path(output, 1, 2)]

    def test_merge_is_idempotent(self, tmp_path):
        output = tmp_path / "runs.jsonl"
        spec = SweepSpec(scenarios=("bfs/grid",), sizes=(9, 16), seeds=(0, 1),
                         output=str(output))
        for shard in spec.shard(2):
            run_sweep_spec(shard)
        first = merge_shards(output)
        size = output.stat().st_size
        again = merge_shards(output)
        assert output.stat().st_size == size  # re-merge appends nothing
        assert {cell_key(r) for r in again.rows()} == {cell_key(r) for r in first.rows()}

    def test_merge_tolerates_overlapping_shards(self, tmp_path):
        # Two shard files holding the same cells (e.g. a re-run under a
        # different k) collapse onto their digest keys.
        output = tmp_path / "runs.jsonl"
        spec = SweepSpec(scenarios=("bfs/grid",), sizes=(9,), seeds=(0,),
                         output=str(output))
        run_sweep_spec(spec.shard(2)[0])
        a = shard_store_path(output, 1, 2)
        b = shard_store_path(output, 2, 2)
        b.write_text(a.read_text())  # fully overlapping shard
        merged = merge_shards(output)
        assert len(merged) == 1

    def test_merge_without_shards_is_loud(self, tmp_path):
        with pytest.raises(SpecError, match="no shard stores"):
            merge_shards(tmp_path / "runs.jsonl")

    def test_success_in_any_shard_beats_a_failure_record(self, tmp_path):
        output = tmp_path / "runs.jsonl"
        spec = SweepSpec(scenarios=("bfs/grid",), sizes=(9,), seeds=(0,),
                         output=str(output))
        run_sweep_spec(spec.shard(2)[0])
        good = shard_store_path(output, 1, 2)
        digest = json.loads(good.read_text())["params_digest"]
        with ResultSet.open(shard_store_path(output, 2, 2)) as other:
            other.append(failure_record("bfs/grid", 9, 0, digest, "worker died", 3))
        merged = merge_shards(output)
        assert len(merged) == 1 and not merged.failures()


class TestResumeAcrossShards:
    @pytest.mark.parametrize("workers", [1, 3])
    def test_interrupted_shard_resumes_and_merges_byte_identical(self, tmp_path, workers):
        """Satellite: kill a shard sweep mid-run (simulated), re-run, merge;
        the merged table must be byte-identical to an uninterrupted
        single-process run."""
        single = run_sweep_spec(SPEC)
        output = tmp_path / "runs.jsonl"
        spec = SweepSpec(scenarios=SCENARIOS, sizes=(9, 16), seeds=(0, 1),
                         workers=workers, output=str(output))
        shard_one, shard_two = spec.shard(2)
        run_sweep_spec(shard_one)
        # Simulate a mid-run kill: keep one finished cell plus a torn write.
        store_path = shard_store_path(output, 1, 2)
        lines = store_path.read_text().splitlines()
        store_path.write_text(lines[0] + "\n" + lines[1][:23])
        run_sweep_spec(shard_one)  # resume re-runs only the lost cells
        run_sweep_spec(shard_two)
        merge_shards(output)
        resumed = run_sweep_spec(spec)
        assert json.dumps(resumed, sort_keys=True) == json.dumps(single, sort_keys=True)

    def test_acceptance_smoke_catalog_with_interrupt_and_worker_kill(
        self, tmp_path, registry
    ):
        """ISSUE acceptance: a 2-shard sweep of the full smoke catalog with
        one shard interrupted+resumed and one worker killed mid-group
        merges into exactly the uninterrupted single-process table."""
        from repro.api import smoke_spec

        sentinel = tmp_path / "crashed-once"
        register_fault("test-crash-once/path", _crash_once,
                       params=(("sentinel", str(sentinel)),))
        # Disarm the crash for the in-process single run; both runs cover
        # the identical catalog (digests include the sentinel param).
        sentinel.write_text("")
        single = run_sweep_spec(smoke_spec())
        assert any(row["scenario"] == "test-crash-once/path" for row in single)

        sentinel.unlink()  # re-arm: the sharded run loses a worker mid-group
        output = tmp_path / "smoke.jsonl"
        sharded = smoke_spec(workers=2, output=str(output))
        shard_one, shard_two = sharded.shard(2)
        run_sweep_spec(shard_one)
        run_sweep_spec(shard_two)
        assert sentinel.exists()  # the kill actually happened, in a worker
        # Interrupt shard 2 after the fact: drop all but one finished cell
        # (plus a torn trailing write) and resume it.
        store_path = shard_store_path(output, 2, 2)
        lines = store_path.read_text().splitlines()
        assert len(lines) > 2
        store_path.write_text(lines[0] + "\n" + lines[1][:40])
        run_sweep_spec(shard_two)  # resume
        merged = merge_shards(output)
        assert not merged.failures()
        rows = run_sweep_spec(sharded, progress=lambda d, t, r: pytest.fail(
            "merged store should satisfy every cell"))
        assert json.dumps(rows, sort_keys=True) == json.dumps(single, sort_keys=True)


class TestSupervisedFaults:
    def test_dead_worker_is_retried_on_a_fresh_process(self, tmp_path, registry):
        register_fault("test-crash-once/path", _crash_once,
                       params=(("sentinel", str(tmp_path / "crashed")),))
        spec = SweepSpec(scenarios=("test-crash-once/path", "bfs/grid"),
                         sizes=(9, 16), seeds=(0,), workers=3)
        rows = run_sweep_spec(spec)
        assert len(rows) == 4 and not any(map(is_failure, rows))
        assert (tmp_path / "crashed").exists()

    def test_exhausted_retries_record_failed_rows_not_a_hang(self, tmp_path, registry):
        register_fault("test-always-crash/path", _always_crash)
        output = tmp_path / "runs.jsonl"
        spec = SweepSpec(scenarios=("test-always-crash/path", "bfs/grid"),
                         sizes=(9, 16), seeds=(0,), workers=2, max_retries=1,
                         output=str(output))
        rows = run_sweep_spec(spec)
        failed = [r for r in rows if is_failure(r)]
        assert len(failed) == 2
        assert all(r["attempts"] == 2 and "worker died" in r["error"] for r in failed)
        # The failures are durable, excluded from the table rows, and
        # retried (not trusted) on resume.
        store = ResultSet(output)
        assert len(store.failures()) == 2
        assert all(not is_failure(r) for r in store.rows())
        executed = []
        run_sweep_spec(spec, progress=lambda d, t, row: executed.append(row["scenario"]))
        assert set(executed) == {"test-always-crash/path"}

    def test_stuck_worker_is_killed_at_the_deadline(self, registry):
        register_fault("test-hang/path", _hang)
        spec = SweepSpec(scenarios=("test-hang/path", "bfs/grid"), sizes=(9,),
                         seeds=(0,), workers=2, max_retries=0, task_timeout=0.3)
        start = time.monotonic()
        rows = run_sweep_spec(spec)
        assert time.monotonic() - start < 30  # no indefinite hang
        failed = [r for r in rows if is_failure(r)]
        assert len(failed) == 1
        # Attributed as a timeout kill, not a crash — the remedies differ.
        assert "task_timeout" in failed[0]["error"]

    def test_interrupt_in_a_worker_is_a_death_not_a_driver_error(self, registry):
        # SIGINT reaches the whole process group on Ctrl-C; a worker's
        # KeyboardInterrupt must kill that worker (fault path: retry, then
        # failed rows), never masquerade as a deterministic driver error
        # that aborts the sweep with exit 2.
        register_fault("test-interrupt/path", _interrupt)
        spec = SweepSpec(scenarios=("test-interrupt/path", "bfs/grid"),
                         sizes=(9,), seeds=(0,), workers=2, max_retries=0)
        rows = run_sweep_spec(spec)  # must not raise SweepError
        assert sum(map(is_failure, rows)) == 1

    def test_worker_exception_raises_like_the_sequential_path(self, registry):
        register_fault("test-raise/path", _raise_mid_sweep)
        spec = SweepSpec(scenarios=("test-raise/path", "bfs/grid"),
                         sizes=(9, 16), seeds=(0,), workers=2)
        with pytest.raises(SweepError, match="injected driver failure"):
            run_sweep_spec(spec)


class TestStoreAlwaysCloses:
    """Satellite: try/finally around the execution loop — store.close()
    (and the line-by-line flushes) must survive exceptions and Ctrl-C."""

    @pytest.mark.parametrize("workers", [1, 3])
    def test_store_closes_and_keeps_rows_when_a_driver_raises(
        self, tmp_path, workers, registry
    ):
        register_fault("test-raise/path", _raise_mid_sweep)
        output = tmp_path / "runs.jsonl"
        # Cross-product order runs every bfs cell before the raising driver
        # on the sequential path; parallel races but must still close.
        spec = SweepSpec(scenarios=("bfs/grid", "test-raise/path"),
                         sizes=(9, 16), seeds=(0,), workers=workers)
        store = ResultSet.open(output)
        with pytest.raises((SweepError, RuntimeError)):
            run_sweep_spec(spec, store=store)
        assert store._handle is None  # closed on the exception path
        if workers == 1:
            reloaded = ResultSet(output)  # flushed rows survived the crash
            assert len(reloaded) == 2

    def test_store_closes_on_keyboard_interrupt(self, tmp_path):
        output = tmp_path / "runs.jsonl"
        store = ResultSet.open(output)

        def _interrupt(done, total, row):
            raise KeyboardInterrupt

        spec = SweepSpec(scenarios=("bfs/grid",), sizes=(9, 16), seeds=(0,))
        with pytest.raises(KeyboardInterrupt):
            run_sweep_spec(spec, store=store, progress=_interrupt)
        assert store._handle is None
        assert len(ResultSet(output)) == 1  # the finished cell was flushed
