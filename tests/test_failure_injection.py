"""Failure injection and negative controls.

The sleeping model's message loss is the hazard the whole Section 3
machinery exists to defeat.  These tests prove the machinery is
*load-bearing*: sabotage the schedule (or skip the machinery entirely) and
the BFS demonstrably breaks, in exactly the way the paper predicts.
"""

import dataclasses

import pytest

from repro import graphs
from repro.core.bfs import WeightedBFS
from repro.energy.covers import build_layered_cover
from repro.energy.low_energy_bfs import make_schedule, run_low_energy_bfs
from repro.graphs import INFINITY
from repro.sim import Metrics, Mode, Runner


class TestNegativeControls:
    def test_naive_bfs_breaks_in_sleeping_mode(self):
        """A protocol written for CONGEST (event-driven sleeps, relying on
        wake-on-message) must fail under lossy sleeping semantics — this is
        why Theorem 3.8 needs the whole cover machinery."""
        g = graphs.path_graph(10)
        algorithms = {
            u: WeightedBFS(u, 10, source_offset=0 if u == 0 else None)
            for u in g.nodes()
        }
        m = Metrics()
        Runner(g, algorithms, Mode.SLEEPING, metrics=m).run()
        distances = {u: algorithms[u].dist for u in g.nodes()}
        assert distances != g.hop_distances([0])
        assert m.lost_messages > 0

    def test_sabotaged_sigma_loses_the_race(self):
        """With the BFS sped up far beyond the activation cascade's latency
        (sigma too small), the wavefront reaches sleeping clusters and
        offers are lost — Lemma 3.7's condition is necessary, not just
        sufficient bookkeeping."""
        g = graphs.path_graph(48)
        cover = build_layered_cover(g, 48, base=4, stretch=3)
        good = make_schedule(g, cover, 48)
        bad = dataclasses.replace(good, sigma=2, t_end=good.t0 + 2 * (48 + 2) + 2)
        m = Metrics()
        dist, _ = run_low_energy_bfs(g, cover, {0: 0}, 48, metrics=m, schedule=bad)
        truth = g.hop_distances([0])
        wrong = [u for u in g.nodes() if dist[u] != truth[u]]
        assert wrong, "sabotaged schedule should break distant nodes"

    def test_correct_sigma_wins_the_race(self):
        """Control for the control: the derived schedule succeeds."""
        g = graphs.path_graph(48)
        cover = build_layered_cover(g, 48, base=4, stretch=3)
        dist, _ = run_low_energy_bfs(g, cover, {0: 0}, 48)
        assert dist == g.hop_distances([0])


class TestRobustness:
    def test_isolated_source(self):
        from repro.core.cssp import cssp
        from repro.graphs import Graph

        g = Graph.from_edges([(1, 2, 3)], nodes=[0])
        d, _ = cssp(g, {0: 0})
        assert d == {0: 0, 1: INFINITY, 2: INFINITY}

    def test_source_equals_whole_graph(self):
        from repro.core.cssp import cssp

        g = graphs.path_graph(5)
        d, _ = cssp(g, {u: 0 for u in g.nodes()})
        assert all(v == 0 for v in d.values())

    def test_very_heavy_single_edge(self):
        from repro.core.cssp import cssp
        from repro.graphs import Graph

        g = Graph.from_edges([(0, 1, 10**6)])
        d, _ = cssp(g, {0: 0})
        assert d[1] == 10**6

    def test_energy_bfs_two_node_graph(self):
        from repro.graphs import Graph

        g = Graph.from_edges([(0, 1)])
        cover = build_layered_cover(g, 2, base=4, stretch=3)
        dist, _ = run_low_energy_bfs(g, cover, {0: 0}, 2)
        assert dist == {0: 0, 1: 1}

    def test_energy_bfs_singleton(self):
        from repro.graphs import Graph

        g = Graph()
        g.add_node(0)
        cover = build_layered_cover(g, 1, base=4, stretch=3)
        dist, _ = run_low_energy_bfs(g, cover, {0: 0}, 1)
        assert dist == {0: 0}

    def test_disconnected_energy_bfs(self):
        from repro.graphs import Graph

        g = Graph.from_edges([(0, 1), (2, 3)])
        cover = build_layered_cover(g, 4, base=4, stretch=3)
        dist, _ = run_low_energy_bfs(g, cover, {0: 0}, 4)
        assert dist[1] == 1
        assert dist[2] == INFINITY and dist[3] == INFINITY
