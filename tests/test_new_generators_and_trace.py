"""Hypercube/geometric/circulant generators, tracing metrics, validators."""

import pytest

from repro import graphs, sssp
from repro.energy import (
    build_decomposition,
    build_layered_cover,
    build_sparse_cover,
    validate_decomposition,
    validate_layered_cover,
    validate_sparse_cover,
    ValidationError,
)
from repro.graphs import (
    Graph,
    circulant_graph,
    hypercube_graph,
    random_geometric_graph,
)
from repro.sim import Mode, Runner, TracingMetrics
from repro.core.bfs import run_bfs


class TestHypercube:
    def test_structure(self):
        g = hypercube_graph(4)
        assert g.num_nodes == 16
        assert all(g.degree(u) == 4 for u in g.nodes())
        assert g.hop_diameter() == 4

    def test_invalid_dimension(self):
        with pytest.raises(ValueError):
            hypercube_graph(0)

    def test_bfs_distance_is_hamming(self):
        g = hypercube_graph(4)
        d = run_bfs(g, [0])
        for u in g.nodes():
            assert d[u] == bin(u).count("1")


class TestGeometric:
    def test_connectivity_at_large_radius(self):
        g = random_geometric_graph(30, 2.0, seed=1)
        assert g.is_connected()

    def test_sparse_at_small_radius(self):
        g = random_geometric_graph(30, 0.01, seed=1)
        assert g.num_edges < 30

    def test_deterministic(self):
        a = random_geometric_graph(20, 0.4, seed=9)
        b = random_geometric_graph(20, 0.4, seed=9)
        assert sorted(map(repr, a.edges())) == sorted(map(repr, b.edges()))

    def test_invalid_radius(self):
        with pytest.raises(ValueError):
            random_geometric_graph(5, 0)

    def test_weights_positive(self):
        g = random_geometric_graph(25, 0.5, seed=2)
        assert all(w >= 1 for _, _, w in g.edges())

    def test_sssp_works_on_geometric(self):
        g = random_geometric_graph(24, 0.6, seed=3)
        if not g.is_connected():
            pytest.skip("sampled graph disconnected")
        assert sssp(g, 0).distances == g.dijkstra([0])


class TestCirculant:
    def test_ring_plus_chords(self):
        g = circulant_graph(10, (1, 3))
        assert g.num_nodes == 10
        assert g.has_edge(0, 1) and g.has_edge(0, 3)

    def test_diameter_shrinks_with_jumps(self):
        ring = circulant_graph(24, (1,))
        chord = circulant_graph(24, (1, 5))
        assert chord.hop_diameter() < ring.hop_diameter()

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            circulant_graph(2)


class TestTracingMetrics:
    def test_message_timeline(self):
        g = graphs.path_graph(6)
        t = TracingMetrics()
        run_bfs(g, [0], metrics=t)
        # BFS sends a wave: messages in consecutive early rounds.
        assert t.messages_by_round[0] >= 1
        assert sum(t.messages_by_round.values()) == t.total_messages

    def test_peak_round_load(self):
        g = graphs.star_graph(8)
        t = TracingMetrics()
        run_bfs(g, [0], metrics=t)
        r, load = t.peak_round_load()
        assert load == 7  # the center fans out to all leaves at once

    def test_awake_profile_buckets(self):
        g = graphs.path_graph(10)
        t = TracingMetrics()
        run_bfs(g, [0], metrics=t)
        profile = t.awake_fraction_profile(g.num_nodes, buckets=5)
        assert len(profile) == 5
        assert all(0 <= x <= 1 for x in profile)

    def test_awake_profile_last_bucket_extends_to_horizon(self):
        # Horizon 25 over 10 buckets: width 2, so rounds 20..24 used to
        # land in NO bucket and activity there silently vanished from the
        # profile.  The last bucket must extend to the horizon.
        t = TracingMetrics()
        t.awake_by_round[24] = 3  # all the activity in the dropped tail
        profile = t.awake_fraction_profile(num_nodes=3, buckets=10)
        assert len(profile) == 10
        # Last bucket covers rounds 18..24 (7 rounds): 3 awake / (7 * 3).
        assert profile[9] == pytest.approx(3 / (7 * 3))
        assert sum(profile) > 0  # the tail is no longer dropped

    def test_awake_profile_conserves_total_awake_rounds(self):
        # Every round lands in exactly one bucket: reconstructing the
        # total from per-bucket averages must give back the exact count,
        # for horizons that do and do not divide evenly.
        for horizon, buckets in ((25, 10), (20, 10), (7, 10), (30, 4)):
            t = TracingMetrics()
            for r in range(horizon):
                t.awake_by_round[r] = 1 + (r % 3)
            profile = t.awake_fraction_profile(num_nodes=5, buckets=buckets)
            width = max(1, horizon // buckets)
            total = 0.0
            for b, fraction in enumerate(profile):
                lo = b * width
                hi = horizon if b == buckets - 1 else min((b + 1) * width, horizon)
                if lo < hi:
                    total += fraction * (hi - lo) * 5
            assert total == pytest.approx(sum(t.awake_by_round.values()))

    def test_edge_profile(self):
        g = graphs.path_graph(4)
        t = TracingMetrics()
        run_bfs(g, [0], metrics=t)
        profile = t.edge_profile(0, 1)
        assert sum(profile.values()) == t.congestion_of(0, 1)

    def test_empty_trace(self):
        t = TracingMetrics()
        assert t.peak_round_load() == (0, 0)
        assert t.awake_fraction_profile(10) == [0.0] * 10


class TestValidators:
    def test_decomposition_validator_accepts(self):
        g = graphs.grid_graph(5, 5)
        validate_decomposition(g, build_decomposition(g, 3))

    def test_decomposition_validator_rejects_overlap(self):
        # The radius cap guarantees multiple clusters on a long path.
        g = graphs.path_graph(40)
        deco = build_decomposition(g, 2, radius_cap=6)
        assert len(deco.clusters) >= 2
        victim = next(iter(deco.clusters[0].members))
        deco.clusters[1].members.add(victim)
        with pytest.raises(ValidationError):
            validate_decomposition(g, deco)

    def test_sparse_cover_validator_accepts(self):
        g = graphs.cycle_graph(16)
        validate_sparse_cover(g, build_sparse_cover(g, 2, stretch=3))

    def test_sparse_cover_validator_rejects_shrunk_home(self):
        g = graphs.path_graph(12)
        cover = build_sparse_cover(g, 2, stretch=3)
        home = cover.home[5]
        victim = next(u for u in home.members if u != 5)
        home.members.discard(victim)
        with pytest.raises(ValidationError):
            validate_sparse_cover(g, cover)

    def test_layered_validator_accepts(self):
        g = graphs.path_graph(30)
        validate_layered_cover(g, build_layered_cover(g, 29, base=4, stretch=3))

    def test_layered_validator_rejects_broken_parent(self):
        g = graphs.path_graph(30)
        layered = build_layered_cover(g, 29, base=4, stretch=3)
        if len(layered.levels) < 2:
            pytest.skip("single level")
        victim = layered.levels[0].clusters[0]
        del layered.parent_of[victim.cid]
        with pytest.raises(ValidationError):
            validate_layered_cover(g, layered)
