"""The ``repro`` CLI: argparse subcommands over the spec API."""

import json
import subprocess
import sys

import pytest

from repro.__main__ import main
from repro.testing import subprocess_env

SUBPROCESS_ENV = subprocess_env()


class TestCLI:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "PODC 2024" in out
        assert "repro.energy.low_energy_bfs" in out
        assert "repro.api" in out

    def test_info_json(self, capsys):
        import repro

        assert main(["info", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["version"] == repro.__version__
        assert "repro.api" in data["systems"]

    def test_demo_small(self, capsys):
        assert main(["demo", "12"]) == 0
        out = capsys.readouterr().out
        assert "exact vs oracle: True" in out

    def test_demo_json(self, capsys):
        assert main(["demo", "12", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["exact"] is True
        assert data["metrics"]["rounds"] > 0

    def test_no_args_prints_help(self, capsys):
        assert main([]) == 0
        assert "Commands" in capsys.readouterr().out

    def test_help_flag_lists_every_subcommand(self, capsys):
        assert main(["--help"]) == 0
        out = capsys.readouterr().out
        for command in ("info", "demo", "sweep", "bench", "report"):
            assert command in out
        assert "--spec" in out  # the spec workflow is advertised

    def test_subcommand_help(self, capsys):
        assert main(["sweep", "--help"]) == 0
        out = capsys.readouterr().out
        for flag in ("--scenarios", "--sizes", "--seeds", "--workers",
                     "--output", "--smoke", "--spec", "--json"):
            assert flag in out

    def test_unknown_command_exits_2_with_usage(self, capsys):
        assert main(["frobnicate"]) == 2
        err = capsys.readouterr().err
        assert "usage:" in err

    def test_unknown_flag_exits_2_with_usage(self, capsys):
        assert main(["sweep", "--frobnicate"]) == 2
        err = capsys.readouterr().err
        assert "usage:" in err

    @pytest.mark.parametrize("flag", ["--sizes", "--seeds"])
    def test_malformed_int_csv_exits_2_with_usage(self, flag, capsys):
        assert main(["sweep", flag, "16,x"]) == 2
        err = capsys.readouterr().err
        assert "usage:" in err
        assert "comma-separated integers" in err

    def test_malformed_workers_exits_2(self, capsys):
        assert main(["sweep", "--workers", "two"]) == 2
        assert "usage:" in capsys.readouterr().err

    def test_report_missing_dir(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            main(["report", str(tmp_path / "nope")])

    def test_report_roundtrip(self, tmp_path, capsys):
        d = tmp_path / "results"
        d.mkdir()
        (d / "E1_correctness.txt").write_text("== E1 ==\n")
        out_file = tmp_path / "r.md"
        assert main(["report", str(d), str(out_file)]) == 0
        assert "E1" in out_file.read_text()

    def test_report_bad_args_exit_2_with_usage(self, capsys):
        assert main(["report", ""]) == 2
        assert "usage:" in capsys.readouterr().err

    def test_report_json(self, tmp_path, capsys):
        d = tmp_path / "results"
        d.mkdir()
        (d / "E1_correctness.txt").write_text("== E1 ==\n")
        assert main(["report", str(d), "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["results_dir"] == str(d)
        assert "E1" in data["report"]

    def test_module_invocation(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "info"],
            capture_output=True,
            text=True,
            env=SUBPROCESS_ENV,
        )
        assert proc.returncode == 0
        assert "PODC" in proc.stdout

    def test_module_invocation_usage_error_exits_2(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "sweep", "--sizes", "a,b"],
            capture_output=True,
            text=True,
            env=SUBPROCESS_ENV,
        )
        assert proc.returncode == 2
        assert "usage:" in proc.stderr


class TestSweepSpecCLI:
    def test_spec_file_drives_the_sweep(self, tmp_path, capsys):
        spec_file = tmp_path / "sweep.json"
        spec_file.write_text(json.dumps({
            "kind": "sweep", "scenarios": ["bfs/grid"], "sizes": [9, 16],
            "seeds": [0], "workers": 1, "output": None,
        }))
        assert main(["sweep", "--spec", str(spec_file), "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert [(r["scenario"], r["n"]) for r in rows] == [("bfs/grid", 9), ("bfs/grid", 16)]

    def test_flags_override_spec_fields(self, tmp_path, capsys):
        spec_file = tmp_path / "sweep.json"
        spec_file.write_text(json.dumps({
            "kind": "sweep", "scenarios": ["bfs/grid"], "sizes": [9, 16], "seeds": [0],
        }))
        assert main(["sweep", "--spec", str(spec_file), "--sizes", "9", "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert [r["n"] for r in rows] == [9]

    def test_cli_store_resumes(self, tmp_path, capsys):
        store = tmp_path / "runs.jsonl"
        argv = ["sweep", "--scenarios", "bfs/grid", "--sizes", "9,16",
                "--seeds", "0", "--output", str(store), "--json"]
        assert main(argv) == 0
        first = json.loads(capsys.readouterr().out)
        lines = store.read_text().splitlines()
        store.write_text(lines[0] + "\n")  # drop one finished cell
        assert main(argv) == 0
        assert json.loads(capsys.readouterr().out) == first

    def test_wrong_spec_kind_exits_2(self, tmp_path, capsys):
        spec_file = tmp_path / "bench.json"
        spec_file.write_text(json.dumps({"kind": "bench"}))
        assert main(["sweep", "--spec", str(spec_file)]) == 2
        assert "expected 'sweep'" in capsys.readouterr().err

    def test_malformed_spec_file_exits_2(self, tmp_path, capsys):
        spec_file = tmp_path / "bad.json"
        spec_file.write_text("{nope")
        assert main(["sweep", "--spec", str(spec_file)]) == 2
        assert "usage:" in capsys.readouterr().err

    def test_unknown_scenario_in_spec_exits_2(self, capsys):
        assert main(["sweep", "--scenarios", "definitely-not-registered"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_progress_streams_to_stderr(self, capsys):
        assert main(["sweep", "--scenarios", "bfs/grid", "--sizes", "9",
                     "--seeds", "0", "--progress"]) == 0
        err = capsys.readouterr().err
        assert "[1/1] bfs/grid n=9 seed=0" in err


class TestShardCLI:
    SELECTORS = ["--scenarios", "bfs/grid,bellman-ford/er", "--sizes", "9,16",
                 "--seeds", "0"]

    def test_shard_run_and_merge_reproduce_the_single_table(self, tmp_path, capsys):
        assert main(["sweep", *self.SELECTORS, "--json"]) == 0
        single = json.loads(capsys.readouterr().out)
        store = tmp_path / "runs.jsonl"
        for shard in ("1/2", "2/2"):
            assert main(["sweep", *self.SELECTORS, "--output", str(store),
                         "--shard", shard]) == 0
        capsys.readouterr()
        assert (tmp_path / "runs.jsonl.shard-1-of-2.jsonl").exists()
        assert not store.exists()
        assert main(["sweep", *self.SELECTORS, "--output", str(store),
                     "--merge", "--json"]) == 0
        captured = capsys.readouterr()
        assert "merged" in captured.err
        assert json.loads(captured.out) == single
        assert store.exists()

    def test_shard_flag_prints_the_derived_store_path(self, tmp_path, capsys):
        store = tmp_path / "runs.jsonl"
        assert main(["sweep", *self.SELECTORS, "--output", str(store),
                     "--shard", "2/2"]) == 0
        assert "runs.jsonl.shard-2-of-2.jsonl" in capsys.readouterr().out

    @pytest.mark.parametrize("value", ["0/2", "3/2", "1of2", "1/0", "x/y"])
    def test_malformed_shard_flag_exits_2(self, value, capsys):
        assert main(["sweep", *self.SELECTORS, "--shard", value]) == 2
        assert "usage:" in capsys.readouterr().err

    def test_shard_without_output_is_rejected(self, capsys):
        # Running a shard into a discarded in-memory store would silently
        # waste the whole partition.
        assert main(["sweep", *self.SELECTORS, "--shard", "1/2"]) == 2
        assert "sharded sweep needs --output" in capsys.readouterr().err

    def test_sharded_spec_file_without_output_is_rejected(self, tmp_path, capsys):
        # The guard must fire on the resolved SPEC, not the --shard flag:
        # a sharded spec file with no output is the same silent discard.
        spec_file = tmp_path / "shard.json"
        spec_file.write_text(json.dumps({
            "kind": "sweep", "scenarios": ["bfs/grid"], "sizes": [9],
            "shard_index": 1, "shard_count": 2,
        }))
        assert main(["sweep", "--spec", str(spec_file)]) == 2
        assert "sharded sweep needs --output" in capsys.readouterr().err

    def test_merge_with_shard_is_rejected(self, tmp_path, capsys):
        assert main(["sweep", *self.SELECTORS, "--output",
                     str(tmp_path / "r.jsonl"), "--shard", "1/2", "--merge"]) == 2

    def test_merge_without_output_is_rejected(self, capsys):
        assert main(["sweep", *self.SELECTORS, "--merge"]) == 2

    def test_merge_without_shard_stores_exits_2(self, tmp_path, capsys):
        assert main(["sweep", *self.SELECTORS, "--output",
                     str(tmp_path / "r.jsonl"), "--merge"]) == 2
        assert "no shard stores" in capsys.readouterr().err

    def test_bad_retry_and_timeout_values_exit_2(self, capsys):
        assert main(["sweep", *self.SELECTORS, "--max-retries", "-1"]) == 2
        assert main(["sweep", *self.SELECTORS, "--task-timeout", "0"]) == 2


class TestBenchCLI:
    def test_bench_writes_json(self, tmp_path, capsys):
        target = tmp_path / "BENCH.json"
        code = main(
            ["bench", "--experiments", "smoke", "--repeats", "1",
             "--output", str(target)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "smoke" in out
        data = json.loads(target.read_text())
        assert set(data) == {"smoke", "_meta"}
        assert data["smoke"] > 0
        # The provenance block records what produced the numbers; the
        # quick-gate comparator skips it (non-numeric) by construction.
        from repro.sim.kernels import current_backend

        assert data["_meta"]["backend"] == current_backend()
        assert data["_meta"]["python"]

    def test_bench_json_output(self, tmp_path, capsys):
        target = tmp_path / "BENCH.json"
        code = main(["bench", "--experiments", "smoke", "--repeats", "1",
                     "--output", str(target), "--json"])
        assert code == 0
        data = json.loads(capsys.readouterr().out)
        assert data["results"]["smoke"] > 0
        assert data["wrote"] == str(target)

    def test_bench_spec_file(self, tmp_path, capsys):
        spec_file = tmp_path / "bench.json"
        spec_file.write_text(json.dumps({
            "kind": "bench", "experiments": ["smoke"], "repeats": 1,
            "output": str(tmp_path / "B.json"),
        }))
        assert main(["bench", "--spec", str(spec_file)]) == 0
        assert json.loads((tmp_path / "B.json").read_text())["smoke"] > 0

    def test_bench_quick_without_baseline_exits_nonzero(self, tmp_path, capsys, monkeypatch):
        # A missing baseline must never read as "gate passed": the old
        # behavior exited 0 with zero violations, silently skipping the
        # CI perf gate.
        monkeypatch.chdir(tmp_path)  # no BENCH.json here
        assert main(["bench", "--quick", "--experiments", "smoke"]) == 1
        err = capsys.readouterr().err
        assert "no recorded baseline" in err and "SKIPPED" in err

    def test_bench_quick_without_baseline_json_carries_gate_field(
        self, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.chdir(tmp_path)
        assert main(["bench", "--quick", "--experiments", "smoke", "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["gate"] == "skipped-no-baseline"
        assert payload["violations"] == []

    def test_bench_quick_with_baseline_json_gate_ok(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        (tmp_path / "BENCH.json").write_text(json.dumps({"smoke": 1e9}))
        assert main(["bench", "--quick", "--experiments", "smoke", "--json"]) == 0
        assert json.loads(capsys.readouterr().out)["gate"] == "ok"

    def test_bench_quick_flags_regression(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        # An absurdly fast recorded baseline forces the 2x gate to trip.
        (tmp_path / "BENCH.json").write_text(json.dumps({"smoke": 0.001}))
        assert main(["bench", "--quick", "--experiments", "smoke"]) == 1
        assert "PERF REGRESSION" in capsys.readouterr().err

    def test_bench_quick_gates_before_overwriting_the_baseline(
        self, tmp_path, capsys, monkeypatch
    ):
        # --output pointing at the baseline file must still gate against
        # the OLD recorded numbers, not the freshly written ones.
        monkeypatch.chdir(tmp_path)
        (tmp_path / "BENCH.json").write_text(json.dumps({"smoke": 0.001}))
        assert main(["bench", "--quick", "--experiments", "smoke",
                     "--output", "BENCH.json"]) == 1
        assert "PERF REGRESSION" in capsys.readouterr().err
        # ... and the refreshed numbers were still written for inspection.
        assert json.loads((tmp_path / "BENCH.json").read_text())["smoke"] > 1

    def test_bench_quick_passes_against_generous_baseline(
        self, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.chdir(tmp_path)
        (tmp_path / "BENCH.json").write_text(json.dumps({"smoke": 1e9}))
        assert main(["bench", "--quick", "--experiments", "smoke"]) == 0
        assert "within" in capsys.readouterr().out

    def test_bench_unknown_experiment_rejected(self, capsys):
        assert main(["bench", "--experiments", "nope", "--repeats", "1"]) == 2

    def test_bench_bad_repeats_exits_2(self, capsys):
        assert main(["bench", "--repeats", "fast"]) == 2
        assert "usage:" in capsys.readouterr().err
