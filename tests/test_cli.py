"""The ``python -m repro`` command-line interface."""

import subprocess
import sys

import pytest

from repro.__main__ import main
from repro.testing import subprocess_env

SUBPROCESS_ENV = subprocess_env()


class TestCLI:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "PODC 2024" in out
        assert "repro.energy.low_energy_bfs" in out

    def test_demo_small(self, capsys):
        assert main(["demo", "12"]) == 0
        out = capsys.readouterr().out
        assert "exact vs oracle: True" in out

    def test_help(self, capsys):
        assert main([]) == 0
        assert "Commands" in capsys.readouterr().out

    def test_unknown_command(self, capsys):
        assert main(["frobnicate"]) == 2

    def test_report_missing_dir(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            main(["report", str(tmp_path / "nope")])

    def test_report_roundtrip(self, tmp_path, capsys):
        d = tmp_path / "results"
        d.mkdir()
        (d / "E1_correctness.txt").write_text("== E1 ==\n")
        out_file = tmp_path / "r.md"
        assert main(["report", str(d), str(out_file)]) == 0
        assert "E1" in out_file.read_text()

    def test_module_invocation(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "info"],
            capture_output=True,
            text=True,
            env=SUBPROCESS_ENV,
        )
        assert proc.returncode == 0
        assert "PODC" in proc.stdout
