"""The ``python -m repro`` command-line interface."""

import subprocess
import sys

import pytest

from repro.__main__ import main
from repro.testing import subprocess_env

SUBPROCESS_ENV = subprocess_env()


class TestCLI:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "PODC 2024" in out
        assert "repro.energy.low_energy_bfs" in out

    def test_demo_small(self, capsys):
        assert main(["demo", "12"]) == 0
        out = capsys.readouterr().out
        assert "exact vs oracle: True" in out

    def test_help(self, capsys):
        assert main([]) == 0
        assert "Commands" in capsys.readouterr().out

    def test_unknown_command(self, capsys):
        assert main(["frobnicate"]) == 2

    def test_report_missing_dir(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            main(["report", str(tmp_path / "nope")])

    def test_report_roundtrip(self, tmp_path, capsys):
        d = tmp_path / "results"
        d.mkdir()
        (d / "E1_correctness.txt").write_text("== E1 ==\n")
        out_file = tmp_path / "r.md"
        assert main(["report", str(d), str(out_file)]) == 0
        assert "E1" in out_file.read_text()

    def test_module_invocation(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "info"],
            capture_output=True,
            text=True,
            env=SUBPROCESS_ENV,
        )
        assert proc.returncode == 0
        assert "PODC" in proc.stdout


class TestBenchCLI:
    def test_bench_writes_json(self, tmp_path, capsys):
        import json

        target = tmp_path / "BENCH.json"
        code = main(
            ["bench", "--experiments", "smoke", "--repeats", "1",
             "--output", str(target)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "smoke" in out
        data = json.loads(target.read_text())
        assert set(data) == {"smoke"}
        assert data["smoke"] > 0

    def test_bench_quick_without_baseline_is_clean(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)  # no BENCH.json here
        assert main(["bench", "--quick", "--experiments", "smoke"]) == 0
        assert "no recorded baseline" in capsys.readouterr().out

    def test_bench_quick_flags_regression(self, tmp_path, capsys, monkeypatch):
        import json

        monkeypatch.chdir(tmp_path)
        # An absurdly fast recorded baseline forces the 2x gate to trip.
        (tmp_path / "BENCH.json").write_text(json.dumps({"smoke": 0.001}))
        assert main(["bench", "--quick", "--experiments", "smoke"]) == 1
        assert "PERF REGRESSION" in capsys.readouterr().err

    def test_bench_quick_passes_against_generous_baseline(
        self, tmp_path, capsys, monkeypatch
    ):
        import json

        monkeypatch.chdir(tmp_path)
        (tmp_path / "BENCH.json").write_text(json.dumps({"smoke": 1e9}))
        assert main(["bench", "--quick", "--experiments", "smoke"]) == 0
        assert "within" in capsys.readouterr().out

    def test_bench_unknown_experiment_rejected(self, capsys):
        assert main(["bench", "--experiments", "nope", "--repeats", "1"]) == 2
