"""Scaling fits and table rendering."""

import math

import pytest

from repro.analysis import (
    compare_models,
    fit_polylog,
    fit_power_law,
    linear_regression,
    render_table,
)


class TestRegression:
    def test_exact_line(self):
        a, b, r2 = linear_regression([0, 1, 2, 3], [5, 7, 9, 11])
        assert a == pytest.approx(5)
        assert b == pytest.approx(2)
        assert r2 == pytest.approx(1.0)

    def test_needs_two_points(self):
        with pytest.raises(ValueError):
            linear_regression([1], [1])

    def test_degenerate_x(self):
        with pytest.raises(ValueError):
            linear_regression([2, 2], [1, 3])

    def test_constant_y(self):
        _, slope, r2 = linear_regression([1, 2, 3], [4, 4, 4])
        assert slope == pytest.approx(0)
        assert r2 == pytest.approx(1.0)


class TestPowerFits:
    def test_recovers_exponent(self):
        xs = [8, 16, 32, 64, 128]
        ys = [3 * x**1.5 for x in xs]
        fit = fit_power_law(xs, ys)
        assert fit.exponent == pytest.approx(1.5, abs=0.01)
        assert fit.coefficient == pytest.approx(3, rel=0.05)
        assert fit.r2 > 0.999

    def test_predict(self):
        fit = fit_power_law([2, 4, 8], [2, 4, 8])
        assert fit.predict(16) == pytest.approx(16, rel=0.01)

    def test_polylog_recovers_exponent(self):
        xs = [8, 16, 32, 64, 128, 256]
        ys = [5 * math.log2(x) ** 2 for x in xs]
        fit = fit_polylog(xs, ys)
        assert fit.exponent == pytest.approx(2, abs=0.01)

    def test_compare_prefers_polylog_on_polylog_data(self):
        xs = [8, 16, 32, 64, 128, 256, 512]
        ys = [5 * math.log2(x) ** 2 for x in xs]
        assert compare_models(xs, ys)["verdict"] == "polylog"

    def test_compare_prefers_power_on_linear_data(self):
        xs = [8, 16, 32, 64, 128, 256, 512]
        ys = [5 * x for x in xs]
        out = compare_models(xs, ys)
        assert out["verdict"] == "power"
        assert out["power"].exponent == pytest.approx(1.0, abs=0.01)

    def test_small_power_counts_as_polylog(self):
        xs = [8, 16, 32, 64]
        ys = [x**0.2 for x in xs]
        assert compare_models(xs, ys)["verdict"] == "polylog"


class TestTables:
    def test_render_basic(self):
        out = render_table("T", ["a", "bb"], [[1, 2.5], [30, "x"]])
        lines = out.splitlines()
        assert lines[0] == "== T =="
        assert "a" in lines[1] and "bb" in lines[1]
        assert "30" in lines[4]  # title, header, separator, row 1, row 2

    def test_alignment_width(self):
        out = render_table("t", ["col"], [["longvalue"]])
        header, sep, row = out.splitlines()[1:]
        assert len(header) == len(row)

    def test_infinity_rendered(self):
        out = render_table("t", ["x"], [[float("inf")]])
        assert "inf" in out

    def test_float_formatting(self):
        out = render_table("t", ["x"], [[1.23456]])
        assert "1.23" in out
