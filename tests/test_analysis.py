"""Scaling fits and table rendering."""

import math

import pytest

from repro.analysis import (
    compare_models,
    fit_polylog,
    fit_power_law,
    linear_regression,
    render_table,
)


class TestRegression:
    def test_exact_line(self):
        a, b, r2 = linear_regression([0, 1, 2, 3], [5, 7, 9, 11])
        assert a == pytest.approx(5)
        assert b == pytest.approx(2)
        assert r2 == pytest.approx(1.0)

    def test_needs_two_points(self):
        with pytest.raises(ValueError):
            linear_regression([1], [1])

    def test_degenerate_x(self):
        with pytest.raises(ValueError):
            linear_regression([2, 2], [1, 3])

    def test_constant_y(self):
        _, slope, r2 = linear_regression([1, 2, 3], [4, 4, 4])
        assert slope == pytest.approx(0)
        assert r2 == pytest.approx(1.0)


class TestPowerFits:
    def test_recovers_exponent(self):
        xs = [8, 16, 32, 64, 128]
        ys = [3 * x**1.5 for x in xs]
        fit = fit_power_law(xs, ys)
        assert fit.exponent == pytest.approx(1.5, abs=0.01)
        assert fit.coefficient == pytest.approx(3, rel=0.05)
        assert fit.r2 > 0.999

    def test_predict(self):
        fit = fit_power_law([2, 4, 8], [2, 4, 8])
        assert fit.predict(16) == pytest.approx(16, rel=0.01)

    def test_polylog_recovers_exponent(self):
        xs = [8, 16, 32, 64, 128, 256]
        ys = [5 * math.log2(x) ** 2 for x in xs]
        fit = fit_polylog(xs, ys)
        assert fit.exponent == pytest.approx(2, abs=0.01)

    def test_compare_prefers_polylog_on_polylog_data(self):
        xs = [8, 16, 32, 64, 128, 256, 512]
        ys = [5 * math.log2(x) ** 2 for x in xs]
        assert compare_models(xs, ys)["verdict"] == "polylog"

    def test_compare_prefers_power_on_linear_data(self):
        xs = [8, 16, 32, 64, 128, 256, 512]
        ys = [5 * x for x in xs]
        out = compare_models(xs, ys)
        assert out["verdict"] == "power"
        assert out["power"].exponent == pytest.approx(1.0, abs=0.01)

    def test_non_positive_x_is_clamped_not_fatal(self):
        # A zero/negative size used to raise `math domain error` out of
        # fit_power_law (and ValueError out of fit_polylog's log2) and
        # crash report generation; x is now clamped exactly like y.
        for fitter in (fit_power_law, fit_polylog):
            fit = fitter([0, 16, 32, 64], [1, 2, 3, 4])
            assert not fit.degenerate
            fit = fitter([-5, 16, 32, 64], [1, 2, 3, 4])
            assert not fit.degenerate

    def test_polylog_handles_x_at_or_below_one(self):
        # log2(1) == 0 and log2(x<1) < 0: both need the inner clamp even
        # though the sizes are "positive data".
        fit = fit_polylog([1, 2, 4, 8], [1, 2, 3, 4])
        assert not fit.degenerate

    @pytest.mark.parametrize("fitter", [fit_power_law, fit_polylog])
    def test_degenerate_series_returns_sentinel(self, fitter):
        # Fewer than two points, or no two distinct sizes: a degenerate
        # sentinel (NaN fit, r2=0), never a raised ValueError.
        for xs, ys in ([[16], [3]], [[16, 16, 16], [1, 2, 3]], [[], []]):
            fit = fitter(xs, ys)
            assert fit.degenerate
            assert math.isnan(fit.exponent) and math.isnan(fit.coefficient)
            assert fit.r2 == 0.0

    def test_healthy_fit_is_not_degenerate(self):
        assert not fit_power_law([2, 4, 8], [2, 4, 8]).degenerate

    def test_compare_models_degenerate_verdict(self):
        out = compare_models([16, 16], [1, 2])
        assert out["verdict"] == "degenerate"
        assert out["power"].degenerate and out["polylog"].degenerate

    def test_small_power_counts_as_polylog(self):
        xs = [8, 16, 32, 64]
        ys = [x**0.2 for x in xs]
        assert compare_models(xs, ys)["verdict"] == "polylog"


class TestTables:
    def test_render_basic(self):
        out = render_table("T", ["a", "bb"], [[1, 2.5], [30, "x"]])
        lines = out.splitlines()
        assert lines[0] == "== T =="
        assert "a" in lines[1] and "bb" in lines[1]
        assert "30" in lines[4]  # title, header, separator, row 1, row 2

    def test_alignment_width(self):
        out = render_table("t", ["col"], [["longvalue"]])
        header, sep, row = out.splitlines()[1:]
        assert len(header) == len(row)

    def test_infinity_rendered(self):
        out = render_table("t", ["x"], [[float("inf")]])
        assert "inf" in out

    def test_float_formatting(self):
        out = render_table("t", ["x"], [[1.23456]])
        assert "1.23" in out
