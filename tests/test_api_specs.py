"""The spec layer: JSON round-trips, validation, and algorithm descriptors."""

import json

import pytest

from repro.api import (
    AlgorithmSpec,
    BenchSpec,
    ReportSpec,
    SpecError,
    SweepSpec,
    get_algorithm_spec,
    list_algorithm_specs,
    load_spec,
    register_algorithm_spec,
    smoke_spec,
)
from repro.api.algorithms import discover, resolve_entry_point
from repro.sim.experiments import list_algorithms, run_scenario


class TestSweepSpecRoundTrip:
    def test_json_round_trip_is_exact(self):
        spec = SweepSpec(scenarios=("sssp/er", "bfs/grid"), sizes=(16, 32),
                         seeds=(0, 1, 2), workers=4, output="runs.jsonl")
        assert SweepSpec.from_json(spec.to_json()) == spec

    def test_defaults_round_trip(self):
        spec = SweepSpec()
        assert SweepSpec.from_json(spec.to_json()) == spec
        assert spec.scenarios is None  # "all registered" survives the trip

    def test_json_lists_normalize_to_tuples(self):
        spec = SweepSpec.from_dict(
            {"kind": "sweep", "scenarios": ["a", "b"], "sizes": [8], "seeds": [0, 1]}
        )
        assert spec.scenarios == ("a", "b")
        assert spec.sizes == (8,)
        assert spec.seeds == (0, 1)

    def test_file_round_trip(self, tmp_path):
        spec = SweepSpec(scenarios=("bfs/grid",), sizes=(9,), seeds=(0,))
        path = spec.save(tmp_path / "sweep.json")
        assert SweepSpec.load(path) == spec
        assert load_spec(path) == spec  # kind-tag dispatch

    def test_cells_cross_product_order(self):
        spec = SweepSpec(scenarios=("a", "b"), sizes=(8, 16), seeds=(0, 1))
        cells = spec.cells()
        assert cells[0] == ("a", 8, 0)
        assert cells == sorted(cells, key=lambda c: (spec.scenarios.index(c[0]), c[1], c[2]))
        assert len(cells) == 8


class TestSweepSpecValidation:
    @pytest.mark.parametrize("bad", [
        {"sizes": ()},
        {"sizes": (0,)},
        {"sizes": (-4,)},
        {"sizes": ("x",)},
        {"seeds": ()},
        {"seeds": ("y",)},
        {"workers": 0},
        {"workers": "two"},
        {"scenarios": ()},
        {"output": 7},
    ])
    def test_rejects(self, bad):
        with pytest.raises(SpecError):
            SweepSpec(**bad).validate()

    def test_unknown_field_rejected(self):
        with pytest.raises(SpecError, match="unknown fields"):
            SweepSpec.from_dict({"kind": "sweep", "frobnicate": 1})

    def test_wrong_kind_rejected(self):
        with pytest.raises(SpecError, match="expected kind"):
            SweepSpec.from_dict({"kind": "bench"})

    def test_invalid_json_rejected(self):
        with pytest.raises(SpecError, match="invalid JSON"):
            SweepSpec.from_json("{nope")

    def test_replace_ignores_none_and_validates(self):
        spec = SweepSpec(sizes=(8,))
        assert spec.replace(sizes=None) is spec
        assert spec.replace(workers=3).workers == 3
        with pytest.raises(SpecError):
            spec.replace(workers=-1)


class TestOtherSpecs:
    def test_bench_round_trip(self):
        spec = BenchSpec(experiments=("E2", "smoke"), repeats=2, quick=True, factor=1.5)
        assert BenchSpec.from_json(spec.to_json()) == spec

    def test_bench_validation(self):
        for bad in ({"repeats": 0}, {"factor": 0}, {"quick": "yes"}, {"experiments": ()}):
            with pytest.raises(SpecError):
                BenchSpec(**bad).validate()

    def test_report_round_trip(self):
        spec = ReportSpec(results_dir="benchmarks/results", output="out.md")
        assert ReportSpec.from_json(spec.to_json()) == spec

    def test_load_spec_dispatches_on_kind(self, tmp_path):
        for spec in (SweepSpec(sizes=(8,)), BenchSpec(repeats=1), ReportSpec()):
            path = spec.save(tmp_path / f"{spec.kind}.json")
            loaded = load_spec(path)
            assert type(loaded) is type(spec)
            assert loaded == spec

    def test_load_spec_unknown_kind(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"kind": "mystery"}))
        with pytest.raises(SpecError, match="unknown spec kind"):
            load_spec(path)

    def test_load_spec_missing_file(self, tmp_path):
        with pytest.raises(SpecError, match="does not exist"):
            load_spec(tmp_path / "nope.json")

    def test_load_spec_accepts_json_text(self):
        spec = load_spec('{"kind": "sweep", "sizes": [8]}')
        assert spec == SweepSpec(sizes=(8,))
        with pytest.raises(SpecError, match="invalid JSON"):
            load_spec("{nope")

    def test_cells_without_resolved_scenarios_is_a_spec_error(self):
        with pytest.raises(SpecError, match="resolves at run time"):
            SweepSpec().cells()

    def test_smoke_spec_is_fixed_and_valid(self):
        spec = smoke_spec()
        assert spec.validate() is spec
        # The smoke sweep covers the *whole* registered catalog (CI runs
        # every driver through its oracle), at fixed small sizes.
        assert spec.scenarios is None
        assert spec.seeds == (0,)
        assert all(n <= 20 for n in spec.sizes)


class TestAlgorithmSpecs:
    def test_builtins_registered_declaratively(self):
        names = list_algorithms()
        assert {"sssp", "cssp", "bellman-ford", "dijkstra", "bfs", "energy-bfs"} <= set(names)
        spec = get_algorithm_spec("energy-bfs")
        assert spec.model == "sleeping"
        assert spec.oracle == "repro.graphs:Graph.hop_distances"
        assert dict(spec.param_schema) == {"base": "int", "stretch": "int"}

    def test_entry_points_resolve_to_callables(self):
        for spec in list_algorithm_specs():
            assert callable(spec.resolve()), spec.name

    def test_spec_dict_round_trip(self):
        spec = get_algorithm_spec("sssp")
        assert AlgorithmSpec.from_dict(spec.to_dict()) == spec

    def test_resolve_entry_point_syntax(self):
        assert resolve_entry_point("repro.api.drivers:drive_bfs").__name__ == "drive_bfs"
        with pytest.raises(ValueError, match="entry point"):
            resolve_entry_point("repro.api.drivers.drive_bfs")

    def test_registered_spec_drives_a_scenario(self):
        from repro.api import algorithms
        from repro.sim import experiments

        register_algorithm_spec(
            AlgorithmSpec("test-only-bfs", "repro.api.drivers:drive_bfs")
        )
        experiments.register_scenario(
            experiments.Scenario("test-only/bfs-path", "path", "test-only-bfs")
        )
        try:
            row = run_scenario("test-only/bfs-path", 8, seed=0)
            assert row["algorithm"] == "test-only-bfs"
            assert row["rounds"] > 0
        finally:
            experiments._SCENARIOS.pop("test-only/bfs-path", None)
            algorithms._SPECS.pop("test-only-bfs", None)


class TestPluginDiscovery:
    def test_env_var_plugin_registers_scenarios(self, tmp_path, monkeypatch):
        plugin = tmp_path / "repro_test_plugin.py"
        plugin.write_text(
            "from repro.sim.experiments import Scenario, register_scenario\n"
            "from repro.api import AlgorithmSpec, register_algorithm_spec\n"
            "register_algorithm_spec(AlgorithmSpec('plugin-bfs', 'repro.api.drivers:drive_bfs'))\n"
            "register_scenario(Scenario('plugin/bfs-path', 'path', 'plugin-bfs'))\n"
        )
        monkeypatch.syspath_prepend(str(tmp_path))
        monkeypatch.setenv("REPRO_PLUGINS", "repro_test_plugin")
        from repro.api import algorithms
        from repro.sim import experiments

        try:
            loaded = discover(force=True)
            assert "repro_test_plugin" in loaded
            assert "plugin/bfs-path" in experiments.list_scenarios()
            row = run_scenario("plugin/bfs-path", 8, seed=1)
            assert row["algorithm"] == "plugin-bfs"
        finally:
            experiments._SCENARIOS.pop("plugin/bfs-path", None)
            algorithms._SPECS.pop("plugin-bfs", None)

    def test_discover_runs_once_unless_forced(self, monkeypatch):
        monkeypatch.delenv("REPRO_PLUGINS", raising=False)
        discover(force=True)
        assert discover() == []  # second call is a no-op
