"""Property-based tests for the energy stack: the strongest guarantees.

These hypothesis suites hammer the sleeping-model BFS and the structures it
depends on with random small instances.  Exactness under *lossy* message
semantics is the library's deepest invariant — any scheduling bug anywhere
in the cover/activation machinery surfaces here as a wrong distance.
"""

from hypothesis import given, settings, strategies as st

from repro import graphs
from repro.energy import (
    build_layered_cover,
    build_sparse_cover,
    validate_layered_cover,
    validate_sparse_cover,
)
from repro.energy.low_energy_bfs import run_low_energy_bfs
from repro.sim import Metrics


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=2, max_value=18), st.integers(min_value=0, max_value=10**6))
def test_property_energy_bfs_exact_on_random_graphs(n, seed):
    g = graphs.random_connected_graph(n, seed=seed)
    cover = build_layered_cover(g, n, base=4, stretch=3)
    m = Metrics()
    dist, _ = run_low_energy_bfs(g, cover, {0: 0}, n, metrics=m)
    assert dist == g.hop_distances([0])


@settings(max_examples=8, deadline=None)
@given(
    st.integers(min_value=3, max_value=14),
    st.integers(min_value=0, max_value=10**6),
    st.integers(min_value=1, max_value=4),
)
def test_property_energy_bfs_exact_weighted(n, seed, max_w):
    g = graphs.random_weights(graphs.random_connected_graph(n, seed=seed), max_w, seed=seed)
    truth = g.dijkstra([0])
    tau = int(max(truth.values()))
    cover = build_layered_cover(g, tau, base=4, stretch=3)
    dist, _ = run_low_energy_bfs(g, cover, {0: 0}, tau)
    assert dist == truth


@settings(max_examples=8, deadline=None)
@given(
    st.integers(min_value=4, max_value=16),
    st.integers(min_value=0, max_value=10**6),
    st.integers(min_value=0, max_value=10),
)
def test_property_energy_bfs_thresholds(n, seed, tau):
    g = graphs.random_connected_graph(n, seed=seed)
    truth = g.hop_distances([0])
    cover = build_layered_cover(g, max(1, tau), base=4, stretch=3)
    dist, _ = run_low_energy_bfs(g, cover, {0: 0}, tau)
    for u in g.nodes():
        expected = truth[u] if truth[u] <= tau else float("inf")
        assert dist[u] == expected


@settings(max_examples=10, deadline=None)
@given(
    st.integers(min_value=2, max_value=20),
    st.integers(min_value=0, max_value=10**6),
    st.integers(min_value=1, max_value=3),
)
def test_property_sparse_cover_valid(n, seed, d):
    g = graphs.random_connected_graph(n, seed=seed)
    cover = build_sparse_cover(g, d, stretch=3)
    validate_sparse_cover(g, cover)


@settings(max_examples=8, deadline=None)
@given(st.integers(min_value=2, max_value=16), st.integers(min_value=0, max_value=10**6))
def test_property_layered_cover_valid(n, seed):
    g = graphs.random_connected_graph(n, seed=seed)
    layered = build_layered_cover(g, n, base=4, stretch=3)
    validate_layered_cover(g, layered)


@settings(max_examples=6, deadline=None)
@given(st.integers(min_value=3, max_value=12), st.integers(min_value=0, max_value=10**6))
def test_property_energy_cssp_exact(n, seed):
    from repro.energy import energy_cssp

    g = graphs.random_weights(graphs.random_connected_graph(n, seed=seed), 4, seed=seed)
    d, _ = energy_cssp(g, {0: 0})
    assert d == g.dijkstra([0])
