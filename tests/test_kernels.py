"""Batch kernels: the backend knob and the metering-parity contract.

The contract under test (see :mod:`repro.sim.kernels`): the ``backend``
knob is provenance, not physics.  Scalar and numpy dispatch must produce
byte-identical rows, serialized metrics, and final algorithm state —
across the whole scenario catalog, both engines, the fault plane, any
worker count, and resume (a store written under one backend resumes
under the other).  On a numpy-less interpreter every ``"numpy"`` request
resolves to scalar, so this entire module passes unchanged there — that
graceful-fallback leg is what the CI no-numpy matrix job runs.
"""

import pytest

from repro import graphs
from repro.api import SweepSpec, run_sweep_spec
from repro.core.bfs import WeightedBFS
from repro.sim import Metrics, Mode, Runner
from repro.sim import kernels
from repro.sim.kernels import (
    available_backends,
    current_backend,
    default_backend,
    kernel_for,
    set_backend,
    use_backend,
)


def _graph(n=18, seed=3):
    g = graphs.random_connected_graph(n, extra_edge_prob=0.2, seed=seed)
    return graphs.random_weights(g, 9, seed=seed)


def _bfs_state(n=18, seed=3, backend="scalar"):
    g = _graph(n, seed)
    algs = {u: WeightedBFS(u, 10 ** 6, source_offset=0 if u == 0 else None,
                           collect_parent=True)
            for u in g.nodes()}
    metrics = Metrics()
    with use_backend(backend):
        Runner(g, algs, Mode.CONGEST, metrics=metrics).run()
    return metrics.to_dict(), {u: (a.dist, a.parent) for u, a in algs.items()}


# ----------------------------------------------------------------------
# the knob
# ----------------------------------------------------------------------
class TestBackendKnob:
    def test_default_tracks_numpy_availability(self):
        expected = "numpy" if kernels.numpy_or_none() is not None else "scalar"
        assert default_backend() == expected
        assert set(available_backends()) <= {"scalar", "numpy"}
        assert "scalar" in available_backends()

    def test_set_backend_rejects_unknown_names(self):
        with pytest.raises(ValueError, match="unknown backend"):
            set_backend("cuda")

    def test_use_backend_restores_the_previous_request(self):
        before = current_backend()
        with use_backend("scalar"):
            assert current_backend() == "scalar"
        assert current_backend() == before

    def test_numpy_request_without_numpy_falls_back_to_scalar(self, monkeypatch):
        monkeypatch.setattr(kernels, "_np", None)
        with use_backend("numpy"):
            assert current_backend() == "scalar"
        assert available_backends() == ("scalar",)
        assert default_backend() == "scalar"

    def test_spec_validates_backend_spelling(self):
        from repro.api import SpecError

        with pytest.raises(SpecError, match="backend"):
            SweepSpec(backend="cuda").validate()
        # "numpy" stays a VALID spec even without numpy — availability is
        # resolved at run time, so one spec file serves the whole matrix.
        assert SweepSpec(backend="numpy").validate().backend == "numpy"


# ----------------------------------------------------------------------
# dispatch gates
# ----------------------------------------------------------------------
class TestKernelGates:
    def _runner(self, **kwargs):
        g = _graph(12, seed=1)
        algs = {u: WeightedBFS(u, 10 ** 6, source_offset=0 if u == 0 else None)
                for u in g.nodes()}
        return Runner(g, algs, Mode.CONGEST, **kwargs)

    def test_scalar_backend_disables_kernels(self):
        with use_backend("scalar"):
            assert kernel_for(self._runner()) is None

    def test_numpy_backend_builds_a_kernel(self):
        if kernels.numpy_or_none() is None:
            pytest.skip("no numpy: backend resolves to scalar")
        with use_backend("numpy"):
            assert kernel_for(self._runner()) is not None

    def test_edge_capacity_gate(self):
        with use_backend("numpy"):
            assert kernel_for(self._runner(edge_capacity=2)) is None

    def test_heterogeneous_roster_gate(self):
        g = graphs.path_graph(6)

        class Other(WeightedBFS):
            pass

        algs = {u: (Other if u == 0 else WeightedBFS)(u, 10 ** 6,
                source_offset=0 if u == 0 else None) for u in g.nodes()}
        with use_backend("numpy"):
            assert kernel_for(Runner(g, algs, Mode.CONGEST)) is None


# ----------------------------------------------------------------------
# metering parity: the differential contract
# ----------------------------------------------------------------------
def _sweep_store(tmp_path, tag, **fields):
    """Run a sweep into a JSONL store; return (rows, store bytes)."""
    out = tmp_path / f"{tag}.jsonl"
    rows = run_sweep_spec(SweepSpec(output=str(out), **fields))
    return rows, out.read_bytes()


class TestBackendParity:
    CATALOG = dict(scenarios=None, sizes=(12, 18), seeds=(0,), workers=1)

    def test_runner_state_and_metrics_identical(self):
        assert _bfs_state(backend="scalar") == _bfs_state(backend="numpy")

    def test_full_catalog_stores_are_byte_identical(self, tmp_path):
        _, scalar = _sweep_store(tmp_path, "scalar", backend="scalar",
                                 **self.CATALOG)
        _, vector = _sweep_store(tmp_path, "numpy", backend="numpy",
                                 **self.CATALOG)
        assert scalar == vector

    def test_event_engine_stores_are_byte_identical(self, tmp_path):
        fields = dict(self.CATALOG, engine="event", sizes=(12,))
        _, scalar = _sweep_store(tmp_path, "ev-scalar", backend="scalar",
                                 **fields)
        _, vector = _sweep_store(tmp_path, "ev-numpy", backend="numpy",
                                 **fields)
        assert scalar == vector

    def test_fault_plane_stores_are_byte_identical(self, tmp_path):
        # Kernels gate themselves out for fault models that draw per
        # delivered message; the knob must still be a no-op on rows.
        fields = dict(self.CATALOG, fault_model="drop:0.1", sizes=(12,))
        _, scalar = _sweep_store(tmp_path, "fault-scalar", backend="scalar",
                                 **fields)
        _, vector = _sweep_store(tmp_path, "fault-numpy", backend="numpy",
                                 **fields)
        assert scalar == vector

    def test_worker_counts_do_not_leak_into_rows(self, tmp_path):
        fields = dict(scenarios=("sssp/path", "bfs/grid", "boruvka/er"),
                      sizes=(12, 18), seeds=(0,))
        rows1, _ = _sweep_store(tmp_path, "w1", backend="numpy",
                                workers=1, **fields)
        rows3, _ = _sweep_store(tmp_path, "w3", backend="numpy",
                                workers=3, **fields)
        rows3s, _ = _sweep_store(tmp_path, "w3s", backend="scalar",
                                 workers=3, **fields)
        assert rows1 == rows3 == rows3s

    def test_resume_crosses_backends(self, tmp_path):
        # backend is never digested: cells written under scalar are reused
        # verbatim when the sweep resumes under numpy, and the stitched
        # table equals a single-backend run.
        out = tmp_path / "resume.jsonl"
        fields = dict(scenarios=("sssp/path", "labeled-bfs/grid"),
                      sizes=(12, 18), workers=1, output=str(out))
        run_sweep_spec(SweepSpec(seeds=(0,), backend="scalar", **fields))
        resumed = run_sweep_spec(
            SweepSpec(seeds=(0, 1), backend="numpy", **fields))
        fresh = run_sweep_spec(
            SweepSpec(seeds=(0, 1), backend="scalar",
                      **{**fields, "output": None}))
        assert resumed == fresh
