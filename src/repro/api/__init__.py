"""Unified public API: specs in, ResultSets out.

Every front end of the library — ``python -m repro``, the ``repro`` console
script, the benchmark harness, and downstream automation — drives the same
three ideas:

* a **spec** (:class:`SweepSpec`, :class:`BenchSpec`, :class:`ReportSpec`)
  is a typed, validated, JSON-(de)serializable description of a job.  A
  sweep is a reviewable artifact you can commit, diff, and re-run — not a
  flag soup;
* an **algorithm** is registered declaratively through
  :class:`AlgorithmSpec` (name, entry point, model, oracle, param schema),
  and third-party scenarios plug in through entry-point-style discovery
  (:func:`repro.api.algorithms.discover`) without editing the registry;
* a **ResultSet** is a durable, streaming JSONL store of tidy sweep rows
  (including serialized :class:`~repro.sim.Metrics`).  Re-running a
  :class:`SweepSpec` against an existing store *resumes*: completed
  ``(scenario, size, seed)`` cells are skipped and only the missing ones
  run, deterministically reproducing the full table;
* a **shard** is one of ``k`` disjoint sub-jobs of a sweep
  (:meth:`SweepSpec.shard` / ``repro sweep --shard i/k``), each with its
  own durable store; :func:`merge_shards` recombines them idempotently
  (see :mod:`repro.api.shard`), so independent machines or CI jobs split
  one sweep with no coordinator.  Execution is supervised: dead or stuck
  workers are detected, their cells retried on fresh workers, and cells
  that keep failing are recorded as ``failed`` rows instead of hanging.

Quickstart::

    from repro.api import SweepSpec, run_sweep_spec

    spec = SweepSpec(scenarios=("sssp/er", "bellman-ford/er"),
                     sizes=(16, 32, 64), seeds=(0, 1), workers=4,
                     output="runs.jsonl")
    rows = run_sweep_spec(spec)       # resumable: reruns skip finished cells
    spec.save("sweep.json")           # the job as a reviewable artifact

The layering is strict: this package sits *above* the engine
(:mod:`repro.sim`) and *below* the front ends (:mod:`repro.__main__`,
:mod:`repro.bench`); :func:`repro.sim.experiments.run_sweep` survives as a
thin deprecated shim over :func:`run_sweep_spec`.
"""

from .algorithms import (
    AlgorithmSpec,
    discover,
    get_algorithm_spec,
    list_algorithm_specs,
    register_algorithm_spec,
)
from .resultset import ResultSet, cell_key, failure_record, is_failure
from .shard import find_shard_stores, merge_shards, shard_store_path, shard_store_paths
from .specs import BenchSpec, ReportSpec, SpecError, SweepSpec, load_spec
from .run import (
    BenchOutcome,
    run_bench_spec,
    run_report_spec,
    run_spec,
    run_sweep_spec,
    smoke_spec,
)

__all__ = [
    "AlgorithmSpec",
    "BenchOutcome",
    "BenchSpec",
    "ReportSpec",
    "ResultSet",
    "SpecError",
    "SweepSpec",
    "cell_key",
    "discover",
    "failure_record",
    "find_shard_stores",
    "get_algorithm_spec",
    "is_failure",
    "list_algorithm_specs",
    "load_spec",
    "merge_shards",
    "register_algorithm_spec",
    "run_bench_spec",
    "run_report_spec",
    "run_spec",
    "run_sweep_spec",
    "shard_store_path",
    "shard_store_paths",
    "smoke_spec",
]
