"""Spec executors: the one engine behind every front end.

:func:`run_sweep_spec` is the production path of the experiment harness —
``python -m repro sweep``, the ``repro`` console script, the CI smoke entry,
and the legacy :func:`repro.sim.experiments.run_sweep` shim all funnel into
it.  It owns the orchestration policy:

* **fail fast** — the spec is validated and every scenario name resolved
  *before* any worker forks;
* **resume** — when the target :class:`~repro.api.ResultSet` already holds
  rows, completed ``(scenario, size, seed, params_digest)`` cells are
  reused verbatim and only the missing cells run; the returned table is
  identical to an uninterrupted run (rows follow cross-product order
  either way), and cells stored under a *different* definition of the same
  scenario name (changed params/family/weights) are re-run, not reused;
* **locality** — missing cells are grouped by graph-instance key so one
  worker builds each graph once and serves every scenario over it from the
  per-process cache (see :mod:`repro.sim.experiments`);
* **streaming** — each finished cell is appended (and flushed) to the store
  and reported through the ``progress`` callback as it lands, so an
  interrupted sweep loses at most the in-flight cells;
* **supervision** — parallel groups run under a supervised dispatcher, not
  a bare pool: each worker holds one group at a time, a worker that dies or
  exceeds ``spec.task_timeout`` is detected (via its process sentinel — no
  polling a hung ``imap``), its group is re-dispatched to a fresh worker up
  to ``spec.max_retries`` times, and a group that keeps dying is recorded
  as ``failed`` rows instead of hanging the sweep.  Interrupts and
  exceptions unwind through ``try``/``finally`` so the store always
  flushes and closes;
* **sharding** — a spec with ``shard_index``/``shard_count`` runs only its
  own deterministic partition of the cross product and writes the derived
  per-shard store (see :mod:`repro.api.shard`); independent machines each
  run one shard and :func:`repro.api.merge_shards` reassembles the table.

:func:`run_bench_spec` and :func:`run_report_spec` give the bench/report
jobs the same spec-in, artifact-out shape.
"""

from __future__ import annotations

import functools
import multiprocessing
import multiprocessing.connection
import time
from collections.abc import Callable
from dataclasses import dataclass, field
from pathlib import Path

from .resultset import ResultSet, cell_key, failure_record
from .shard import shard_cells, shard_store_path
from .specs import BenchSpec, ReportSpec, Spec, SpecError, SweepSpec

__all__ = [
    "run_sweep_spec",
    "run_bench_spec",
    "run_report_spec",
    "run_spec",
    "smoke_spec",
    "BenchOutcome",
]

#: Sizes of the fixed tiny CI sweep (``repro sweep --smoke``), which runs
#: **every registered scenario** (``scenarios=None``) through its
#: oracle/validator at these sizes — one seed, small n, full catalog.
SMOKE_SIZES = (12, 18)


def smoke_spec(workers: int | None = None, output: str | None = None) -> SweepSpec:
    """The fixed tiny sweep spec behind ``repro sweep --smoke`` (CI entry).

    ``scenarios=None`` resolves to the full registry at run time, so a
    newly registered scenario is smoke-covered (driver + oracle) with no
    CI edit; any :class:`DriverError`/validator failure fails the sweep.
    """
    return SweepSpec(
        scenarios=None,
        sizes=SMOKE_SIZES,
        seeds=(0,),
        workers=workers or 1,
        output=output,
    )


def _tidy(record: dict, row_fields: tuple) -> dict:
    """Project a stored record onto the tidy row columns, in order.

    Core columns come first in :data:`~repro.sim.experiments.ROW_FIELDS`
    order, then any scenario-specific quality columns in sorted key order —
    the same layout :func:`repro.sim.experiments.run_scenario` emits, so
    store-reloaded rows equal freshly computed ones exactly.

    ``latency_model`` defaults to ``"unit"`` for records stored before the
    column existed: those rows could only have come from the synchronous
    engine, whose network *is* the unit model, so the default is the
    recorded truth, not a guess.  (Their resume digests omit unit latency
    for the same reason — old stores stay resumable; see
    :func:`repro.sim.experiments.scenario_digest`.)
    """
    row = {
        name: record.get(name, "unit") if name == "latency_model" else record[name]
        for name in row_fields
    }
    for key in sorted(record):
        if key not in row and key != "metrics":
            row[key] = record[key]
    return row


#: Supervisor poll ceiling: the longest the dispatcher sleeps between
#: liveness/deadline checks when no worker event arrives first (worker
#: results and deaths wake it immediately via their pipe/process sentinels).
_POLL_SECONDS = 0.2


class _Worker:
    """One supervised worker: a forked process plus its two private pipes.

    Private pipes (not a shared pool queue) are the crux of fault
    isolation: when this process dies mid-write, only *its* result channel
    can hold a torn message, and the supervisor discards the whole channel
    with the worker — a crash can never corrupt another worker's results
    or hang a shared ``imap``.  Each channel has exactly one writer and one
    reader, so plain ``context.Pipe(duplex=False)`` connections (public
    API — ``send``/``recv``/``poll``/``wait`` need no queue locks) carry
    the whole protocol.  The worker holds at most one group at a time, so
    the supervisor always knows exactly which cells a dead worker took
    down.

    Right after the fork the parent closes its copies of the worker-side
    ends — before any later sibling can inherit them — which makes the
    worker the sole writer of its result pipe.  If the worker then dies
    mid-message, the supervisor's ``recv`` hits EOF and raises instead of
    blocking forever on a frame that can never complete;
    :func:`_run_groups_supervised` treats that read failure as the worker
    death it is.
    """

    __slots__ = ("process", "tasks", "results", "group_id", "deadline")

    def __init__(
        self,
        context,
        with_metrics: bool,
        engine: str | None = None,
        latency_model: str | None = None,
        fault_model: str | None = None,
        backend: str | None = None,
    ):
        from ..sim import experiments

        task_reader, self.tasks = context.Pipe(duplex=False)
        self.results, result_writer = context.Pipe(duplex=False)
        self.group_id: int | None = None
        self.deadline: float | None = None
        self.process = context.Process(
            target=experiments._worker_loop,
            args=(
                task_reader, result_writer, with_metrics, engine, latency_model,
                fault_model, backend,
            ),
            daemon=True,
        )
        self.process.start()
        # Drop the worker-side ends so the worker is their sole owner.
        task_reader.close()
        result_writer.close()

    def dispatch(self, group_id: int, group: list, timeout: float | None) -> None:
        self.group_id = group_id
        # repro: lint-ok[D105] supervisor stall deadline — scheduling state, never reaches rows
        self.deadline = time.monotonic() + timeout if timeout else None
        self.tasks.send(group)

    def shutdown(self) -> None:
        """Best-effort teardown; never raises (runs on interrupt paths)."""
        try:
            if self.process.is_alive():
                self.process.terminate()
            self.process.join(timeout=1.0)
            if self.process.is_alive():
                self.process.kill()
                self.process.join(timeout=1.0)
        except Exception:
            pass
        for channel in (self.tasks, self.results):
            try:
                channel.close()
            except Exception:
                pass


def _run_groups_supervised(
    group_list: list[list[tuple[int, str, int, int]]],
    *,
    context,
    workers: int,
    with_metrics: bool,
    max_retries: int,
    task_timeout: float | None,
    land: Callable[[int, dict, dict | None], None],
    fail: Callable[[list, int, str], None],
    engine: str | None = None,
    latency_model: str | None = None,
    fault_model: str | None = None,
    backend: str | None = None,
) -> None:
    """Dispatch locality groups to supervised fork workers until all settle.

    Each group either lands its cells (``land`` per cell), or — after its
    worker died/stalled ``1 + max_retries`` times — is handed to ``fail``.
    A worker that *reports* an exception (a deterministic driver/oracle
    failure, not a fault) raises :class:`~repro.sim.experiments.SweepError`
    exactly like the sequential path; the caller's ``finally`` handles
    store cleanup.  The wait multiplexes worker result pipes and process
    sentinels, so both results and deaths wake the supervisor immediately —
    a dead worker can never hang the sweep.
    """
    from ..sim.experiments import SweepError

    pending = list(range(len(group_list)))  # LIFO: retried groups go first
    failures = [0] * len(group_list)
    open_groups = len(group_list)
    pool: list[_Worker] = []

    def crashed(group_id: int, cause: str) -> int:
        """Account one fault against ``group_id``; 1 if the group is closed."""
        failures[group_id] += 1
        if failures[group_id] <= max_retries:
            pending.append(group_id)  # retry on a fresh worker
            return 0
        fail(
            group_list[group_id],
            failures[group_id],
            f"{cause} after {failures[group_id]} attempt(s)",
        )
        return 1
    try:
        while open_groups:
            # Replace the fallen and fill up to the target head count.
            retained = []
            for w in pool:
                if w.group_id is None and not w.process.is_alive():
                    w.shutdown()  # reap a worker that died between groups
                else:
                    retained.append(w)
            pool = retained
            target = min(workers, len(pending) + sum(w.group_id is not None for w in pool))
            while sum(w.process.is_alive() for w in pool) < target:
                pool.append(
                    _Worker(
                        context, with_metrics, engine, latency_model,
                        fault_model, backend,
                    )
                )
            for worker in pool:
                if worker.group_id is None and pending and worker.process.is_alive():
                    group_id = pending.pop()
                    try:
                        worker.dispatch(group_id, group_list[group_id], task_timeout)
                    except Exception:
                        # Died between the liveness check and the send: the
                        # group was never attempted, but bounded accounting
                        # beats an unbounded requeue loop on a host that
                        # kills every fork.
                        worker.group_id = None
                        worker.shutdown()
                        open_groups -= crashed(
                            group_id,
                            f"worker died before receiving the group "
                            f"(exit code {worker.process.exitcode})",
                        )

            # Sleep until a result lands, a worker dies, or a deadline nears.
            busy = [w for w in pool if w.group_id is not None]
            # repro: lint-ok[D105] stall-detection clock — scheduling state, never reaches rows
            now = time.monotonic()
            deadlines = [w.deadline - now for w in busy if w.deadline is not None]
            wait = max(0.0, min([_POLL_SECONDS, *deadlines]))
            sentinels = [w.results for w in busy] + [w.process.sentinel for w in busy]
            if sentinels:
                multiprocessing.connection.wait(sentinels, timeout=wait)

            # repro: lint-ok[D105] stall-detection clock — scheduling state, never reaches rows
            now = time.monotonic()
            for worker in busy:
                group_id = worker.group_id
                stuck = False
                alive = worker.process.is_alive()
                if alive and not worker.results.poll():
                    if worker.deadline is None or now <= worker.deadline:
                        continue  # still working, within budget
                    # Stuck beyond the per-group budget: treat as dead.
                    worker.process.kill()
                    alive = False
                    stuck = True
                if alive:
                    try:
                        # The worker is the pipe's sole writer (see _Worker),
                        # so a death mid-message surfaces here as EOF/unpickle
                        # failure, never as an indefinitely blocked read.
                        status, payload = worker.results.recv()
                    except Exception:
                        alive = False  # died mid-write: fall through to crash handling
                    else:
                        worker.group_id = None
                        worker.deadline = None
                        if status == "error":
                            raise SweepError(payload)
                        for index, row, metrics in payload:
                            land(index, row, metrics)
                        open_groups -= 1
                        continue
                # The worker died holding this group.  Its result channel
                # may hold a torn message — discard it with the worker.
                # Attribute the fault correctly when giving up: a
                # supervisor kill at the deadline is a stuck driver, not a
                # crash, and the operator's remedy differs (raise the
                # timeout vs chase an OOM/segfault).
                worker.group_id = None
                worker.shutdown()
                open_groups -= crashed(
                    group_id,
                    f"worker stuck beyond task_timeout={task_timeout:g}s, killed"
                    if stuck
                    else f"worker died (exit code {worker.process.exitcode})",
                )
    finally:
        for worker in pool:
            if worker.group_id is None and worker.process.is_alive():
                try:
                    worker.tasks.send(None)  # polite shutdown for idle workers
                except Exception:
                    pass
        for worker in pool:
            worker.shutdown()


def run_sweep_spec(
    spec: SweepSpec,
    *,
    store: ResultSet | None = None,
    progress: Callable[[int, int, dict], None] | None = None,
) -> list[dict]:
    """Execute ``spec``, resuming against its store; return the tidy table.

    ``store`` overrides ``spec.output`` (handy for tests and in-memory
    runs); ``progress(completed, total, row)`` is invoked once per *newly
    executed* cell, where ``completed`` counts reused cells too.  Rows come
    back in cross-product order (scenario-major, then size, then seed) —
    identical at any worker count, with or without resume.

    A sharded spec (``shard_index``/``shard_count``) runs only its own
    partition of the cross product and, when ``spec.output`` is set, writes
    the derived shard store ``<output>.shard-<i>-of-<k>.jsonl`` — the
    canonical path stays free for :func:`repro.api.merge_shards`.

    A cell whose worker died or stalled beyond the retry budget comes back
    as a ``failed`` placeholder row (``row["status"] == "failed"``, see
    :func:`repro.api.resultset.failure_record`) rather than an exception or
    a hang; re-running the spec retries exactly those cells.  The store is
    always flushed and closed — on success, driver errors, and Ctrl-C
    alike.
    """
    from ..sim import experiments

    spec = spec.validate()
    if spec.scenarios is None:
        # "All registered" must include plugin scenarios, so force the
        # discovery scan; explicitly named scenarios defer it — an unknown
        # name triggers discovery lazily inside get_scenario, keeping the
        # common path free of the importlib.metadata scan.
        experiments.ensure_discovered()
    names = (
        list(spec.scenarios) if spec.scenarios is not None
        else experiments.list_scenarios()
    )
    # The fault-tolerance gate: never inject fault kinds an algorithm does
    # not declare surviving (AlgorithmSpec.fault_tolerance).  A catalog-wide
    # sweep auto-restricts to the tolerant scenarios (the CI faulted-smoke
    # contract); explicitly named non-tolerant scenarios are an error —
    # their oracles *will* fire — unless force_faults opts in.
    if spec.fault_model is not None:
        from ..sim.faults import parse_fault_model

        plane = parse_fault_model(spec.fault_model)
        fault_kinds = plane.kinds if plane is not None else frozenset()
        if fault_kinds:
            from .algorithms import get_algorithm_spec

            def _tolerant(name: str) -> bool:
                algo = get_algorithm_spec(experiments.get_scenario(name).algorithm)
                return fault_kinds <= frozenset(algo.fault_tolerance)

            if spec.scenarios is None:
                names = [name for name in names if _tolerant(name)]
                if not names:
                    raise SpecError(
                        f"sweep spec: no registered scenario declares tolerance "
                        f"for fault model {spec.fault_model!r}"
                    )
            elif not spec.force_faults:
                intolerant = [name for name in names if not _tolerant(name)]
                if intolerant:
                    raise SpecError(
                        f"sweep spec: fault_model {spec.fault_model!r} injects "
                        f"fault kinds the algorithms of {intolerant} do not "
                        f"declare tolerance for; drop them from scenarios or "
                        f"pass force_faults=True to watch them break"
                    )
    for name in names:
        scenario = experiments.get_scenario(name)  # fail fast, before forking
        if spec.engine == "round":
            # spec.validate() already rejected a round engine with an
            # explicit non-unit latency_model; a registered scenario can
            # carry its own non-unit model too, so check the effective one.
            from ..sim.events import canonical_latency

            effective = (
                spec.latency_model
                if spec.latency_model is not None
                else scenario.latency_model
            )
            if canonical_latency(effective) != "unit":
                raise SpecError(
                    f"sweep spec: scenario {name!r} uses latency model "
                    f"{effective!r}, which the synchronous 'round' engine "
                    f"cannot express; drop engine='round' or override "
                    f"latency_model='unit'"
                )
    if store is None:
        if spec.output and spec.shard_count is not None:
            store = ResultSet.open(
                shard_store_path(spec.output, spec.shard_index, spec.shard_count)
            )
        elif spec.output:
            store = ResultSet.open(spec.output)
        else:
            store = ResultSet()

    tasks = shard_cells(spec, names)
    total = len(tasks)
    rows: list[dict | None] = [None] * total
    pending: list[tuple[int, str, int, int]] = []
    # Resume keys carry the scenario-definition digest: a store written
    # under different params for the same scenario name misses the lookup,
    # so its stale cells re-run instead of silently polluting the table.
    digests = {
        name: experiments.scenario_digest(
            experiments.get_scenario(name),
            latency_model=spec.latency_model,
            fault_model=spec.fault_model,
        )
        for name in names
    }
    for index, (name, n, seed) in enumerate(tasks):
        record = store.get((name, n, seed, digests[name]))
        if record is not None and "size" not in record:
            # Pre-"size" records were keyed by the BUILT size, which is
            # ambiguous on families that round the request (an n=9 grid
            # row could answer size 9 or size 12).  Like pre-digest
            # records, they are re-run rather than trusted; the fresh
            # record supersedes the stale row in the store.
            record = None
        if record is not None:
            rows[index] = _tidy(record, experiments.ROW_FIELDS)
        else:
            pending.append((index, name, n, seed))

    completed = total - len(pending)

    # Serialized metrics only matter when they will outlive the run — an
    # in-memory store is discarded with its records, so skip the O(E log E)
    # per-cell serialization (and the pool-pipe traffic) on that path.
    with_metrics = store.path is not None

    def land(index: int, row: dict, metrics: dict | None) -> None:
        nonlocal completed
        store.append({**row, "metrics": metrics} if with_metrics else dict(row))
        rows[index] = row
        completed += 1
        if progress is not None:
            progress(completed, total, row)

    def fail(group: list, attempts: int, message: str) -> None:
        nonlocal completed
        for index, name, n, seed in group:
            record = failure_record(name, n, seed, digests[name], message, attempts)
            store.append(record)
            rows[index] = record
            completed += 1
            if progress is not None:
                progress(completed, total, record)

    # Group pending cells by graph-instance key (first-seen order) so each
    # group lands on one worker and hits its per-process graph cache.
    groups: dict[tuple, list[tuple[int, str, int, int]]] = {}
    for index, name, n, seed in pending:
        key = experiments._instance_key(experiments.get_scenario(name), n, seed)
        groups.setdefault(key, []).append((index, name, n, seed))
    group_list = list(groups.values())

    parallel = spec.workers > 1 and len(group_list) > 1
    context = None
    if parallel:
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:
            context = None  # no fork on this platform: run sequentially
    # Zero-copy graph plane: build each group's graph once in the
    # supervisor and publish its CSR as a shared-memory segment.  The
    # attach map is set before any fork so workers inherit it; segments
    # are owned by this process only and unlinked in the finally below —
    # on success, driver errors, worker crashes, and Ctrl-C alike.
    shm_handles: list = []
    if context is not None:
        from ..sim import shm as shm_plane

        if shm_plane.available():
            for key, group in groups.items():
                _, name, n, seed = group[0]
                try:
                    graph = experiments._cached_graph(
                        experiments.get_scenario(name), n, seed
                    )
                    handle = shm_plane.publish_graph(graph)
                except Exception:
                    handle = None  # unpicklable labels, full /dev/shm, ...
                if handle is not None:
                    shm_handles.append(handle)
                    experiments._SHM_ATTACH[key] = handle.name
    # try/finally, not context managers alone: the store must flush and
    # close on *every* exit — success, a driver exception, or Ctrl-C —
    # or buffered rows of an interrupted sweep would be lost.
    try:
        if context is not None:
            _run_groups_supervised(
                group_list,
                context=context,
                workers=min(spec.workers, len(group_list)),
                with_metrics=with_metrics,
                max_retries=spec.max_retries,
                task_timeout=spec.task_timeout,
                land=land,
                fail=fail,
                engine=spec.engine,
                latency_model=spec.latency_model,
                fault_model=spec.fault_model,
                backend=spec.backend,
            )
        else:
            from ..sim.kernels import use_backend

            run_group = functools.partial(
                experiments._run_cell_group,
                with_metrics=with_metrics,
                engine=spec.engine,
                latency_model=spec.latency_model,
                fault_model=spec.fault_model,
            )
            with use_backend(spec.backend):
                for group in group_list:
                    for index, row, metrics in run_group(group):
                        land(index, row, metrics)
    finally:
        if shm_handles:
            experiments._SHM_ATTACH.clear()
            for handle in shm_handles:
                handle.unlink()
        store.close()
    return rows


@dataclass(frozen=True)
class BenchOutcome:
    """What a :class:`BenchSpec` run produced and how it compares.

    ``results`` maps experiment name to median ms.  In gate mode (``quick``)
    ``violations`` lists the experiments that exceeded the budget against
    ``baseline`` (``None`` when no baseline was recorded); otherwise the
    refreshed baseline was written to ``wrote``.
    """

    results: dict = field(default_factory=dict)
    violations: tuple = ()
    baseline: dict | None = None
    baseline_path: str = "BENCH.json"
    wrote: str | None = None

    @property
    def ok(self) -> bool:
        return not self.violations


def run_bench_spec(spec: BenchSpec) -> BenchOutcome:
    """Time the pinned workloads per ``spec``; gate or record the baseline."""
    from .. import bench

    from ..sim.kernels import use_backend

    spec = spec.validate()
    repeats = 1 if spec.quick else spec.repeats
    try:
        with use_backend(spec.backend):
            results = bench.run_bench(spec.experiments, repeats=repeats)
    except ValueError as exc:
        raise SpecError(str(exc)) from None
    meta = bench.bench_provenance(spec.backend)
    baseline_path = spec.output or "BENCH.json"
    if not spec.quick:
        target = bench.write_bench(results, baseline_path, meta=meta)
        return BenchOutcome(results, baseline_path=baseline_path, wrote=str(target))
    # Gate mode: load the recorded baseline BEFORE any write, so an output
    # path equal to the baseline path can never gate results against
    # themselves; write only when an explicit output path was given.
    baseline = bench.load_bench(baseline_path)
    wrote = None
    if spec.output:
        wrote = str(bench.write_bench(results, spec.output, meta=meta))
    violations = () if baseline is None else tuple(
        bench.compare_to_baseline(results, baseline, factor=spec.factor)
    )
    return BenchOutcome(results, violations, baseline, baseline_path, wrote)


def run_report_spec(spec: ReportSpec) -> str:
    """Compile the recorded tables per ``spec``; write ``spec.output`` if set."""
    from ..analysis.report import compile_report

    spec = spec.validate()
    text = compile_report(spec.results_dir)
    if spec.output:
        Path(spec.output).write_text(text)
    return text


def run_spec(spec: Spec, **kwargs):
    """Dispatch any spec to its executor (the ``kind``-tag single entry point)."""
    if isinstance(spec, SweepSpec):
        return run_sweep_spec(spec, **kwargs)
    if isinstance(spec, BenchSpec):
        return run_bench_spec(spec, **kwargs)
    if isinstance(spec, ReportSpec):
        return run_report_spec(spec, **kwargs)
    raise SpecError(f"no executor for spec of type {type(spec).__name__}")
