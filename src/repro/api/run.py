"""Spec executors: the one engine behind every front end.

:func:`run_sweep_spec` is the production path of the experiment harness —
``python -m repro sweep``, the ``repro`` console script, the CI smoke entry,
and the legacy :func:`repro.sim.experiments.run_sweep` shim all funnel into
it.  It owns the orchestration policy:

* **fail fast** — the spec is validated and every scenario name resolved
  *before* any worker forks;
* **resume** — when the target :class:`~repro.api.ResultSet` already holds
  rows, completed ``(scenario, size, seed, params_digest)`` cells are
  reused verbatim and only the missing cells run; the returned table is
  identical to an uninterrupted run (rows follow cross-product order
  either way), and cells stored under a *different* definition of the same
  scenario name (changed params/family/weights) are re-run, not reused;
* **locality** — missing cells are grouped by graph-instance key so one
  worker builds each graph once and serves every scenario over it from the
  per-process cache (see :mod:`repro.sim.experiments`);
* **streaming** — each finished cell is appended (and flushed) to the store
  and reported through the ``progress`` callback as it lands, so an
  interrupted sweep loses at most the in-flight cells.

:func:`run_bench_spec` and :func:`run_report_spec` give the bench/report
jobs the same spec-in, artifact-out shape.
"""

from __future__ import annotations

import functools
import multiprocessing
from collections.abc import Callable
from dataclasses import dataclass, field
from pathlib import Path

from .resultset import ResultSet, cell_key
from .specs import BenchSpec, ReportSpec, Spec, SpecError, SweepSpec

__all__ = [
    "run_sweep_spec",
    "run_bench_spec",
    "run_report_spec",
    "run_spec",
    "smoke_spec",
    "BenchOutcome",
]

#: Sizes of the fixed tiny CI sweep (``repro sweep --smoke``), which runs
#: **every registered scenario** (``scenarios=None``) through its
#: oracle/validator at these sizes — one seed, small n, full catalog.
SMOKE_SIZES = (12, 18)


def smoke_spec(workers: int | None = None, output: str | None = None) -> SweepSpec:
    """The fixed tiny sweep spec behind ``repro sweep --smoke`` (CI entry).

    ``scenarios=None`` resolves to the full registry at run time, so a
    newly registered scenario is smoke-covered (driver + oracle) with no
    CI edit; any :class:`DriverError`/validator failure fails the sweep.
    """
    return SweepSpec(
        scenarios=None,
        sizes=SMOKE_SIZES,
        seeds=(0,),
        workers=workers or 1,
        output=output,
    )


def _tidy(record: dict, row_fields: tuple) -> dict:
    """Project a stored record onto the tidy row columns, in order.

    Core columns come first in :data:`~repro.sim.experiments.ROW_FIELDS`
    order, then any scenario-specific quality columns in sorted key order —
    the same layout :func:`repro.sim.experiments.run_scenario` emits, so
    store-reloaded rows equal freshly computed ones exactly.
    """
    row = {name: record[name] for name in row_fields}
    for key in sorted(record):
        if key not in row and key != "metrics":
            row[key] = record[key]
    return row


def run_sweep_spec(
    spec: SweepSpec,
    *,
    store: ResultSet | None = None,
    progress: Callable[[int, int, dict], None] | None = None,
) -> list[dict]:
    """Execute ``spec``, resuming against its store; return the tidy table.

    ``store`` overrides ``spec.output`` (handy for tests and in-memory
    runs); ``progress(completed, total, row)`` is invoked once per *newly
    executed* cell, where ``completed`` counts reused cells too.  Rows come
    back in cross-product order (scenario-major, then size, then seed) —
    identical at any worker count, with or without resume.
    """
    from ..sim import experiments

    spec = spec.validate()
    if spec.scenarios is None:
        # "All registered" must include plugin scenarios, so force the
        # discovery scan; explicitly named scenarios defer it — an unknown
        # name triggers discovery lazily inside get_scenario, keeping the
        # common path free of the importlib.metadata scan.
        experiments.ensure_discovered()
    names = (
        list(spec.scenarios) if spec.scenarios is not None
        else experiments.list_scenarios()
    )
    for name in names:
        experiments.get_scenario(name)  # fail fast, before forking
    if store is None:
        store = ResultSet.open(spec.output) if spec.output else ResultSet()

    tasks = spec.cells(names)
    total = len(tasks)
    rows: list[dict | None] = [None] * total
    pending: list[tuple[int, str, int, int]] = []
    # Resume keys carry the scenario-definition digest: a store written
    # under different params for the same scenario name misses the lookup,
    # so its stale cells re-run instead of silently polluting the table.
    digests = {
        name: experiments.scenario_digest(experiments.get_scenario(name))
        for name in names
    }
    for index, (name, n, seed) in enumerate(tasks):
        record = store.get((name, n, seed, digests[name]))
        if record is not None:
            rows[index] = _tidy(record, experiments.ROW_FIELDS)
        else:
            pending.append((index, name, n, seed))

    completed = total - len(pending)

    # Serialized metrics only matter when they will outlive the run — an
    # in-memory store is discarded with its records, so skip the O(E log E)
    # per-cell serialization (and the pool-pipe traffic) on that path.
    with_metrics = store.path is not None

    def land(index: int, row: dict, metrics: dict | None) -> None:
        nonlocal completed
        store.append({**row, "metrics": metrics} if with_metrics else dict(row))
        rows[index] = row
        completed += 1
        if progress is not None:
            progress(completed, total, row)

    # Group pending cells by graph-instance key (first-seen order) so each
    # group lands on one worker and hits its per-process graph cache.
    groups: dict[tuple, list[tuple[int, str, int, int]]] = {}
    for index, name, n, seed in pending:
        key = experiments._instance_key(experiments.get_scenario(name), n, seed)
        groups.setdefault(key, []).append((index, name, n, seed))
    group_list = list(groups.values())

    parallel = spec.workers > 1 and len(group_list) > 1
    context = None
    if parallel:
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:
            context = None  # no fork on this platform: run sequentially
    run_group = functools.partial(experiments._run_cell_group, with_metrics=with_metrics)
    if context is not None:
        with context.Pool(min(spec.workers, len(group_list))) as pool:
            for chunk in pool.imap_unordered(run_group, group_list):
                for index, row, metrics in chunk:
                    land(index, row, metrics)
    else:
        for group in group_list:
            for index, row, metrics in run_group(group):
                land(index, row, metrics)
    store.close()
    return rows


@dataclass(frozen=True)
class BenchOutcome:
    """What a :class:`BenchSpec` run produced and how it compares.

    ``results`` maps experiment name to median ms.  In gate mode (``quick``)
    ``violations`` lists the experiments that exceeded the budget against
    ``baseline`` (``None`` when no baseline was recorded); otherwise the
    refreshed baseline was written to ``wrote``.
    """

    results: dict = field(default_factory=dict)
    violations: tuple = ()
    baseline: dict | None = None
    baseline_path: str = "BENCH.json"
    wrote: str | None = None

    @property
    def ok(self) -> bool:
        return not self.violations


def run_bench_spec(spec: BenchSpec) -> BenchOutcome:
    """Time the pinned workloads per ``spec``; gate or record the baseline."""
    from .. import bench

    spec = spec.validate()
    repeats = 1 if spec.quick else spec.repeats
    try:
        results = bench.run_bench(spec.experiments, repeats=repeats)
    except ValueError as exc:
        raise SpecError(str(exc)) from None
    baseline_path = spec.output or "BENCH.json"
    if not spec.quick:
        target = bench.write_bench(results, baseline_path)
        return BenchOutcome(results, baseline_path=baseline_path, wrote=str(target))
    # Gate mode: load the recorded baseline BEFORE any write, so an output
    # path equal to the baseline path can never gate results against
    # themselves; write only when an explicit output path was given.
    baseline = bench.load_bench(baseline_path)
    wrote = None
    if spec.output:
        wrote = str(bench.write_bench(results, spec.output))
    violations = () if baseline is None else tuple(
        bench.compare_to_baseline(results, baseline, factor=spec.factor)
    )
    return BenchOutcome(results, violations, baseline, baseline_path, wrote)


def run_report_spec(spec: ReportSpec) -> str:
    """Compile the recorded tables per ``spec``; write ``spec.output`` if set."""
    from ..analysis.report import compile_report

    spec = spec.validate()
    text = compile_report(spec.results_dir)
    if spec.output:
        Path(spec.output).write_text(text)
    return text


def run_spec(spec: Spec, **kwargs):
    """Dispatch any spec to its executor (the ``kind``-tag single entry point)."""
    if isinstance(spec, SweepSpec):
        return run_sweep_spec(spec, **kwargs)
    if isinstance(spec, BenchSpec):
        return run_bench_spec(spec, **kwargs)
    if isinstance(spec, ReportSpec):
        return run_report_spec(spec, **kwargs)
    raise SpecError(f"no executor for spec of type {type(spec).__name__}")
