"""Durable, streaming, resumable sweep-result stores.

A :class:`ResultSet` is an append-only JSONL file (or a purely in-memory
buffer when ``path=None``): one JSON object per line, one line per completed
``(scenario, size, seed, params_digest)`` cell.  Each record carries the tidy row fields
(:data:`repro.sim.experiments.ROW_FIELDS`) plus a ``"metrics"`` sub-object —
the full serialized :class:`~repro.sim.Metrics` of the run — so downstream
analysis never has to re-execute a cell to recover its cost profile.

Records are flushed line-by-line as cells finish, which makes the store
interruption-safe: a killed sweep leaves at most one truncated trailing
line, which :meth:`ResultSet.open` tolerates and drops on reload.  Resume
(:func:`repro.api.run_sweep_spec`) is key-based — :func:`cell_key` maps a
record to its cell — so finished work is never re-run and the reassembled
table is identical to an uninterrupted run.
"""

from __future__ import annotations

import json
from pathlib import Path

__all__ = ["ResultSet", "cell_key"]


def cell_key(row: dict) -> tuple:
    """The resume key of a record: ``(scenario, n, seed, params_digest)``.

    ``params_digest`` (:func:`repro.sim.experiments.scenario_digest`) pins
    the scenario *definition* — family, algorithm, ``max_weight``, params —
    the cell was computed under.  Without it, resuming a store after a
    scenario's params changed would silently reuse rows computed under the
    old definition; with it, stale cells simply miss the lookup and re-run.
    Records from pre-digest stores key with ``""`` — never matching a
    current definition, so they are re-run rather than trusted.
    """
    return (row["scenario"], row["n"], row["seed"], row.get("params_digest", ""))


class ResultSet:
    """An append-only store of sweep records with key-based resume.

    ``path=None`` keeps records in memory only (the non-persistent fast
    path used by the legacy :func:`~repro.sim.experiments.run_sweep` shim).
    With a path, every :meth:`append` writes and flushes one JSONL line, and
    construction loads any records a previous (possibly interrupted) run
    left behind.
    """

    def __init__(self, path: str | Path | None = None):
        self.path = Path(path) if path is not None else None
        self._rows: list[dict] = []
        self._by_key: dict[tuple, dict] = {}
        # (scenario, n, seed) -> index into _rows, for superseding stale
        # rows recorded under an older scenario definition (digest).
        self._by_coords: dict[tuple, int] = {}
        self._handle = None
        if self.path is not None and self.path.exists():
            self._load()

    @classmethod
    def open(cls, path: str | Path) -> "ResultSet":
        """Open (creating parent directories) a persistent store at ``path``."""
        target = Path(path)
        if target.parent and not target.parent.exists():
            target.parent.mkdir(parents=True, exist_ok=True)
        return cls(target)

    def _load(self) -> None:
        # Work on raw bytes so torn-tail truncation offsets are exact on
        # every platform (text mode would newline-translate and shift them).
        raw = self.path.read_bytes()
        lines = raw.decode("utf-8").splitlines()
        for index, line in enumerate(lines):
            stripped = line.strip()
            if not stripped:
                continue
            try:
                record = json.loads(stripped)
            except ValueError:
                # A truncated trailing line is the signature of an
                # interrupted run — drop it and resume from the cell
                # before.  Truncate it away on disk too, so the next
                # append starts a fresh line instead of concatenating onto
                # the torn JSON.
                if index == len(lines) - 1 and not raw.endswith(b"\n"):
                    with self.path.open("rb+") as handle:
                        handle.truncate(raw.rfind(b"\n") + 1)
                    break
                raise ValueError(
                    f"{self.path}:{index + 1}: corrupt result line {stripped[:80]!r}"
                ) from None
            self._remember(record)

    def _remember(self, record: dict) -> None:
        key = cell_key(record)
        if key in self._by_key:
            return  # first write wins: resumed runs may not duplicate cells
        coords = key[:3]  # (scenario, n, seed), digest-independent
        index = self._by_coords.get(coords)
        if index is not None:
            # Same cell coordinates under a *different* scenario definition:
            # the newer record supersedes the stale one in place (keeping
            # the cell's original position — O(1) per supersede), so rows()
            # never mixes old-params and new-params results for one cell.
            # The stale JSONL line stays on disk; reloading replays the
            # appends in order and converges on the same survivor.
            del self._by_key[cell_key(self._rows[index])]
            self._rows[index] = record
        else:
            self._by_coords[coords] = len(self._rows)
            self._rows.append(record)
        self._by_key[key] = record

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------
    def append(self, record: dict) -> None:
        """Add one completed-cell record, streaming it to disk immediately."""
        if cell_key(record) in self._by_key:
            return
        self._remember(record)
        if self.path is not None:
            if self._handle is None:
                # newline="\n" keeps the on-disk format identical across
                # platforms (and the torn-tail byte math exact).
                self._handle = self.path.open("a", newline="\n")
            self._handle.write(json.dumps(record, sort_keys=True) + "\n")
            self._handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "ResultSet":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def rows(self) -> list[dict]:
        """All current records, one per ``(scenario, n, seed)`` cell.

        Cells appear in first-append order; a cell re-run under a changed
        scenario definition supersedes its stale predecessor in place, so
        tables and fits built from a store never double-count a cell.
        """
        return list(self._rows)

    def get(self, key: tuple) -> dict | None:
        """The record for cell ``key``, or ``None`` if not yet run."""
        return self._by_key.get(key)

    def completed(self) -> set[tuple]:
        """The set of finished :func:`cell_key` tuples (the resume index)."""
        return set(self._by_key)

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self):
        return iter(self._rows)

    def __contains__(self, key: tuple) -> bool:
        return key in self._by_key

    def __repr__(self) -> str:
        where = str(self.path) if self.path is not None else "memory"
        return f"ResultSet({where!r}, {len(self)} rows)"
