"""Durable, streaming, resumable sweep-result stores.

A :class:`ResultSet` is an append-only JSONL file (or a purely in-memory
buffer when ``path=None``): one JSON object per line, one line per completed
``(scenario, size, seed, params_digest)`` cell.  Each record carries the tidy row fields
(:data:`repro.sim.experiments.ROW_FIELDS`) plus a ``"metrics"`` sub-object —
the full serialized :class:`~repro.sim.Metrics` of the run — so downstream
analysis never has to re-execute a cell to recover its cost profile.

Records are flushed line-by-line as cells finish, which makes the store
interruption-safe: a killed sweep leaves at most one truncated trailing
line, which :meth:`ResultSet.open` tolerates and drops on reload (a torn
line *mid*-file — a crash during a concurrent shard write, later appended
past — is skipped with a warning rather than aborting the load).  Resume
(:func:`repro.api.run_sweep_spec`) is key-based — :func:`cell_key` maps a
record to its cell — so finished work is never re-run and the reassembled
table is identical to an uninterrupted run.

Two record classes share the file.  A *successful* record is a tidy row;
a *``failed``* record (``"status": "failed"``, see :func:`failure_record`)
marks a cell whose worker died or timed out beyond the retry budget.
Failed cells are excluded from :meth:`rows`, :meth:`get` and
:meth:`completed` — so tables never mix measurements with placeholders and
a resumed run retries them — and a successful record for the same cell
coordinates supersedes the failure.  :meth:`merge` recombines shard stores
(``<output>.shard-i-of-k.jsonl``, see :mod:`repro.api.shard`) under the
same rules, which makes the merge idempotent.
"""

from __future__ import annotations

import json
import warnings
from pathlib import Path

__all__ = ["ResultSet", "cell_key", "failure_record", "is_failure"]

#: Marker value of the ``status`` field of a failed-cell record.
FAILED = "failed"


def cell_key(row: dict) -> tuple:
    """The resume key of a record: ``(scenario, size, seed, params_digest)``.

    ``size`` is the *requested* sweep size, not ``row["n"]`` (the built
    instance's node count): graph families may round the request — a grid
    at size 12 builds a 3x3 = 9-node instance — and keying on the actual
    count made every resume lookup miss on such families, silently
    re-running their cells on each resume.  Records from pre-``size``
    stores fall back to ``row["n"]`` (identical whenever the family honors
    the request exactly).

    ``params_digest`` (:func:`repro.sim.experiments.scenario_digest`) pins
    the scenario *definition* — family, algorithm, ``max_weight``, params —
    the cell was computed under.  Without it, resuming a store after a
    scenario's params changed would silently reuse rows computed under the
    old definition; with it, stale cells simply miss the lookup and re-run.
    Records from pre-digest stores key with ``""`` — never matching a
    current definition, so they are re-run rather than trusted.
    """
    return (
        row["scenario"],
        row.get("size", row["n"]),
        row["seed"],
        row.get("params_digest", ""),
    )


def is_failure(record: dict) -> bool:
    """Whether ``record`` is a failed-cell placeholder, not a measurement."""
    return record.get("status") == FAILED


def failure_record(
    scenario: str, n: int, seed: int, params_digest: str, error: str, attempts: int
) -> dict:
    """A ``failed`` placeholder row for a cell the executor gave up on.

    Carries the full resume key plus the last observed ``error`` and the
    number of dispatch ``attempts``, so a merged table documents *why* the
    cell is missing; a later resume retries the cell (failures never
    satisfy a resume lookup) and its success supersedes this record.
    """
    return {
        "scenario": scenario,
        "n": n,
        "seed": seed,
        "size": n,  # the requested size IS the cell address (no graph built)
        "params_digest": params_digest,
        "status": FAILED,
        "error": error,
        "attempts": attempts,
    }


class ResultSet:
    """An append-only store of sweep records with key-based resume.

    ``path=None`` keeps records in memory only (the non-persistent fast
    path used by the legacy :func:`~repro.sim.experiments.run_sweep` shim).
    With a path, every :meth:`append` writes and flushes one JSONL line, and
    construction loads any records a previous (possibly interrupted) run
    left behind.
    """

    def __init__(self, path: str | Path | None = None):
        self.path = Path(path) if path is not None else None
        self._rows: list[dict] = []
        self._by_key: dict[tuple, dict] = {}
        # (scenario, n, seed) -> index into _rows, for superseding stale
        # rows recorded under an older scenario definition (digest).
        self._by_coords: dict[tuple, int] = {}
        # (scenario, n, seed) -> failed-cell record; a success at the same
        # coordinates evicts the failure.
        self._failed: dict[tuple, dict] = {}
        self._handle = None
        if self.path is not None and self.path.exists():
            self._load()

    @classmethod
    def open(cls, path: str | Path) -> "ResultSet":
        """Open (creating parent directories) a persistent store at ``path``."""
        target = Path(path)
        if target.parent and not target.parent.exists():
            target.parent.mkdir(parents=True, exist_ok=True)
        return cls(target)

    def _load(self) -> None:
        # Work on raw bytes so torn-tail truncation offsets are exact on
        # every platform (text mode would newline-translate and shift them).
        raw = self.path.read_bytes()
        lines = raw.decode("utf-8").splitlines()
        for index, line in enumerate(lines):
            stripped = line.strip()
            if not stripped:
                continue
            try:
                record = json.loads(stripped)
            except ValueError:
                # A truncated trailing line is the signature of an
                # interrupted run — drop it and resume from the cell
                # before.  Truncate it away on disk too, so the next
                # append starts a fresh line instead of concatenating onto
                # the torn JSON.
                if index == len(lines) - 1 and not raw.endswith(b"\n"):
                    with self.path.open("rb+") as handle:
                        handle.truncate(raw.rfind(b"\n") + 1)
                    break
                # A torn line *mid*-file means a writer crashed and a later
                # run appended past the wreckage (e.g. concurrent shard
                # writes).  Only that one cell is lost — skip it loudly and
                # keep every intact record; the cell re-runs on resume.
                warnings.warn(
                    f"{self.path}:{index + 1}: skipping corrupt result line "
                    f"{stripped[:80]!r}",
                    RuntimeWarning,
                    stacklevel=2,
                )
                continue
            self._remember(record)

    def _remember(self, record: dict) -> bool:
        """Fold ``record`` into the indexes; True if it changed the store."""
        key = cell_key(record)
        coords = key[:3]  # (scenario, n, seed), digest-independent
        if is_failure(record):
            if coords in self._by_coords or coords in self._failed:
                return False  # a success (or the first failure) wins
            self._failed[coords] = record
            return True
        if key in self._by_key and not (
            "size" in record and "size" not in self._by_key[key]
        ):
            return False  # first write wins: resumed runs may not duplicate cells
        self._failed.pop(coords, None)  # a real measurement beats a placeholder
        index = self._by_coords.get(coords)
        if index is None and "size" in record:
            # A pre-"size" record may sit at this cell's *built*-size
            # address (families that round the request — grid 12 -> 9 nodes
            # — were recorded under n).  Such records are never reused by
            # resume (the addressing is ambiguous: an n=9 legacy row could
            # be the size-9 cell or the size-12 cell), so the first fresh
            # record whose built size matches recycles the stale slot in
            # place — rows() must not keep the superseded measurement
            # beside its replacement.  A record at that address that *has*
            # a size field is a genuinely different live cell (the built
            # size requested exactly) and is left alone.
            legacy_coords = (record["scenario"], record["n"], record["seed"])
            legacy = self._by_coords.get(legacy_coords)
            if legacy is not None and "size" not in self._rows[legacy]:
                index = self._by_coords.pop(legacy_coords)
                self._by_coords[coords] = index
        if index is not None:
            # Same cell coordinates under a *different* scenario definition:
            # the newer record supersedes the stale one in place (keeping
            # the cell's original position — O(1) per supersede), so rows()
            # never mixes old-params and new-params results for one cell.
            # The stale JSONL line stays on disk; reloading replays the
            # appends in order and converges on the same survivor.
            del self._by_key[cell_key(self._rows[index])]
            self._rows[index] = record
        else:
            self._by_coords[coords] = len(self._rows)
            self._rows.append(record)
        self._by_key[key] = record
        return True

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------
    def append(self, record: dict) -> None:
        """Add one cell record (measurement or failure), streaming it to disk.

        Duplicates — a key already stored, or a failure for a cell that
        already has any record — are ignored without touching the file,
        which is what makes shard merges idempotent.
        """
        if not self._remember(record):
            return
        if self.path is not None:
            if self._handle is None:
                # newline="\n" keeps the on-disk format identical across
                # platforms (and the torn-tail byte math exact).
                self._handle = self.path.open("a", newline="\n")
            self._handle.write(json.dumps(record, sort_keys=True) + "\n")
            self._handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "ResultSet":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    @classmethod
    def merge(cls, output: str | Path, shards: list) -> "ResultSet":
        """Recombine ``shards`` (store paths) into the store at ``output``.

        Successful records from every shard land first, then failures —
        so a cell that failed on one shard but succeeded on another (an
        overlapping or re-run shard) merges as the measurement, never the
        placeholder.  All appends dedupe on the digest resume keys, so
        overlapping shards and repeated merges are harmless; the merged
        store is returned closed, ready for a resume pass or analysis.
        """
        sources = [cls(Path(path)) for path in shards]
        merged = cls.open(output)
        try:
            for source in sources:
                for record in source.rows():
                    merged.append(record)
            for source in sources:
                for record in source.failures():
                    merged.append(record)
        finally:
            merged.close()
        return merged

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def rows(self) -> list[dict]:
        """All successful records, one per ``(scenario, n, seed)`` cell.

        Cells appear in first-append order; a cell re-run under a changed
        scenario definition supersedes its stale predecessor in place, so
        tables and fits built from a store never double-count a cell.
        Failed-cell placeholders are excluded — see :meth:`failures`.
        """
        return list(self._rows)

    def failures(self) -> list[dict]:
        """The ``failed`` placeholder records of cells the executor gave up on."""
        return list(self._failed.values())

    def get(self, key: tuple) -> dict | None:
        """The successful record for cell ``key``, or ``None`` if not yet run.

        Failed cells return ``None`` on purpose: a resume pass must retry
        them, not trust the placeholder.
        """
        return self._by_key.get(key)

    def completed(self) -> set[tuple]:
        """The set of finished :func:`cell_key` tuples (the resume index)."""
        return set(self._by_key)

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self):
        return iter(self._rows)

    def __contains__(self, key: tuple) -> bool:
        return key in self._by_key

    def __repr__(self) -> str:
        where = str(self.path) if self.path is not None else "memory"
        failed = f", {len(self._failed)} failed" if self._failed else ""
        return f"ResultSet({where!r}, {len(self)} rows{failed})"
