"""Declarative algorithm registry: :class:`AlgorithmSpec` + discovery.

Every algorithm the sweep can run is described by one
:class:`AlgorithmSpec` — name, dotted entry point, execution model, oracle,
and a parameter schema — instead of an ad hoc driver closure.  The driver
callable itself is resolved lazily from ``entry_point`` (``"module:attr"``),
so registration is import-light and the registry is fully serializable (a
registry dump is just a list of spec dicts).

Third-party scenarios plug in without editing this module, via either

* Python entry points in the ``repro.scenarios`` group — an installed
  distribution declares ``[project.entry-points."repro.scenarios"]`` and the
  loaded object (a module or zero-argument callable) registers its
  algorithms/scenarios on import/call; or
* the ``REPRO_PLUGINS`` environment variable — a comma-separated list of
  ``module`` or ``module:callable`` strings, same contract, no packaging
  required.

:func:`discover` runs both once per process; the scenario registry invokes
it automatically before resolving names, so ``repro sweep --scenarios
yourpkg/custom`` works as soon as the plugin is importable.
"""

from __future__ import annotations

import importlib
import os
from collections.abc import Callable
from dataclasses import dataclass, field

__all__ = [
    "AlgorithmSpec",
    "register_algorithm_spec",
    "get_algorithm_spec",
    "list_algorithm_specs",
    "resolve_entry_point",
    "discover",
]

#: Entry-point group scanned by :func:`discover`.
PLUGIN_GROUP = "repro.scenarios"
#: Environment variable naming extra plugin modules (comma-separated).
PLUGIN_ENV = "REPRO_PLUGINS"


def resolve_entry_point(entry_point: str) -> Callable:
    """Resolve ``"pkg.module:attr"`` (or dotted ``attr.sub``) to the object."""
    module_name, sep, attr_path = entry_point.partition(":")
    if not sep or not module_name or not attr_path:
        raise ValueError(
            f"entry point {entry_point!r} must look like 'package.module:attribute'"
        )
    obj = importlib.import_module(module_name)
    for part in attr_path.split("."):
        obj = getattr(obj, part)
    return obj


@dataclass(frozen=True)
class AlgorithmSpec:
    """One registered algorithm, declaratively.

    ``entry_point`` names the uniform driver ``driver(graph, seed, metrics,
    **params)`` as ``"module:attr"``; ``oracle`` (optional, same syntax)
    names the sequential ground truth the driver self-verifies against.
    ``model`` records the execution model the costs are metered in
    (``"congest"`` or ``"sleeping"``), and ``param_schema`` is a tuple of
    ``(param_name, type_name)`` pairs documenting the driver's keyword
    parameters.  The callable is resolved lazily and cached per process, so
    forked sweep workers resolve it independently via a plain import.
    """

    name: str
    entry_point: str
    model: str = "congest"
    oracle: str | None = None
    param_schema: tuple = ()
    description: str = ""
    # Escape hatch for in-process registration (tests, notebooks): a direct
    # callable wins over entry_point but cannot be serialized or re-imported.
    driver: Callable | None = field(default=None, compare=False, repr=False)

    def resolve(self) -> Callable:
        """The driver callable behind this spec."""
        if self.driver is not None:
            return self.driver
        resolved = _RESOLVED.get(self.name)
        if resolved is None:
            resolved = resolve_entry_point(self.entry_point)
            _RESOLVED[self.name] = resolved
        return resolved

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "entry_point": self.entry_point,
            "model": self.model,
            "oracle": self.oracle,
            "param_schema": [list(pair) for pair in self.param_schema],
            "description": self.description,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "AlgorithmSpec":
        data = dict(data)
        data["param_schema"] = tuple(tuple(pair) for pair in data.get("param_schema", ()))
        return cls(**data)


_SPECS: dict[str, AlgorithmSpec] = {}
_RESOLVED: dict[str, Callable] = {}


def register_algorithm_spec(spec: AlgorithmSpec) -> AlgorithmSpec:
    """Register ``spec`` (replacing any same-named entry) and return it."""
    if not spec.name:
        raise ValueError("algorithm spec needs a non-empty name")
    if spec.driver is None and not spec.entry_point:
        raise ValueError(f"algorithm spec {spec.name!r} needs an entry_point or driver")
    _SPECS[spec.name] = spec
    _RESOLVED.pop(spec.name, None)
    return spec


def get_algorithm_spec(name: str) -> AlgorithmSpec:
    try:
        return _SPECS[name]
    except KeyError:
        raise KeyError(
            f"unknown algorithm {name!r}; registered: {sorted(_SPECS)}"
        ) from None


def list_algorithm_specs() -> list[AlgorithmSpec]:
    """All registered specs, name-sorted."""
    return [_SPECS[name] for name in sorted(_SPECS)]


# ----------------------------------------------------------------------
# plugin discovery
# ----------------------------------------------------------------------
_discovered = False


def _load_plugin(target) -> None:
    """Import/call one plugin target; registration is its import side effect."""
    obj = target
    if isinstance(target, str):
        obj = (
            resolve_entry_point(target) if ":" in target
            else importlib.import_module(target)
        )
    if callable(obj):
        obj()


def discover(*, force: bool = False) -> list[str]:
    """Load scenario plugins from entry points and ``REPRO_PLUGINS``.

    Runs at most once per process unless ``force=True``.  Returns the list
    of plugin names that loaded; failures raise so a broken plugin is loud
    rather than silently absent.
    """
    global _discovered
    if _discovered and not force:
        return []
    _discovered = True
    loaded: list[str] = []
    try:
        from importlib import metadata
    except ImportError:  # pragma: no cover - py3.7 fallback, not supported
        metadata = None
    if metadata is not None:
        try:
            entry_points = metadata.entry_points(group=PLUGIN_GROUP)
        except TypeError:  # pragma: no cover - pre-3.10 select API
            entry_points = metadata.entry_points().get(PLUGIN_GROUP, ())
        for entry in entry_points:
            _load_plugin(entry.load())
            loaded.append(entry.name)
    for target in filter(None, os.environ.get(PLUGIN_ENV, "").split(",")):
        _load_plugin(target.strip())
        loaded.append(target.strip())
    return loaded
