"""Declarative algorithm registry: :class:`AlgorithmSpec` + discovery.

Every algorithm the sweep can run is described by one
:class:`AlgorithmSpec` — name, dotted entry point, execution model, oracle,
and a parameter schema — instead of an ad hoc driver closure.  The driver
callable itself is resolved lazily from ``entry_point`` (``"module:attr"``),
so registration is import-light and the registry is fully serializable (a
registry dump is just a list of spec dicts).

Third-party scenarios plug in without editing this module, via either

* Python entry points in the ``repro.scenarios`` group — an installed
  distribution declares ``[project.entry-points."repro.scenarios"]`` and the
  loaded object (a module or zero-argument callable) registers its
  algorithms/scenarios on import/call; or
* the ``REPRO_PLUGINS`` environment variable — a comma-separated list of
  ``module`` or ``module:callable`` strings, same contract, no packaging
  required.

:func:`discover` runs both once per process; the scenario registry invokes
it automatically before resolving names, so ``repro sweep --scenarios
yourpkg/custom`` works as soon as the plugin is importable.
"""

from __future__ import annotations

import importlib
import os
from collections.abc import Callable
from dataclasses import dataclass, field

__all__ = [
    "AlgorithmSpec",
    "PARAM_TYPES",
    "check_params",
    "register_algorithm_spec",
    "get_algorithm_spec",
    "list_algorithm_specs",
    "resolve_entry_point",
    "discover",
]

#: Type names a ``param_schema`` may declare, with their Python types.
#: ``bool`` precedes the ``int`` check (``bool`` is an ``int`` subclass).
PARAM_TYPES: dict[str, type] = {"bool": bool, "int": int, "float": float, "str": str}


def _accepts_var_keyword(signature) -> bool:
    """Whether a driver signature takes ``**kwargs`` (accepts any param)."""
    import inspect

    return any(
        p.kind is inspect.Parameter.VAR_KEYWORD
        for p in signature.parameters.values()
    )

#: Entry-point group scanned by :func:`discover`.
PLUGIN_GROUP = "repro.scenarios"
#: Environment variable naming extra plugin modules (comma-separated).
PLUGIN_ENV = "REPRO_PLUGINS"


def resolve_entry_point(entry_point: str) -> Callable:
    """Resolve ``"pkg.module:attr"`` (or dotted ``attr.sub``) to the object."""
    module_name, sep, attr_path = entry_point.partition(":")
    if not sep or not module_name or not attr_path:
        raise ValueError(
            f"entry point {entry_point!r} must look like 'package.module:attribute'"
        )
    obj = importlib.import_module(module_name)
    for part in attr_path.split("."):
        obj = getattr(obj, part)
    return obj


@dataclass(frozen=True)
class AlgorithmSpec:
    """One registered algorithm, declaratively.

    ``entry_point`` names the uniform driver ``driver(graph, seed, metrics,
    **params)`` as ``"module:attr"``; ``oracle`` (optional, same syntax)
    names the sequential ground truth the driver self-verifies against.
    ``model`` records the execution model the costs are metered in
    (``"congest"`` or ``"sleeping"``), and ``param_schema`` is a tuple of
    ``(param_name, type_name)`` pairs documenting the driver's keyword
    parameters.  ``fault_tolerance`` declares which fault kinds
    (``"drop"``, ``"dup"``, ``"crash"`` — see :mod:`repro.sim.faults`) the
    algorithm provably survives; the sweep layer refuses to inject other
    kinds without an explicit override.  The callable is resolved lazily
    and cached per process, so forked sweep workers resolve it
    independently via a plain import.
    """

    name: str
    entry_point: str
    model: str = "congest"
    oracle: str | None = None
    param_schema: tuple = ()
    description: str = ""
    fault_tolerance: tuple = ()
    # Escape hatch for in-process registration (tests, notebooks): a direct
    # callable wins over entry_point but cannot be serialized or re-imported.
    driver: Callable | None = field(default=None, compare=False, repr=False)

    def resolve(self) -> Callable:
        """The driver callable behind this spec."""
        if self.driver is not None:
            return self.driver
        resolved = _RESOLVED.get(self.name)
        if resolved is None:
            resolved = resolve_entry_point(self.entry_point)
            _RESOLVED[self.name] = resolved
        return resolved

    def check_schema_shape(self) -> "AlgorithmSpec":
        """Validate the declared schema itself, without resolving the driver.

        Import-light (no entry-point resolution), so
        :func:`register_algorithm_spec` can run it on every registration:
        a mistyped schema fails loudly at registration, never as a raw
        ``KeyError`` deep inside a sweep.
        """
        if self.model not in ("congest", "sleeping"):
            raise ValueError(
                f"algorithm {self.name!r}: model must be 'congest' or "
                f"'sleeping', got {self.model!r}"
            )
        for pair in self.param_schema:
            if len(tuple(pair)) != 2:
                raise ValueError(
                    f"algorithm {self.name!r}: param_schema entries must be "
                    f"(name, type) pairs, got {pair!r}"
                )
            param, type_name = pair
            if type_name not in PARAM_TYPES:
                raise ValueError(
                    f"algorithm {self.name!r}: param {param!r} has unknown "
                    f"type {type_name!r} (options: {sorted(PARAM_TYPES)})"
                )
        for kind in self.fault_tolerance:
            if kind not in ("drop", "dup", "crash"):
                raise ValueError(
                    f"algorithm {self.name!r}: unknown fault kind {kind!r} "
                    f"in fault_tolerance (options: ['crash', 'drop', 'dup'])"
                )
        return self

    def validate(self) -> "AlgorithmSpec":
        """Check the spec is internally consistent; return ``self``.

        Everything :meth:`check_schema_shape` checks, plus that the
        resolved driver actually accepts each declared parameter as a
        keyword argument (so a schema can never drift from its driver).
        Resolving imports the driver's module, so this runs on demand (and
        in the registry test suite), not at registration.
        """
        import inspect

        self.check_schema_shape()
        driver = self.resolve()
        signature = inspect.signature(driver)
        if not _accepts_var_keyword(signature):
            for param, _type_name in self.param_schema:
                if param not in signature.parameters:
                    raise ValueError(
                        f"algorithm {self.name!r}: param_schema declares "
                        f"{param!r} but driver {driver.__name__} does not "
                        f"accept it"
                    )
        return self

    def source_paths(self) -> list[str]:
        """Source files behind this spec, for ``repro lint --plugins``.

        Resolves the driver (and oracle, when declared) and maps each to
        its defining file via :mod:`inspect`.  Objects without a source
        file (builtins, C extensions, in-process lambdas) are skipped —
        the lint CLI reports what it actually checked, so a spec that
        contributes no source is visible there rather than a silent gap.
        """
        import inspect

        targets = [self.resolve()]
        if self.oracle:
            targets.append(resolve_entry_point(self.oracle))
        paths: list[str] = []
        for target in targets:
            target = inspect.unwrap(target)
            try:
                source = inspect.getsourcefile(target)
            except TypeError:
                source = None
            if source and source not in paths:
                paths.append(source)
        return paths

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "entry_point": self.entry_point,
            "model": self.model,
            "oracle": self.oracle,
            "param_schema": [list(pair) for pair in self.param_schema],
            "description": self.description,
            "fault_tolerance": list(self.fault_tolerance),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "AlgorithmSpec":
        data = dict(data)
        data["param_schema"] = tuple(tuple(pair) for pair in data.get("param_schema", ()))
        data["fault_tolerance"] = tuple(data.get("fault_tolerance", ()))
        return cls(**data)


def check_params(spec: AlgorithmSpec, params: dict) -> None:
    """Validate scenario ``params`` against ``spec.param_schema``.

    Every parameter must be declared in the schema and carry a value of
    the declared type.  When the spec declares *no* schema (bare drivers
    registered via the legacy path), the driver is resolved and its
    signature checked instead, so an unknown keyword still fails here —
    at registration, with a pinpointed ``ValueError`` — rather than as a
    ``TypeError`` inside a forked sweep worker.
    """
    if not params:
        return
    schema = dict(spec.param_schema)
    if not schema:
        import inspect

        signature = inspect.signature(spec.resolve())
        if not _accepts_var_keyword(signature):
            for name in params:
                if name not in signature.parameters:
                    raise ValueError(
                        f"algorithm {spec.name!r}: driver does not accept "
                        f"param {name!r} (and the spec declares no schema)"
                    )
        return
    for name, value in params.items():
        if name not in schema:
            raise ValueError(
                f"algorithm {spec.name!r}: unknown param {name!r} "
                f"(declared: {sorted(schema)})"
            )
        expected = PARAM_TYPES.get(schema[name])
        if expected is None:
            # Registration validates schema shape, but stay defensive
            # for specs constructed outside register_algorithm_spec.
            raise ValueError(
                f"algorithm {spec.name!r}: param {name!r} declares "
                f"unknown type {schema[name]!r} (options: {sorted(PARAM_TYPES)})"
            )
        if expected is not bool and isinstance(value, bool):
            raise ValueError(
                f"algorithm {spec.name!r}: param {name!r} must be "
                f"{schema[name]}, got {value!r}"
            )
        if not isinstance(value, expected) and not (
            expected is float and isinstance(value, int)
        ):
            raise ValueError(
                f"algorithm {spec.name!r}: param {name!r} must be "
                f"{schema[name]}, got {value!r}"
            )


_SPECS: dict[str, AlgorithmSpec] = {}
_RESOLVED: dict[str, Callable] = {}


def register_algorithm_spec(spec: AlgorithmSpec) -> AlgorithmSpec:
    """Register ``spec`` (replacing any same-named entry) and return it.

    Validates the schema *shape* (model tag, param names/types) without
    resolving the entry point — registration stays import-light, but a
    drifted schema fails here instead of deep inside a sweep worker.
    """
    if not spec.name:
        raise ValueError("algorithm spec needs a non-empty name")
    if spec.driver is None and not spec.entry_point:
        raise ValueError(f"algorithm spec {spec.name!r} needs an entry_point or driver")
    spec.check_schema_shape()
    _SPECS[spec.name] = spec
    _RESOLVED.pop(spec.name, None)
    return spec


def get_algorithm_spec(name: str) -> AlgorithmSpec:
    try:
        return _SPECS[name]
    except KeyError:
        raise KeyError(
            f"unknown algorithm {name!r}; registered: {sorted(_SPECS)}"
        ) from None


def list_algorithm_specs() -> list[AlgorithmSpec]:
    """All registered specs, name-sorted."""
    return [_SPECS[name] for name in sorted(_SPECS)]


# ----------------------------------------------------------------------
# plugin discovery
# ----------------------------------------------------------------------
_discovered = False


def _load_plugin(target) -> None:
    """Import/call one plugin target; registration is its import side effect."""
    obj = target
    if isinstance(target, str):
        obj = (
            resolve_entry_point(target) if ":" in target
            else importlib.import_module(target)
        )
    if callable(obj):
        obj()


def discover(*, force: bool = False) -> list[str]:
    """Load scenario plugins from entry points and ``REPRO_PLUGINS``.

    Runs at most once per process unless ``force=True``.  Returns the list
    of plugin names that loaded; failures raise so a broken plugin is loud
    rather than silently absent.
    """
    global _discovered
    if _discovered and not force:
        return []
    _discovered = True
    loaded: list[str] = []
    try:
        from importlib import metadata
    except ImportError:  # pragma: no cover - py3.7 fallback, not supported
        metadata = None
    if metadata is not None:
        try:
            entry_points = metadata.entry_points(group=PLUGIN_GROUP)
        except TypeError:  # pragma: no cover - pre-3.10 select API
            entry_points = metadata.entry_points().get(PLUGIN_GROUP, ())
        for entry in entry_points:
            _load_plugin(entry.load())
            loaded.append(entry.name)
    for target in filter(None, os.environ.get(PLUGIN_ENV, "").split(",")):
        _load_plugin(target.strip())
        loaded.append(target.strip())
    return loaded
