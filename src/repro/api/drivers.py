"""Built-in algorithm drivers, registered declaratively.

Each driver adapts one library entry point to the uniform sweep shape
``driver(graph, seed, metrics, **params)`` and *self-verifies* against the
sequential oracle named in its :class:`~repro.api.AlgorithmSpec`.  The specs
below are the library's own registrations through the same declarative path
third-party plugins use — nothing here is special-cased.

Seeding: every driver with a source (or root) derives it deterministically
from ``seed`` via :func:`_source_node` — ``random.Random(seed)`` over the
repr-sorted node list — so distinct seeds sample distinct sources even on
unweighted families, where the graph instance itself does not vary with the
seed.  Structure-building drivers (``boruvka``, ``decomposition``, the
covers) are deterministic per instance and use the seed only through the
instance weights; ``apsp`` feeds it to the random-delay scheduler.

Backend-agnosticism: drivers never see the batch-kernel ``backend``
knob.  Kernels are metering-parity-bound (see :mod:`repro.sim.kernels`),
so a driver's results, its oracle checks, and every quality column are
identical under scalar and numpy dispatch — which is why the knob stays
provenance (never a row column, never digested) and a driver cannot
accidentally depend on it.

Quality columns: a driver may return a ``dict`` of scenario-specific
metric columns (MST weight, cover degree/radius, per-node energy,
``preprocess_*`` construction costs).  The sweep engine merges them into
the tidy row after the core :data:`~repro.sim.experiments.ROW_FIELDS`, and
:mod:`repro.analysis.sweeps` carries them into tables, fits and reports.

Theorem map for the metered columns (see EXPERIMENTS.md for the full
catalog table):

* ``sssp``/``cssp`` — Thms 2.6/2.7 (rounds, messages, congestion);
* ``boruvka`` — Thm 2.2 (maximal spanning forest; ``mst_weight`` is exact
  against Kruskal on unit-weight instances, where every spanning forest is
  minimum);
* ``apsp`` — Sec 1.1 random-delay scheduling (``makespan`` and
  ``max_slot_load`` reproduce the LMR94-style feasibility claim);
* ``labeled-bfs`` — the Thm 3.10/3.11 growth primitive;
* ``decomposition`` — Thm 3.10; ``sparse-cover``/``layered-cover`` —
  Thm 3.11 / Def 3.4 (``cover_degree`` is the ``O(log n)`` membership
  bound, ``cover_radius`` the diameter-stretch bound);
* ``tree-aggregation`` — Sec 3.1.1 (``energy_avg`` tracks the
  four-wakes-per-cycle schedule);
* ``energy-bfs``/``energy-bfs-scratch`` — Thm 3.8 query costs in the main
  ``rounds``/``energy`` columns; the ``preprocess_*`` columns charge the
  Thm 3.11/3.13 cover construction (synchronous CONGEST, reported
  separately per DESIGN.md decision 4);
* ``energy-cssp`` — Thm 3.15 (construction and query interleave inside the
  recursion, so the main columns charge both).
"""

from __future__ import annotations

import random

from .algorithms import AlgorithmSpec, register_algorithm_spec

__all__ = [
    "BUILTIN_ALGORITHMS",
    "DriverError",
    "drive_sssp",
    "drive_cssp",
    "drive_bellman_ford",
    "drive_dijkstra",
    "drive_bfs",
    "drive_boruvka",
    "drive_apsp",
    "drive_labeled_bfs",
    "drive_decomposition",
    "drive_sparse_cover",
    "drive_layered_cover",
    "drive_tree_aggregation",
    "drive_energy_bfs",
    "drive_energy_bfs_scratch",
    "drive_energy_cssp",
]


class DriverError(RuntimeError):
    """A driver's output disagreed with its sequential oracle."""


def _source_node(graph, seed: int):
    """The run's source: a seed-deterministic draw from the sorted nodes.

    Distinct seeds must sample distinct sources (that is what the ``seed``
    axis of a sweep *means* for source-based algorithms); sorting first
    keeps the draw independent of node insertion order.
    """
    nodes = sorted(graph.nodes(), key=repr)
    return nodes[random.Random(seed).randrange(len(nodes))]


def _sample_nodes(graph, seed: int, k: int) -> list:
    """``k`` distinct seed-deterministic nodes (clamped to the node count)."""
    nodes = sorted(graph.nodes(), key=repr)
    return random.Random(seed).sample(nodes, min(k, len(nodes)))


def _check(actual: dict, expected: dict, what: str) -> None:
    if actual != expected:
        bad = [(u, actual.get(u), expected[u]) for u in expected if actual.get(u) != expected[u]]
        raise DriverError(f"{what}: output disagrees with oracle, e.g. {bad[:3]}")


def _faulted_distance_verdict(
    graph, observed: dict, source, what: str, *, weighted: bool
) -> dict | None:
    """Oracle check for distance floods, relaxed to the run's fault plane.

    Fault-free runs keep the exact oracle (``_check``) and return ``None``
    — rows are byte-identical to the pre-fault engines.  Under an injected
    :class:`~repro.sim.FaultModel` the exact oracle is too strict (a
    crashed node may legitimately end unreached), so the check becomes a
    *distance sandwich* on the never-crashed survivors: the full-graph
    distance is a lower bound (every finite estimate a monotone relaxation
    flood holds corresponds to a real path) and the distance in the
    survivor-induced subgraph is an upper bound (survivor-only paths lose
    no messages to crashes; drop/dup tolerance must absorb the rest).
    Runs cut short by a stopping bound (``stop_reason`` set) keep only the
    lower bound — convergence needs the full horizon, soundness does not.
    Returns the ``robustness`` quality column: ``"exact"`` when the output
    still matches the unfaulted oracle, ``"survivors"`` when only the
    sandwich holds, ``"truncated"`` for a sound-but-unconverged bounded
    run.
    """
    from ..graphs import INFINITY
    from ..sim import current_engine, current_faults

    config = current_engine()
    truncated = config is not None and config.stats.stop_reason is not None
    plane = current_faults()
    expected = graph.dijkstra([source]) if weighted else graph.hop_distances([source])
    if plane is None and not truncated:
        _check(observed, expected, what)
        return None
    if observed == expected:
        return {"robustness": "exact"}
    crashed = set(plane.crash_plan(graph.nodes())) if plane is not None else set()
    survivors = [u for u in graph.nodes() if u not in crashed]
    if truncated:
        bad = [
            (u, observed.get(u), expected[u])
            for u in survivors
            if not (expected[u] <= observed.get(u, INFINITY))
        ]
        if bad:
            raise DriverError(
                f"{what}: distances below the full-graph lower bound "
                f"(node, observed, lower), e.g. {bad[:3]}"
            )
        return {"robustness": "truncated"}
    if source in crashed:
        upper = dict.fromkeys(survivors, INFINITY)
    else:
        reduced = graph.induced_subgraph(survivors)
        upper = reduced.dijkstra([source]) if weighted else reduced.hop_distances([source])
    bad = [
        (u, observed.get(u), expected[u], upper[u])
        for u in survivors
        if not (expected[u] <= observed.get(u, INFINITY) <= upper[u])
    ]
    if bad:
        raise DriverError(
            f"{what}: survivor distances escape the fault sandwich "
            f"(node, observed, full-graph lower, survivor-graph upper), "
            f"e.g. {bad[:3]}"
        )
    return {"robustness": "survivors"}


def _energy_avg(graph, metrics) -> float:
    """Mean awake rounds per node — the per-node energy quality column."""
    n = graph.num_nodes
    if n == 0:
        return 0.0
    return round(sum(metrics.awake_rounds.values()) / n, 3)


def drive_sssp(graph, seed: int, metrics) -> None:
    """The paper's SSSP (Thm 2.6 pipeline), checked against Dijkstra."""
    from ..core import sssp

    source = _source_node(graph, seed)
    result = sssp(graph, source)
    _check(result.distances, graph.dijkstra([source]), "sssp")
    metrics.merge(result.metrics)


def drive_cssp(graph, seed: int, metrics) -> None:
    """Thresholded recursive CSSP, checked against Dijkstra."""
    from ..core import cssp

    source = _source_node(graph, seed)
    distances, _ = cssp(graph, {source: 0}, metrics=metrics)
    _check(distances, graph.dijkstra([source]), "cssp")


def drive_bellman_ford(graph, seed: int, metrics) -> dict | None:
    """Distributed Bellman-Ford baseline, checked against Dijkstra.

    Under an injected fault plane the check relaxes to the survivor
    sandwich (see :func:`_faulted_distance_verdict`): re-broadcasting every
    round retries drops and re-teaches restarted nodes, so Bellman-Ford is
    the catalog's fully fault-tolerant distance flood.
    """
    from ..baselines import run_bellman_ford

    source = _source_node(graph, seed)
    observed = run_bellman_ford(graph, source, metrics=metrics)
    return _faulted_distance_verdict(
        graph, observed, source, "bellman-ford", weighted=True
    )


def drive_dijkstra(graph, seed: int, metrics) -> None:
    """Naive distributed Dijkstra baseline, checked against Dijkstra."""
    from ..baselines import run_distributed_dijkstra

    source = _source_node(graph, seed)
    _check(
        run_distributed_dijkstra(graph, source, metrics=metrics),
        graph.dijkstra([source]),
        "dijkstra",
    )


def drive_bfs(graph, seed: int, metrics) -> dict | None:
    """Unweighted CONGEST BFS, checked against hop distances.

    Under an injected fault plane the check relaxes to the survivor
    sandwich (see :func:`_faulted_distance_verdict`).  BFS offers are
    one-shot, so it tolerates duplication (idempotent minimum) and crashes
    (survivor-only paths keep their offers) but *not* message drops — a
    dropped offer is never retried, which is exactly the negative control
    the fault tests demonstrate.
    """
    from ..core import run_bfs

    source = _source_node(graph, seed)
    observed = run_bfs(graph, [source], metrics=metrics)
    return _faulted_distance_verdict(graph, observed, source, "bfs", weighted=False)


# repro: lint-ok[F301] deterministic per instance — fragments merge by edge id
def drive_boruvka(graph, seed: int, metrics) -> dict:
    """Distributed Boruvka forest (Thm 2.2), vs sequential Kruskal weight.

    The Thm 2.2 protocol builds a *maximal* spanning forest (fragments
    choose edges by identifier, not weight); the forest is always validated
    structurally (spanning, acyclic, edges exist — the theorem's actual
    contract).  On uniform-weight instances — where every spanning forest
    is minimum, which is how the built-in scenarios register it — the
    ``mst_weight`` check against sequential Kruskal is additionally exact;
    on non-uniform weights the forest weight is only bounded below by the
    MST weight, and exceeding that bound is not an error.  Deterministic
    per instance: no source; the seed varies only the graph instance.
    """
    from ..core import build_maximal_forest

    forest = build_maximal_forest(graph, metrics=metrics)
    try:
        forest.validate_against(graph)
    except ValueError as exc:
        raise DriverError(f"boruvka: invalid forest: {exc}") from exc
    weight = sum(
        graph.weight(u, p) for u, p in forest.parent.items() if p is not None
    )
    expected = graph.mst_weight()
    uniform = graph.min_weight() == graph.max_weight()
    if uniform and weight != expected:
        raise DriverError(
            f"boruvka: forest weight {weight} != sequential MST weight {expected}"
        )
    if weight < expected:
        raise DriverError(
            f"boruvka: forest weight {weight} below the MST lower bound {expected}"
        )
    return {"forest_weight": weight, "mst_weight": expected}


def drive_apsp(graph, seed: int, metrics, capacity_log_factor: int = 4) -> dict:
    """Random-delay APSP (Sec 1.1), vs all-pairs Dijkstra + feasibility.

    Runs ``n`` concurrent SSSP instances; the seed draws the random delays.
    Per-source metrics merge concurrently (``sequential=False``) and the
    round clock is then extended to the schedule's makespan — the honest
    time of the superimposed execution.  Fails if any per-source distance
    table disagrees with Dijkstra or the schedule exceeds the per-slot
    capacity ``capacity_log_factor * ceil(log2 n)``.
    """
    from ..core import apsp

    result = apsp(graph, seed=seed, capacity_log_factor=capacity_log_factor)
    for source, sssp_result in result.per_source.items():
        _check(sssp_result.distances, graph.dijkstra([source]), f"apsp[{source!r}]")
        metrics.merge(sssp_result.metrics, sequential=False)
    schedule = result.schedule
    if not schedule.feasible:
        raise DriverError(
            f"apsp: schedule infeasible: slot load {schedule.max_slot_load} "
            f"> capacity {schedule.capacity}"
        )
    if schedule.makespan > metrics.rounds:
        metrics.record_rounds(schedule.makespan - metrics.rounds)
    return {
        "makespan": schedule.makespan,
        "max_slot_load": schedule.max_slot_load,
        "slot_capacity": schedule.capacity,
    }


def drive_labeled_bfs(graph, seed: int, metrics, num_sources: int = 3) -> None:
    """Labeled multi-source BFS (Thm 3.10/3.11 primitive), vs Dijkstra.

    ``num_sources`` seed-drawn sources, each its own label.  Checks every
    node's distance against the multi-source Dijkstra oracle (hop distances
    on unit weights), that the winning label's source actually achieves
    that distance, and that parent pointers step along graph edges.
    """
    from ..energy import run_labeled_bfs
    from ..graphs import INFINITY

    sources = _sample_nodes(graph, seed, num_sources)
    threshold = graph.num_nodes * max(1, graph.max_weight())
    result = run_labeled_bfs(
        graph, {s: s for s in sources}, threshold, metrics=metrics
    )
    expected = graph.dijkstra(sources)
    per_source = {s: graph.dijkstra([s]) for s in sources}
    for u in graph.nodes():
        dist, label, parent, _hops = result[u]
        if dist != expected[u]:
            raise DriverError(
                f"labeled-bfs: dist[{u!r}] = {dist} != oracle {expected[u]}"
            )
        if dist != INFINITY and per_source[label][u] != dist:
            raise DriverError(
                f"labeled-bfs: label {label!r} does not achieve dist {dist} at {u!r}"
            )
        if parent is not None and not graph.has_edge(u, parent):
            raise DriverError(f"labeled-bfs: parent edge {u!r}-{parent!r} missing")


# repro: lint-ok[F301] deterministic per instance — the seed varies the graph only
def drive_decomposition(graph, seed: int, metrics, separation: int = 2) -> dict:
    """k-separated decomposition (Thm 3.10), vs the structural validator.

    Deterministic per instance (the paper's construction is deterministic);
    the seed varies only the graph instance.  Quality columns report the
    cluster/color counts and the max Steiner-tree load per edge — the
    quantities Thm 3.10 bounds.
    """
    from ..energy import ValidationError, build_decomposition, validate_decomposition

    decomposition = build_decomposition(graph, separation, metrics=metrics)
    try:
        validate_decomposition(graph, decomposition)
    except ValidationError as exc:
        raise DriverError(f"decomposition: {exc}") from exc
    load = decomposition.edge_tree_load()
    return {
        "clusters": len(decomposition.clusters),
        "colors": len(decomposition.colors),
        "tree_edge_load": max(load.values(), default=0),
    }


# repro: lint-ok[F301] deterministic per instance — the seed varies the graph only
def drive_sparse_cover(graph, seed: int, metrics, d: int = 2) -> dict:
    """Sparse d-cover (Thm 3.11), vs the Definition 3.2 validator.

    ``cover_degree`` is the max cluster membership per node (the
    ``O(log n)`` sparsity bound) and ``cover_radius`` the max weighted tree
    radius (the diameter-stretch bound).
    """
    from ..energy import ValidationError, build_sparse_cover, validate_sparse_cover

    cover = build_sparse_cover(graph, d, metrics=metrics)
    try:
        validate_sparse_cover(graph, cover)
    except ValidationError as exc:
        raise DriverError(f"sparse-cover: {exc}") from exc
    return {
        "cover_clusters": len(cover.clusters),
        "cover_degree": cover.max_membership(),
        "cover_radius": cover.max_tree_radius(),
    }


# repro: lint-ok[F301] deterministic per instance — the seed varies the graph only
def drive_layered_cover(graph, seed: int, metrics, base: int = 4) -> dict:
    """Layered sparse cover (Def 3.4), vs the Definition 3.4 validator.

    Builds the full-radius stack the low-energy BFS queries run over;
    ``cover_levels`` and the per-level sparsity/edge-load columns are the
    quantities Observation 3.3 / Sec 3.1.3 bound.
    """
    from ..energy import ValidationError, build_layered_cover, validate_layered_cover

    cover = build_layered_cover(graph, graph.num_nodes, base=base, metrics=metrics)
    try:
        validate_layered_cover(graph, cover)
    except ValidationError as exc:
        raise DriverError(f"layered-cover: {exc}") from exc
    return {
        "cover_levels": len(cover.levels),
        "cover_degree": max((c.max_membership() for c in cover.levels), default=0),
        "tree_edge_load": cover.max_edge_load(),
    }


def drive_tree_aggregation(graph, seed: int, metrics, cycles: int = 3) -> dict:
    """Periodic tree aggregation (Sec 3.1.1), vs component sizes.

    Builds a BFS forest from a seed-drawn root (the tree is the primitive's
    *input*, as in the paper, so its construction is uncharged), runs
    ``cycles`` sleeping-model convergecast/broadcast cycles folding
    ``value=1`` per node, and checks every node ends with its component
    size — the correctness contract at the end of Sec 3.1.1.  Expected
    sizes come from ``graph.connected_components()`` (the registered
    oracle), independent of the forest the protocol ran over.
    """
    from ..core import bfs_forest
    from ..energy import run_periodic_aggregation

    root = _source_node(graph, seed)
    forest = bfs_forest(graph, roots=[root])
    result = run_periodic_aggregation(
        graph, forest, {u: 1 for u in graph.nodes()}, sum, cycles, metrics=metrics
    )
    size_of = {}
    for component in graph.connected_components():
        for u in component:
            size_of[u] = len(component)
    for u in graph.nodes():
        expected = size_of[u]
        if result[u] != expected:
            raise DriverError(
                f"tree-aggregation: node {u!r} aggregated {result[u]!r}, "
                f"expected component size {expected}"
            )
    depth = max((forest.tree_depth(r) for r in forest.roots), default=0)
    return {"tree_depth": depth, "energy_avg": _energy_avg(graph, metrics)}


def drive_energy_bfs(graph, seed: int, metrics, base: int = 4, stretch: int = 3) -> dict:
    """Sleeping-model BFS (Thm 3.8) — the sweep's energy-metric workload.

    The main ``rounds``/``energy`` columns meter the *query* (the Thm 3.8
    claim); the layered-cover construction it presupposes is metered into
    the ``preprocess_*`` columns (Thm 3.11 synchronous CONGEST cost,
    reported separately per DESIGN.md decision 4 — folding it into the main
    columns would mix always-awake construction energy into the sleeping
    query energy the theorem is about).
    """
    from ..energy.covers import build_layered_cover
    from ..energy.low_energy_bfs import run_low_energy_bfs
    from ..sim import Metrics

    source = _source_node(graph, seed)
    construction = Metrics()
    cover = build_layered_cover(
        graph, graph.num_nodes, base=base, stretch=stretch, metrics=construction
    )
    distances, _ = run_low_energy_bfs(
        graph, cover, {source: 0}, graph.num_nodes, metrics=metrics
    )
    _check(distances, graph.hop_distances([source]), "energy-bfs")
    return {
        "preprocess_rounds": construction.rounds,
        "preprocess_messages": construction.total_messages,
        "preprocess_energy": construction.max_energy,
        "energy_avg": _energy_avg(graph, metrics),
    }


def drive_energy_bfs_scratch(
    graph, seed: int, metrics, base: int = 4, stretch: int = 3
) -> dict:
    """From-scratch low-energy BFS (Thms 3.13/3.14), vs hop distances.

    Nobody hands this driver a cover: the bootstrap pipeline builds the
    layered cover itself (``preprocess_*`` columns, synchronous CONGEST per
    DESIGN.md decision 4) and then runs the Thm 3.8 query (main columns).
    """
    from ..energy import low_energy_bfs_from_scratch
    from ..sim import Metrics

    source = _source_node(graph, seed)
    construction = Metrics()
    distances, _cover = low_energy_bfs_from_scratch(
        graph,
        {source: 0},
        base=base,
        stretch=stretch,
        construction_metrics=construction,
        query_metrics=metrics,
    )
    _check(distances, graph.hop_distances([source]), "energy-bfs-scratch")
    return {
        "preprocess_rounds": construction.rounds,
        "preprocess_messages": construction.total_messages,
        "preprocess_energy": construction.max_energy,
        "energy_avg": _energy_avg(graph, metrics),
    }


def drive_energy_cssp(graph, seed: int, metrics, base: int = 4, stretch: int = 3) -> dict:
    """Energy-model weighted CSSP (Thm 3.15), vs Dijkstra.

    The Sec 2.3 recursion with the cutter's BFS replaced by the
    sleeping-model thresholded BFS; cover construction happens inside the
    recursion, so the main columns charge construction and query together
    (the theorem's own accounting).
    """
    from ..energy import energy_cssp

    source = _source_node(graph, seed)
    distances, _ = energy_cssp(
        graph, {source: 0}, base=base, stretch=stretch, metrics=metrics
    )
    _check(distances, graph.dijkstra([source]), "energy-cssp")
    return {"energy_avg": _energy_avg(graph, metrics)}


_HERE = __name__  # "repro.api.drivers"

BUILTIN_ALGORITHMS = (
    AlgorithmSpec(
        "sssp", f"{_HERE}:drive_sssp", model="congest",
        oracle="repro.graphs:Graph.dijkstra",
        description="paper SSSP (Thm 2.6 pipeline)",
    ),
    AlgorithmSpec(
        "cssp", f"{_HERE}:drive_cssp", model="congest",
        oracle="repro.graphs:Graph.dijkstra",
        description="thresholded recursive CSSP (Thms 2.6/2.7)",
    ),
    AlgorithmSpec(
        "bellman-ford", f"{_HERE}:drive_bellman_ford", model="congest",
        oracle="repro.graphs:Graph.dijkstra",
        description="distributed Bellman-Ford baseline",
        fault_tolerance=("drop", "dup", "crash"),
    ),
    AlgorithmSpec(
        "dijkstra", f"{_HERE}:drive_dijkstra", model="congest",
        oracle="repro.graphs:Graph.dijkstra",
        description="naive distributed Dijkstra baseline",
    ),
    AlgorithmSpec(
        "bfs", f"{_HERE}:drive_bfs", model="congest",
        oracle="repro.graphs:Graph.hop_distances",
        description="unweighted CONGEST BFS",
        fault_tolerance=("dup", "crash"),
    ),
    AlgorithmSpec(
        "boruvka", f"{_HERE}:drive_boruvka", model="congest",
        oracle="repro.graphs:Graph.mst_weight",
        description="distributed Boruvka spanning forest (Thm 2.2)",
    ),
    AlgorithmSpec(
        "apsp", f"{_HERE}:drive_apsp", model="congest",
        oracle="repro.graphs:Graph.dijkstra",
        param_schema=(("capacity_log_factor", "int"),),
        description="random-delay concurrent APSP (Sec 1.1)",
    ),
    AlgorithmSpec(
        "labeled-bfs", f"{_HERE}:drive_labeled_bfs", model="congest",
        oracle="repro.graphs:Graph.dijkstra",
        param_schema=(("num_sources", "int"),),
        description="nearest-labeled-source BFS (Thm 3.10/3.11 primitive)",
    ),
    AlgorithmSpec(
        "decomposition", f"{_HERE}:drive_decomposition", model="congest",
        oracle="repro.energy:validate_decomposition",
        param_schema=(("separation", "int"),),
        description="k-separated network decomposition (Thm 3.10)",
    ),
    AlgorithmSpec(
        "sparse-cover", f"{_HERE}:drive_sparse_cover", model="congest",
        oracle="repro.energy:validate_sparse_cover",
        param_schema=(("d", "int"),),
        description="sparse d-cover from a decomposition (Thm 3.11)",
    ),
    AlgorithmSpec(
        "layered-cover", f"{_HERE}:drive_layered_cover", model="congest",
        oracle="repro.energy:validate_layered_cover",
        param_schema=(("base", "int"),),
        description="layered sparse cover stack (Def 3.4 / Obs 3.3)",
    ),
    AlgorithmSpec(
        "tree-aggregation", f"{_HERE}:drive_tree_aggregation", model="sleeping",
        oracle="repro.graphs:Graph.connected_components",
        param_schema=(("cycles", "int"),),
        description="periodic tree convergecast/broadcast (Sec 3.1.1)",
    ),
    AlgorithmSpec(
        "energy-bfs", f"{_HERE}:drive_energy_bfs", model="sleeping",
        oracle="repro.graphs:Graph.hop_distances",
        param_schema=(("base", "int"), ("stretch", "int")),
        description="sleeping-model BFS over a layered cover (Thm 3.8)",
    ),
    AlgorithmSpec(
        "energy-bfs-scratch", f"{_HERE}:drive_energy_bfs_scratch", model="sleeping",
        oracle="repro.graphs:Graph.hop_distances",
        param_schema=(("base", "int"), ("stretch", "int")),
        description="from-scratch low-energy BFS bootstrap (Thms 3.13/3.14)",
    ),
    AlgorithmSpec(
        "energy-cssp", f"{_HERE}:drive_energy_cssp", model="sleeping",
        oracle="repro.graphs:Graph.dijkstra",
        param_schema=(("base", "int"), ("stretch", "int")),
        description="energy-model weighted CSSP (Thm 3.15)",
    ),
)

for _spec in BUILTIN_ALGORITHMS:
    register_algorithm_spec(_spec)
