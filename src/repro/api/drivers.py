"""Built-in algorithm drivers, registered declaratively.

Each driver adapts one library entry point to the uniform sweep shape
``driver(graph, seed, metrics, **params)`` and *self-verifies* against the
sequential oracle named in its :class:`~repro.api.AlgorithmSpec`.  The specs
below are the library's own registrations through the same declarative path
third-party plugins use — nothing here is special-cased.
"""

from __future__ import annotations

from .algorithms import AlgorithmSpec, register_algorithm_spec

__all__ = [
    "BUILTIN_ALGORITHMS",
    "DriverError",
    "drive_sssp",
    "drive_cssp",
    "drive_bellman_ford",
    "drive_dijkstra",
    "drive_bfs",
    "drive_energy_bfs",
]


class DriverError(RuntimeError):
    """A driver's output disagreed with its sequential oracle."""


def _first_node(graph):
    return next(iter(graph.nodes()))


def _check(actual: dict, expected: dict, what: str) -> None:
    if actual != expected:
        bad = [(u, actual.get(u), expected[u]) for u in expected if actual.get(u) != expected[u]]
        raise DriverError(f"{what}: output disagrees with oracle, e.g. {bad[:3]}")


def drive_sssp(graph, seed: int, metrics) -> None:
    """The paper's SSSP (Thm 2.6 pipeline), checked against Dijkstra."""
    from ..core import sssp

    source = _first_node(graph)
    result = sssp(graph, source)
    _check(result.distances, graph.dijkstra([source]), "sssp")
    metrics.merge(result.metrics)


def drive_cssp(graph, seed: int, metrics) -> None:
    """Thresholded recursive CSSP, checked against Dijkstra."""
    from ..core import cssp

    source = _first_node(graph)
    distances, _ = cssp(graph, {source: 0}, metrics=metrics)
    _check(distances, graph.dijkstra([source]), "cssp")


def drive_bellman_ford(graph, seed: int, metrics) -> None:
    """Distributed Bellman-Ford baseline, checked against Dijkstra."""
    from ..baselines import run_bellman_ford

    source = _first_node(graph)
    _check(run_bellman_ford(graph, source, metrics=metrics), graph.dijkstra([source]), "bellman-ford")


def drive_dijkstra(graph, seed: int, metrics) -> None:
    """Naive distributed Dijkstra baseline, checked against Dijkstra."""
    from ..baselines import run_distributed_dijkstra

    source = _first_node(graph)
    _check(
        run_distributed_dijkstra(graph, source, metrics=metrics),
        graph.dijkstra([source]),
        "dijkstra",
    )


def drive_bfs(graph, seed: int, metrics) -> None:
    """Unweighted CONGEST BFS, checked against hop distances."""
    from ..core import run_bfs

    source = _first_node(graph)
    _check(run_bfs(graph, [source], metrics=metrics), graph.hop_distances([source]), "bfs")


def drive_energy_bfs(graph, seed: int, metrics, base: int = 4, stretch: int = 3) -> None:
    """Sleeping-model BFS (Thm 3.8) — the sweep's energy-metric workload."""
    from ..energy.covers import build_layered_cover
    from ..energy.low_energy_bfs import run_low_energy_bfs

    source = _first_node(graph)
    cover = build_layered_cover(graph, graph.num_nodes, base=base, stretch=stretch)
    distances, _ = run_low_energy_bfs(
        graph, cover, {source: 0}, graph.num_nodes, metrics=metrics
    )
    _check(distances, graph.hop_distances([source]), "energy-bfs")


_HERE = __name__  # "repro.api.drivers"

BUILTIN_ALGORITHMS = (
    AlgorithmSpec(
        "sssp", f"{_HERE}:drive_sssp", model="congest",
        oracle="repro.graphs:Graph.dijkstra",
        description="paper SSSP (Thm 2.6 pipeline)",
    ),
    AlgorithmSpec(
        "cssp", f"{_HERE}:drive_cssp", model="congest",
        oracle="repro.graphs:Graph.dijkstra",
        description="thresholded recursive CSSP (Thms 2.6/2.7)",
    ),
    AlgorithmSpec(
        "bellman-ford", f"{_HERE}:drive_bellman_ford", model="congest",
        oracle="repro.graphs:Graph.dijkstra",
        description="distributed Bellman-Ford baseline",
    ),
    AlgorithmSpec(
        "dijkstra", f"{_HERE}:drive_dijkstra", model="congest",
        oracle="repro.graphs:Graph.dijkstra",
        description="naive distributed Dijkstra baseline",
    ),
    AlgorithmSpec(
        "bfs", f"{_HERE}:drive_bfs", model="congest",
        oracle="repro.graphs:Graph.hop_distances",
        description="unweighted CONGEST BFS",
    ),
    AlgorithmSpec(
        "energy-bfs", f"{_HERE}:drive_energy_bfs", model="sleeping",
        oracle="repro.graphs:Graph.hop_distances",
        param_schema=(("base", "int"), ("stretch", "int")),
        description="sleeping-model BFS over a layered cover (Thm 3.8)",
    ),
)

for _spec in BUILTIN_ALGORITHMS:
    register_algorithm_spec(_spec)
