"""Deterministic sweep sharding and shard-store recombination.

A *shard* is one of ``k`` disjoint sub-jobs of a :class:`~repro.api.SweepSpec`:
the cell cross product is grouped by graph-instance key (the same locality
grouping the executor uses for worker dispatch, so a shard never splits a
cached graph instance across machines) and the groups are dealt round-robin,
in first-seen cross-product order, to the ``k`` shards.  The partition is a
pure function of the spec and the scenario registry — every participant
computes the same assignment independently, which is what lets ``k``
machines or CI jobs each run ``--shard i/k`` with no coordinator.

Each shard streams its rows to its own derived store,
``<output>.shard-<i>-of-<k>.jsonl``, so concurrent shards never contend on
one file; :func:`merge_shards` (a thin front over
:meth:`repro.api.ResultSet.merge`) recombines them into the canonical
``<output>`` store.  The merge is idempotent and tolerant: duplicate and
overlapping cells collapse through the store's digest-based resume keys,
``failed`` rows survive only where no shard produced a successful record,
and torn lines from a crashed shard writer are skipped with a warning.
"""

from __future__ import annotations

import re
from pathlib import Path

from .resultset import ResultSet
from .specs import SpecError, SweepSpec

__all__ = [
    "shard_store_path",
    "shard_store_paths",
    "find_shard_stores",
    "partition_cells",
    "shard_cells",
    "merge_shards",
]

#: Filename pattern of a shard store derived from canonical output ``base``.
_SHARD_SUFFIX = re.compile(r"\.shard-(\d+)-of-(\d+)\.jsonl$")


def shard_store_path(output: str | Path, index: int, count: int) -> Path:
    """The derived per-shard store path: ``<output>.shard-<i>-of-<k>.jsonl``."""
    return Path(f"{output}.shard-{index}-of-{count}.jsonl")


def shard_store_paths(output: str | Path, count: int) -> list[Path]:
    """All ``count`` shard store paths derived from canonical ``output``."""
    return [shard_store_path(output, i, count) for i in range(1, count + 1)]


def find_shard_stores(output: str | Path) -> list[Path]:
    """Existing shard stores of canonical ``output``, in (count, index) order.

    Globs ``<output>.shard-*-of-*.jsonl`` next to the canonical path, so a
    merge can assemble whatever shards actually ran — including shards of
    different ``k`` from separate campaigns — without being handed a list.
    """
    base = Path(output)
    parent = base.parent if str(base.parent) else Path(".")
    found = []
    for candidate in parent.glob(f"{base.name}.shard-*-of-*.jsonl"):
        match = _SHARD_SUFFIX.search(candidate.name)
        if match:
            found.append((int(match.group(2)), int(match.group(1)), candidate))
    return [path for _, _, path in sorted(found)]


def partition_cells(cells: list[tuple], keys: list[tuple], count: int) -> list[list[tuple]]:
    """Deal ``cells`` into ``count`` disjoint shards, whole groups at a time.

    ``keys[i]`` is the graph-instance key of ``cells[i]``; cells sharing a
    key form one locality group and always land in the same shard (splitting
    a group would rebuild the same graph on two machines).  Groups are
    assigned round-robin in first-seen order — deterministic, and balanced
    to within one group per shard.  The concatenation of the shards is a
    permutation of ``cells``; each shard preserves cross-product order.
    """
    if len(cells) != len(keys):
        raise ValueError(f"{len(cells)} cells but {len(keys)} instance keys")
    shards: list[list[tuple]] = [[] for _ in range(count)]
    assignment: dict[tuple, int] = {}
    for cell, key in zip(cells, keys):
        shard = assignment.get(key)
        if shard is None:
            shard = assignment[key] = len(assignment) % count
        shards[shard].append(cell)
    return shards


def shard_cells(spec: SweepSpec, scenario_names: list[str]) -> list[tuple]:
    """The ``(scenario, n, seed)`` cells belonging to ``spec``'s own shard.

    For an unsharded spec this is the whole cross product.  The scenario
    registry supplies the instance keys, so the caller must pass the
    resolved ``scenario_names`` (as with :meth:`SweepSpec.cells`).
    """
    from ..sim import experiments

    cells = spec.cells(scenario_names)
    if spec.shard_count is None:
        return cells
    keys = [
        experiments._instance_key(experiments.get_scenario(name), n, seed)
        for name, n, seed in cells
    ]
    return partition_cells(cells, keys, spec.shard_count)[spec.shard_index - 1]


def merge_shards(
    output: str | Path,
    shards: list[str | Path] | None = None,
) -> ResultSet:
    """Recombine shard stores into the canonical store at ``output``.

    ``shards=None`` discovers ``<output>.shard-*-of-*.jsonl`` siblings via
    :func:`find_shard_stores`.  Records append through the normal store
    machinery, so duplicates collapse on their resume keys, a successful
    record beats any shard's ``failed`` record for the same cell, and
    re-merging is a no-op (idempotent).  Returns the merged (closed)
    :class:`ResultSet`; raises :class:`~repro.api.SpecError` when there is
    nothing to merge.
    """
    paths = [Path(p) for p in shards] if shards is not None else find_shard_stores(output)
    if not paths:
        raise SpecError(
            f"no shard stores to merge into {output} "
            f"(expected {shard_store_path(output, 1, 2).name}-style siblings)"
        )
    missing = [str(p) for p in paths if not p.is_file()]
    if missing:
        raise SpecError(f"shard stores do not exist: {missing}")
    return ResultSet.merge(output, paths)
