"""Typed, JSON-(de)serializable job specs.

A spec is the declarative half of a job: *what* to run, never *how it went*
(results live in :class:`repro.api.ResultSet` / ``BENCH.json``).  All three
spec types share one contract:

* construction normalizes sequences to tuples, so specs are hashable,
  picklable, and comparable by value;
* :meth:`Spec.validate` raises :class:`SpecError` with a field-by-field
  message on bad input (it is called by the executors, so a malformed spec
  never reaches a worker pool);
* ``to_dict``/``from_dict`` and ``to_json``/``from_json`` round-trip
  exactly — ``from_json(spec.to_json()) == spec`` — and the JSON form
  carries a ``"kind"`` tag so :func:`load_spec` can dispatch on file
  contents alone.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field, fields
from pathlib import Path

__all__ = ["SpecError", "Spec", "SweepSpec", "BenchSpec", "ReportSpec", "load_spec"]


class SpecError(ValueError):
    """Raised for malformed, unknown, or inconsistent spec data."""


def _validate_backend(kind: str, backend) -> None:
    """Shared ``backend`` field check for sweep and bench specs.

    Only spellings are validated, never availability: requesting
    ``"numpy"`` on a numpy-less interpreter is a valid spec that the
    kernel layer resolves to scalar at run time (graceful fallback), so
    the same spec file works across the CI matrix.
    """
    if backend is None:
        return
    from ..sim.kernels import _BACKENDS

    if backend not in _BACKENDS:
        raise SpecError(
            f"{kind} spec: backend must be one of {list(_BACKENDS)} or None, "
            f"got {backend!r}"
        )


def _as_tuple(value, item=None):
    """Normalize a JSON list / any sequence to a tuple (None passes through)."""
    if value is None:
        return None
    if isinstance(value, (str, bytes)):
        raise SpecError(f"expected a sequence, got {value!r}")
    out = tuple(value)
    if item is not None:
        for x in out:
            if not isinstance(x, item) or isinstance(x, bool):
                raise SpecError(f"expected {item.__name__} entries, got {x!r}")
    return out


@dataclass(frozen=True)
class Spec:
    """Shared (de)serialization contract for all job specs."""

    #: JSON dispatch tag; each concrete spec overrides this class attribute.
    kind = "spec"

    def validate(self) -> "Spec":
        """Return ``self`` if well-formed, else raise :class:`SpecError`."""
        return self

    def to_dict(self) -> dict:
        """Plain-dict form, tagged with ``"kind"`` for :func:`load_spec`."""
        out = {"kind": self.kind}
        for f in fields(self):
            value = getattr(self, f.name)
            out[f.name] = list(value) if isinstance(value, tuple) else value
        return out

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True) + "\n"

    @classmethod
    def from_dict(cls, data: dict) -> "Spec":
        """Build a spec from a plain dict, rejecting unknown keys."""
        if not isinstance(data, dict):
            raise SpecError(f"{cls.kind} spec must be a JSON object, got {type(data).__name__}")
        data = dict(data)
        tag = data.pop("kind", cls.kind)
        if tag != cls.kind:
            raise SpecError(f"expected kind {cls.kind!r}, got {tag!r}")
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise SpecError(f"{cls.kind} spec: unknown fields {unknown} (known: {sorted(known)})")
        return cls(**data).validate()

    @classmethod
    def from_json(cls, text: str) -> "Spec":
        try:
            data = json.loads(text)
        except ValueError as exc:
            raise SpecError(f"{cls.kind} spec: invalid JSON ({exc})") from None
        return cls.from_dict(data)

    def save(self, path: str | Path) -> Path:
        target = Path(path)
        target.write_text(self.to_json())
        return target

    @classmethod
    def load(cls, path: str | Path) -> "Spec":
        return cls.from_json(Path(path).read_text())

    def replace(self, **overrides) -> "Spec":
        """A copy with ``overrides`` applied (``None`` values are ignored)."""
        updates = {k: v for k, v in overrides.items() if v is not None}
        return dataclasses.replace(self, **updates).validate() if updates else self


@dataclass(frozen=True)
class SweepSpec(Spec):
    """A declarative experiment sweep: the (scenario x size x seed) job.

    ``scenarios=None`` means "every registered scenario at run time".
    ``output`` names the JSONL :class:`~repro.api.ResultSet` store; when it
    already holds rows, re-running the spec *resumes* — completed cells are
    skipped and only the missing ones run.

    ``shard_index``/``shard_count`` select one shard of the job: the cell
    cross product is partitioned by graph-instance group into
    ``shard_count`` disjoint sub-jobs (see :meth:`shard` and
    :mod:`repro.api.shard`), and a sharded spec writes its rows to the
    derived per-shard store ``<output>.shard-<i>-of-<k>.jsonl`` so
    independent machines can each run one shard and
    :func:`repro.api.merge_shards` reassembles the canonical store.

    ``max_retries``/``task_timeout`` are the fault-tolerance policy of the
    supervised executor: a group whose worker dies (or exceeds
    ``task_timeout`` seconds) is re-dispatched to a fresh worker up to
    ``max_retries`` times, then recorded as ``failed`` rows instead of
    hanging the sweep.

    ``latency_model``/``engine`` select the network model and simulation
    backend (see :mod:`repro.sim.events`).  Both default to ``None`` —
    "use each scenario's own defaults": unit-latency scenarios on the
    synchronous round engine, latency-heterogeneous ones on the event
    engine.  Setting ``latency_model`` overrides the network for *every*
    cell (it becomes part of the cell's resume digest); setting ``engine``
    pins the backend (``"event"`` on unit latency is the differential
    check — same rows, asynchronous core; ``"round"`` on a non-unit model
    is rejected).

    ``fault_model`` is the robustness axis (see
    :func:`repro.sim.parse_fault_model` for the grammar): a non-``none``
    value injects the same seeded fault plane into every cell and joins
    the resume digest.  The executor refuses to inject fault kinds an
    algorithm does not declare tolerance for
    (:attr:`repro.api.AlgorithmSpec.fault_tolerance`) — with
    ``scenarios=None`` it auto-restricts the catalog to tolerant
    scenarios, and explicitly named non-tolerant scenarios are an error
    unless ``force_faults=True`` opts into watching them break.

    ``backend`` selects the node-step dispatch path (see
    :mod:`repro.sim.kernels`): ``"numpy"`` enables batch kernels,
    ``"scalar"`` forces the per-node path, ``None`` uses the
    interpreter's default.  The knob is **provenance, not physics** —
    both backends produce byte-identical rows and metrics, so it never
    joins the resume digest and any store resumes under either setting;
    a ``"numpy"`` request on a numpy-less interpreter falls back to
    scalar rather than failing.
    """

    kind = "sweep"

    scenarios: tuple | None = None
    sizes: tuple = (16, 32, 48)
    seeds: tuple = (0,)
    workers: int = 1
    output: str | None = None
    shard_index: int | None = None
    shard_count: int | None = None
    max_retries: int = 2
    task_timeout: float | None = None
    latency_model: str | None = None
    engine: str | None = None
    fault_model: str | None = None
    force_faults: bool = False
    backend: str | None = None

    def __post_init__(self):
        object.__setattr__(self, "scenarios", _as_tuple(self.scenarios))
        object.__setattr__(self, "sizes", _as_tuple(self.sizes))
        object.__setattr__(self, "seeds", _as_tuple(self.seeds))

    def validate(self) -> "SweepSpec":
        if self.scenarios is not None:
            _as_tuple(self.scenarios, item=str)
            if not self.scenarios:
                raise SpecError("sweep spec: scenarios must be None (= all) or non-empty")
        sizes = _as_tuple(self.sizes, item=int)
        if not sizes or any(n <= 0 for n in sizes):
            raise SpecError(f"sweep spec: sizes must be positive integers, got {self.sizes!r}")
        seeds = _as_tuple(self.seeds, item=int)
        if not seeds:
            raise SpecError("sweep spec: seeds must be a non-empty integer sequence")
        if not isinstance(self.workers, int) or isinstance(self.workers, bool) or self.workers < 1:
            raise SpecError(f"sweep spec: workers must be an integer >= 1, got {self.workers!r}")
        if self.output is not None and not isinstance(self.output, str):
            raise SpecError(f"sweep spec: output must be a path string or None, got {self.output!r}")
        if (self.shard_index is None) != (self.shard_count is None):
            raise SpecError(
                "sweep spec: shard_index and shard_count must be set together "
                f"(got shard_index={self.shard_index!r}, shard_count={self.shard_count!r})"
            )
        if self.shard_count is not None:
            for name in ("shard_index", "shard_count"):
                value = getattr(self, name)
                if not isinstance(value, int) or isinstance(value, bool):
                    raise SpecError(f"sweep spec: {name} must be an integer, got {value!r}")
            if self.shard_count < 1:
                raise SpecError(
                    f"sweep spec: shard_count must be >= 1, got {self.shard_count!r}"
                )
            if not 1 <= self.shard_index <= self.shard_count:
                raise SpecError(
                    f"sweep spec: shard_index must be in 1..{self.shard_count}, "
                    f"got {self.shard_index!r}"
                )
        if (
            not isinstance(self.max_retries, int)
            or isinstance(self.max_retries, bool)
            or self.max_retries < 0
        ):
            raise SpecError(
                f"sweep spec: max_retries must be an integer >= 0, got {self.max_retries!r}"
            )
        if self.task_timeout is not None and (
            not isinstance(self.task_timeout, (int, float))
            or isinstance(self.task_timeout, bool)
            or self.task_timeout <= 0
        ):
            raise SpecError(
                f"sweep spec: task_timeout must be a positive number of seconds "
                f"or None, got {self.task_timeout!r}"
            )
        if self.engine is not None and self.engine not in ("round", "event"):
            raise SpecError(
                f"sweep spec: engine must be 'round', 'event' or None, "
                f"got {self.engine!r}"
            )
        canonical = None
        if self.latency_model is not None:
            if not isinstance(self.latency_model, str):
                raise SpecError(
                    f"sweep spec: latency_model must be a string or None, "
                    f"got {self.latency_model!r}"
                )
            # Lazy import keeps the spec layer import-light; events has no
            # back-dependency on repro.api.
            from ..sim.events import canonical_latency

            try:
                canonical = canonical_latency(self.latency_model)
            except ValueError as exc:
                raise SpecError(f"sweep spec: {exc}") from None
        if self.engine == "round" and canonical is not None and canonical != "unit":
            raise SpecError(
                f"sweep spec: the synchronous 'round' engine cannot express "
                f"latency model {canonical!r}; use engine='event'"
            )
        if self.fault_model is not None:
            if not isinstance(self.fault_model, str):
                raise SpecError(
                    f"sweep spec: fault_model must be a string or None, "
                    f"got {self.fault_model!r}"
                )
            from ..sim.faults import canonical_fault

            try:
                canonical_fault(self.fault_model)
            except ValueError as exc:
                raise SpecError(f"sweep spec: {exc}") from None
        if not isinstance(self.force_faults, bool):
            raise SpecError(
                f"sweep spec: force_faults must be a boolean, got {self.force_faults!r}"
            )
        _validate_backend("sweep", self.backend)
        return self

    def shard(self, count: int) -> "list[SweepSpec]":
        """The ``count`` disjoint sub-specs of this sweep, one per shard.

        Each sub-spec carries ``shard_index``/``shard_count`` (1-based) and
        is otherwise identical — including ``output``, which stays the
        *canonical* store path; the executor derives the per-shard path
        (:func:`repro.api.shard.shard_store_path`) so a later merge knows
        where the canonical store lives.  Partitioning happens at run time,
        by graph-instance group (:func:`repro.api.shard.partition_cells`),
        so every shard keeps whole locality groups and the union of the
        shards is exactly this spec's cross product.
        """
        if not isinstance(count, int) or isinstance(count, bool) or count < 1:
            raise SpecError(f"sweep spec: shard count must be an integer >= 1, got {count!r}")
        if self.shard_count is not None:
            raise SpecError("sweep spec: already sharded; shard the unsharded spec")
        return [
            dataclasses.replace(self, shard_index=i, shard_count=count).validate()
            for i in range(1, count + 1)
        ]

    def cells(self, scenario_names: list[str] | None = None) -> list[tuple]:
        """The (scenario, n, seed) cross product in canonical row order.

        With ``scenarios=None`` ("all registered at run time") the caller
        must pass the resolved ``scenario_names`` — the registry lives a
        layer above this module.
        """
        if scenario_names is None:
            if self.scenarios is None:
                raise SpecError(
                    "sweep spec: scenarios=None resolves at run time; pass "
                    "scenario_names (run_sweep_spec does this for you)"
                )
            scenario_names = list(self.scenarios)
        return [(name, n, seed) for name in scenario_names for n in self.sizes for seed in self.seeds]


@dataclass(frozen=True)
class BenchSpec(Spec):
    """The pinned-benchmark job behind ``repro bench`` / ``BENCH.json``.

    ``quick=True`` is the CI gate: one repetition, no baseline rewrite, and
    a non-zero outcome when any experiment exceeds ``factor`` x the recorded
    baseline.

    ``backend`` pins the node-step dispatch path for the timed runs (see
    :class:`SweepSpec`); the resolved backend is recorded in the
    baseline's provenance metadata, never compared by the gate.
    """

    kind = "bench"

    experiments: tuple | None = None
    repeats: int = 3
    output: str | None = None
    quick: bool = False
    factor: float = 2.0
    backend: str | None = None

    def __post_init__(self):
        object.__setattr__(self, "experiments", _as_tuple(self.experiments))

    def validate(self) -> "BenchSpec":
        if self.experiments is not None:
            _as_tuple(self.experiments, item=str)
            if not self.experiments:
                raise SpecError("bench spec: experiments must be None (= default set) or non-empty")
        if not isinstance(self.repeats, int) or isinstance(self.repeats, bool) or self.repeats < 1:
            raise SpecError(f"bench spec: repeats must be an integer >= 1, got {self.repeats!r}")
        if not isinstance(self.quick, bool):
            raise SpecError(f"bench spec: quick must be a boolean, got {self.quick!r}")
        if not isinstance(self.factor, (int, float)) or isinstance(self.factor, bool) or self.factor <= 0:
            raise SpecError(f"bench spec: factor must be a positive number, got {self.factor!r}")
        if self.output is not None and not isinstance(self.output, str):
            raise SpecError(f"bench spec: output must be a path string or None, got {self.output!r}")
        _validate_backend("bench", self.backend)
        return self


@dataclass(frozen=True)
class ReportSpec(Spec):
    """The report-compilation job: recorded tables -> one Markdown document."""

    kind = "report"

    results_dir: str = "benchmarks/results"
    output: str | None = None

    def validate(self) -> "ReportSpec":
        if not isinstance(self.results_dir, str) or not self.results_dir:
            raise SpecError(f"report spec: results_dir must be a path string, got {self.results_dir!r}")
        if self.output is not None and not isinstance(self.output, str):
            raise SpecError(f"report spec: output must be a path string or None, got {self.output!r}")
        return self


_KINDS = {cls.kind: cls for cls in (SweepSpec, BenchSpec, ReportSpec)}


def load_spec(source: str | Path | dict) -> Spec:
    """Load any spec from a path, JSON text, or plain dict via its ``kind`` tag.

    A string starting with ``{`` is parsed as JSON text; any other string
    (or :class:`~pathlib.Path`) is treated as a file path.
    """
    if isinstance(source, str) and source.lstrip().startswith("{"):
        try:
            data = json.loads(source)
        except ValueError as exc:
            raise SpecError(f"spec text: invalid JSON ({exc})") from None
    elif isinstance(source, (str, Path)):
        path = Path(source)
        if not path.is_file():
            raise SpecError(f"spec file {path} does not exist")
        try:
            data = json.loads(path.read_text())
        except ValueError as exc:
            raise SpecError(f"spec file {path}: invalid JSON ({exc})") from None
    else:
        data = source
    if not isinstance(data, dict):
        raise SpecError(f"spec must be a JSON object, got {type(data).__name__}")
    kind = data.get("kind")
    try:
        cls = _KINDS[kind]
    except KeyError:
        raise SpecError(f"unknown spec kind {kind!r}; options: {sorted(_KINDS)}") from None
    return cls.from_dict(data)
