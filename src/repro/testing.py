"""Shared test helpers, importable as a real module.

The suite used to keep these in ``tests/conftest.py`` and pull them in with
``from conftest import ...`` — which silently binds to *whichever* conftest
pytest imported first and broke collection outright once ``benchmarks/``
grew a conftest of its own.  Living under ``repro.testing`` they resolve the
same way for tests, benchmarks, and downstream users.
"""

from __future__ import annotations

import os
from pathlib import Path

from . import graphs
from .graphs import Graph, INFINITY

__all__ = [
    "oracle_distances",
    "assert_distances_equal",
    "small_weighted_graph",
    "subprocess_env",
]


def subprocess_env() -> dict:
    """Environment for subprocess-based tests, with ``src/`` on PYTHONPATH.

    pytest's in-process ``pythonpath`` config does not reach spawned
    interpreters, so tests that ``subprocess.run([sys.executable, ...])``
    must inject the path to this source tree themselves.
    """
    src = str(Path(__file__).resolve().parent.parent)
    return {
        # repro: lint-ok[D107] subprocess env passthrough — test helper, not library config
        **os.environ,
        # repro: lint-ok[D107] extends the caller's own PYTHONPATH, read for passthrough only
        "PYTHONPATH": os.pathsep.join(filter(None, [src, os.environ.get("PYTHONPATH")])),
    }


def oracle_distances(graph: Graph, sources: dict) -> dict:
    """Offset-aware ground truth: ``min_s (offset_s + dist(s, v))``."""
    best = {u: INFINITY for u in graph.nodes()}
    for s, offset in sources.items():
        d = graph.dijkstra([s])
        for u in graph.nodes():
            best[u] = min(best[u], offset + d[u])
    return best


def assert_distances_equal(actual: dict, expected: dict, context: str = "") -> None:
    bad = [
        (u, actual[u], expected[u])
        for u in expected
        if actual.get(u) != expected[u]
    ]
    assert not bad, f"{context}: first mismatches {bad[:5]}"


def small_weighted_graph(n: int, seed: int, max_weight: int = 10) -> Graph:
    return graphs.random_weights(
        graphs.random_connected_graph(n, seed=seed), max_weight, seed=seed + 1000
    )
