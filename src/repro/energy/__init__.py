"""Section 3: the energy-model (sleeping) algorithms and their substrates."""

from .labeled_bfs import LabeledBFS, run_labeled_bfs
from .decomposition import Cluster, Decomposition, build_decomposition
from .covers import (
    CoverCluster,
    LayeredCover,
    SparseCover,
    build_layered_cover,
    build_sparse_cover,
)
from .cluster_comm import PeriodicTreeAggregation, run_periodic_aggregation
from .low_energy_bfs import LowEnergyBFSNode, Schedule, run_low_energy_bfs
from .validation import (
    ValidationError,
    validate_decomposition,
    validate_layered_cover,
    validate_sparse_cover,
)
from .bootstrap import energy_approx_cssp, energy_cssp, low_energy_bfs_from_scratch

__all__ = [
    "ValidationError",
    "validate_decomposition",
    "validate_layered_cover",
    "validate_sparse_cover",
    "LabeledBFS",
    "run_labeled_bfs",
    "Cluster",
    "Decomposition",
    "build_decomposition",
    "CoverCluster",
    "LayeredCover",
    "SparseCover",
    "build_layered_cover",
    "build_sparse_cover",
    "PeriodicTreeAggregation",
    "run_periodic_aggregation",
    "LowEnergyBFSNode",
    "Schedule",
    "run_low_energy_bfs",
    "energy_approx_cssp",
    "energy_cssp",
    "low_energy_bfs_from_scratch",
]
