"""Periodic tree convergecast/broadcast in the sleeping model (Sec. 3.1.1).

The standalone primitive behind every cluster schedule in Section 3: given
a rooted tree of depth ``d`` where each node knows its parent, children and
depth, information is folded to the root and flooded back down in cycles of
length ``2d + 4``, with each node awake exactly four rounds per cycle:

* offsets ``d - depth - 1`` and ``d - depth`` — hear the children's reports,
  fold, send up;
* offsets ``d + depth`` and ``d + depth + 1`` — hear the parent's
  broadcast, forward down.

The paper's statement (end of Section 3.1.1): once all tree nodes are
participating, any signal inserted at any node reaches everyone within
``O(d + p)`` rounds, at ``Theta(1/p)`` awake-fraction per node.  The unit
tests exercise exactly that contract under lossy sleeping semantics.
"""

from __future__ import annotations

from ..graphs import Graph
from ..sim import Context, Metrics, Mode, NodeAlgorithm, make_runner
from ..core.trees import RootedForest

__all__ = ["PeriodicTreeAggregation", "run_periodic_aggregation"]


class PeriodicTreeAggregation(NodeAlgorithm):
    """One node of the periodic convergecast/broadcast schedule.

    Each cycle folds every node's current ``value`` with ``combine`` and
    delivers the tree-wide aggregate back to every node (``self.result``,
    tagged with the cycle index in ``self.result_cycle``).
    """

    def __init__(
        self,
        node: object,
        parent: object,
        children: list,
        depth: int,
        tree_depth: int,
        combine,
        value,
        cycles: int,
    ) -> None:
        self.node = node
        self.parent = parent
        self.children = children
        self.depth = depth
        self.tree_depth = tree_depth
        self.combine = combine
        self.value = value
        self.cycles = cycles
        self.cycle_len = 2 * tree_depth + 4
        self.result = None
        self.result_cycle = -1
        self._up_buffer: list = []
        self._down_buffer = None

    def on_round(self, ctx: Context, inbox: list[tuple[object, object]]) -> None:
        for _sender, (kind, body) in inbox:
            if kind == "up":
                self._up_buffer.append(body)
            else:
                self._down_buffer = body
        cycle, offset = divmod(ctx.round, self.cycle_len)
        if cycle >= self.cycles:
            ctx.halt()
            return
        d = self.tree_depth
        if offset == d - self.depth:
            folded = self.combine([self.value] + self._up_buffer)
            self._up_buffer = []
            if self.parent is None:
                self._down_buffer = folded
            else:
                ctx.send(self.parent, ("up", folded))
        elif offset == d + self.depth + 1 and self._down_buffer is not None:
            self.result = self._down_buffer
            self.result_cycle = cycle
            for child in self.children:
                ctx.send(child, ("down", self._down_buffer))
            self._down_buffer = None
        self._schedule(ctx)

    def _schedule(self, ctx: Context) -> None:
        r = ctx.round
        d = self.tree_depth
        base = (r // self.cycle_len) * self.cycle_len
        slots = []
        for cycle_base in (base, base + self.cycle_len):
            for off in (
                d - self.depth - 1,
                d - self.depth,
                d + self.depth,
                d + self.depth + 1,
            ):
                slot = cycle_base + off
                if slot > r:
                    slots.append(slot)
        end = self.cycles * self.cycle_len
        slots.append(end)
        ctx.wake_at(min(slots))


def run_periodic_aggregation(
    graph: Graph,
    forest: RootedForest,
    values: dict,
    combine,
    cycles: int,
    *,
    metrics: Metrics | None = None,
) -> dict:
    """Run ``cycles`` aggregation cycles over every tree, sleeping-model.

    Returns node -> last delivered aggregate.  The energy metric in the
    returned/shared ``metrics`` reflects the four-wakes-per-cycle schedule.
    """
    depth_bound = max(
        (forest.tree_depth(root) for root in forest.roots), default=0
    )
    algorithms = {
        u: PeriodicTreeAggregation(
            u,
            forest.parent[u],
            list(forest.children[u]),
            forest.depth[u],
            depth_bound,
            combine,
            values[u],
            cycles,
        )
        for u in graph.nodes()
    }
    make_runner(graph, algorithms, Mode.SLEEPING, metrics=metrics).run()
    return {u: algorithms[u].result for u in graph.nodes()}
