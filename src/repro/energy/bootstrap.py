"""From-scratch low-energy BFS and weighted CSSP (Theorems 3.13–3.15).

*From-scratch BFS* (Theorem 3.13/3.14): nobody hands us a layered cover, so
the algorithm builds sparse ``r_j``-covers level by level — stopping as soon
as some cluster spans the whole graph (the Section 3.6 termination rule,
since nodes do not know ``D``) — and then runs the sleeping-model
thresholded BFS of Theorem 3.8 on top.  Reproduction scope note (DESIGN.md,
decision 4): the per-level construction runs in its synchronous CONGEST
form; Theorem 3.12's refinement — routing the construction's own BFSs
through the previous level's low-energy BFS — changes the construction's
*energy* accounting but not its outputs, so the query-phase energy numbers
(the ones Theorem 3.8 is about) are exact while construction energy is
reported separately as synchronous cost.

*Energy-model CSSP* (Theorem 3.15): the Section 2.3 recursion, verbatim,
with the approximate cutter's thresholded BFS replaced by the low-energy
thresholded BFS — exactly the substitution the paper prescribes in
Section 3.7.  The rounding arithmetic of Lemma 2.1 is unchanged.
"""

from __future__ import annotations

import math

from ..graphs import Graph, INFINITY
from ..sim import Metrics
from ..core.cssp import DEFAULT_EPS, distance_upper_bound, _thresholded_recursive
from ..core.cutter import cutter_quantum
from .covers import LayeredCover, build_layered_cover
from .low_energy_bfs import run_low_energy_bfs

__all__ = ["low_energy_bfs_from_scratch", "energy_approx_cssp", "energy_cssp"]


def low_energy_bfs_from_scratch(
    graph: Graph,
    sources: dict,
    threshold: int | None = None,
    *,
    base: int = 4,
    stretch: int = 3,
    construction_metrics: Metrics | None = None,
    query_metrics: Metrics | None = None,
) -> tuple[dict, LayeredCover]:
    """Theorem 3.13/3.14: thresholded BFS with no precomputed structure.

    ``sources`` maps source -> offset.  ``threshold`` defaults to ``n`` (an
    upper bound on any hop distance, so this computes full BFS).
    Construction costs and query (sleeping-model) costs accrue into their
    respective metrics so experiments can report them separately.
    """
    construction_metrics = (
        construction_metrics if construction_metrics is not None else Metrics()
    )
    query_metrics = query_metrics if query_metrics is not None else Metrics()
    tau = threshold if threshold is not None else graph.num_nodes
    unit = graph.reweighted(lambda _w: 1)
    cover = build_layered_cover(
        unit, tau, base=base, stretch=stretch, metrics=construction_metrics
    )
    distances, _schedule = run_low_energy_bfs(
        unit, cover, sources, tau, metrics=query_metrics
    )
    return distances, cover


def energy_approx_cssp(
    graph: Graph,
    sources: dict,
    eps: float,
    bound: int,
    *,
    metrics: Metrics | None = None,
    base: int = 4,
    stretch: int = 3,
) -> dict:
    """Lemma 2.1's cutter with the BFS run in the sleeping model.

    Identical rounding arithmetic to :func:`repro.core.cutter.approx_cssp`;
    the rounded thresholded BFS goes through a freshly built layered cover
    and Theorem 3.8.  This is the Section 3.7 substitution.
    """
    metrics = metrics if metrics is not None else Metrics()
    if not sources:
        return {u: INFINITY for u in graph.nodes()}
    n = graph.num_nodes
    q = cutter_quantum(n, eps, bound)
    rounded = graph.reweighted(lambda w: -(-w // q))
    rounded_sources = {s: -(-offset // q) for s, offset in sources.items()}
    threshold = -(-2 * bound // q) + n + 1
    cover = build_layered_cover(
        rounded, threshold, base=base, stretch=stretch, metrics=metrics
    )
    rounded_dist, _sched = run_low_energy_bfs(
        rounded, cover, rounded_sources, threshold, metrics=metrics
    )
    return {u: (INFINITY if d == INFINITY else q * d) for u, d in rounded_dist.items()}


def energy_cssp(
    graph: Graph,
    sources,
    *,
    eps: float = DEFAULT_EPS,
    base: int = 4,
    stretch: int = 3,
    metrics: Metrics | None = None,
) -> tuple[dict, Metrics]:
    """Theorem 3.15: exact weighted CSSP with low-energy subroutines.

    The Section 2.3 recursion with the cutter's BFS replaced by the
    sleeping-model thresholded BFS.  Positive integer weights (contract
    zero-weight edges with :func:`repro.core.cssp.cssp` first if needed).
    """
    metrics = metrics if metrics is not None else Metrics()
    source_offsets = dict(sources) if isinstance(sources, dict) else {s: 0 for s in sources}
    if graph.num_nodes == 0:
        return {}, metrics
    if not source_offsets:
        return {u: INFINITY for u in graph.nodes()}, metrics
    if any(w == 0 for _, _, w in graph.edges()):
        raise ValueError(
            "energy_cssp needs positive weights; contract zero-weight edges first"
        )

    def cutter(g, srcs, e, b, *, metrics):
        return energy_approx_cssp(
            g, srcs, e, b, metrics=metrics, base=base, stretch=stretch
        )

    bound = distance_upper_bound(graph)
    extra = max(source_offsets.values(), default=0)
    while bound < extra + graph.weighted_diameter_upper_bound():
        bound *= 2
    distances = _thresholded_recursive(
        graph, source_offsets, bound, eps=eps, metrics=metrics, cutter=cutter
    )
    return distances, metrics
