"""Sparse covers and layered sparse covers (Definitions 3.2 and 3.4).

A *sparse d-cover* is a set of clusters such that (i) each cluster has
bounded (weak) diameter ``d * stretch``, (ii) every node is in ``O(log n)``
clusters, and (iii) every node has a cluster containing its whole
``d``-ball.  Theorem 3.11 builds one from a ``(2d+1)``-separated
decomposition: expand every cluster of every color to its ``d``-
neighborhood; separation keeps same-color expansions disjoint, so
membership grows by at most one cluster per color, and the cluster that
expanded from a node's *own* decomposition cluster swallows its entire
``d``-ball (any other same-color cluster is ``> 2d+1`` away).

A *layered sparse D-cover* stacks sparse ``r_j``-covers for geometrically
growing radii with a parent relation: ``parent(C)`` fully contains ``C``
and its ``r_{j+1}/2``-neighborhood (Observation 3.3 / Definition 3.4).

Scaled-constants note (DESIGN.md, decision 1): the paper takes
``B = Theta(log^3 n)`` so that ``B/2`` exceeds the cover stretch.  At
simulation scale we instead escalate radii *adaptively* —
``r_{j+1} = max(B * r_j, 2 * max tree radius at level j)`` — which is
precisely the inequality Observation 3.3 needs, with measured stretch
substituted for the worst-case bound.  Distances are weighted throughout
(Section 3.7); unit weights give the unweighted Section 3.3 case.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..graphs import Graph, INFINITY
from ..sim import Metrics
from .decomposition import Cluster, build_decomposition
from .labeled_bfs import run_labeled_bfs

__all__ = ["CoverCluster", "SparseCover", "LayeredCover", "build_sparse_cover", "build_layered_cover"]


@dataclass
class CoverCluster:
    """One cover cluster: expanded membership + communication tree.

    ``tree_parent`` / ``tree_hops`` / ``tree_wdist`` describe the cluster
    tree over members *and* Steiner relays; hop depths drive the energy
    wake schedules, weighted distances drive containment radii.
    """

    cid: tuple  # (level, color, label) — globally unique
    root: object
    members: set = field(default_factory=set)
    tree_parent: dict = field(default_factory=dict)
    tree_hops: dict = field(default_factory=dict)
    tree_wdist: dict = field(default_factory=dict)

    @property
    def tree_nodes(self) -> set:
        return set(self.tree_parent)

    def tree_depth(self) -> int:
        return max(self.tree_hops.values(), default=0)

    def tree_radius(self) -> int:
        return max(self.tree_wdist.values(), default=0)

    def tree_edges(self) -> list[tuple]:
        return [(u, p) for u, p in self.tree_parent.items() if p is not None]


@dataclass
class SparseCover:
    """A sparse ``d``-cover: clusters, plus each node's designated *home*.

    ``home[v]`` is the cluster guaranteed to contain ``B(v, d)``
    (Definition 3.2, third property).
    """

    d: int
    clusters: list[CoverCluster]
    home: dict

    def memberships(self) -> dict:
        out: dict = {}
        for c in self.clusters:
            for u in c.members:
                out.setdefault(u, []).append(c)
        return out

    def tree_roles(self) -> dict:
        """Node -> list of clusters whose *tree* (member or relay) it is in."""
        out: dict = {}
        for c in self.clusters:
            for u in c.tree_nodes:
                out.setdefault(u, []).append(c)
        return out

    def max_membership(self) -> int:
        return max((len(v) for v in self.memberships().values()), default=0)

    def max_tree_depth(self) -> int:
        return max((c.tree_depth() for c in self.clusters), default=0)

    def max_tree_radius(self) -> int:
        return max((c.tree_radius() for c in self.clusters), default=0)

    def edge_tree_load(self) -> dict:
        load: dict = {}
        for c in self.clusters:
            for u, p in c.tree_edges():
                key = frozenset((u, p))
                load[key] = load.get(key, 0) + 1
        return load

    def has_universal_cluster(self, graph: Graph) -> bool:
        n = graph.num_nodes
        return any(len(c.members) == n for c in self.clusters)


def build_sparse_cover(
    graph: Graph,
    d: int,
    *,
    stretch: int | None = None,
    metrics: Metrics | None = None,
) -> SparseCover:
    """Theorem 3.11: sparse ``d``-cover from a ``(2d+1)``-separated
    decomposition, one labeled depth-``d`` BFS expansion per color.

    ``stretch`` caps the decomposition clusters' growth radius at
    ``stretch * (2d+1)`` — the scaled stand-in for RG20's ``O(log^3 n)``
    stretch factor (defaults to ``2 * ceil(log2 n)``).  Pass ``None``
    explicitly scaled values in experiments to study the tradeoff (E13).
    """
    import math

    metrics = metrics if metrics is not None else Metrics()
    if stretch is None:
        stretch = 2 * max(1, math.ceil(math.log2(max(2, graph.num_nodes))))
    decomposition = build_decomposition(
        graph, 2 * d + 1, metrics=metrics, radius_cap=stretch * (2 * d + 1)
    )

    clusters: dict[tuple, CoverCluster] = {}
    base_of: dict = {}
    for color_index, color in enumerate(decomposition.colors):
        for base in color:
            cid = (d, color_index, base.label)
            cover_cluster = CoverCluster(
                cid=cid,
                root=base.root,
                members=set(base.members),
                tree_parent=dict(base.tree_parent),
                tree_hops=dict(base.tree_hops),
            )
            _recompute_weighted_depths(graph, cover_cluster)
            clusters[cid] = cover_cluster
            for u in base.members:
                base_of[u] = cid

    for color_index, color in enumerate(decomposition.colors):
        sources = {
            u: (d, color_index, base.label) for base in color for u in base.members
        }
        if not sources:
            continue
        bfs = run_labeled_bfs(graph, sources, d, metrics=metrics)
        for u in graph.nodes():
            dist, cid, parent, hops = bfs[u]
            if dist == INFINITY or cid is None:
                continue
            cluster = clusters[cid]
            if u in cluster.members:
                continue
            cluster.members.add(u)
            _graft_path(graph, cluster, u, bfs)

    home = {u: clusters[base_of[u]] for u in graph.nodes()}
    return SparseCover(d=d, clusters=list(clusters.values()), home=home)


def _graft_path(graph: Graph, cluster: CoverCluster, u: object, bfs: dict) -> None:
    """Attach ``u``'s BFS path to the cluster tree, updating depth labels."""
    node = u
    chain = []
    while node not in cluster.tree_parent:
        chain.append(node)
        node = bfs[node][2]
    for tree_node in reversed(chain):
        parent = bfs[tree_node][2]
        cluster.tree_parent[tree_node] = parent
        cluster.tree_hops[tree_node] = cluster.tree_hops[parent] + 1
        cluster.tree_wdist[tree_node] = cluster.tree_wdist.get(parent, 0) + graph.weight(
            tree_node, parent
        )


def _recompute_weighted_depths(graph: Graph, cluster: CoverCluster) -> None:
    """Fill ``tree_wdist`` for a tree given by parent pointers."""
    order = sorted(cluster.tree_parent, key=lambda u: cluster.tree_hops[u])
    for u in order:
        p = cluster.tree_parent[u]
        if p is None:
            cluster.tree_wdist[u] = 0
        else:
            cluster.tree_wdist[u] = cluster.tree_wdist[p] + graph.weight(u, p)


@dataclass
class LayeredCover:
    """Definition 3.4: a stack of sparse covers with the parent relation.

    ``levels[j]`` is the sparse ``radii[j]``-cover; ``parent_of[cid]`` is
    the level-``j+1`` cluster fully containing that cluster plus its
    ``radii[j+1]/2``-neighborhood.
    """

    radii: list[int]
    levels: list[SparseCover]
    parent_of: dict

    @property
    def top_level(self) -> int:
        return len(self.levels) - 1

    def max_edge_load(self) -> int:
        """Max number of cluster trees through any edge, across all levels
        (the megaround width of Section 3.1.3)."""
        load: dict = {}
        for cover in self.levels:
            for key, count in cover.edge_tree_load().items():
                load[key] = load.get(key, 0) + count
        return max(load.values(), default=0)

    def cluster_by_id(self, cid: tuple) -> CoverCluster:
        for cover in self.levels:
            for c in cover.clusters:
                if c.cid == cid:
                    return c
        raise KeyError(cid)


def build_layered_cover(
    graph: Graph,
    target: int,
    *,
    base: int = 4,
    stretch: int | None = None,
    metrics: Metrics | None = None,
) -> LayeredCover:
    """Build a layered sparse cover reaching radius ``>= 2 * target``.

    ``base`` plays the paper's ``B``; radii escalate by
    ``max(base * r_j, 2 * measured tree radius)`` so the containment margin
    of Observation 3.3 holds by construction.  Construction stops early
    when some cluster already spans the whole graph (Section 3.6).
    """
    metrics = metrics if metrics is not None else Metrics()
    if base < 2:
        raise ValueError(f"base must be >= 2, got {base}")
    # Activation-margin floor (Lemma 3.7, weighted form): a level-j cluster
    # must activate while the wavefront is still 2 * W_max away *and* offers
    # are sent up to W_max early, so every upper radius needs
    # r_j / 2 - 2 W_max - 1 >= 1.
    w_max = max(1, graph.max_weight())
    radius_floor = 4 * w_max + 4
    radii = [1]
    levels = [build_sparse_cover(graph, 1, stretch=stretch, metrics=metrics)]
    while True:
        cover = levels[-1]
        if cover.has_universal_cluster(graph) or radii[-1] >= 2 * target:
            break
        next_radius = max(
            base * radii[-1],
            2 * cover.max_tree_radius(),
            radii[-1] + 1,
            radius_floor,
        )
        radii.append(next_radius)
        levels.append(build_sparse_cover(graph, next_radius, stretch=stretch, metrics=metrics))

    # Parent assignment: parent(C) = level-(j+1) home cluster of C's root,
    # which contains B(root, r_{j+1}) >= C plus its r_{j+1}/2-neighborhood.
    # When a level has a universal cluster (the early-stopping case of
    # Section 3.6) it is always a valid parent, so it serves as fallback.
    parent_of: dict = {}
    n = graph.num_nodes
    for j in range(len(levels) - 1):
        upper = levels[j + 1]
        universal = next((c for c in upper.clusters if len(c.members) == n), None)
        for c in levels[j].clusters:
            # With a universal upper cluster, route every chain through it:
            # containment is trivial and relevance (Lemma 3.6) reduces to
            # "does the graph contain a source", which is exactly right for
            # the early-stopped top level of Section 3.6.
            parent = universal if universal is not None else upper.home[c.root]
            parent_of[c.cid] = parent.cid
            if not c.tree_nodes <= parent.members:
                raise RuntimeError(
                    f"containment violated: cluster {c.cid} not inside its "
                    f"parent {parent.cid} — radius escalation insufficient"
                )
    return LayeredCover(radii=radii, levels=levels, parent_of=parent_of)
