"""Low-energy D-thresholded BFS given a layered sparse cover (Theorem 3.8).

Runs in the **sleeping model**: a node is awake only in rounds its schedule
names; messages sent to a sleeping node are *lost*.  Correctness therefore
hinges on Lemma 3.7 — every node must be awake (its level-0 cluster
*active*) strictly before the BFS wavefront can reach it — and this module
realizes the paper's mechanism making that true:

* **Periodic cluster communication** (Section 3.1.1).  Each cluster tree of
  each level runs convergecast + broadcast cycles.  A tree node at hop
  depth ``dep`` in a level-``j`` tree (max depth ``R_j``) wakes exactly four
  times per cycle of length ``2 R_j + 4``: at in-cycle offsets
  ``R_j - dep - 1`` and ``R_j - dep`` (hear children / fold and send up) and
  ``R_j + dep`` and ``R_j + dep + 1`` (hear parent / forward down).  The
  cycle computes "has BFS reached any member?" (and, for level 0, "all
  members?") and floods the answer back down.

* **Activation cascade** (Section 3.3).  Top-level clusters containing a
  source are active from the start; every cluster whose *parent* contains a
  source is active from the start (the initialization rule).  Otherwise a
  cluster activates when its parent's broadcast reports the BFS has reached
  the parent — by containment (Observation 3.3) that is at least
  ``r_{j+1}/2`` distance before the wavefront can touch the child, and the
  BFS is slowed to one step per ``sigma`` megarounds so that the cascade
  always wins the race.  A cluster deactivates two cycles after reporting
  reached (level 0 additionally waits for *all* members).

* **Megarounds** (Section 3.1.3).  A node can sit in many cluster trees;
  one simulated round stands for ``omega`` real rounds (``omega`` = max
  number of cluster trees through any edge, plus one BFS slot), via the
  runner's ``round_width`` / ``edge_capacity``.

* **The BFS ruler.**  One BFS step per ``sigma`` megarounds.  A node
  finalized at weighted distance ``d`` sends the offer ``d + w`` over each
  edge at step ``d + w - 1`` — one step before it can matter — so the
  recipient (awake at every step round once active) catches it.  Weights
  ``> 1`` thus cost the sender one extra wake per distinct send step; this
  stands in for the paper's imaginary subdivision nodes (Section 3.7).

The orchestration function returns exact thresholded distances plus the
metrics; energy is the max awake-rounds, the paper's measure.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..graphs import Graph, INFINITY
from ..sim import Context, Metrics, Mode, NodeAlgorithm, Runner
from .covers import LayeredCover

__all__ = ["LowEnergyBFSNode", "Schedule", "run_low_energy_bfs"]


@dataclass
class ClusterRole:
    """One node's role in one cluster tree (member or relay)."""

    cid: tuple
    level: int
    parent_cid: tuple | None
    tree_parent: object  # parent node in the tree, None at root
    children: list  # children nodes in the tree
    depth: int
    is_member: bool
    # Filled during the run:
    contains_source: bool = False
    active_from: int | None = None  # absolute megaround
    reached_known_at: int | None = None  # when the down-flag turned true
    deact_at: int | None = None  # end of the cycle in which to retire
    deactivated: bool = False


@dataclass
class Schedule:
    """Globally known timing constants (every node knows n, D and the cover)."""

    sigma: int  # megarounds per BFS step
    t0: int  # end of the initialization block
    t_end: int  # final wake: write outputs and halt
    cycle_len: list[int]  # per level
    tree_depth: list[int]  # R_j per level
    omega: int  # megaround width / edge capacity
    threshold: int
    max_weight: int

    def step_round(self, step: int) -> int:
        return self.t0 + step * self.sigma

    def step_of(self, r: int) -> int:
        return (r - self.t0) // self.sigma


def make_schedule(
    graph: Graph, cover: LayeredCover, threshold: int, *, slack: int = 1
) -> Schedule:
    """Derive the wake-schedule constants from the cover geometry.

    ``sigma`` is chosen so the activation cascade provably beats the
    wavefront: for every level ``j < L``, crossing the parent's containment
    margin (``r_{j+1}/2``, minus the weighted-edge send-early allowance)
    takes longer than three parent cycles plus one own cycle.
    """
    w_max = max(1, graph.max_weight())
    depths = [cov.max_tree_depth() for cov in cover.levels]
    cycle_lens = [2 * d + 4 for d in depths]
    sigma = 2
    for j in range(len(cover.levels) - 1):
        margin = max(1, cover.radii[j + 1] // 2 - 2 * w_max - 1)
        need = 3 * cycle_lens[j + 1] + cycle_lens[j] + 2
        sigma = max(sigma, math.ceil(need / margin) + slack)
    t0 = max(cycle_lens) + 2
    t_end = t0 + sigma * (threshold + 2) + 2
    omega = cover.max_edge_load() + 2
    return Schedule(
        sigma=sigma,
        t0=t0,
        t_end=t_end,
        cycle_len=cycle_lens,
        tree_depth=depths,
        omega=omega,
        threshold=threshold,
        max_weight=w_max,
    )


class LowEnergyBFSNode(NodeAlgorithm):
    """One node of the sleeping-model thresholded BFS."""

    def __init__(
        self,
        node: object,
        roles: list[ClusterRole],
        schedule: Schedule,
        source_offset: int | None,
    ) -> None:
        self.node = node
        self.roles = roles
        self.sched = schedule
        self.dist: float = INFINITY
        self._best: float = INFINITY if source_offset is None else source_offset
        self._finalized = False
        self._reached = False
        # Pending offer sends: absolute round -> list of (neighbor, value).
        self._sends: dict[int, list] = {}
        # Per-role init convergecast buffers: cid -> accumulated OR.
        self._init_flag: dict = {}
        self._init_sent: set = set()
        # Per-role cycle buffers: cid -> (any, all) folded from children.
        self._up_any: dict = {}
        self._up_all: dict = {}
        self._up_sent: dict = {}
        self._down_seen: dict = {}
        self._role_by_cid = {role.cid: role for role in roles}

    # ------------------------------------------------------------------
    def on_round(self, ctx: Context, inbox: list[tuple[object, object]]) -> None:
        r = ctx.round
        self._ingest(inbox, r)
        if r >= self.sched.t_end:
            if self._finalized:
                self.dist = self._best
            ctx.halt()
            return
        if r < self.sched.t0:
            self._init_phase(ctx, r)
        else:
            self._main_phase(ctx, r)
        self._flush_sends(ctx, r)
        self._schedule_next(ctx, r)

    # ------------------------------------------------------------------
    def _ingest(self, inbox: list, r: int) -> None:
        for _sender, msg in inbox:
            tag = msg[0]
            if tag == "bfs":
                if msg[1] < self._best:
                    self._best = msg[1]
            elif tag == "iup":
                _, cid, flag = msg
                self._init_flag[cid] = self._init_flag.get(cid, False) or flag
            elif tag == "idown":
                _, cid, flag = msg
                role = self._role_by_cid.get(cid)
                if role is not None:
                    role.contains_source = flag
                    self._init_flag[cid] = flag  # for forwarding
            elif tag == "up":
                _, cid, any_flag, all_flag = msg
                self._up_any[cid] = self._up_any.get(cid, False) or any_flag
                self._up_all[cid] = self._up_all.get(cid, True) and all_flag
            elif tag == "down":
                _, cid, any_flag, all_flag = msg
                self._handle_down(cid, any_flag, all_flag, r)

    def _handle_down(self, cid: tuple, any_flag: bool, all_flag: bool, r: int) -> None:
        self._down_seen[cid] = (any_flag, all_flag, r)
        role = self._role_by_cid.get(cid)
        if role is not None and any_flag and role.reached_known_at is None:
            role.reached_known_at = r
        # Activation cascade: my clusters whose parent just reported reached.
        if any_flag:
            for child in self.roles:
                if child.parent_cid == cid and child.active_from is None:
                    child.active_from = r

    # ------------------------------------------------------------------
    # initialization block: one convergecast/broadcast cycle per cluster,
    # computing "does this cluster contain a source?".
    # ------------------------------------------------------------------
    def _init_phase(self, ctx: Context, r: int) -> None:
        for role in self.roles:
            depth_max = self.sched.tree_depth[role.level]
            up_slot = depth_max - role.depth
            if r == up_slot and role.cid not in self._init_sent:
                self._init_sent.add(role.cid)
                flag = self._init_flag.get(role.cid, False) or (
                    role.is_member and self._best != INFINITY
                )
                if role.tree_parent is None:
                    self._init_flag[role.cid] = flag
                    role.contains_source = flag
                else:
                    ctx.send(role.tree_parent, ("iup", role.cid, flag))
            down_slot = depth_max + role.depth + 1
            if r == down_slot:
                flag = self._init_flag.get(role.cid, False)
                if role.tree_parent is None:
                    role.contains_source = flag
                for child in role.children:
                    ctx.send(child, ("idown", role.cid, flag))

    def _activate_at_init(self) -> None:
        """Apply the initialization activation rule at the first main wake."""
        for role in self.roles:
            if role.active_from is not None:
                continue
            if role.parent_cid is None:
                if role.contains_source:
                    role.active_from = self.sched.t0
            else:
                parent_role = self._role_by_cid.get(role.parent_cid)
                if parent_role is not None and parent_role.contains_source:
                    role.active_from = self.sched.t0

    # ------------------------------------------------------------------
    def _main_phase(self, ctx: Context, r: int) -> None:
        if r == self.sched.t0:
            self._activate_at_init()

        # --- BFS ruler -------------------------------------------------
        rel = r - self.sched.t0
        if rel % self.sched.sigma == 0 and not self._finalized:
            step = rel // self.sched.sigma
            if self._best <= min(step, self.sched.threshold):
                self.dist = self._best
                self._finalized = True
                self._reached = True
                d = int(self._best)
                for v in ctx.neighbors:
                    offer = d + ctx.weight(v)
                    if offer <= self.sched.threshold:
                        send_round = self.sched.step_round(offer - 1)
                        self._sends.setdefault(max(send_round, r), []).append(
                            (v, ("bfs", offer))
                        )

        # --- periodic cluster cycles ------------------------------------
        for role in self.roles:
            if role.active_from is None or role.deactivated or r < role.active_from:
                continue
            if role.deact_at is not None and r >= role.deact_at:
                role.deactivated = True
                continue
            cyc = self.sched.cycle_len[role.level]
            depth_max = self.sched.tree_depth[role.level]
            cycle_index, offset = divmod(rel, cyc)
            cycle_start = self.sched.t0 + cycle_index * cyc
            if offset == depth_max - role.depth:
                key = (role.cid, cycle_index)
                if key not in self._up_sent:
                    self._up_sent[key] = True
                    any_flag = self._up_any.pop(role.cid, False) or (
                        role.is_member and self._reached
                    )
                    all_flag = self._up_all.pop(role.cid, True) and (
                        not role.is_member or self._reached
                    )
                    if role.tree_parent is None:
                        # Root: fold; the result goes out at the down slot.
                        # Freshly activated clusters may still have members
                        # that joined mid-cycle and did not report, so the
                        # all-members flag is not trusted until one warm-up
                        # window has passed (prevents premature level-0
                        # deactivation on vacuous AND-folds).
                        warmup = 2 * cyc + self.sched.cycle_len[
                            min(role.level + 1, len(self.sched.cycle_len) - 1)
                        ]
                        if cycle_start < role.active_from + warmup:
                            all_flag = False
                        self._handle_down(role.cid, any_flag, all_flag, r)
                    else:
                        ctx.send(role.tree_parent, ("up", role.cid, any_flag, all_flag))
            elif offset == depth_max + role.depth + 1:
                seen = self._down_seen.get(role.cid)
                if seen is not None and seen[2] >= cycle_start:
                    any_flag, all_flag, _ = seen
                    for child in role.children:
                        ctx.send(child, ("down", role.cid, any_flag, all_flag))
            # Deactivation: two full cycles after "reached" became known
            # (level 0 additionally requires the all-members flag).  It takes
            # effect at the *end* of the current cycle so the decisive
            # down-broadcast still drains to the whole tree first.
            if role.reached_known_at is not None and role.deact_at is None:
                ready = r >= role.reached_known_at + 2 * cyc
                if role.level == 0:
                    seen = self._down_seen.get(role.cid)
                    ready = ready and seen is not None and seen[1]
                if ready:
                    role.deact_at = cycle_start + cyc

    # ------------------------------------------------------------------
    def _flush_sends(self, ctx: Context, r: int) -> None:
        due = self._sends.pop(r, None)
        if due:
            for v, msg in due:
                ctx.send(v, msg)

    # ------------------------------------------------------------------
    def _bfs_awake(self) -> bool:
        if self._finalized:
            # Finalized nodes only need their pending offer-send rounds,
            # which are scheduled separately.
            return False
        if self._best != INFINITY:
            # Safety net: a pending candidate always keeps the step wakes
            # (the activation invariant should make this redundant).
            return True
        for role in self.roles:
            if (
                role.level == 0
                and role.is_member
                and role.active_from is not None
                and not role.deactivated
            ):
                return True
        return False

    def _schedule_next(self, ctx: Context, r: int) -> None:
        # Hot path (one call per awake node per round): track the earliest
        # future candidate directly instead of materializing them all.
        nxt = self.sched.t_end if self.sched.t_end > r else None
        if r < self.sched.t0:
            for role in self.roles:
                depth_max = self.sched.tree_depth[role.level]
                for slot in (
                    depth_max - role.depth - 1,
                    depth_max - role.depth,
                    depth_max + role.depth,
                    depth_max + role.depth + 1,
                ):
                    if slot > r and (nxt is None or slot < nxt):
                        nxt = slot
            if self.sched.t0 > r and (nxt is None or self.sched.t0 < nxt):
                nxt = self.sched.t0
        else:
            rel = r - self.sched.t0
            for role in self.roles:
                if role.active_from is None or role.deactivated:
                    continue
                if role.deact_at is not None and r + 1 >= role.deact_at:
                    continue
                cyc = self.sched.cycle_len[role.level]
                depth_max = self.sched.tree_depth[role.level]
                base = self.sched.t0 + (rel // cyc) * cyc
                for cycle_base in (base, base + cyc):
                    for slot_offset in (
                        depth_max - role.depth - 1,
                        depth_max - role.depth,
                        depth_max + role.depth,
                        depth_max + role.depth + 1,
                    ):
                        slot = cycle_base + slot_offset
                        if slot > r and (nxt is None or slot < nxt):
                            nxt = slot
            if self._bfs_awake():
                next_step = self.sched.t0 + ((rel // self.sched.sigma) + 1) * self.sched.sigma
                if next_step > r and (nxt is None or next_step < nxt):
                    nxt = next_step
        for send_round in self._sends:
            if send_round > r and (nxt is None or send_round < nxt):
                nxt = send_round
        if nxt is None:
            raise ValueError("no future wake candidate")
        ctx.wake_at(nxt)


def run_low_energy_bfs(
    graph: Graph,
    cover: LayeredCover,
    sources: dict,
    threshold: int,
    *,
    metrics: Metrics | None = None,
    schedule: Schedule | None = None,
) -> tuple[dict, Schedule]:
    """Theorem 3.8: thresholded multi-source BFS in the sleeping model.

    ``sources`` maps source -> nonnegative integer offset (0 for plain
    sources).  Returns ``(distances, schedule)``; distances beyond
    ``threshold`` are ``INFINITY``.  Metrics accrue in *megarounds times
    omega* for rounds/energy (the honest real-round figures).

    ``schedule`` overrides the derived timing constants — intended for
    negative-control experiments (e.g. a ``sigma`` too small for the
    activation cascade demonstrably loses the wavefront), not for
    production use.
    """
    metrics = metrics if metrics is not None else Metrics()
    if schedule is None:
        schedule = make_schedule(graph, cover, threshold)

    roles_by_node: dict[object, list[ClusterRole]] = {u: [] for u in graph.nodes()}
    for level, cov in enumerate(cover.levels):
        for cluster in cov.clusters:
            children_map: dict[object, list] = {u: [] for u in cluster.tree_parent}
            for u, p in cluster.tree_parent.items():
                if p is not None:
                    children_map[p].append(u)
            for u in cluster.tree_parent:
                roles_by_node[u].append(
                    ClusterRole(
                        cid=cluster.cid,
                        level=level,
                        parent_cid=cover.parent_of.get(cluster.cid),
                        tree_parent=cluster.tree_parent[u],
                        children=sorted(children_map[u], key=repr),
                        depth=cluster.tree_hops[u],
                        is_member=u in cluster.members,
                    )
                )

    algorithms = {
        u: LowEnergyBFSNode(u, roles_by_node[u], schedule, sources.get(u))
        for u in graph.nodes()
    }
    runner = Runner(
        graph,
        algorithms,
        Mode.SLEEPING,
        round_width=schedule.omega,
        edge_capacity=schedule.omega,
        metrics=metrics,
    )
    runner.run()
    distances = {u: algorithms[u].dist for u in graph.nodes()}
    return distances, schedule
