"""Low-energy D-thresholded BFS given a layered sparse cover (Theorem 3.8).

Runs in the **sleeping model**: a node is awake only in rounds its schedule
names; messages sent to a sleeping node are *lost*.  Correctness therefore
hinges on Lemma 3.7 — every node must be awake (its level-0 cluster
*active*) strictly before the BFS wavefront can reach it — and this module
realizes the paper's mechanism making that true:

* **Periodic cluster communication** (Section 3.1.1).  Each cluster tree of
  each level runs convergecast + broadcast cycles.  A tree node at hop
  depth ``dep`` in a level-``j`` tree (max depth ``R_j``) wakes exactly four
  times per cycle of length ``2 R_j + 4``: at in-cycle offsets
  ``R_j - dep - 1`` and ``R_j - dep`` (hear children / fold and send up) and
  ``R_j + dep`` and ``R_j + dep + 1`` (hear parent / forward down).  The
  cycle computes "has BFS reached any member?" (and, for level 0, "all
  members?") and floods the answer back down.

* **Activation cascade** (Section 3.3).  Top-level clusters containing a
  source are active from the start; every cluster whose *parent* contains a
  source is active from the start (the initialization rule).  Otherwise a
  cluster activates when its parent's broadcast reports the BFS has reached
  the parent — by containment (Observation 3.3) that is at least
  ``r_{j+1}/2`` distance before the wavefront can touch the child, and the
  BFS is slowed to one step per ``sigma`` megarounds so that the cascade
  always wins the race.  A cluster deactivates two cycles after reporting
  reached (level 0 additionally waits for *all* members).

* **Megarounds** (Section 3.1.3).  A node can sit in many cluster trees;
  one simulated round stands for ``omega`` real rounds (``omega`` = max
  number of cluster trees through any edge, plus one BFS slot), via the
  runner's ``round_width`` / ``edge_capacity``.

* **The BFS ruler.**  One BFS step per ``sigma`` megarounds.  A node
  finalized at weighted distance ``d`` sends the offer ``d + w`` over each
  edge at step ``d + w - 1`` — one step before it can matter — so the
  recipient (awake at every step round once active) catches it.  Weights
  ``> 1`` thus cost the sender one extra wake per distinct send step; this
  stands in for the paper's imaginary subdivision nodes (Section 3.7).

The orchestration function returns exact thresholded distances plus the
metrics; energy is the max awake-rounds, the paper's measure.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from dataclasses import dataclass, field

from ..graphs import Graph, INFINITY
from ..sim import Context, Metrics, Mode, NodeAlgorithm, make_runner
from .covers import LayeredCover

__all__ = ["LowEnergyBFSNode", "Schedule", "run_low_energy_bfs"]


#: ``(cycle_len, tree_depth, node_depth) -> next-wake table``: entry ``off``
#: is the distance from in-cycle offset ``off`` to the node's next cluster
#: slot (strictly ahead, wrapping into the next cycle).  The four slots per
#: cycle are a pure function of the key, so the tables are shared across
#: nodes, clusters and runs — this turns the scheduler's former
#: 8-candidate scan per role per wake into one array lookup.
_WAKE_TABLES: dict[tuple[int, int, int], list[int]] = {}


def _wake_table(cycle_len: int, depth_max: int, depth: int) -> list[int]:
    key = (cycle_len, depth_max, depth)
    table = _WAKE_TABLES.get(key)
    if table is None:
        slots = sorted(
            {
                (depth_max - depth - 1) % cycle_len,
                (depth_max - depth) % cycle_len,
                (depth_max + depth) % cycle_len,
                (depth_max + depth + 1) % cycle_len,
            }
        )
        table = [
            min(((s - off - 1) % cycle_len) + 1 for s in slots)
            for off in range(cycle_len)
        ]
        _WAKE_TABLES[key] = table
    return table


@dataclass
class ClusterRole:
    """One node's role in one cluster tree (member or relay)."""

    cid: tuple
    level: int
    parent_cid: tuple | None
    tree_parent: object  # parent node in the tree, None at root
    children: list  # children nodes in the tree
    depth: int
    is_member: bool
    # Filled during the run:
    contains_source: bool = False
    active_from: int | None = None  # absolute megaround
    reached_known_at: int | None = None  # when the down-flag turned true
    deact_at: int | None = None  # end of the cycle in which to retire
    deactivated: bool = False
    # Filled by LowEnergyBFSNode.__init__ (scheduling hot-path constants):
    up_off: int = field(default=0, repr=False)  # in-cycle convergecast slot
    down_off: int = field(default=0, repr=False)  # in-cycle broadcast slot
    wake_table: list = field(default=None, repr=False)  # shared next-slot table
    # Hot-loop state (kept as plain role attributes rather than cid-keyed
    # dicts on the node — one attribute load instead of a tuple-key hash):
    live: bool = field(default=False, repr=False)  # active and not deactivated
    up_any: bool = field(default=False, repr=False)  # folded child any-flags
    up_all: bool = field(default=True, repr=False)  # folded child all-flags
    last_up_cycle: int = field(default=-1, repr=False)  # dedup per-cycle up-send
    down_seen: tuple | None = field(default=None, repr=False)  # (any, all, round)


@dataclass
class Schedule:
    """Globally known timing constants (every node knows n, D and the cover)."""

    sigma: int  # megarounds per BFS step
    t0: int  # end of the initialization block
    t_end: int  # final wake: write outputs and halt
    cycle_len: list[int]  # per level
    tree_depth: list[int]  # R_j per level
    omega: int  # megaround width / edge capacity
    threshold: int
    max_weight: int

    def step_round(self, step: int) -> int:
        return self.t0 + step * self.sigma

    def step_of(self, r: int) -> int:
        return (r - self.t0) // self.sigma


def make_schedule(
    graph: Graph, cover: LayeredCover, threshold: int, *, slack: int = 1
) -> Schedule:
    """Derive the wake-schedule constants from the cover geometry.

    ``sigma`` is chosen so the activation cascade provably beats the
    wavefront: for every level ``j < L``, crossing the parent's containment
    margin (``r_{j+1}/2``, minus the weighted-edge send-early allowance)
    takes longer than three parent cycles plus one own cycle.
    """
    w_max = max(1, graph.max_weight())
    depths = [cov.max_tree_depth() for cov in cover.levels]
    cycle_lens = [2 * d + 4 for d in depths]
    sigma = 2
    for j in range(len(cover.levels) - 1):
        margin = max(1, cover.radii[j + 1] // 2 - 2 * w_max - 1)
        need = 3 * cycle_lens[j + 1] + cycle_lens[j] + 2
        sigma = max(sigma, math.ceil(need / margin) + slack)
    t0 = max(cycle_lens) + 2
    t_end = t0 + sigma * (threshold + 2) + 2
    omega = cover.max_edge_load() + 2
    return Schedule(
        sigma=sigma,
        t0=t0,
        t_end=t_end,
        cycle_len=cycle_lens,
        tree_depth=depths,
        omega=omega,
        threshold=threshold,
        max_weight=w_max,
    )


class LowEnergyBFSNode(NodeAlgorithm):
    """One node of the sleeping-model thresholded BFS."""

    def __init__(
        self,
        node: object,
        roles: list[ClusterRole],
        schedule: Schedule,
        source_offset: int | None,
    ) -> None:
        self.node = node
        self.roles = roles
        self.sched = schedule
        self.dist: float = INFINITY
        self._best: float = INFINITY if source_offset is None else source_offset
        self._finalized = False
        self._reached = False
        # Pending offer sends: absolute round -> list of (neighbor, value).
        self._sends: dict[int, list] = {}
        # Per-role init convergecast buffers: cid -> accumulated OR.
        self._init_flag: dict = {}
        self._init_sent: set = set()
        self._role_by_cid = {role.cid: role for role in roles}
        # Activation cascade targets: my roles grouped by their parent cid.
        self._roles_by_parent: dict = {}
        for role in roles:
            if role.parent_cid is not None:
                self._roles_by_parent.setdefault(role.parent_cid, []).append(role)
        # Hot-loop precomputation: roles grouped by level (one divmod per
        # level per wake instead of one per role), per-role in-cycle slot
        # offsets, the shared next-wake tables, and the node's one-shot
        # init-block wake list.
        by_level: dict[int, list[ClusterRole]] = {}
        for role in roles:
            by_level.setdefault(role.level, []).append(role)
        # Each entry is ``(cyc, live_roles)`` where ``live_roles`` holds only
        # currently-live roles: activations append, deactivations remove, so
        # the per-wake pass never scans inactive roles and skips whole
        # levels once they retire.
        self._levels: list[tuple[int, list[ClusterRole]]] = []
        self._live_list_of: dict[int, list[ClusterRole]] = {}
        init_slots = {schedule.t0}
        for level in sorted(by_level):
            cyc = schedule.cycle_len[level]
            depth_max = schedule.tree_depth[level]
            for role in by_level[level]:
                role.up_off = depth_max - role.depth
                role.down_off = depth_max + role.depth + 1
                role.wake_table = _wake_table(cyc, depth_max, role.depth)
                init_slots.update(
                    (role.up_off - 1, role.up_off, role.down_off - 1, role.down_off)
                )
            live_roles: list[ClusterRole] = []
            self._levels.append((cyc, live_roles))
            self._live_list_of[level] = live_roles
        self._init_slots = sorted(s for s in init_slots if s >= 0)
        self._l0_member_roles = [
            role for role in roles if role.level == 0 and role.is_member
        ]
        # Roles activated by a cascade during the current _main_phase pass.
        self._newly_live: list[ClusterRole] = []
        # Scalar schedule constants, denormalized out of the per-wake
        # attribute chain.
        self._t0 = schedule.t0
        self._t_end = schedule.t_end

    # ------------------------------------------------------------------
    def on_round(self, ctx: Context, inbox: list[tuple[object, object]]) -> None:
        r = ctx.round
        if inbox.senders:
            self._ingest(inbox, r)
        if r >= self._t_end:
            if self._finalized:
                self.dist = self._best
            ctx.halt()
            return
        if r < self._t0:
            self._init_phase(ctx, r)
            if self._sends:
                self._flush_sends(ctx, r)
            self._schedule_init(ctx, r)
        else:
            nxt = self._main_phase(ctx, r)
            if self._sends:
                self._flush_sends(ctx, r)
            self._schedule_main(ctx, r, nxt)

    # ------------------------------------------------------------------
    def _ingest(self, inbox, r: int) -> None:
        for msg in inbox.payloads:
            tag = msg[0]
            if tag == "bfs":
                if msg[1] < self._best:
                    self._best = msg[1]
            elif tag == "iup":
                _, cid, flag = msg
                self._init_flag[cid] = self._init_flag.get(cid, False) or flag
            elif tag == "idown":
                _, cid, flag = msg
                role = self._role_by_cid.get(cid)
                if role is not None:
                    role.contains_source = flag
                    self._init_flag[cid] = flag  # for forwarding
            elif tag == "up":
                _, cid, any_flag, all_flag = msg
                role = self._role_by_cid.get(cid)
                if role is not None:
                    if any_flag:
                        role.up_any = True
                    if not all_flag:
                        role.up_all = False
            elif tag == "down":
                _, cid, any_flag, all_flag = msg
                self._handle_down(cid, any_flag, all_flag, r)

    def _handle_down(self, cid: tuple, any_flag: bool, all_flag: bool, r: int) -> None:
        role = self._role_by_cid.get(cid)
        if role is not None:
            role.down_seen = (any_flag, all_flag, r)
            if any_flag and role.reached_known_at is None:
                role.reached_known_at = r
        # Activation cascade: my clusters whose parent just reported reached.
        if any_flag:
            for child in self._roles_by_parent.get(cid, ()):
                if child.active_from is None:
                    child.active_from = r
                    child.live = not child.deactivated
                    if child.live:
                        self._live_list_of[child.level].append(child)
                        # A root fold inside _main_phase can activate a role
                        # at an already-visited (lower) level; remember it so
                        # the merged schedule pass still counts its wakes.
                        self._newly_live.append(child)

    # ------------------------------------------------------------------
    # initialization block: one convergecast/broadcast cycle per cluster,
    # computing "does this cluster contain a source?".
    # ------------------------------------------------------------------
    def _init_phase(self, ctx: Context, r: int) -> None:
        for role in self.roles:
            depth_max = self.sched.tree_depth[role.level]
            up_slot = depth_max - role.depth
            if r == up_slot and role.cid not in self._init_sent:
                self._init_sent.add(role.cid)
                flag = self._init_flag.get(role.cid, False) or (
                    role.is_member and self._best != INFINITY
                )
                if role.tree_parent is None:
                    self._init_flag[role.cid] = flag
                    role.contains_source = flag
                else:
                    ctx.send(role.tree_parent, ("iup", role.cid, flag))
            down_slot = depth_max + role.depth + 1
            if r == down_slot:
                flag = self._init_flag.get(role.cid, False)
                if role.tree_parent is None:
                    role.contains_source = flag
                for child in role.children:
                    ctx.send(child, ("idown", role.cid, flag))

    def _activate_at_init(self) -> None:
        """Apply the initialization activation rule at the first main wake."""
        for role in self.roles:
            if role.active_from is not None:
                continue
            if role.parent_cid is None:
                if role.contains_source:
                    role.active_from = self.sched.t0
                    role.live = not role.deactivated
                    if role.live:
                        self._live_list_of[role.level].append(role)
            else:
                parent_role = self._role_by_cid.get(role.parent_cid)
                if parent_role is not None and parent_role.contains_source:
                    role.active_from = self.sched.t0
                    role.live = not role.deactivated
                    if role.live:
                        self._live_list_of[role.level].append(role)

    # ------------------------------------------------------------------
    def _main_phase(self, ctx: Context, r: int) -> int | None:
        """One main-phase wake: cluster-cycle actions plus, merged into the
        same role pass, the earliest next cluster wake (returned; ``None``
        when no live role schedules one)."""
        sched = self.sched
        if r == sched.t0:
            self._activate_at_init()
        nxt: int | None = None

        # --- BFS ruler -------------------------------------------------
        rel = r - sched.t0
        if not self._finalized and rel % sched.sigma == 0:
            step = rel // sched.sigma
            if self._best <= min(step, sched.threshold):
                self.dist = self._best
                self._finalized = True
                self._reached = True
                d = int(self._best)
                threshold = sched.threshold
                sends = self._sends
                for v, w in zip(ctx.neighbors, ctx.edge_weights):
                    offer = d + w
                    if offer <= threshold:
                        send_round = sched.step_round(offer - 1)
                        sends.setdefault(max(send_round, r), []).append(
                            (v, ("bfs", offer))
                        )

        # --- periodic cluster cycles ------------------------------------
        for cyc, live_roles in self._levels:
            if not live_roles:
                continue
            cycle_index, offset = divmod(rel, cyc)
            cycle_start = sched.t0 + cycle_index * cyc
            dead = None
            for role in live_roles:
                deact_at = role.deact_at
                if deact_at is not None and r >= deact_at:
                    role.deactivated = True
                    role.live = False
                    if dead is None:
                        dead = [role]
                    else:
                        dead.append(role)
                    continue
                if offset == role.up_off:
                    if role.last_up_cycle != cycle_index:
                        role.last_up_cycle = cycle_index
                        any_flag = (role.is_member and self._reached) or role.up_any
                        all_flag = role.up_all and (
                            not role.is_member or self._reached
                        )
                        role.up_any = False
                        role.up_all = True
                        if role.tree_parent is None:
                            # Root: fold; the result goes out at the down slot.
                            # Freshly activated clusters may still have members
                            # that joined mid-cycle and did not report, so the
                            # all-members flag is not trusted until one warm-up
                            # window has passed (prevents premature level-0
                            # deactivation on vacuous AND-folds).
                            warmup = 2 * cyc + sched.cycle_len[
                                min(role.level + 1, len(sched.cycle_len) - 1)
                            ]
                            if cycle_start < role.active_from + warmup:
                                all_flag = False
                            self._handle_down(role.cid, any_flag, all_flag, r)
                        else:
                            ctx.send(role.tree_parent, ("up", role.cid, any_flag, all_flag))
                elif offset == role.down_off:
                    seen = role.down_seen
                    if seen is not None and seen[2] >= cycle_start:
                        any_flag, all_flag, _ = seen
                        for child in role.children:
                            ctx.send(child, ("down", role.cid, any_flag, all_flag))
                # Deactivation: two full cycles after "reached" became known
                # (level 0 additionally requires the all-members flag).  It
                # takes effect at the *end* of the current cycle so the
                # decisive down-broadcast still drains to the whole tree
                # first.
                if role.reached_known_at is not None and deact_at is None:
                    ready = r >= role.reached_known_at + 2 * cyc
                    if role.level == 0:
                        seen = role.down_seen
                        ready = ready and seen is not None and seen[1]
                    if ready:
                        deact_at = role.deact_at = cycle_start + cyc
                # Next-wake candidate for this role (the merged former
                # _schedule_next body; re-reads deact_at set just above).
                if deact_at is None or r + 1 < deact_at:
                    slot = r + role.wake_table[offset]
                    if nxt is None or slot < nxt:
                        nxt = slot
            if dead is not None:
                for role in dead:
                    live_roles.remove(role)
        newly = self._newly_live
        if newly:
            # Cascade-activated roles at already-visited levels contribute
            # their wakes too (the old two-pass code saw them post-pass).
            for role in newly:
                if role.live and (role.deact_at is None or r + 1 < role.deact_at):
                    table = role.wake_table
                    slot = r + table[rel % len(table)]
                    if nxt is None or slot < nxt:
                        nxt = slot
            newly.clear()
        return nxt

    # ------------------------------------------------------------------
    def _flush_sends(self, ctx: Context, r: int) -> None:
        due = self._sends.pop(r, None)
        if due:
            for v, msg in due:
                ctx.send(v, msg)

    # ------------------------------------------------------------------
    def _bfs_awake(self) -> bool:
        if self._finalized:
            # Finalized nodes only need their pending offer-send rounds,
            # which are scheduled separately.
            return False
        if self._best != INFINITY:
            # Safety net: a pending candidate always keeps the step wakes
            # (the activation invariant should make this redundant).
            return True
        for role in self._l0_member_roles:
            if role.live:
                return True
        return False

    def _schedule_init(self, ctx: Context, r: int) -> None:
        sched = self.sched
        nxt = sched.t_end if sched.t_end > r else None
        # One-shot init-block slots, precomputed and sorted per node
        # (t0 itself is in the list).
        slots = self._init_slots
        k = bisect_right(slots, r)
        if k < len(slots) and (nxt is None or slots[k] < nxt):
            nxt = slots[k]
        if self._sends:
            for send_round in self._sends:
                if send_round > r and (nxt is None or send_round < nxt):
                    nxt = send_round
        if nxt is None:
            raise ValueError("no future wake candidate")
        ctx.wake_at_unchecked(nxt)  # sole schedule writer; candidates are > r

    def _schedule_main(self, ctx: Context, r: int, nxt: int | None) -> None:
        """Finish the merged schedule: BFS-step, pending sends, t_end."""
        sched = self.sched
        if sched.t_end > r and (nxt is None or sched.t_end < nxt):
            nxt = sched.t_end
        if self._bfs_awake():
            sigma = sched.sigma
            next_step = sched.t0 + ((r - sched.t0) // sigma + 1) * sigma
            if nxt is None or next_step < nxt:
                nxt = next_step
        if self._sends:
            for send_round in self._sends:
                if send_round > r and (nxt is None or send_round < nxt):
                    nxt = send_round
        if nxt is None:
            raise ValueError("no future wake candidate")
        ctx.wake_at_unchecked(nxt)  # sole schedule writer; candidates are > r


def run_low_energy_bfs(
    graph: Graph,
    cover: LayeredCover,
    sources: dict,
    threshold: int,
    *,
    metrics: Metrics | None = None,
    schedule: Schedule | None = None,
) -> tuple[dict, Schedule]:
    """Theorem 3.8: thresholded multi-source BFS in the sleeping model.

    ``sources`` maps source -> nonnegative integer offset (0 for plain
    sources).  Returns ``(distances, schedule)``; distances beyond
    ``threshold`` are ``INFINITY``.  Metrics accrue in *megarounds times
    omega* for rounds/energy (the honest real-round figures).

    ``schedule`` overrides the derived timing constants — intended for
    negative-control experiments (e.g. a ``sigma`` too small for the
    activation cascade demonstrably loses the wavefront), not for
    production use.
    """
    metrics = metrics if metrics is not None else Metrics()
    if schedule is None:
        schedule = make_schedule(graph, cover, threshold)

    roles_by_node: dict[object, list[ClusterRole]] = {u: [] for u in graph.nodes()}
    for level, cov in enumerate(cover.levels):
        for cluster in cov.clusters:
            children_map: dict[object, list] = {u: [] for u in cluster.tree_parent}
            for u, p in cluster.tree_parent.items():
                if p is not None:
                    children_map[p].append(u)
            for u in cluster.tree_parent:
                roles_by_node[u].append(
                    ClusterRole(
                        cid=cluster.cid,
                        level=level,
                        parent_cid=cover.parent_of.get(cluster.cid),
                        tree_parent=cluster.tree_parent[u],
                        children=sorted(children_map[u], key=repr),
                        depth=cluster.tree_hops[u],
                        is_member=u in cluster.members,
                    )
                )

    algorithms = {
        u: LowEnergyBFSNode(u, roles_by_node[u], schedule, sources.get(u))
        for u in graph.nodes()
    }
    runner = make_runner(
        graph,
        algorithms,
        Mode.SLEEPING,
        round_width=schedule.omega,
        edge_capacity=schedule.omega,
        metrics=metrics,
    )
    runner.run()
    distances = {u: algorithms[u].dist for u in graph.nodes()}
    return distances, schedule
