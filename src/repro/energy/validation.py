"""Public validators for the Section 3 structures.

Downstream users who build their own decompositions or covers (or tweak
the construction knobs) need a way to check the structural invariants the
low-energy BFS relies on.  These validators state each definition's
conditions exactly and raise :class:`ValidationError` with a pinpointed
message on the first violation.  The test suite and the benchmarks use
them as the single source of truth for "is this structure legal".

Oracle note: the checks use sequential shortest-path computations, so they
are *auditors*, not distributed algorithms.
"""

from __future__ import annotations

from ..graphs import Graph, INFINITY
from .covers import LayeredCover, SparseCover
from .decomposition import Decomposition

__all__ = [
    "ValidationError",
    "validate_decomposition",
    "validate_sparse_cover",
    "validate_layered_cover",
]


class ValidationError(AssertionError):
    """A structural invariant of Definition 3.2/3.4 or Theorem 3.10 failed."""


def validate_decomposition(graph: Graph, decomposition: Decomposition) -> None:
    """Check the Theorem 3.10 contract: partition, separation, tree shape."""
    seen: dict = {}
    for cluster in decomposition.clusters:
        for u in cluster.members:
            if u in seen:
                raise ValidationError(
                    f"node {u!r} belongs to clusters {seen[u]!r} and {cluster.label!r}"
                )
            seen[u] = cluster.label
    missing = set(graph.nodes()) - set(seen)
    if missing:
        raise ValidationError(f"nodes not covered by any cluster: {sorted(map(repr, missing))[:5]}")

    k = decomposition.separation
    for color_index, color in enumerate(decomposition.colors):
        for i, a in enumerate(color):
            other_members = set()
            for b in color[i + 1:]:
                other_members |= b.members
            if not other_members:
                continue
            for u in a.members:
                dist = graph.dijkstra([u])
                for v in other_members:
                    if dist[v] <= k:
                        raise ValidationError(
                            f"color {color_index}: clusters {a.label!r} and the "
                            f"cluster of {v!r} are {dist[v]} <= {k} apart"
                        )

    for cluster in decomposition.clusters:
        _validate_tree(graph, cluster.tree_parent, cluster.root, cluster.members)


def validate_sparse_cover(graph: Graph, cover: SparseCover) -> None:
    """Check Definition 3.2: ball containment, trees, membership mapping."""
    for v in graph.nodes():
        if v not in cover.home:
            raise ValidationError(f"node {v!r} has no designated home cluster")
        home = cover.home[v]
        dist = graph.dijkstra([v])
        escapees = [u for u, d in dist.items() if d <= cover.d and u not in home.members]
        if escapees:
            raise ValidationError(
                f"B({v!r}, {cover.d}) is not inside home {home.cid}: "
                f"{sorted(map(repr, escapees))[:5]}"
            )
    for cluster in cover.clusters:
        _validate_tree(graph, cluster.tree_parent, cluster.root, cluster.members)
        for u, p in cluster.tree_parent.items():
            if p is None:
                continue
            if cluster.tree_hops[u] != cluster.tree_hops[p] + 1:
                raise ValidationError(f"hop label mismatch at {u!r} in {cluster.cid}")
            expected = cluster.tree_wdist[p] + graph.weight(u, p)
            if cluster.tree_wdist[u] != expected:
                raise ValidationError(f"weighted depth mismatch at {u!r} in {cluster.cid}")


def validate_layered_cover(graph: Graph, layered: LayeredCover) -> None:
    """Check Definition 3.4: per-level covers, radii growth, containment."""
    if len(layered.radii) != len(layered.levels):
        raise ValidationError("radii and levels length mismatch")
    for a, b in zip(layered.radii, layered.radii[1:]):
        if b <= a:
            raise ValidationError(f"radii must strictly increase, got {a} -> {b}")
    for level, cover in enumerate(layered.levels):
        validate_sparse_cover(graph, cover)
        if level == len(layered.levels) - 1:
            continue
        upper = {c.cid: c for c in layered.levels[level + 1].clusters}
        half = layered.radii[level + 1] // 2
        for cluster in cover.clusters:
            if cluster.cid not in layered.parent_of:
                raise ValidationError(f"cluster {cluster.cid} has no parent")
            parent = upper[layered.parent_of[cluster.cid]]
            if not cluster.tree_nodes <= parent.members:
                raise ValidationError(
                    f"tree of {cluster.cid} escapes parent {parent.cid}"
                )
            for u in cluster.members:
                dist = graph.dijkstra([u])
                escapees = [
                    v for v, d in dist.items() if d <= half and v not in parent.members
                ]
                if escapees:
                    raise ValidationError(
                        f"{cluster.cid}: r/2-neighborhood of {u!r} escapes parent"
                    )


def _validate_tree(graph: Graph, tree_parent: dict, root: object, members: set) -> None:
    if root not in tree_parent or tree_parent[root] is not None:
        raise ValidationError(f"root {root!r} missing or not a root")
    for u in members:
        if u not in tree_parent:
            raise ValidationError(f"member {u!r} missing from its cluster tree")
    for u, p in tree_parent.items():
        if p is None:
            continue
        if not graph.has_edge(u, p):
            raise ValidationError(f"tree edge {u!r}-{p!r} is not a graph edge")
    # Acyclicity / rootedness: walk every node to a root with a step bound.
    bound = len(tree_parent) + 1
    for u in tree_parent:
        walker, steps = u, 0
        while tree_parent[walker] is not None:
            walker = tree_parent[walker]
            steps += 1
            if steps > bound:
                raise ValidationError(f"cycle in tree parent pointers at {u!r}")
