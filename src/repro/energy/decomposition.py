"""Deterministic k-separated weak-diameter network decomposition.

Theorem 3.10 ([RG20], as abstracted by the paper): partition the nodes into
``O(log n)`` color classes such that same-color clusters are ``> k`` apart
(k-separation), each cluster has ``O(k log^3 n)`` weak diameter, and each
cluster carries a Steiner tree (terminals = cluster members, relays
allowed) of matching radius, with every edge in ``O(log^4 n)`` trees.

The construction follows the paper's own summary (Section 3.5):

* **colors**, built one at a time over the still-unclustered ("alive")
  nodes; each color clusters at least half of them;
* each color runs **phases**, one per bit of the node identifiers; in phase
  ``i`` a cluster is *blue* if bit ``i`` of its label is 1, *red* otherwise;
* each phase runs **steps**; per step a depth-``k`` labeled BFS grows out
  of every active blue cluster; every alive red node reached *proposes* to
  the nearest one; each proposed-to cluster counts proposals over its
  Steiner tree (extended with the BFS paths) and **accepts** — absorbing
  the proposers, who adopt its full label — iff the count is at least
  ``|C| / (2 log2 n)``; otherwise it **rejects**, killing the proposers
  (they retire to the next color) and stops growing for good.

Why this yields k-separation (the invariant the correctness tests check):
absorption happens only across distance ``<= k``, and — inductively — two
alive nodes within distance ``k`` already agree on every previously
processed bit, so adopting the absorber's label never disturbs settled
bits.  When the last phase ends, any two alive nodes within distance ``k``
agree on *all* bits, i.e. share a cluster.

Accounting: the BFS steps and the per-cluster tree votes are real simulated
protocols; votes of distinct clusters in the same step merge with
``sequential=False`` (they run concurrently in disjoint growth regions,
sharing only Steiner relays — the megaround argument of Section 3.1.3).
This is the synchronous CONGEST construction; energy claims attach to the
sleeping-model *query* algorithms built on top (see DESIGN.md).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..graphs import Graph, INFINITY
from ..sim import Metrics
from ..core.trees import RootedForest, run_convergecast_broadcast
from .labeled_bfs import run_labeled_bfs

__all__ = ["Cluster", "Decomposition", "build_decomposition"]


@dataclass
class Cluster:
    """One cluster: members (terminals) plus its Steiner communication tree.

    ``tree_parent`` maps every tree node (member or relay) to its parent
    (``None`` at the root); ``tree_hops`` is its hop depth, used by the
    energy-model wake schedules.  ``radius`` upper-bounds the weighted
    distance from the root to any member.
    """

    label: object
    root: object
    members: set = field(default_factory=set)
    tree_parent: dict = field(default_factory=dict)
    tree_hops: dict = field(default_factory=dict)
    radius: int = 0
    color: int = -1

    @property
    def tree_nodes(self) -> set:
        return set(self.tree_parent)

    def tree_depth(self) -> int:
        return max(self.tree_hops.values(), default=0)

    def tree_edges(self) -> list[tuple]:
        return [(u, p) for u, p in self.tree_parent.items() if p is not None]

    def as_forest(self) -> RootedForest:
        return RootedForest(dict(self.tree_parent))


@dataclass
class Decomposition:
    """A complete k-separated decomposition: clusters grouped by color."""

    separation: int
    colors: list[list[Cluster]]

    @property
    def clusters(self) -> list[Cluster]:
        return [c for color in self.colors for c in color]

    def cluster_of(self) -> dict:
        """Node -> its cluster (every node is in exactly one)."""
        out: dict = {}
        for cluster in self.clusters:
            for u in cluster.members:
                out[u] = cluster
        return out

    def edge_tree_load(self) -> dict:
        """Undirected edge -> number of Steiner trees using it (E11 metric)."""
        load: dict = {}
        for cluster in self.clusters:
            for u, p in cluster.tree_edges():
                key = frozenset((u, p))
                load[key] = load.get(key, 0) + 1
        return load


def build_decomposition(
    graph: Graph,
    separation: int,
    *,
    metrics: Metrics | None = None,
    max_colors: int | None = None,
    radius_cap: int | None = None,
) -> Decomposition:
    """Build a ``separation``-separated weak-diameter decomposition.

    Weighted graphs use weighted distances throughout (the Section 3.7
    generalization); unit weights give the classic hop version.

    ``radius_cap`` bounds each cluster's growth radius.  In RG20 the
    ``O(k log^3 n)`` weak-diameter bound follows from the step count; at
    simulation scale the proposal threshold almost never rejects, so the
    cap enforces the same bound explicitly: a cluster that reaches it stops
    by *forced rejection* (its pending proposers are killed), which is the
    exact stopping path the separation invariant relies on.
    """
    metrics = metrics if metrics is not None else Metrics()
    n = graph.num_nodes
    if n == 0:
        return Decomposition(separation=separation, colors=[])
    if separation < 1:
        raise ValueError(f"separation must be >= 1, got {separation}")

    # The O(log n)-bit unique identifiers the model assumes: ranks of the
    # node ids under a fixed deterministic order.
    rank = {u: i for i, u in enumerate(sorted(graph.nodes(), key=repr))}
    bits = max(1, math.ceil(math.log2(max(2, n))))
    log2n = max(1.0, math.log2(max(2, n)))
    cap = max_colors if max_colors is not None else 4 * bits + 8

    alive = set(graph.nodes())
    colors: list[list[Cluster]] = []
    while alive:
        if len(colors) >= cap:
            raise RuntimeError(
                f"decomposition did not converge within {cap} colors "
                f"({len(alive)} nodes still unclustered)"
            )
        clusters, killed = _build_one_color(
            graph, alive, rank, bits, separation, log2n, metrics, radius_cap
        )
        for c in clusters:
            c.color = len(colors)
        colors.append(clusters)
        alive = killed
    return Decomposition(separation=separation, colors=colors)


def _build_one_color(
    graph: Graph,
    alive: set,
    rank: dict,
    bits: int,
    k: int,
    log2n: float,
    metrics: Metrics,
    radius_cap: int | None,
) -> tuple[list[Cluster], set]:
    """One color class: returns (clusters over surviving nodes, killed set)."""
    live = set(alive)
    clusters: dict[object, Cluster] = {}
    label_of: dict = {}
    for u in live:
        label = rank[u]
        label_of[u] = label
        clusters[label] = Cluster(
            label=label, root=u, members={u}, tree_parent={u: None}, tree_hops={u: 0}
        )
    killed: set = set()

    for bit in range(bits):
        stopped: set = set()
        while True:
            blue = [
                c
                for label, c in clusters.items()
                if (label >> bit) & 1 and label not in stopped and c.members
            ]
            if not blue:
                break
            sources = {u: c.label for c in blue for u in c.members}
            bfs = run_labeled_bfs(graph, sources, k, metrics=metrics)

            proposals: dict[object, list] = {c.label: [] for c in blue}
            for u in sorted(live, key=repr):
                if u in sources:
                    continue
                dist, label, parent, hops = bfs[u]
                if dist != INFINITY and label is not None and not ((label_of[u] >> bit) & 1):
                    proposals[label].append(u)

            if all(not p for p in proposals.values()):
                break  # no red is near any active blue: phase over

            # All clusters vote concurrently (disjoint growth regions, shared
            # Steiner relays): one step's votes cost max-of-rounds, summed
            # messages — then the step as a whole advances the clock.
            vote_block = Metrics()
            counts: dict = {}
            for cluster in blue:
                proposed = proposals[cluster.label]
                if proposed:
                    counts[cluster.label] = _vote_on_tree(
                        graph, cluster, proposed, bfs, vote_block
                    )
            metrics.merge(vote_block, sequential=True)

            any_progress = False
            for cluster in blue:
                proposed = proposals[cluster.label]
                if not proposed:
                    continue
                threshold = len(cluster.members) / (2.0 * log2n)
                capped = radius_cap is not None and cluster.radius + k > radius_cap
                if counts[cluster.label] >= threshold and not capped:
                    _absorb(cluster, proposed, bfs, label_of, clusters, k)
                    any_progress = True
                else:
                    for u in proposed:
                        clusters[label_of[u]].members.discard(u)
                        live.discard(u)
                        killed.add(u)
                    stopped.add(cluster.label)
            if not any_progress:
                # No cluster grew: every red within range is resolved and no
                # new red can come into range — the phase is over.
                break

    out = [c for c in clusters.values() if c.members]
    return out, killed


def _vote_on_tree(
    graph: Graph,
    cluster: Cluster,
    proposed: list,
    bfs: dict,
    metrics: Metrics,
) -> int:
    """Count proposals at the cluster root over Steiner tree + BFS paths.

    Runs a real convergecast/broadcast protocol on the combined tree; its
    rounds merge concurrently (different clusters' votes overlap in time).
    """
    combined_parent = dict(cluster.tree_parent)
    for u in proposed:
        node = u
        while node not in combined_parent:
            parent = bfs[node][2]
            combined_parent[node] = parent
            if parent is None:
                break
            node = parent
    tree_nodes = set(combined_parent)
    tree_graph = Graph()
    for node in tree_nodes:
        tree_graph.add_node(node)
    for node, parent in combined_parent.items():
        if parent is not None:
            tree_graph.add_edge(node, parent, graph.weight(node, parent))
    forest = RootedForest(combined_parent)
    proposed_set = set(proposed)
    vote_metrics = Metrics()
    result = run_convergecast_broadcast(
        tree_graph,
        forest,
        {u: (1 if u in proposed_set else 0) for u in tree_nodes},
        sum,
        metrics=vote_metrics,
    )
    metrics.merge(vote_metrics, sequential=False)
    return result[cluster.root]


def _absorb(
    cluster: Cluster,
    proposed: list,
    bfs: dict,
    label_of: dict,
    clusters: dict,
    k: int,
) -> None:
    """Accepted proposers adopt the blue label; their BFS paths join the tree."""
    for u in proposed:
        clusters[label_of[u]].members.discard(u)
        label_of[u] = cluster.label
        cluster.members.add(u)
        node = u
        chain = []
        while node not in cluster.tree_parent:
            chain.append(node)
            node = bfs[node][2]
        base_hops = cluster.tree_hops[node]
        for i, tree_node in enumerate(reversed(chain)):
            parent = bfs[tree_node][2]
            cluster.tree_parent[tree_node] = parent
            cluster.tree_hops[tree_node] = base_hops + i + 1
    cluster.radius += k
