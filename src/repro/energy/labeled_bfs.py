"""Labeled multi-source BFS: "which cluster is nearest, and how far?"

The decomposition growth steps (Theorem 3.10) and the cover expansion
(Theorem 3.11) both need a depth-``k`` BFS *from every active cluster at
once*, where each node learns the nearest cluster's label, its distance to
it, and a parent pointer back toward it.  Distances are weighted (the
energy-model CSSP of Section 3.7 grows covers by weighted radii; unit
weights recover the unweighted Section 3.3 case).

Ties break toward the smallest label key, deterministically, so the whole
construction is deterministic as the paper requires.  Each edge carries at
most one offer per direction (congestion ``O(1)`` per step).
"""

from __future__ import annotations

from ..graphs import Graph, INFINITY
from ..sim import Context, Metrics, Mode, NodeAlgorithm, make_runner

__all__ = ["LabeledBFS", "run_labeled_bfs"]


class LabeledBFS(NodeAlgorithm):
    """One node's role in the nearest-labeled-source weighted BFS.

    Offers are ``(distance, label_key, label, hops)``; a node finalizes the
    lexicographically smallest ``(distance, label_key)`` it can realize when
    the round ruler reaches that distance, exactly like
    :class:`repro.core.bfs.WeightedBFS` but carrying the winning label.
    ``self.dist``, ``self.label`` and ``self.parent`` hold the result.
    """

    def __init__(self, node: object, threshold: int, source_label: object = None) -> None:
        self.node = node
        self.threshold = threshold
        self.dist: float = INFINITY
        self.label: object = None
        self.parent: object = None
        self.hops: int = 0
        self._finalized = False
        if source_label is not None:
            self._best: tuple | None = (0, repr(source_label), source_label, None, 0)
        else:
            self._best = None

    def on_round(self, ctx: Context, inbox: list[tuple[object, object]]) -> None:
        if self._finalized:
            ctx.halt()
            return
        if inbox.senders:
            best = self._best
            for sender, (dist, key, label, hops) in zip(inbox.senders, inbox.payloads):
                if best is None or dist < best[0] or (dist == best[0] and key < best[1]):
                    best = (dist, key, label, sender, hops)
            self._best = best
        r = ctx.round
        if self._best is not None and self._best[0] == r and r <= self.threshold:
            dist, key, label, parent, hops = self._best
            self.dist = dist
            self.label = label
            self.parent = parent
            self.hops = hops
            self._finalized = True
            threshold = self.threshold
            payload_hops = hops + 1
            for v, w in zip(ctx.neighbors, ctx.edge_weights):
                offer = dist + w
                if offer <= threshold:
                    ctx.send(v, (offer, key, label, payload_hops))
            ctx.halt()
            return
        if self._best is not None and self._best[0] <= self.threshold:
            ctx.wake_at(self._best[0])
            return
        if r <= self.threshold:
            ctx.wake_at(self.threshold + 1)
            return
        ctx.halt()


def run_labeled_bfs(
    graph: Graph,
    source_labels: dict,
    threshold: int,
    *,
    metrics: Metrics | None = None,
) -> dict:
    """Run the labeled BFS; returns node -> (dist, label, parent, hops).

    ``source_labels`` maps source node -> its cluster label.  Nodes beyond
    ``threshold`` (weighted distance) come back with ``dist == INFINITY``
    and ``label is None``.
    """
    algorithms = {
        u: LabeledBFS(u, threshold, source_label=source_labels.get(u))
        for u in graph.nodes()
    }
    make_runner(graph, algorithms, Mode.CONGEST, metrics=metrics).run()
    return {
        u: (algorithms[u].dist, algorithms[u].label, algorithms[u].parent, algorithms[u].hops)
        for u in graph.nodes()
    }
