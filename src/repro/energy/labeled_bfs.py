"""Labeled multi-source BFS: "which cluster is nearest, and how far?"

The decomposition growth steps (Theorem 3.10) and the cover expansion
(Theorem 3.11) both need a depth-``k`` BFS *from every active cluster at
once*, where each node learns the nearest cluster's label, its distance to
it, and a parent pointer back toward it.  Distances are weighted (the
energy-model CSSP of Section 3.7 grows covers by weighted radii; unit
weights recover the unweighted Section 3.3 case).

Ties break toward the smallest label key, deterministically, so the whole
construction is deterministic as the paper requires.  Each edge carries at
most one offer per direction (congestion ``O(1)`` per step).
"""

from __future__ import annotations

from ..graphs import Graph, INFINITY
from ..sim import Context, Metrics, Mode, NodeAlgorithm, make_runner
from ..sim.kernels import WAKE_HALT, BatchKernel, numpy_or_none

__all__ = ["LabeledBFS", "run_labeled_bfs"]


class _LabeledBFSKernel(BatchKernel):
    """Batch kernel for :class:`LabeledBFS` — the WeightedBFS kernel's twin.

    Full-state kernel over parallel columns, written back in
    :meth:`finalize`.  The one semantic difference from the WeightedBFS
    kernel is the finalization test: the labeled variant requires the round
    ruler to hit the best offer *exactly* (``_best[0] == r``), because it
    only ever runs in strict CONGEST where the equality holds.  Offer
    payloads are tuples, so the numpy fast path only vectorizes the
    offer/threshold selection; tuple construction stays scalar with
    ``tolist()`` keeping the distances plain ints.
    """

    def __init__(self, runner, algorithms) -> None:
        indexed = runner.indexed
        self._algorithms = algorithms
        self._indptr = indexed.indptr
        self._wt = indexed.wt
        self._np = np = numpy_or_none()
        csr = indexed.csr() if np is not None else None
        self._np_wt = csr[2] if csr is not None else None
        self._best = [a._best for a in algorithms]
        self._finalized = [a._finalized for a in algorithms]
        self._dist = [a.dist for a in algorithms]
        self._label = [a.label for a in algorithms]
        self._parent = [a.parent for a in algorithms]
        self._hops = [a.hops for a in algorithms]
        self._threshold = [a.threshold for a in algorithms]

    def on_round_batch(
        self, r, awake, inboxes,
        out_ports, out_payloads, bcast_src, bcast_payloads,
    ):
        best_col = self._best
        finalized = self._finalized
        threshold = self._threshold
        indptr = self._indptr
        wt = self._wt
        np = self._np
        np_wt = self._np_wt
        codes = []
        append = codes.append
        for i in awake:
            if finalized[i]:
                append(WAKE_HALT)
                continue
            box = inboxes[i]
            b = best_col[i]
            if box.senders:
                for sender, (dist, key, label, hops) in zip(box.senders, box.payloads):
                    if b is None or dist < b[0] or (dist == b[0] and key < b[1]):
                        b = (dist, key, label, sender, hops)
                best_col[i] = b
            thr = threshold[i]
            if b is not None and b[0] == r and r <= thr:
                dist, key, label, parent, hops = b
                self._dist[i] = dist
                self._label[i] = label
                self._parent[i] = parent
                self._hops[i] = hops
                finalized[i] = True
                payload_hops = hops + 1
                lo = indptr[i]
                hi = indptr[i + 1]
                if np_wt is not None and hi - lo >= 16:
                    offers = np_wt[lo:hi] + dist
                    sel = np.flatnonzero(offers <= thr)
                    for k, offer in zip(sel.tolist(), offers[sel].tolist()):
                        out_ports.append(lo + k)
                        out_payloads.append((offer, key, label, payload_hops))
                else:
                    for p in range(lo, hi):
                        offer = dist + wt[p]
                        if offer <= thr:
                            out_ports.append(p)
                            out_payloads.append((offer, key, label, payload_hops))
                append(WAKE_HALT)
            elif b is not None and b[0] <= thr:
                append(b[0])  # wake_at(_best): b[0] > r in this branch
            elif r <= thr:
                append(thr + 1)
            else:
                append(WAKE_HALT)
        return codes

    def finalize(self) -> None:
        for i, alg in enumerate(self._algorithms):
            alg.dist = self._dist[i]
            alg.label = self._label[i]
            alg.parent = self._parent[i]
            alg.hops = self._hops[i]
            alg._best = self._best[i]
            alg._finalized = self._finalized[i]


class LabeledBFS(NodeAlgorithm):
    """One node's role in the nearest-labeled-source weighted BFS.

    Offers are ``(distance, label_key, label, hops)``; a node finalizes the
    lexicographically smallest ``(distance, label_key)`` it can realize when
    the round ruler reaches that distance, exactly like
    :class:`repro.core.bfs.WeightedBFS` but carrying the winning label.
    ``self.dist``, ``self.label`` and ``self.parent`` hold the result.
    """

    def __init__(self, node: object, threshold: int, source_label: object = None) -> None:
        self.node = node
        self.threshold = threshold
        self.dist: float = INFINITY
        self.label: object = None
        self.parent: object = None
        self.hops: int = 0
        self._finalized = False
        if source_label is not None:
            self._best: tuple | None = (0, repr(source_label), source_label, None, 0)
        else:
            self._best = None

    def on_round(self, ctx: Context, inbox: list[tuple[object, object]]) -> None:
        if self._finalized:
            ctx.halt()
            return
        if inbox.senders:
            best = self._best
            for sender, (dist, key, label, hops) in zip(inbox.senders, inbox.payloads):
                if best is None or dist < best[0] or (dist == best[0] and key < best[1]):
                    best = (dist, key, label, sender, hops)
            self._best = best
        r = ctx.round
        if self._best is not None and self._best[0] == r and r <= self.threshold:
            dist, key, label, parent, hops = self._best
            self.dist = dist
            self.label = label
            self.parent = parent
            self.hops = hops
            self._finalized = True
            threshold = self.threshold
            payload_hops = hops + 1
            for v, w in zip(ctx.neighbors, ctx.edge_weights):
                offer = dist + w
                if offer <= threshold:
                    ctx.send(v, (offer, key, label, payload_hops))
            ctx.halt()
            return
        if self._best is not None and self._best[0] <= self.threshold:
            ctx.wake_at(self._best[0])
            return
        if r <= self.threshold:
            ctx.wake_at(self.threshold + 1)
            return
        ctx.halt()

    @classmethod
    def batch_kernel(cls, runner) -> _LabeledBFSKernel:
        return _LabeledBFSKernel(runner, runner._algorithms_by_index)


def run_labeled_bfs(
    graph: Graph,
    source_labels: dict,
    threshold: int,
    *,
    metrics: Metrics | None = None,
) -> dict:
    """Run the labeled BFS; returns node -> (dist, label, parent, hops).

    ``source_labels`` maps source node -> its cluster label.  Nodes beyond
    ``threshold`` (weighted distance) come back with ``dist == INFINITY``
    and ``label is None``.
    """
    algorithms = {
        u: LabeledBFS(u, threshold, source_label=source_labels.get(u))
        for u in graph.nodes()
    }
    make_runner(graph, algorithms, Mode.CONGEST, metrics=metrics).run()
    return {
        u: (algorithms[u].dist, algorithms[u].label, algorithms[u].parent, algorithms[u].hops)
        for u in graph.nodes()
    }
