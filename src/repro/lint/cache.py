"""Content-hash incremental cache for ``repro lint --cache``.

Two granularities, matching the two cost centers of a lint run:

* **Per-file visitor findings** are keyed by the blake2 digest of the
  file's bytes plus the active-rule-set key (sorted rule ids + whether
  flow is on + the cache format version).  An unchanged file under an
  unchanged rule set skips the visitor pass entirely; its recorded
  findings are replayed.  Changing ``--select``/``--ignore`` or
  upgrading the rule catalog changes the key and drops the whole cache —
  stale findings can never leak across rule sets.
* **Flow findings** are whole-project: the F rules read the call graph,
  so a change in *any* file a module transitively imports can change
  that module's findings.  Each file therefore records its project-
  internal import dependencies; the cached flow findings are replayed
  only when every linted file *and its transitive import closure* is
  byte-identical.  One edited helper invalidates every dependent — via
  the import graph, not a timestamp guess — and the flow pass re-runs.

The cache file is a single JSON document; a missing, unreadable, or
version-skewed file degrades to an empty cache, never to an error.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from .engine import Finding

__all__ = ["LintCache"]

_VERSION = 1


def _digest(source: str) -> str:
    return hashlib.blake2b(source.encode("utf-8"), digest_size=16).hexdigest()


class LintCache:
    """Load/validate/update one ``--cache`` file across a lint run."""

    def __init__(self, path: "str | Path") -> None:
        self.path = Path(path)
        self.stats = {"hits": 0, "misses": 0, "flow": None}
        self._files: dict[str, dict] = {}
        self._ruleset: str | None = None
        self._current: dict[str, str] = {}  # path -> digest seen this run
        try:
            data = json.loads(self.path.read_text(encoding="utf-8"))
            if data.get("version") == _VERSION:
                self._files = data.get("files", {})
                self._ruleset = data.get("ruleset")
        except (OSError, ValueError):
            pass

    # -- run lifecycle ---------------------------------------------------

    def begin(self, active_rule_ids: list, flow: bool) -> None:
        key = _digest(json.dumps([_VERSION, sorted(active_rule_ids), bool(flow)]))
        if self._ruleset != key:
            self._files = {}  # different rule set: nothing is reusable
        self._ruleset = key

    def save(self) -> None:
        payload = {
            "version": _VERSION,
            "ruleset": self._ruleset,
            "files": self._files,
        }
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self.path.write_text(
                json.dumps(payload, sort_keys=True, indent=1), encoding="utf-8"
            )
        except OSError:
            pass  # an unwritable cache must never fail the lint

    # -- per-file visitor findings --------------------------------------

    def lookup(self, path: str, source: str) -> list | None:
        digest = _digest(source)
        self._current[path] = digest
        entry = self._files.get(path)
        if entry is None or entry.get("digest") != digest:
            self.stats["misses"] += 1
            return None
        self.stats["hits"] += 1
        return [Finding.from_dict(item) for item in entry.get("findings", [])]

    def store(self, path: str, source: str, findings: list) -> None:
        digest = _digest(source)
        self._current[path] = digest
        self._files[path] = {
            "digest": digest,
            "findings": [finding.to_dict() for finding in findings],
        }

    # -- whole-project flow findings ------------------------------------

    def _file_unchanged(self, path: str) -> bool:
        entry = self._files.get(path)
        if entry is None:
            return False
        digest = self._current.get(path)
        if digest is None:  # a dependency outside the linted set
            try:
                digest = _digest(Path(path).read_text(encoding="utf-8"))
            except OSError:
                return False
            self._current[path] = digest
        return entry.get("digest") == digest

    def lookup_flow(self, checked: list) -> list | None:
        """Replay cached flow findings iff every import closure is intact."""
        seen: set[str] = set()
        frontier = list(checked)
        while frontier:
            path = frontier.pop()
            if path in seen:
                continue
            seen.add(path)
            entry = self._files.get(path)
            if entry is None or "flow_findings" not in entry:
                self.stats["flow"] = "recomputed"
                return None
            if not self._file_unchanged(path):
                self.stats["flow"] = "recomputed"
                return None
            frontier.extend(entry.get("deps", ()))
        findings: list = []
        for path in checked:
            for item in self._files[path].get("flow_findings", ()):
                findings.append(Finding.from_dict(item))
        self.stats["flow"] = "reused"
        return findings

    def store_flow(self, model, checked: list, findings: list) -> None:
        by_path: dict[str, list] = {path: [] for path in checked}
        for finding in findings:
            by_path.setdefault(finding.path, []).append(finding.to_dict())
        deps = model.import_dependencies() if model is not None else {}
        for path in checked:
            entry = self._files.setdefault(path, {})
            if "digest" not in entry:
                digest = self._current.get(path)
                if digest is None:
                    continue
                entry["digest"] = digest
            entry["flow_findings"] = by_path.get(path, [])
            entry["deps"] = sorted(deps.get(path, ()))
        self.stats["flow"] = self.stats["flow"] or "recomputed"
