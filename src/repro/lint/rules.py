"""The ``repro lint`` rule set: determinism (D) and protocol-contract (P) rules.

Each rule mirrors one invariant the differential/resume/shard suites pin at
runtime — the linter's job is to catch the violation *before* a sweep runs,
the way PR 4's "drivers ignored their seed" corruption could have been
caught at review time.  Rules are deliberately narrow: a finding should be
a near-certain hazard, not a style opinion, because every finding gates CI.

Determinism rules
-----------------
* ``D101 unseeded-random`` — module-level ``random.*`` / ``numpy.random.*``
  draws (process-global RNG state: results change across worker counts).
* ``D102 global-rng-seed`` — ``random.seed`` / ``numpy.random.seed``
  (reseeding shared state leaks across cells in the same worker).
* ``D103 unsorted-set-iteration`` — iterating a set into ordered output
  (row emission, sends, heap pushes, joins) without ``sorted(...)``.
* ``D104 unsorted-json-digest`` — hashing ``json.dumps`` output without
  ``sort_keys=True`` (digest depends on dict construction order).
* ``D105 wall-clock`` — wall-clock reads outside :mod:`repro.bench`
  (measured rows must never embed timing).
* ``D106 identity-ordering`` — ``sorted/min/max/.sort`` keyed on ``id()``
  or ``hash()`` (both vary per process run).
* ``D107 environ-read`` — ``os.environ`` / ``os.getenv`` outside the
  plugin-discovery path (hidden config axes break cell reproducibility).

Protocol-contract rules
-----------------------
* ``P201 inbox-mutation`` — an ``on_round`` mutating its :class:`Inbox`
  view (runner-owned, reused buffers).
* ``P202 context-retention`` — storing the ``ctx``/``inbox`` argument on
  ``self`` (both are runner-pooled and invalid across rounds).
* ``P203 seed-ignoring-rng`` — a constant-seeded RNG inside a function
  that takes a ``seed`` parameter (the PR 4 corruption class).
* ``P204 unjson-scenario-params`` — ``Scenario(params=...)`` values that
  do not survive a JSON round trip.
* ``P205 undeclared-quality-column`` — driver-returned quality columns
  whose keys are not string literals, collide with the core
  :data:`ROW_FIELDS`, or carry non-JSON-safe literal values.
* ``P206 batch-shared-mutation`` — an ``on_round_batch`` kernel mutating
  its engine-owned columns (``awake``/``inboxes``) or CSR arrays in
  place (shared across nodes — and, via shm, across worker processes).
"""

from __future__ import annotations

import ast

from .engine import FileContext, Rule

__all__ = ["RULES", "ROW_FIELDS_SNAPSHOT"]

#: Frozen copy of :data:`repro.sim.experiments.ROW_FIELDS` so path-mode
#: linting never imports the simulation stack; a test pins the two equal.
ROW_FIELDS_SNAPSHOT = (
    "scenario",
    "family",
    "algorithm",
    "n",
    "m",
    "seed",
    "size",
    "params_digest",
    "latency_model",
    "rounds",
    "messages",
    "lost_messages",
    "congestion",
    "energy",
)


# ----------------------------------------------------------------------
# shared AST helpers
# ----------------------------------------------------------------------
def _import_map(ctx: FileContext) -> dict:
    """``{local name: canonical dotted module/object}`` for the file."""
    cached = getattr(ctx, "_lint_imports", None)
    if cached is not None:
        return cached
    imports: dict[str, str] = {}
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    imports[alias.asname] = alias.name
                else:
                    root = alias.name.split(".")[0]
                    imports[root] = root
        elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
            for alias in node.names:
                imports[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    ctx._lint_imports = imports
    return imports


def _dotted_parts(node: ast.AST) -> list | None:
    """``a.b.c`` expression -> ``["a", "b", "c"]`` (None when not a chain)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return parts
    return None


def _qualified(node: ast.AST, ctx: FileContext) -> str | None:
    """Canonical dotted name of an expression, resolved through imports.

    ``np.random.rand`` under ``import numpy as np`` resolves to
    ``numpy.random.rand``; an unimported root keeps its literal spelling
    (so snippets without imports still lint).  Chains rooted in anything
    but a plain name (``self.rng.random``) return ``None`` — the rule set
    never guesses at attribute types.
    """
    parts = _dotted_parts(node)
    if parts is None:
        return None
    resolved = _import_map(ctx).get(parts[0])
    if resolved is not None:
        parts = resolved.split(".") + parts[1:]
    return ".".join(parts)


def _terminal_name(func: ast.AST) -> str | None:
    """The rightmost name of a call target (``x.y.send`` -> ``send``)."""
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def _contains_names(node: ast.AST) -> bool:
    """Whether any sub-expression references a name (i.e. is not constant)."""
    return any(
        isinstance(child, (ast.Name, ast.Attribute)) for child in ast.walk(node)
    )


def _scopes(tree: ast.Module):
    """Yield ``(scope_node, scope_statements)`` for the module and each def.

    Nested defs are their own scope; statements of a scope exclude the
    bodies of the functions/classes it contains.
    """
    def direct(body):
        out = []
        stack = list(body)
        while stack:
            node = stack.pop()
            out.append(node)
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue  # its body is a separate scope, yielded later
            stack.extend(ast.iter_child_nodes(node))
        return out

    pending = [tree]
    while pending:
        scope = pending.pop()
        body = scope.body
        nodes = direct(body)
        yield scope, nodes
        for node in nodes:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                pending.append(node)


_JSON_SAFE_CONSTS = (str, int, float, bool, type(None))


def _json_safe_literal(node: ast.AST) -> "bool | None":
    """True/False for checkable literals; ``None`` when not a literal."""
    if isinstance(node, ast.Constant):
        return isinstance(node.value, _JSON_SAFE_CONSTS)
    if isinstance(node, ast.List):
        verdicts = [_json_safe_literal(elt) for elt in node.elts]
        return False if False in verdicts else (None if None in verdicts else True)
    if isinstance(node, ast.Dict):
        for key in node.keys:
            if key is None or not (
                isinstance(key, ast.Constant) and isinstance(key.value, str)
            ):
                return False
        verdicts = [_json_safe_literal(value) for value in node.values]
        return False if False in verdicts else (None if None in verdicts else True)
    if isinstance(node, (ast.Tuple, ast.Set)):
        return False  # JSON has neither; tuples come back as lists
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        return _json_safe_literal(node.operand)
    return None


# ----------------------------------------------------------------------
# D-rules: determinism
# ----------------------------------------------------------------------
_GLOBAL_RANDOM_FNS = frozenset({
    "random", "randint", "randrange", "choice", "choices", "shuffle", "sample",
    "uniform", "triangular", "betavariate", "expovariate", "gammavariate",
    "gauss", "lognormvariate", "normalvariate", "vonmisesvariate",
    "paretovariate", "weibullvariate", "getrandbits", "randbytes",
})
_NUMPY_RANDOM_FNS = frozenset({
    "rand", "randn", "randint", "random", "choice", "shuffle", "permutation",
    "uniform", "normal", "standard_normal", "random_sample", "bytes", "sample",
})


class UnseededRandom(Rule):
    id = "D101"
    name = "unseeded-random"
    severity = "error"
    summary = (
        "module-level random.* / numpy.random.* draw: process-global RNG "
        "state makes results depend on worker count and call history"
    )
    example_bad = (
        "import random\n"
        "import numpy as np\n"
        "\n"
        "\n"
        "def drive_demo(graph, metrics):\n"
        "    source = random.choice(sorted(graph.nodes()))  # expect: D101\n"
        "    noise = np.random.rand()  # expect: D101\n"
        "    rng = random.Random()  # expect: D101\n"
        "    return {\"noise\": noise, \"source\": repr(source), \"r\": rng.random()}\n"
    )
    example_good = (
        "import random\n"
        "\n"
        "\n"
        "def drive_demo(graph, seed, metrics):\n"
        "    rng = random.Random(seed)\n"
        "    source = rng.choice(sorted(graph.nodes()))\n"
        "    return {\"source\": repr(source)}\n"
    )

    def visit_Call(self, node: ast.Call) -> None:
        qual = _qualified(node.func, self.ctx)
        if qual is not None:
            head, _, tail = qual.rpartition(".")
            if head == "random" and tail in _GLOBAL_RANDOM_FNS:
                self.report(
                    node,
                    f"{qual}() draws from the process-global RNG; build a "
                    f"random.Random(seed) instead",
                )
            elif qual == "random.Random" and not node.args and not node.keywords:
                self.report(
                    node,
                    "random.Random() with no arguments seeds from OS entropy; "
                    "pass an explicit seed",
                )
            elif qual == "random.SystemRandom":
                self.report(
                    node, "random.SystemRandom is OS entropy and never reproducible"
                )
            elif head.endswith("numpy.random") and tail in _NUMPY_RANDOM_FNS:
                self.report(
                    node,
                    f"{qual}() draws from numpy's process-global RNG; use "
                    f"numpy.random.default_rng(seed)",
                )
            elif (
                qual.endswith("numpy.random.default_rng")
                and not node.args
                and not node.keywords
            ):
                self.report(
                    node,
                    "numpy.random.default_rng() with no seed is OS entropy; "
                    "pass an explicit seed",
                )
        self.generic_visit(node)


class GlobalRngSeed(Rule):
    id = "D102"
    name = "global-rng-seed"
    severity = "error"
    summary = (
        "random.seed / numpy.random.seed mutates process-global state that "
        "leaks across every cell the worker runs afterwards"
    )
    example_bad = (
        "import random\n"
        "\n"
        "\n"
        "def drive_demo(graph, seed, metrics):\n"
        "    random.seed(seed)  # expect: D102\n"
        "    return None\n"
    )
    example_good = (
        "import random\n"
        "\n"
        "\n"
        "def drive_demo(graph, seed, metrics):\n"
        "    rng = random.Random(seed)\n"
        "    del rng\n"
        "    return None\n"
    )

    def visit_Call(self, node: ast.Call) -> None:
        qual = _qualified(node.func, self.ctx)
        if qual == "random.seed" or (
            qual is not None and qual.endswith("numpy.random.seed")
        ):
            self.report(
                node,
                f"{qual}() reseeds the process-global RNG — state leaks into "
                f"every later cell on this worker; use a local "
                f"random.Random(seed)",
            )
        self.generic_visit(node)


_ORDER_SINKS = frozenset({
    "send", "broadcast", "heappush", "heappushpop", "append", "extend",
    "appendleft", "write", "writerow", "writelines", "put", "emit", "update",
})
_ORDER_SAFE_CONSUMERS = frozenset({
    "sorted", "set", "frozenset", "min", "max", "sum", "len", "any", "all",
    "Counter",
})
_MATERIALIZERS = frozenset({"tuple", "list", "iter", "enumerate"})
_SET_METHODS = frozenset({
    "union", "intersection", "difference", "symmetric_difference", "copy",
})


class UnsortedSetIteration(Rule):
    id = "D103"
    name = "unsorted-set-iteration"
    severity = "warning"
    summary = (
        "iterating a set into ordered output (sends, appends, heap pushes, "
        "joins) — set order is hash order, which varies per process for "
        "str/tuple elements; wrap the set in sorted(...)"
    )
    example_bad = (
        "def emit_rows(cells, rows):\n"
        "    pending = {cell for cell in cells if cell.dirty}\n"
        "    for cell in pending:  # expect: D103\n"
        "        rows.append(cell.row())\n"
        "    return list(set(cells))  # expect: D103\n"
    )
    example_good = (
        "def emit_rows(cells, rows):\n"
        "    pending = {cell for cell in cells if cell.dirty}\n"
        "    for cell in sorted(pending, key=repr):\n"
        "        rows.append(cell.row())\n"
        "    total = sum(cell.n for cell in pending)\n"
        "    return sorted(set(cells), key=repr) + [total]\n"
    )

    def run(self):
        for _scope, nodes in _scopes(self.ctx.tree):
            self._check_scope(nodes)
        return self.findings

    # -- scope analysis -------------------------------------------------
    def _check_scope(self, nodes: list) -> None:
        set_names: set[str] = set()
        unset_names: set[str] = set()
        for node in nodes:
            targets = []
            if isinstance(node, ast.Assign):
                targets = [t for t in node.targets if isinstance(t, ast.Name)]
                value = node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets = [node.target] if isinstance(node.target, ast.Name) else []
                value = node.value
            else:
                continue
            for target in targets:
                if self._is_set_expr(value, set_names):
                    set_names.add(target.id)
                else:
                    unset_names.add(target.id)
        set_names -= unset_names  # ambiguous rebinding: give the benefit of doubt

        safe: set[int] = set()
        for node in nodes:
            if isinstance(node, ast.Call):
                name = _terminal_name(node.func)
                if name in _ORDER_SAFE_CONSUMERS:
                    for arg in node.args:
                        safe.add(id(arg))
                        if isinstance(arg, ast.Call) and _terminal_name(
                            arg.func
                        ) in _MATERIALIZERS:
                            safe.update(id(inner) for inner in arg.args)

        for node in nodes:
            if isinstance(node, ast.For):
                if self._is_set_expr(node.iter, set_names) and self._has_sink(
                    node.body
                ):
                    self.report(
                        node,
                        "loop over a set feeds ordered output; iterate "
                        "sorted(...) instead",
                    )
            elif isinstance(node, (ast.ListComp, ast.GeneratorExp)):
                if id(node) in safe:
                    continue
                for comp in node.generators:
                    if self._is_set_expr(comp.iter, set_names):
                        self.report(
                            node,
                            "comprehension over a set materializes hash order; "
                            "iterate sorted(...) instead",
                        )
                        break
            elif isinstance(node, ast.Call) and id(node) not in safe:
                name = _terminal_name(node.func)
                if (
                    name in _MATERIALIZERS or name == "join"
                ) and node.args and self._is_set_expr(node.args[0], set_names):
                    self.report(
                        node,
                        f"{name}(...) over a set materializes hash order; "
                        f"wrap the set in sorted(...)",
                    )

    def _is_set_expr(self, node: ast.AST, set_names: set) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return node.id in set_names
        if isinstance(node, ast.Call):
            name = _terminal_name(node.func)
            if isinstance(node.func, ast.Name) and name in ("set", "frozenset"):
                return True
            if (
                isinstance(node.func, ast.Attribute)
                and name in _SET_METHODS
                and self._is_set_expr(node.func.value, set_names)
            ):
                return True
            return False
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return self._is_set_expr(node.left, set_names) or self._is_set_expr(
                node.right, set_names
            )
        return False

    def _has_sink(self, body: list) -> bool:
        for stmt in body:
            for node in ast.walk(stmt):
                if isinstance(node, (ast.Yield, ast.YieldFrom)):
                    return True
                if isinstance(node, ast.Call) and _terminal_name(
                    node.func
                ) in _ORDER_SINKS:
                    return True
        return False


class UnsortedJsonDigest(Rule):
    id = "D104"
    name = "unsorted-json-digest"
    severity = "error"
    summary = (
        "hashing json.dumps output without sort_keys=True: the digest "
        "depends on dict construction order, so equal payloads can hash "
        "differently"
    )
    example_bad = (
        "import hashlib\n"
        "import json\n"
        "\n"
        "\n"
        "def digest(payload: dict) -> str:\n"
        "    text = json.dumps(payload)  # expect: D104\n"
        "    return hashlib.sha256(text.encode()).hexdigest()\n"
    )
    example_good = (
        "import hashlib\n"
        "import json\n"
        "\n"
        "\n"
        "def digest(payload: dict) -> str:\n"
        "    text = json.dumps(payload, sort_keys=True)\n"
        "    return hashlib.sha256(text.encode()).hexdigest()\n"
    )

    def run(self):
        for _scope, nodes in _scopes(self.ctx.tree):
            self._check_scope(nodes)
        return self.findings

    def _dumps_without_sort(self, node: ast.AST) -> "ast.Call | None":
        if not isinstance(node, ast.Call):
            return None
        if _qualified(node.func, self.ctx) != "json.dumps":
            return None
        for keyword in node.keywords:
            if keyword.arg == "sort_keys":
                value = keyword.value
                if isinstance(value, ast.Constant) and value.value is False:
                    return node
                return None  # sort_keys passed (and not literal False)
        return node

    def _check_scope(self, nodes: list) -> None:
        unsorted_names: dict[str, ast.Call] = {}
        for node in nodes:
            if isinstance(node, ast.Assign):
                dumps = self._dumps_without_sort(node.value)
                if dumps is not None:
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            unsorted_names[target.id] = dumps
        for node in nodes:
            if not isinstance(node, ast.Call):
                continue
            qual = _qualified(node.func, self.ctx)
            if qual is None or not qual.startswith("hashlib."):
                continue
            reported: set[int] = set()
            for arg in node.args:
                for sub in ast.walk(arg):
                    dumps = self._dumps_without_sort(sub)
                    if dumps is None and isinstance(sub, ast.Name):
                        dumps = unsorted_names.get(sub.id)
                    if dumps is not None and id(dumps) not in reported:
                        reported.add(id(dumps))
                        self.report(
                            dumps,
                            "json.dumps feeding a hash needs sort_keys=True — "
                            "the digest must not depend on dict build order",
                        )


_WALL_CLOCK = frozenset({
    "time.time", "time.time_ns", "time.perf_counter", "time.perf_counter_ns",
    "time.monotonic", "time.monotonic_ns", "time.process_time",
    "time.process_time_ns", "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})


class WallClock(Rule):
    id = "D105"
    name = "wall-clock"
    severity = "error"
    summary = (
        "wall-clock read outside repro.bench: measured rows and digests "
        "must be pure functions of (scenario, n, seed)"
    )
    exempt_paths = ("repro/bench.py",)
    example_bad = (
        "import time\n"
        "\n"
        "\n"
        "def probe_timing(graph, metrics):\n"
        "    start = time.perf_counter()  # expect: D105\n"
        "    return {\"elapsed\": time.perf_counter() - start}  # expect: D105\n"
    )
    example_good = (
        "def probe_timing(graph, metrics):\n"
        "    return {\"probe_depth\": metrics.summary()[\"rounds\"]}\n"
    )

    def visit_Call(self, node: ast.Call) -> None:
        qual = _qualified(node.func, self.ctx)
        if qual in _WALL_CLOCK:
            self.report(
                node,
                f"{qual}() is a wall-clock read; timing belongs in "
                f"repro.bench, never in measured results",
            )
        self.generic_visit(node)


class IdentityOrdering(Rule):
    id = "D106"
    name = "identity-ordering"
    severity = "error"
    summary = (
        "ordering by id() or hash(): both vary across process runs, so the "
        "order is unreproducible"
    )
    example_bad = (
        "def stable_nodes(nodes):\n"
        "    return sorted(nodes, key=id)  # expect: D106\n"
    )
    example_good = (
        "def stable_nodes(nodes):\n"
        "    return sorted(nodes, key=repr)\n"
    )

    _ORDERERS = frozenset({"sorted", "min", "max", "sort"})

    def visit_Call(self, node: ast.Call) -> None:
        name = _terminal_name(node.func)
        if name in self._ORDERERS:
            for keyword in node.keywords:
                if keyword.arg != "key":
                    continue
                value = keyword.value
                bad = None
                if isinstance(value, ast.Name) and value.id in ("id", "hash"):
                    bad = value.id
                elif isinstance(value, ast.Lambda):
                    for sub in ast.walk(value.body):
                        if (
                            isinstance(sub, ast.Call)
                            and isinstance(sub.func, ast.Name)
                            and sub.func.id in ("id", "hash")
                        ):
                            bad = sub.func.id
                            break
                if bad is not None:
                    self.report(
                        node,
                        f"{name}(..., key={bad}) orders by per-process "
                        f"{bad}() values; key on a stable attribute "
                        f"(e.g. repr) instead",
                    )
        self.generic_visit(node)


class EnvironRead(Rule):
    id = "D107"
    name = "environ-read"
    severity = "error"
    summary = (
        "os.environ read outside plugin discovery: an environment variable "
        "is a hidden sweep axis no digest records"
    )
    exempt_paths = ("repro/api/algorithms.py",)
    example_bad = (
        "import os\n"
        "\n"
        "\n"
        "def horizon():\n"
        "    return int(os.environ.get(\"REPRO_HORIZON\", \"16\"))  # expect: D107\n"
    )
    example_good = (
        "def horizon(bound: int = 16) -> int:\n"
        "    return bound\n"
    )

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if _qualified(node, self.ctx) == "os.environ":
            self.report(
                node,
                "os.environ read: environment state is a hidden axis that "
                "never reaches rows or digests; take it as a parameter "
                "(plugin discovery in repro.api.algorithms is the one "
                "sanctioned reader)",
            )
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        if _qualified(node.func, self.ctx) == "os.getenv":
            self.report(
                node,
                "os.getenv read: environment state is a hidden axis that "
                "never reaches rows or digests; take it as a parameter",
            )
        self.generic_visit(node)


# ----------------------------------------------------------------------
# P-rules: protocol / spec contracts
# ----------------------------------------------------------------------
def _on_round_params(node) -> "tuple[str | None, str, str] | None":
    """``(self_name, ctx_name, inbox_name)`` of an ``on_round`` definition."""
    if node.name != "on_round":
        return None
    names = [arg.arg for arg in (*node.args.posonlyargs, *node.args.args)]
    self_name = None
    if names and names[0] == "self":
        self_name, names = names[0], names[1:]
    if len(names) < 2:
        return None
    return self_name, names[0], names[1]


_MUTATORS = frozenset({
    "clear", "append", "extend", "insert", "pop", "remove", "sort", "reverse",
    "popleft", "appendleft", "add", "discard", "update", "setdefault",
})


class InboxMutation(Rule):
    id = "P201"
    name = "inbox-mutation"
    severity = "error"
    summary = (
        "on_round mutating its Inbox view: the runner owns and reuses those "
        "buffers; clearing or editing them corrupts delivery"
    )
    example_bad = (
        "class Flood:\n"
        "    def on_round(self, ctx, inbox):\n"
        "        best = min(inbox.payloads, default=None)\n"
        "        inbox.senders.clear()  # expect: P201\n"
        "        if best is not None:\n"
        "            ctx.broadcast(best)\n"
    )
    example_good = (
        "class Flood:\n"
        "    def on_round(self, ctx, inbox):\n"
        "        best = min(inbox.payloads, default=None)\n"
        "        if best is not None:\n"
        "            ctx.broadcast(best)\n"
    )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        params = _on_round_params(node)
        if params is not None:
            _self_name, _ctx_name, inbox_name = params
            self._check_body(node, inbox_name)
        self.generic_visit(node)

    def _is_inbox_rooted(self, node: ast.AST, inbox_name: str) -> bool:
        while isinstance(node, (ast.Attribute, ast.Subscript)):
            node = node.value
        return isinstance(node, ast.Name) and node.id == inbox_name

    def _check_body(self, func, inbox_name: str) -> None:
        for node in ast.walk(func):
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                if node.func.attr in _MUTATORS and self._is_inbox_rooted(
                    node.func.value, inbox_name
                ):
                    self.report(
                        node,
                        f"on_round calls .{node.func.attr}() on its Inbox "
                        f"view; the runner owns those buffers — copy what "
                        f"you need instead",
                    )
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    if isinstance(
                        target, (ast.Attribute, ast.Subscript)
                    ) and self._is_inbox_rooted(target, inbox_name):
                        self.report(
                            node,
                            "on_round assigns into its Inbox view; the "
                            "runner owns those buffers",
                        )
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    if self._is_inbox_rooted(target, inbox_name) and not (
                        isinstance(target, ast.Name)
                    ):
                        self.report(
                            node, "on_round deletes from its Inbox view"
                        )


class ContextRetention(Rule):
    id = "P202"
    name = "context-retention"
    severity = "error"
    summary = (
        "on_round storing ctx/inbox on self: both are runner-pooled views, "
        "invalid outside the current round (and across restarts)"
    )
    example_bad = (
        "class Flood:\n"
        "    def on_round(self, ctx, inbox):\n"
        "        self.ctx = ctx  # expect: P202\n"
        "        self.ctx.broadcast(1)\n"
    )
    example_good = (
        "class Flood:\n"
        "    def on_round(self, ctx, inbox):\n"
        "        self.last_round = ctx.round\n"
        "        ctx.broadcast(1)\n"
    )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        params = _on_round_params(node)
        if params is not None and params[0] is not None:
            self_name, ctx_name, inbox_name = params
            for sub in ast.walk(node):
                if not isinstance(sub, ast.Assign):
                    continue
                value = sub.value
                if not (
                    isinstance(value, ast.Name)
                    and value.id in (ctx_name, inbox_name)
                ):
                    continue
                for target in sub.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == self_name
                    ):
                        self.report(
                            sub,
                            f"on_round stores {value.id!r} on self; Context "
                            f"and Inbox are pooled per-round views — keep "
                            f"values, not the view",
                        )
        self.generic_visit(node)


class SeedIgnoringRng(Rule):
    id = "P203"
    name = "seed-ignoring-rng"
    severity = "error"
    summary = (
        "constant-seeded RNG inside a seed-taking function: every "
        "(scenario, n, seed) cell computes the identical run — the PR 4 "
        "silent-corruption class"
    )
    example_bad = (
        "import random\n"
        "\n"
        "\n"
        "def drive_demo(graph, seed, metrics):\n"
        "    rng = random.Random(42)  # expect: P203\n"
        "    return {\"draw\": rng.random()}\n"
    )
    example_good = (
        "import random\n"
        "\n"
        "\n"
        "def drive_demo(graph, seed, metrics):\n"
        "    rng = random.Random(seed)\n"
        "    return {\"draw\": rng.random()}\n"
    )

    _RNG_FACTORIES = ("random.Random", "numpy.random.default_rng",
                      "numpy.random.RandomState")

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        arg_names = {arg.arg for arg in (*node.args.posonlyargs, *node.args.args,
                                         *node.args.kwonlyargs)}
        if "seed" in arg_names:
            for sub in ast.walk(node):
                if not (isinstance(sub, ast.Call) and sub.args):
                    continue
                qual = _qualified(sub.func, self.ctx)
                if qual not in self._RNG_FACTORIES:
                    continue
                if not any(_contains_names(arg) for arg in sub.args):
                    self.report(
                        sub,
                        f"{qual}({ast.unparse(sub.args[0])}) inside a "
                        f"seed-taking function ignores its seed — every "
                        f"cell of the seed axis repeats the same run",
                    )
        self.generic_visit(node)


class UnjsonScenarioParams(Rule):
    id = "P204"
    name = "unjson-scenario-params"
    severity = "error"
    summary = (
        "Scenario params that do not survive a JSON round trip: specs, "
        "stores, and digests all serialize params as JSON"
    )
    example_bad = (
        "def register(register_scenario, Scenario):\n"
        "    register_scenario(Scenario(\n"
        "        \"demo/er\", \"er\", \"demo\",\n"
        "        params=((\"quanta\", (1, 2)),),  # expect: P204\n"
        "    ))\n"
    )
    example_good = (
        "def register(register_scenario, Scenario):\n"
        "    register_scenario(Scenario(\n"
        "        \"demo/er\", \"er\", \"demo\",\n"
        "        params=((\"quanta\", [1, 2]),),\n"
        "    ))\n"
    )

    def visit_Call(self, node: ast.Call) -> None:
        if _terminal_name(node.func) == "Scenario":
            for keyword in node.keywords:
                if keyword.arg == "params":
                    self._check_params(keyword.value)
        self.generic_visit(node)

    def _check_value(self, key_text: str, value: ast.AST) -> None:
        if isinstance(value, ast.Tuple):
            self.report(
                value,
                f"params[{key_text}] is a tuple literal; JSON round-trips "
                f"it to a list — declare a list",
            )
        elif _json_safe_literal(value) is False:
            self.report(
                value,
                f"params[{key_text}] is not JSON-round-trippable (sets, "
                f"bytes, and non-string keys do not survive the spec/store "
                f"serialization)",
            )

    def _check_params(self, params: ast.AST) -> None:
        if isinstance(params, ast.Dict):
            for key, value in zip(params.keys, params.values):
                if key is None:
                    continue
                if not (isinstance(key, ast.Constant) and isinstance(key.value, str)):
                    self.report(key or params, "params keys must be string literals")
                    continue
                self._check_value(repr(key.value), value)
            return
        if isinstance(params, (ast.Tuple, ast.List)):
            for pair in params.elts:
                if not isinstance(pair, (ast.Tuple, ast.List)) or len(pair.elts) != 2:
                    continue  # not a literal pair; nothing checkable
                key, value = pair.elts
                if not (isinstance(key, ast.Constant) and isinstance(key.value, str)):
                    self.report(key, "params keys must be string literals")
                    continue
                self._check_value(repr(key.value), value)


class UndeclaredQualityColumn(Rule):
    id = "P205"
    name = "undeclared-quality-column"
    severity = "error"
    summary = (
        "driver-returned quality columns must be string-keyed, JSON-safe, "
        "and distinct from the core ROW_FIELDS (collisions raise at run "
        "time, deep inside a sweep)"
    )
    example_bad = (
        "def drive_demo(graph, metrics):\n"
        "    return {\"rounds\": 3}  # expect: P205\n"
    )
    example_good = (
        "def drive_demo(graph, metrics):\n"
        "    return {\"tree_weight\": 3}\n"
    )

    def _is_driver(self, node) -> bool:
        if node.name.startswith("drive_"):
            return True
        names = [arg.arg for arg in (*node.args.posonlyargs, *node.args.args)]
        return names[:3] == ["graph", "seed", "metrics"]

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        if self._is_driver(node):
            self._check_returns(node)
        self.generic_visit(node)

    def _check_returns(self, func) -> None:
        stack = list(func.body)
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue  # nested defs return their own things
            if isinstance(node, ast.Return) and isinstance(node.value, ast.Dict):
                self._check_dict(node.value)
            stack.extend(ast.iter_child_nodes(node))

    def _check_dict(self, mapping: ast.Dict) -> None:
        for key, value in zip(mapping.keys, mapping.values):
            if key is None:
                continue  # **spread: not statically checkable
            if not (isinstance(key, ast.Constant) and isinstance(key.value, str)):
                self.report(
                    key,
                    "quality column keys must be string literals — they "
                    "become JSONL row columns",
                )
                continue
            if key.value in ROW_FIELDS_SNAPSHOT or key.value == "metrics":
                self.report(
                    key,
                    f"quality column {key.value!r} collides with a core "
                    f"ROW_FIELDS column; the sweep engine rejects the row "
                    f"at run time",
                )
            if _json_safe_literal(value) is False:
                self.report(
                    value,
                    f"quality column {key.value!r} carries a non-JSON-safe "
                    f"literal; rows must survive the JSONL store round trip",
                )



def _on_round_batch_params(node) -> "tuple[str, str] | None":
    """``(awake_name, inboxes_name)`` of an ``on_round_batch`` definition."""
    if node.name != "on_round_batch":
        return None
    names = [arg.arg for arg in (*node.args.posonlyargs, *node.args.args)]
    if names and names[0] == "self":
        names = names[1:]
    if len(names) < 3:
        return None
    return names[1], names[2]  # (r, awake, inboxes, out_ports, ...)


#: Terminal attribute names that hold the flat CSR export (possibly
#: shm-mapped); normalized by stripping leading underscores and the
#: ``np_`` vector-view prefix.
_CSR_ATTRS = frozenset({"indptr", "nbr", "wt", "csr"})


class BatchSharedMutation(Rule):
    id = "P206"
    name = "batch-shared-mutation"
    severity = "error"
    summary = (
        "on_round_batch mutating its engine-owned columns (awake/inboxes) "
        "or the shared CSR arrays: the engine reuses the former after the "
        "kernel returns, and the latter are one mapping shared by every "
        "node — and, under the shm plane, every worker process"
    )
    example_bad = (
        "class Kernel:\n"
        "    def on_round_batch(self, r, awake, inboxes, out_ports,\n"
        "                       out_payloads, bcast_src, bcast_payloads):\n"
        "        for i in awake:\n"
        "            inboxes[i].clear()  # expect: P206\n"
        "            self._wt[i] = 0  # expect: P206\n"
        "        return [-2] * len(awake)\n"
    )
    example_good = (
        "class Kernel:\n"
        "    def on_round_batch(self, r, awake, inboxes, out_ports,\n"
        "                       out_payloads, bcast_src, bcast_payloads):\n"
        "        for i in awake:\n"
        "            for _sender, payload in inboxes[i]:\n"
        "                self._dist[i] = min(self._dist[i], payload)\n"
        "        return [-2] * len(awake)\n"
    )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        params = _on_round_batch_params(node)
        if params is not None:
            self._check_body(node, set(params))
        self.generic_visit(node)

    @staticmethod
    def _root_of(node: ast.AST) -> ast.AST:
        while isinstance(node, (ast.Attribute, ast.Subscript)):
            node = node.value
        return node

    def _is_engine_rooted(self, node: ast.AST, owned: set) -> bool:
        root = self._root_of(node)
        return isinstance(root, ast.Name) and root.id in owned

    def _is_csr_rooted(self, node: ast.AST) -> bool:
        """Subscripted/attribute chain through a CSR-named attribute.

        Kernels hold the flat CSR export on ``self`` (``self._indptr``,
        ``self._nbr``, ``self._wt``, ``self._np_wt``, ...); any write
        through such an attribute is a shared-array mutation.  Plain
        per-node state columns (``self._dist``) do not match.
        """
        while isinstance(node, (ast.Attribute, ast.Subscript)):
            if isinstance(node, ast.Attribute):
                name = node.attr.lstrip("_")
                if name.startswith("np_"):
                    name = name[3:]
                if name in _CSR_ATTRS:
                    return True
            node = node.value
        return False

    def _check_body(self, func, owned: set) -> None:
        for node in ast.walk(func):
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                if node.func.attr in _MUTATORS and (
                    self._is_engine_rooted(node.func.value, owned)
                    or self._is_csr_rooted(node.func.value)
                ):
                    self.report(
                        node,
                        f"on_round_batch calls .{node.func.attr}() on a "
                        f"shared column; the engine owns awake/inboxes and "
                        f"the CSR arrays are one mapping for every node — "
                        f"copy what you need instead",
                    )
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    if not isinstance(target, (ast.Attribute, ast.Subscript)):
                        continue
                    if self._is_engine_rooted(target, owned):
                        self.report(
                            node,
                            "on_round_batch assigns into awake/inboxes; "
                            "the engine reuses those columns after the "
                            "kernel returns",
                        )
                    elif self._is_csr_rooted(target):
                        self.report(
                            node,
                            "on_round_batch writes through a CSR column "
                            "(indptr/nbr/wt); the flat arrays are shared "
                            "by every node and may be shm-mapped read-only",
                        )
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    if not isinstance(target, ast.Name) and (
                        self._is_engine_rooted(target, owned)
                        or self._is_csr_rooted(target)
                    ):
                        self.report(
                            node, "on_round_batch deletes from a shared column"
                        )


# The F rules live in repro.lint.frules; importing them here (after every
# helper they borrow is defined) keeps RULES the single registry the
# engine, CLI, and fixture suite consume.
from .frules import FLOW_RULES  # noqa: E402

#: Every registered rule, id-sorted; the engine and CLI consume this.
RULES = sorted(
    (
        UnseededRandom,
        GlobalRngSeed,
        UnsortedSetIteration,
        UnsortedJsonDigest,
        WallClock,
        IdentityOrdering,
        EnvironRead,
        InboxMutation,
        ContextRetention,
        SeedIgnoringRng,
        UnjsonScenarioParams,
        UndeclaredQualityColumn,
        BatchSharedMutation,
        *FLOW_RULES,
    ),
    key=lambda rule: rule.id,
)
