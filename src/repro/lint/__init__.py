"""Static analysis for the reproduction's determinism and protocol contracts.

``repro.lint`` checks, before any sweep runs, the code-level disciplines
that every byte-identity guarantee rests on: seeded draws only, no global
RNG or wall-clock in measured paths, sorted iteration wherever order can
reach a row or digest, JSON-safe scenario params, and the Algorithm/driver
contracts of :mod:`repro.sim`.  The F rules go further: they build a
whole-program model (:mod:`repro.lint.project`), run interprocedural
seed/nondeterminism taint over it (:mod:`repro.lint.flow`), and check
fork-boundary discipline across process spawns (:mod:`repro.lint.frules`).
See :mod:`repro.lint.engine` for the rule engine and pragma syntax,
:mod:`repro.lint.rules` for the per-file rule set, and
``repro lint --list-rules`` for the live catalog.
"""

from .cache import LintCache
from .engine import (
    Finding,
    FlowRule,
    PRAGMA_RULE_ID,
    Rule,
    SYNTAX_RULE_ID,
    lint_file,
    lint_paths,
    lint_source,
    resolve_rule_selection,
)
from .plugins import RESOLVE_RULE_ID, lint_plugins
from .rules import RULES
from .sarif import render_sarif

__all__ = [
    "Finding",
    "Rule",
    "FlowRule",
    "RULES",
    "LintCache",
    "lint_source",
    "lint_file",
    "lint_paths",
    "lint_plugins",
    "render_sarif",
    "resolve_rule_selection",
    "SYNTAX_RULE_ID",
    "PRAGMA_RULE_ID",
    "RESOLVE_RULE_ID",
]
