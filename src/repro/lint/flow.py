"""Summary-based interprocedural taint analysis for the F-rule family.

Design: **call summaries, not inlining**.  Each function is analyzed
once per fixpoint round against the *current* summaries of its callees,
producing its own :class:`Summary` — which parameters it consumes (reach
an RNG/keyed-hash sink, a return, a store, or escape into an unresolved
call), which reach a digest sink, which it mutates in place, and what
taints its return value carries.  Rounds repeat until no summary grows;
because every summary field only ever grows, the iteration is monotone
and terminates even across import/call cycles.  Inlining call bodies
would be exponential in chain depth and would loop forever on recursion;
summaries make the cost linear in (functions x rounds) and make cycles a
non-event.

Within one function the analysis is a flow-insensitive def-use worklist:
the local environment maps names to tag sets (``param:<name>``,
``taint:<kind>``, ``set``, ``csr``, ``hashobj``) and statements are
re-walked until the environment stabilizes.  Tags only accumulate, so a
name rebound after use keeps its old tags — deliberately conservative:
the linter would rather follow a dead binding than miss a live one.

Unresolved calls degrade loudly, never silently: a value passed into a
call the :class:`~repro.lint.project.ProjectModel` cannot resolve is
treated as *consumed* (so F301 never fires on evidence the model does
not have) and the unresolved edge itself stays visible through
``ProjectModel.unresolved_edges`` — surfaced by the CLI as a flow
warning rather than a gating finding.
"""

from __future__ import annotations

import ast

from .project import FunctionInfo, ModuleInfo, ProjectModel, _dotted

__all__ = ["FlowAnalysis", "Summary"]

#: Seeding an RNG (or reseeding the global one) consumes the seed.
RNG_SINKS = frozenset(
    {
        "random.Random",
        "random.SystemRandom",
        "random.seed",
        "numpy.random.default_rng",
        "numpy.random.RandomState",
        "numpy.random.seed",
    }
)

#: Aggregates whose result cannot leak iteration order (or, for sorted,
#: whose result order is canonical).  They still propagate param tags —
#: the *value* remains derived from the argument.
ORDER_SANITIZERS = frozenset(
    {"sorted", "len", "sum", "min", "max", "any", "all", "Counter"}
)

#: Builtins that materialize their argument's iteration order.
MATERIALIZERS = frozenset({"list", "tuple", "iter", "enumerate", "str", "repr", "format"})

#: In-place container/array mutators (superset of the P-rule list: numpy
#: in-place methods join the usual list/dict/set suspects).
MUTATOR_METHODS = frozenset(
    {
        "clear", "append", "extend", "insert", "pop", "remove", "sort",
        "reverse", "popleft", "appendleft", "add", "discard", "update",
        "setdefault", "fill", "put", "partition", "byteswap", "resize",
        "itemset",
    }
)

_APPENDERS = frozenset({"append", "add", "extend", "insert", "appendleft"})

#: Human description of each taint kind, used in F302 messages.
TAINT_TEXT = {
    "set-order": "set-iteration order",
    "wall-clock": "a wall-clock read",
    "environ": "an environment read",
    "process-identity": "a process-identity value (id()/hash())",
}


def _wall_clock() -> frozenset:
    from .rules import _WALL_CLOCK

    return _WALL_CLOCK


def _csr_attr(name: str) -> bool:
    from .rules import _CSR_ATTRS

    trimmed = name.lstrip("_")
    if trimmed.startswith("np_"):
        trimmed = trimmed[3:]
    return trimmed in _CSR_ATTRS


class Summary:
    """What one function does with its parameters and return value."""

    def __init__(self) -> None:
        self.consumes: set[str] = set()  # param reaches any accepting sink
        self.rng: set[str] = set()  # param reaches an RNG/keyed-hash sink
        self.to_digest: set[str] = set()  # param reaches a hashlib sink
        self.to_return: set[str] = set()  # param flows into the return value
        self.mutates: set[str] = set()  # param mutated in place
        self.returns_taint: set[str] = set()  # taint kinds of the return
        self.returns_set: bool = False

    def key(self) -> tuple:
        return (
            frozenset(self.consumes),
            frozenset(self.rng),
            frozenset(self.to_digest),
            frozenset(self.to_return),
            frozenset(self.mutates),
            frozenset(self.returns_taint),
            self.returns_set,
        )


class FlowAnalysis:
    """Fixpoint summaries plus the findings the reporting pass collected."""

    MAX_ROUNDS = 25

    def __init__(self, model: ProjectModel) -> None:
        self.model = model
        self.summaries: dict[str, Summary] = {}
        # Reporting-pass products, keyed for the F-rules to pick up:
        self.digest_flows: list = []  # (FunctionInfo, node, taint_kind, detail)
        self.csr_flows: list = []  # (FunctionInfo, node, detail)
        self.handoffs: dict = {}  # qualname -> {param: [callee names]}
        self._functions = [
            info
            for info in model.functions.values()
            if isinstance(info.node, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        self._run()

    @classmethod
    def of(cls, model: ProjectModel) -> "FlowAnalysis":
        cached = getattr(model, "_flow_analysis", None)
        if cached is None:
            cached = cls(model)
            model._flow_analysis = cached
        return cached

    def _run(self) -> None:
        for info in self._functions:
            self.summaries[info.qualname] = Summary()
        for _ in range(self.MAX_ROUNDS):
            changed = False
            for info in self._functions:
                before = self.summaries[info.qualname].key()
                passer = _FunctionPass(self, info)
                self.summaries[info.qualname] = passer.summary
                if passer.summary.key() != before:
                    changed = True
            if not changed:
                break
        for info in self._functions:  # converged: one collecting pass
            _FunctionPass(self, info, collect=True)

    def summary_for(self, info: FunctionInfo) -> Summary:
        return self.summaries.get(info.qualname, Summary())


class _FunctionPass:
    """One flow-insensitive pass over a single function body."""

    MAX_LOCAL_ROUNDS = 8

    def __init__(
        self, analysis: FlowAnalysis, info: FunctionInfo, collect: bool = False
    ) -> None:
        self.analysis = analysis
        self.model = analysis.model
        self.info = info
        self.module: ModuleInfo = analysis.model.modules[info.module]
        self.collect = collect
        self.summary = Summary()
        self.env: dict[str, set] = {p: {f"param:{p}"} for p in info.params}
        self._types = self.model._instance_types(self.module, info.node.body)
        for _ in range(self.MAX_LOCAL_ROUNDS):
            before = (
                {k: frozenset(v) for k, v in self.env.items()},
                self.summary.key(),
            )
            for stmt in info.node.body:
                self._stmt(stmt)
            after = (
                {k: frozenset(v) for k, v in self.env.items()},
                self.summary.key(),
            )
            if after == before:
                break
        if collect:
            self._emit = True
            for stmt in info.node.body:
                self._stmt(stmt)

    _emit = False

    # -- helpers ---------------------------------------------------------

    def _params_in(self, tags: set) -> set:
        return {t.partition(":")[2] for t in tags if t.startswith("param:")}

    def _taints_in(self, tags: set) -> set:
        return {t.partition(":")[2] for t in tags if t.startswith("taint:")}

    def _consume(self, tags: set) -> None:
        self.summary.consumes.update(self._params_in(tags))

    def _expanded(self, qual: str | None) -> str | None:
        """Resolve the chain's root through the module's import map."""
        if qual is None:
            return None
        head, dot, rest = qual.partition(".")
        target = self.module.imports.get(head)
        if target is None:
            return qual
        return f"{target}.{rest}" if rest else target

    # -- statements ------------------------------------------------------

    def _stmt(self, node: ast.stmt) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # nested defs have their own summaries
        if isinstance(node, ast.Assign):
            tags = self._eval(node.value)
            for target in node.targets:
                self._assign(target, tags)
        elif isinstance(node, ast.AnnAssign):
            if node.value is not None:
                self._assign(node.target, self._eval(node.value))
        elif isinstance(node, ast.AugAssign):
            tags = self._eval(node.value) | self._eval(node.target)
            self._assign(node.target, tags)
        elif isinstance(node, ast.Return):
            if node.value is not None:
                tags = self._eval(node.value)
                params = self._params_in(tags)
                self.summary.to_return.update(params)
                self.summary.consumes.update(params)
                self.summary.returns_taint.update(self._taints_in(tags))
                if "set" in tags:
                    self.summary.returns_set = True
        elif isinstance(node, ast.Expr):
            self._eval(node.value)
        elif isinstance(node, ast.Raise):
            if node.exc is not None:
                self._consume(self._eval(node.exc))
        elif isinstance(node, ast.Assert):
            self._eval(node.test)
        elif isinstance(node, ast.For):
            iter_tags = self._eval(node.iter)
            self._assign(node.target, iter_tags - {"set"})
            if "set" in iter_tags:
                self._mark_order_appends(node.body)
            for stmt in [*node.body, *node.orelse]:
                self._stmt(stmt)
        elif isinstance(node, ast.While):
            self._eval(node.test)
            for stmt in [*node.body, *node.orelse]:
                self._stmt(stmt)
        elif isinstance(node, ast.If):
            self._eval(node.test)
            for stmt in [*node.body, *node.orelse]:
                self._stmt(stmt)
        elif isinstance(node, ast.With):
            for item in node.items:
                tags = self._eval(item.context_expr)
                if item.optional_vars is not None:
                    self._assign(item.optional_vars, tags)
            for stmt in node.body:
                self._stmt(stmt)
        elif isinstance(node, ast.Try):
            for stmt in node.body:
                self._stmt(stmt)
            for handler in node.handlers:
                for stmt in handler.body:
                    self._stmt(stmt)
            for stmt in [*node.orelse, *node.finalbody]:
                self._stmt(stmt)

    def _assign(self, target: ast.AST, tags: set) -> None:
        if isinstance(target, ast.Name):
            self.env.setdefault(target.id, set()).update(tags)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._assign(element, tags)
        elif isinstance(target, ast.Starred):
            self._assign(target.value, tags)
        elif isinstance(target, ast.Subscript):
            self._consume(tags)  # value stored into a container
            root = self._root_name(target.value)
            if root is not None and root in self.info.params:
                self.summary.mutates.add(root)
            key = self._env_key(target.value)
            if key is not None:
                self.env.setdefault(key, set()).update(tags)
            self._eval(target.slice)
        elif isinstance(target, ast.Attribute):
            self._consume(tags)  # value stored onto an object
            if isinstance(target.value, ast.Name):
                key = f"{target.value.id}.{target.attr}"
                self.env.setdefault(key, set()).update(tags)

    def _root_name(self, node: ast.AST) -> str | None:
        while isinstance(node, (ast.Attribute, ast.Subscript)):
            node = node.value
        return node.id if isinstance(node, ast.Name) else None

    def _env_key(self, node: ast.AST) -> str | None:
        """The environment key a value expression writes through.

        ``name`` and ``name.attr`` get precise keys; deeper chains fall
        back to the terminal ``name.attr`` pair so tainting ``a.b.c``
        never smears onto every other attribute of ``a``.
        """
        if isinstance(node, ast.Name):
            return node.id
        if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
            return f"{node.value.id}.{node.attr}"
        return None

    def _mark_order_appends(self, body) -> None:
        """``for x in some_set: out.append(...)`` taints ``out``."""
        wrapper = ast.Module(body=list(body), type_ignores=[])
        for node in ast.walk(wrapper):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _APPENDERS
                and isinstance(node.func.value, ast.Name)
            ):
                self.env.setdefault(node.func.value.id, set()).add(
                    "taint:set-order"
                )

    # -- expressions -----------------------------------------------------

    def _eval(self, node: ast.AST | None) -> set:
        if node is None:
            return set()
        if isinstance(node, ast.Name):
            return set(self.env.get(node.id, ()))
        if isinstance(node, ast.Constant):
            return set()
        if isinstance(node, ast.Attribute):
            qual = _dotted(node)
            if qual is not None:
                expanded = self._expanded(qual)
                if expanded in ("os.environ",):
                    return {"taint:environ"}
                if isinstance(node.value, ast.Name):
                    key = f"{node.value.id}.{node.attr}"
                    if key in self.env:
                        tags = set(self.env[key])
                        if _csr_attr(node.attr):
                            tags.add("csr")
                        return tags
            tags = self._eval(node.value)
            if _csr_attr(node.attr):
                tags = tags | {"csr"}
            return tags
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        if isinstance(node, ast.BinOp):
            return self._eval(node.left) | self._eval(node.right)
        if isinstance(node, ast.UnaryOp):
            return self._eval(node.operand)
        if isinstance(node, ast.BoolOp):
            tags: set = set()
            for value in node.values:
                tags |= self._eval(value)
            return tags
        if isinstance(node, ast.Compare):
            tags = self._eval(node.left)
            for comparator in node.comparators:
                tags |= self._eval(comparator)
            return tags
        if isinstance(node, ast.IfExp):
            self._eval(node.test)
            return self._eval(node.body) | self._eval(node.orelse)
        if isinstance(node, ast.Subscript):
            return self._eval(node.value) | self._eval(node.slice)
        if isinstance(node, ast.Slice):
            return self._eval(node.lower) | self._eval(node.upper) | self._eval(node.step)
        if isinstance(node, (ast.Tuple, ast.List)):
            tags = set()
            for element in node.elts:
                tags |= self._eval(element)
            return tags - {"set"}
        if isinstance(node, (ast.Set,)):
            tags = set()
            for element in node.elts:
                tags |= self._eval(element)
            return (tags - {"taint:set-order"}) | {"set"}
        if isinstance(node, ast.Dict):
            tags = set()
            for key in node.keys:
                if key is not None:
                    tags |= self._eval(key)
            for value in node.values:
                tags |= self._eval(value)
            return tags
        if isinstance(node, ast.JoinedStr):
            tags = set()
            for value in node.values:
                if isinstance(value, ast.FormattedValue):
                    tags |= self._eval(value.value)
            if "set" in tags:
                tags = (tags - {"set"}) | {"taint:set-order"}
            return tags
        if isinstance(node, ast.FormattedValue):
            return self._eval(node.value)
        if isinstance(node, (ast.ListComp, ast.GeneratorExp)):
            return self._eval_comprehension(node, ordered=True)
        if isinstance(node, ast.SetComp):
            return (self._eval_comprehension(node, ordered=False)) | {"set"}
        if isinstance(node, ast.DictComp):
            gen_tags = self._eval_generators(node.generators)
            tags = gen_tags | self._eval(node.key) | self._eval(node.value)
            if "set" in gen_tags:  # dict built in set order leaks it
                tags = tags | {"taint:set-order"}
            return tags - {"set"}
        if isinstance(node, ast.Starred):
            return self._eval(node.value)
        if isinstance(node, (ast.Await, ast.YieldFrom)):
            return self._eval(node.value)
        if isinstance(node, ast.Yield):
            if node.value is not None:
                tags = self._eval(node.value)
                self._consume(tags)  # yielded values escape to the caller
                return tags
            return set()
        if isinstance(node, ast.Lambda):
            return set()
        if isinstance(node, ast.NamedExpr):
            tags = self._eval(node.value)
            self._assign(node.target, tags)
            return tags
        return set()

    def _eval_generators(self, generators) -> set:
        tags: set = set()
        for gen in generators:
            iter_tags = self._eval(gen.iter)
            self._assign(gen.target, iter_tags - {"set"})
            tags |= iter_tags
            for cond in gen.ifs:
                self._eval(cond)
        return tags

    def _eval_comprehension(self, node, ordered: bool) -> set:
        gen_tags = self._eval_generators(node.generators)
        element = node.elt if hasattr(node, "elt") else None
        tags = gen_tags | (self._eval(element) if element is not None else set())
        if ordered and "set" in gen_tags:
            tags = tags | {"taint:set-order"}
        if not ordered:
            tags = tags - {"taint:set-order"}
        return tags - {"set"}

    # -- calls -----------------------------------------------------------

    def _arg_exprs(self, call: ast.Call) -> list:
        out = list(call.args)
        out.extend(keyword.value for keyword in call.keywords)
        return out

    def _eval_call(self, call: ast.Call) -> set:
        arg_tags_list = [self._eval(arg) for arg in self._arg_exprs(call)]
        arg_tags: set = set()
        for tags in arg_tags_list:
            arg_tags |= tags
        qual = _dotted(call.func)
        expanded = self._expanded(qual)
        terminal = qual.rpartition(".")[2] if qual else None
        receiver_tags: set = set()
        if isinstance(call.func, ast.Attribute):
            receiver_tags = self._eval(call.func.value)

        # Category sinks and sources, checked on the expanded name.
        if expanded in RNG_SINKS:
            params = self._params_in(arg_tags)
            self.summary.rng.update(params)
            self.summary.consumes.update(params)
            return {"rngobj"}
        if expanded is not None and expanded.startswith("hashlib."):
            self._digest_sink(call, arg_tags_list)
            return {"hashobj"}
        if "hashobj" in receiver_tags and terminal in ("update", "new"):
            self._digest_sink(call, arg_tags_list)
            return {"hashobj"}
        if expanded in _wall_clock():
            return {"taint:wall-clock"}
        if expanded in ("os.getenv", "os.environ.get"):
            return {"taint:environ"}
        if isinstance(call.func, ast.Name) and call.func.id in ("id", "hash"):
            return {"taint:process-identity"}
        if isinstance(call.func, ast.Name) and call.func.id in ORDER_SANITIZERS:
            params = self._params_in(arg_tags)
            return {f"param:{p}" for p in params}
        if isinstance(call.func, ast.Name) and call.func.id in ("set", "frozenset"):
            params = self._params_in(arg_tags)
            return {f"param:{p}" for p in params} | {"set"}
        if (
            isinstance(call.func, ast.Name)
            and call.func.id in MATERIALIZERS
            and "set" in arg_tags
        ):
            return (arg_tags - {"set"}) | {"taint:set-order"}
        if terminal == "join" and "set" in arg_tags:
            return (arg_tags - {"set"}) | {"taint:set-order"} | receiver_tags

        # Resolved project calls: apply the callee's summary.
        callee, _, _ = self.model.resolve_call(
            self.module, self.info, call, self._types
        )
        if callee is not None:
            return self._apply_summary(call, callee, receiver_tags)

        # Unresolved: arguments escape (consumed), result stays tainted
        # by whatever went in — conservative in both directions.
        self._consume(arg_tags | receiver_tags)
        if terminal in MUTATOR_METHODS and isinstance(call.func, ast.Attribute):
            root = self._root_name(call.func.value)
            if root is not None and root in self.info.params:
                self.summary.mutates.add(root)
            key = self._env_key(call.func.value)
            if key is not None:
                self.env.setdefault(key, set()).update(arg_tags)
        return (arg_tags | receiver_tags) - {"set", "hashobj", "rngobj"}

    def _digest_sink(self, call: ast.Call, arg_tags_list: list) -> None:
        for arg, tags in zip(self._arg_exprs(call), arg_tags_list):
            params = self._params_in(tags)
            self.summary.to_digest.update(params)
            self.summary.rng.update(params)  # keyed hash = keyed draw
            self.summary.consumes.update(params)
            if self._emit:
                for kind in sorted(self._taints_in(tags)):
                    self.analysis.digest_flows.append(
                        (self.info, arg, kind, "feeds a hashlib digest here")
                    )

    def _apply_summary(
        self, call: ast.Call, callee: FunctionInfo, receiver_tags: set
    ) -> set:
        summary = self.analysis.summary_for(callee)
        pairs = self.model.bind_arguments(call, callee)
        bound_exprs = {id(expr) for _, expr in pairs}
        result: set = set()
        handed_off: set = set()
        for param, expr in pairs:
            tags = self._eval(expr)
            params = self._params_in(tags)
            taints = self._taints_in(tags)
            if param in summary.consumes:
                self.summary.consumes.update(params)
            if param in summary.rng:
                self.summary.rng.update(params)
            if param in summary.to_digest:
                self.summary.to_digest.update(params)
                self.summary.consumes.update(params)
                if self._emit and taints:
                    for kind in sorted(taints):
                        self.analysis.digest_flows.append(
                            (
                                self.info,
                                call,
                                kind,
                                f"reaches a digest sink via {callee.name}()",
                            )
                        )
            if param in summary.mutates:
                for own in params:
                    self.summary.mutates.add(own)
                if self._emit and "csr" in tags:
                    self.analysis.csr_flows.append(
                        (
                            self.info,
                            call,
                            f"{ast.unparse(expr)} is mutated inside "
                            f"{callee.name}()",
                        )
                    )
                key = self._env_key(expr)
                if key is not None:
                    self.env.setdefault(key, set()).update(tags)
            if param in summary.to_return:
                result |= tags
            if self._emit and params and param not in summary.consumes:
                for own in params:
                    handed_off.add((own, callee.name))
        # Arguments the binding could not place still escape.
        for expr in self._arg_exprs(call):
            if id(expr) not in bound_exprs:
                self._consume(self._eval(expr))
        if self._emit and handed_off:
            per_function = self.analysis.handoffs.setdefault(
                self.info.qualname, {}
            )
            for own, name in sorted(handed_off):
                per_function.setdefault(own, [])
                if name not in per_function[own]:
                    per_function[own].append(name)
        result |= {f"taint:{k}" for k in summary.returns_taint}
        if summary.returns_set:
            result |= {"set"}
        return result
