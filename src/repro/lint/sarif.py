"""SARIF 2.1.0 output for ``repro lint --output sarif``.

SARIF (Static Analysis Results Interchange Format) is what code-scanning
backends ingest — GitHub's ``upload-sarif`` action turns the document
into inline PR annotations, so a D/P/F finding lands on the exact diff
line instead of in a buried CI log.  The emitter maps:

* the full rule registry (visitor + flow + pseudo rules) to
  ``tool.driver.rules``, so every ``ruleId`` in a result resolves to a
  description even for rules that produced no findings this run;
* ``severity`` to SARIF ``level`` (both ``error`` and ``warning`` fail
  the CLI; the level records rule confidence, matching the text output);
* the 1-based line / 0-based column convention of findings to SARIF's
  1-based ``startLine``/``startColumn`` region.

Pseudo-findings without a real file location (``<registry:...>`` from
``--plugins`` resolution failures) keep their synthetic URI — SARIF
consumers display them as tool-level results rather than dropping them.
"""

from __future__ import annotations

import json

__all__ = ["sarif_document", "render_sarif"]

_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: Pseudo-rule descriptions for findings no registry Rule class emits.
_PSEUDO_RULES = {
    "X000": ("syntax-error", "error", "file does not parse; nothing was checked"),
    "X100": ("invalid-pragma", "error",
             "lint-ok pragma without a reason or naming unknown rule ids"),
    "X200": ("unresolvable-spec", "error",
             "registered algorithm spec whose driver source cannot be resolved"),
}


def _level(severity: str) -> str:
    return severity if severity in ("error", "warning", "note") else "warning"


def _rule_index(rules: list) -> tuple[list, dict]:
    """SARIF rule descriptors + ``{rule_id: index}`` over the registry."""
    descriptors = []
    index: dict[str, int] = {}
    for rule in rules:
        index[rule.id] = len(descriptors)
        descriptors.append({
            "id": rule.id,
            "name": rule.name,
            "shortDescription": {"text": rule.summary},
            "defaultConfiguration": {"level": _level(rule.severity)},
        })
    for rule_id, (name, severity, summary) in sorted(_PSEUDO_RULES.items()):
        index[rule_id] = len(descriptors)
        descriptors.append({
            "id": rule_id,
            "name": name,
            "shortDescription": {"text": summary},
            "defaultConfiguration": {"level": _level(severity)},
        })
    return descriptors, index


def sarif_document(findings: list, rules: list, version: str) -> dict:
    """The SARIF 2.1.0 log for one lint run, as a plain dict."""
    descriptors, index = _rule_index(rules)
    results = []
    for finding in findings:
        message = finding.message
        if finding.rule not in ("X000", "X100", "X200"):
            # Concatenated so this source line is not itself a pragma.
            hint = "# repro: " + f"lint-ok[{finding.rule}] <reason>"
            message += f" (suppress a reviewed instance with {hint!r})"
        result = {
            "ruleId": finding.rule,
            "level": _level(finding.severity),
            "message": {"text": message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {"uri": finding.path},
                    "region": {
                        "startLine": max(finding.line, 1),
                        "startColumn": finding.col + 1,
                    },
                },
            }],
        }
        if finding.rule in index:
            result["ruleIndex"] = index[finding.rule]
        results.append(result)
    return {
        "$schema": _SCHEMA,
        "version": "2.1.0",
        "runs": [{
            "tool": {
                "driver": {
                    "name": "repro-lint",
                    "version": version,
                    "rules": descriptors,
                },
            },
            "results": results,
        }],
    }


def render_sarif(findings: list, rules: list, version: str) -> str:
    return json.dumps(sarif_document(findings, rules, version), indent=2)
