"""The ``repro lint`` rule engine: findings, pragmas, file/tree dispatch.

Everything the reproduction guarantees — byte-identical rows across
engines, worker counts, shards, resume, and fault planes — reduces to a
handful of code-level disciplines: seeded draws only, no global RNG or
wall-clock in measured paths, sorted iteration wherever order can reach a
row or a digest, JSON-safe axis values, and the Algorithm/driver contracts
of :mod:`repro.sim`.  This engine makes those disciplines checkable: each
rule is a small :class:`ast.NodeVisitor` subclass (see
:mod:`repro.lint.rules`) with an id, severity, message, and fixture
examples; the engine parses a file once, runs every selected rule over the
tree, applies inline suppression pragmas, and returns a sorted list of
:class:`Finding` records.

Suppression pragma
------------------
``# repro: lint-ok[D105] <reason>`` suppresses the named rule(s) on its
own line — or, when the pragma stands on a comment-only line, on the line
directly below it.  The reason string is **required**: a pragma without
one is itself a finding (:data:`PRAGMA_RULE_ID`), because an unexplained
suppression is exactly the undocumented reviewer-memory this linter
exists to replace.  Several ids may share one pragma:
``# repro: lint-ok[D103,D107] reason...``.

Meta findings
-------------
Two engine-level pseudo-rules ride alongside the real rule set and are
always active (``--ignore`` can still drop them explicitly):

* ``X000 syntax-error`` — the file does not parse; nothing else can run.
* ``X100 invalid-pragma`` — a lint-ok pragma without a reason, or naming
  a rule id that does not exist.
"""

from __future__ import annotations

import ast
import re
from dataclasses import asdict, dataclass
from pathlib import Path

__all__ = [
    "Finding",
    "FileContext",
    "Rule",
    "FlowRule",
    "lint_source",
    "lint_file",
    "lint_paths",
    "resolve_rule_selection",
    "SYNTAX_RULE_ID",
    "PRAGMA_RULE_ID",
]

#: Pseudo-rule id for files that fail to parse.
SYNTAX_RULE_ID = "X000"
#: Pseudo-rule id for malformed suppression pragmas.
PRAGMA_RULE_ID = "X100"

_PRAGMA = re.compile(
    r"#\s*repro:\s*lint-ok\[(?P<ids>[^\]]*)\]\s*(?P<reason>.*?)\s*$"
)


@dataclass(frozen=True)
class Finding:
    """One lint violation, anchored to a source location.

    ``rule`` is the stable id (``"D101"``), ``name`` its slug
    (``"unseeded-random"``); ``severity`` is ``"error"`` or ``"warning"``
    — both fail the CLI, the tag records how certain the rule is that the
    construct is a bug rather than a hazard.  ``line`` is 1-based,
    ``col`` 0-based (ast conventions).
    """

    rule: str
    name: str
    severity: str
    path: str
    line: int
    col: int
    message: str

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "Finding":
        return cls(**data)

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} [{self.name}] {self.message}"


class FileContext:
    """Everything a rule may consult about the file under analysis."""

    def __init__(self, path: str, source: str, tree: ast.Module) -> None:
        self.path = path
        self.source = source
        self.tree = tree

    def path_matches(self, suffixes: tuple) -> bool:
        """Whether the file path ends with any of the posix suffixes."""
        normalized = Path(self.path).as_posix()
        return any(normalized.endswith(suffix) for suffix in suffixes)


class Rule(ast.NodeVisitor):
    """Base class for one lint rule: a visitor that collects findings.

    Subclasses set the class attributes and implement ``visit_*`` methods
    that call :meth:`report`.  ``exempt_paths`` names posix path suffixes
    the rule does not apply to (e.g. the wall-clock rule exempts
    ``repro/bench.py`` — timing is that module's whole job).
    ``example_bad`` / ``example_good`` are the rule's fixture snippets:
    the bad one marks each expected finding line with a trailing
    ``# expect: <id>`` comment, and the test suite pins both against the
    checked-in fixture files under ``tests/lint_fixtures/``.
    """

    id: str = ""
    name: str = ""
    severity: str = "error"
    summary: str = ""
    exempt_paths: tuple = ()
    example_bad: str = ""
    example_good: str = ""

    def __init__(self, ctx: FileContext) -> None:
        self.ctx = ctx
        self.findings: list[Finding] = []

    def report(self, node: ast.AST, message: str) -> None:
        self.findings.append(
            Finding(
                rule=self.id,
                name=self.name,
                severity=self.severity,
                path=self.ctx.path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0),
                message=message,
            )
        )

    def run(self) -> list[Finding]:
        self.visit(self.ctx.tree)
        return self.findings


class FlowRule:
    """Base class for project-level rules (the F family).

    Unlike :class:`Rule`, a flow rule is not a per-file visitor: it runs
    once per lint invocation against a
    :class:`~repro.lint.project.ProjectModel` built from every file of
    the run, so its findings may depend on code in *other* files.  It
    shares the registry surface (``id``/``name``/``severity``/fixture
    examples, ``--select``/``--ignore``, pragmas) with visitor rules —
    only the execution model differs.
    """

    id: str = ""
    name: str = ""
    severity: str = "error"
    summary: str = ""
    exempt_paths: tuple = ()
    example_bad: str = ""
    example_good: str = ""

    @classmethod
    def check(cls, model) -> list[Finding]:  # pragma: no cover - interface
        raise NotImplementedError


def _registered_rules() -> list[type]:
    from .rules import RULES

    return RULES


def resolve_rule_selection(
    select: tuple | None, ignore: tuple | None
) -> list[type]:
    """The active rule classes for a ``--select`` / ``--ignore`` pair.

    Entries are exact rule ids (``"D101"``) or family prefixes (``"D"``,
    ``"P"``).  Unknown entries raise :class:`ValueError` — the CLI turns
    that into a usage error — so a typo can never silently lint nothing.
    """
    rules = _registered_rules()
    known = {rule.id for rule in rules}
    families = {rule.id[0] for rule in rules} | {"X"}

    def expand(entries: tuple, what: str) -> set:
        chosen: set[str] = set()
        for entry in entries:
            token = entry.strip().upper()
            if token in known or token in (SYNTAX_RULE_ID, PRAGMA_RULE_ID):
                chosen.add(token)
            elif token in families:
                chosen.update(rule.id for rule in rules if rule.id.startswith(token))
                chosen.update(
                    meta for meta in (SYNTAX_RULE_ID, PRAGMA_RULE_ID)
                    if meta.startswith(token)
                )
            else:
                raise ValueError(
                    f"{what}: unknown rule {entry!r} "
                    f"(rules: {sorted(known)}; families: {sorted(families)})"
                )
        return chosen

    active = list(rules)
    if select:
        selected = expand(tuple(select), "--select")
        active = [rule for rule in active if rule.id in selected]
    if ignore:
        ignored = expand(tuple(ignore), "--ignore")
        active = [rule for rule in active if rule.id not in ignored]
    return active


def _meta_active(meta_id: str, select: tuple | None, ignore: tuple | None) -> bool:
    """Whether a pseudo-rule reports under this selection.

    Meta rules are on by default even under ``--select`` (a syntax error
    always matters) and are dropped only by naming them (or their family)
    in ``--ignore``.
    """
    if not ignore:
        return True
    tokens = {entry.strip().upper() for entry in ignore}
    return meta_id not in tokens and meta_id[0] not in tokens


def _collect_pragmas(
    source: str, path: str, known_ids: set
) -> tuple[dict, list[Finding]]:
    """Parse lint-ok pragmas; return ``{line: ids}`` plus meta findings.

    A pragma on a code line suppresses that line; a pragma on a
    comment-only line suppresses the line below it.  A missing reason or
    an unknown rule id makes the pragma invalid: it suppresses nothing and
    is reported as :data:`PRAGMA_RULE_ID`.
    """
    suppressed: dict[int, set] = {}
    problems: list[Finding] = []
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _PRAGMA.search(text)
        if match is None:
            continue
        ids = tuple(
            token.strip().upper() for token in match.group("ids").split(",")
            if token.strip()
        )
        reason = match.group("reason").strip()
        unknown = [rule_id for rule_id in ids if rule_id not in known_ids]
        bad = None
        if not ids:
            bad = "pragma names no rule ids (use lint-ok[RULE] reason)"
        elif unknown:
            bad = f"pragma names unknown rule id(s) {unknown}"
        elif not reason:
            bad = (
                f"pragma suppressing {list(ids)} has no reason — say why the "
                f"construct is safe"
            )
        if bad is not None:
            problems.append(
                Finding(
                    rule=PRAGMA_RULE_ID,
                    name="invalid-pragma",
                    severity="error",
                    path=path,
                    line=lineno,
                    col=match.start(),
                    message=bad,
                )
            )
            continue
        target = lineno
        if text[: match.start()].strip() == "":
            target = lineno + 1  # comment-only line: covers the next line
        suppressed.setdefault(target, set()).update(ids)
        suppressed.setdefault(lineno, set()).update(ids)
    return suppressed, problems


_SIMPLE_STATEMENTS = (
    ast.Expr,
    ast.Assign,
    ast.AugAssign,
    ast.AnnAssign,
    ast.Return,
    ast.Raise,
    ast.Assert,
    ast.Delete,
    ast.Import,
    ast.ImportFrom,
)


def _pragma_cover(tree: ast.Module) -> dict:
    """Line-equivalence groups for pragma placement on multi-line code.

    A finding anchors at one line, but the statement it lives in may span
    several — and a pragma is naturally written on the line the author is
    looking at: the closing line of a multi-line call, or above the
    decorator of a decorated def.  This map makes every line of a
    *simple* (non-compound) statement suppress every other line of the
    same statement, and maps a decorated ``def``'s decorator and
    signature lines onto the ``def`` line where its findings anchor.
    Compound statements (``for``/``if``/``with``) are deliberately
    excluded: their span covers their whole body, and a pragma must never
    silently blanket a block.
    """
    cover: dict[int, set] = {}

    def group(span: set) -> None:
        if len(span) < 2:
            return
        for line in span:
            cover.setdefault(line, set()).update(span)

    for node in ast.walk(tree):
        if isinstance(node, _SIMPLE_STATEMENTS):
            end = getattr(node, "end_lineno", None) or node.lineno
            group(set(range(node.lineno, end + 1)))
        elif isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            start = node.lineno
            if node.decorator_list:
                start = min(
                    decorator.lineno for decorator in node.decorator_list
                )
            signature_end = node.lineno
            args_node = getattr(node, "args", None)
            if args_node is not None:
                for part in ast.walk(args_node):
                    end = getattr(part, "end_lineno", None)
                    if end is not None:
                        signature_end = max(signature_end, end)
            returns = getattr(node, "returns", None)
            end = getattr(returns, "end_lineno", None)
            if end is not None:
                signature_end = max(signature_end, end)
            if node.body:
                # The closing-paren/colon line: everything up to (not
                # including) the first body statement is still header.
                signature_end = max(signature_end, node.body[0].lineno - 1)
            group(set(range(start, signature_end + 1)))
    return cover


def _suppressed_rules(suppressed: dict, cover: dict, line: int) -> set:
    """All rule ids a pragma suppresses at ``line``, through its group."""
    ids = set(suppressed.get(line, ()))
    for covered in cover.get(line, ()):
        ids.update(suppressed.get(covered, ()))
    return ids


def _analyze_source(
    source: str,
    path: str,
    select: tuple | None,
    ignore: tuple | None,
    run_rules: bool = True,
) -> dict:
    """Parse and run the visitor rules on one file.

    Returns a record with the parsed ``tree`` (``None`` on syntax error),
    the pragma ``suppressed`` map, the pragma ``cover`` groups, and the
    per-file ``findings`` (meta + visitor, suppression already applied).
    The record is what the project-mode flow pass consumes.
    """
    record = {
        "path": path,
        "source": source,
        "tree": None,
        "suppressed": {},
        "cover": {},
        "findings": [],
    }
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        if _meta_active(SYNTAX_RULE_ID, select, ignore):
            record["findings"].append(
                Finding(
                    rule=SYNTAX_RULE_ID,
                    name="syntax-error",
                    severity="error",
                    path=path,
                    line=exc.lineno or 1,
                    col=(exc.offset or 1) - 1,
                    message=f"file does not parse: {exc.msg}",
                )
            )
        return record
    active = resolve_rule_selection(select, ignore)
    known_ids = {rule.id for rule in _registered_rules()}
    suppressed, pragma_findings = _collect_pragmas(source, path, known_ids)
    cover = _pragma_cover(tree)
    record.update(tree=tree, suppressed=suppressed, cover=cover)
    if not run_rules:  # tree/pragmas only: cache hit still feeds the model
        return record
    findings: list[Finding] = record["findings"]
    if _meta_active(PRAGMA_RULE_ID, select, ignore):
        findings.extend(pragma_findings)
    ctx = FileContext(path, source, tree)
    for rule_cls in active:
        if issubclass(rule_cls, FlowRule):
            continue  # project-level rules run once per invocation
        if rule_cls.exempt_paths and ctx.path_matches(rule_cls.exempt_paths):
            continue
        for finding in rule_cls(ctx).run():
            if finding.rule in _suppressed_rules(suppressed, cover, finding.line):
                continue
            findings.append(finding)
    return record


def _flow_findings(
    records: list,
    select: tuple | None,
    ignore: tuple | None,
    extra_files: list | None = None,
    stats: dict | None = None,
    model_sink: dict | None = None,
) -> list[Finding]:
    """Run the active flow rules over the project the records form.

    ``extra_files`` are ``(path, source, tree)`` triples added to the
    project model for symbol resolution only — findings anchored in them
    are dropped (plugins mode resolves into ``repro.*`` without
    re-reporting the library).  ``stats``, when given, receives the model
    shape: function/edge counts and the unresolved-edge total that the
    CLI surfaces as a warning (degraded resolution is visible, never a
    silent pass).
    """
    active = [
        rule
        for rule in resolve_rule_selection(select, ignore)
        if issubclass(rule, FlowRule)
    ]
    parsed = [
        record for record in records if record["tree"] is not None
    ]
    if not active or not parsed:
        return []
    from .project import ProjectModel

    files = [(r["path"], r["source"], r["tree"]) for r in parsed]
    seen_paths = {r["path"] for r in parsed}
    for extra in extra_files or ():
        if extra[0] not in seen_paths:
            files.append(extra)
    model = ProjectModel(files)
    if model_sink is not None:
        model_sink["model"] = model
    if stats is not None:
        stats["functions"] = len(model.functions)
        stats["call_edges"] = len(model.edges)
        stats["unresolved_edges"] = len(model.unresolved_edges())
        stats["spawn_sites"] = len(model.topology.spawn_sites)
    by_path = {r["path"]: r for r in parsed}
    findings: list[Finding] = []
    for rule_cls in active:
        for finding in rule_cls.check(model):
            record = by_path.get(finding.path)
            if record is None:
                continue  # anchored in a resolution-only extra file
            if rule_cls.exempt_paths:
                normalized = Path(finding.path).as_posix()
                if any(
                    normalized.endswith(suffix)
                    for suffix in rule_cls.exempt_paths
                ):
                    continue
            if finding.rule in _suppressed_rules(
                record["suppressed"], record["cover"], finding.line
            ):
                continue
            findings.append(finding)
    return findings


def lint_source(
    source: str,
    path: str = "<source>",
    *,
    select: tuple | None = None,
    ignore: tuple | None = None,
    flow: bool = True,
) -> list[Finding]:
    """Lint one source string; return findings sorted by location then id.

    Flow rules see the file as a one-module project, so interprocedural
    findings whose whole chain lives in this file still fire.
    """
    record = _analyze_source(source, path, select, ignore)
    findings = list(record["findings"])
    if flow:
        findings.extend(_flow_findings([record], select, ignore))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def lint_file(
    path: "str | Path",
    *,
    select: tuple | None = None,
    ignore: tuple | None = None,
    flow: bool = True,
) -> list[Finding]:
    text = Path(path).read_text(encoding="utf-8")
    return lint_source(text, str(path), select=select, ignore=ignore, flow=flow)


def _python_files(path: Path) -> list[Path]:
    if path.is_file():
        return [path]
    return sorted(
        candidate
        for candidate in path.rglob("*.py")
        if not any(part.startswith(".") for part in candidate.parts)
    )


def lint_paths(
    paths,
    *,
    select: tuple | None = None,
    ignore: tuple | None = None,
    flow: bool = True,
    cache=None,
    stats: dict | None = None,
) -> tuple[list[Finding], list[str]]:
    """Lint files and directory trees; return ``(findings, files_checked)``.

    Directories are walked recursively for ``*.py`` (hidden components
    skipped) in sorted order, so output order — and therefore the CLI's
    text and JSON output — is deterministic for a given tree.  A path that
    does not exist raises :class:`FileNotFoundError`; the CLI reports it
    as a usage error.

    With ``flow`` (default) the run is a *project*: all files are parsed
    into one :class:`~repro.lint.project.ProjectModel` and the F rules
    run across it after the per-file visitor rules.  ``cache`` accepts a
    :class:`repro.lint.cache.LintCache`: files whose content digest and
    active-rule-set are unchanged skip the visitor pass, and the flow
    pass is skipped entirely when every file's import closure is
    unchanged (see the cache module for the invalidation rules).
    ``stats``, when given, is filled with flow/cache counters for the
    CLI's JSON output.
    """
    file_paths: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if not path.exists():
            raise FileNotFoundError(f"no such file or directory: {raw}")
        file_paths.extend(_python_files(path))
    checked = [str(p) for p in file_paths]

    active_ids = sorted(r.id for r in resolve_rule_selection(select, ignore))
    if cache is not None:
        cache.begin(active_ids, flow)
    records: list[dict] = []
    findings: list[Finding] = []
    for file_path in file_paths:
        source = file_path.read_text(encoding="utf-8")
        key = str(file_path)
        cached = cache.lookup(key, source) if cache is not None else None
        if cached is not None:
            file_findings = cached
            if flow:  # the tree is still needed for the project model
                record = _analyze_source(
                    source, key, select, ignore, run_rules=False
                )
                record["findings"] = list(file_findings)
                records.append(record)
        else:
            record = _analyze_source(source, key, select, ignore)
            file_findings = list(record["findings"])
            if cache is not None:
                cache.store(key, source, file_findings)
            records.append(record)
        findings.extend(file_findings)
    flow_stats: dict = {}
    if flow:
        cached_flow = cache.lookup_flow(checked) if cache is not None else None
        if cached_flow is not None:
            findings.extend(cached_flow)
            flow_stats["source"] = "cache"
        else:
            model_sink: dict = {}
            flow_found = _flow_findings(
                records, select, ignore, stats=flow_stats, model_sink=model_sink
            )
            flow_stats["source"] = "analysis"
            findings.extend(flow_found)
            if cache is not None:
                cache.store_flow(model_sink.get("model"), checked, flow_found)
    if cache is not None:
        cache.save()
    if stats is not None:
        stats["flow"] = flow_stats if flow else None
        stats["cache"] = cache.stats if cache is not None else None
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings, checked
