"""The ``repro lint`` rule engine: findings, pragmas, file/tree dispatch.

Everything the reproduction guarantees — byte-identical rows across
engines, worker counts, shards, resume, and fault planes — reduces to a
handful of code-level disciplines: seeded draws only, no global RNG or
wall-clock in measured paths, sorted iteration wherever order can reach a
row or a digest, JSON-safe axis values, and the Algorithm/driver contracts
of :mod:`repro.sim`.  This engine makes those disciplines checkable: each
rule is a small :class:`ast.NodeVisitor` subclass (see
:mod:`repro.lint.rules`) with an id, severity, message, and fixture
examples; the engine parses a file once, runs every selected rule over the
tree, applies inline suppression pragmas, and returns a sorted list of
:class:`Finding` records.

Suppression pragma
------------------
``# repro: lint-ok[D105] <reason>`` suppresses the named rule(s) on its
own line — or, when the pragma stands on a comment-only line, on the line
directly below it.  The reason string is **required**: a pragma without
one is itself a finding (:data:`PRAGMA_RULE_ID`), because an unexplained
suppression is exactly the undocumented reviewer-memory this linter
exists to replace.  Several ids may share one pragma:
``# repro: lint-ok[D103,D107] reason...``.

Meta findings
-------------
Two engine-level pseudo-rules ride alongside the real rule set and are
always active (``--ignore`` can still drop them explicitly):

* ``X000 syntax-error`` — the file does not parse; nothing else can run.
* ``X100 invalid-pragma`` — a lint-ok pragma without a reason, or naming
  a rule id that does not exist.
"""

from __future__ import annotations

import ast
import re
from dataclasses import asdict, dataclass
from pathlib import Path

__all__ = [
    "Finding",
    "FileContext",
    "Rule",
    "lint_source",
    "lint_file",
    "lint_paths",
    "resolve_rule_selection",
    "SYNTAX_RULE_ID",
    "PRAGMA_RULE_ID",
]

#: Pseudo-rule id for files that fail to parse.
SYNTAX_RULE_ID = "X000"
#: Pseudo-rule id for malformed suppression pragmas.
PRAGMA_RULE_ID = "X100"

_PRAGMA = re.compile(
    r"#\s*repro:\s*lint-ok\[(?P<ids>[^\]]*)\]\s*(?P<reason>.*?)\s*$"
)


@dataclass(frozen=True)
class Finding:
    """One lint violation, anchored to a source location.

    ``rule`` is the stable id (``"D101"``), ``name`` its slug
    (``"unseeded-random"``); ``severity`` is ``"error"`` or ``"warning"``
    — both fail the CLI, the tag records how certain the rule is that the
    construct is a bug rather than a hazard.  ``line`` is 1-based,
    ``col`` 0-based (ast conventions).
    """

    rule: str
    name: str
    severity: str
    path: str
    line: int
    col: int
    message: str

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "Finding":
        return cls(**data)

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} [{self.name}] {self.message}"


class FileContext:
    """Everything a rule may consult about the file under analysis."""

    def __init__(self, path: str, source: str, tree: ast.Module) -> None:
        self.path = path
        self.source = source
        self.tree = tree

    def path_matches(self, suffixes: tuple) -> bool:
        """Whether the file path ends with any of the posix suffixes."""
        normalized = Path(self.path).as_posix()
        return any(normalized.endswith(suffix) for suffix in suffixes)


class Rule(ast.NodeVisitor):
    """Base class for one lint rule: a visitor that collects findings.

    Subclasses set the class attributes and implement ``visit_*`` methods
    that call :meth:`report`.  ``exempt_paths`` names posix path suffixes
    the rule does not apply to (e.g. the wall-clock rule exempts
    ``repro/bench.py`` — timing is that module's whole job).
    ``example_bad`` / ``example_good`` are the rule's fixture snippets:
    the bad one marks each expected finding line with a trailing
    ``# expect: <id>`` comment, and the test suite pins both against the
    checked-in fixture files under ``tests/lint_fixtures/``.
    """

    id: str = ""
    name: str = ""
    severity: str = "error"
    summary: str = ""
    exempt_paths: tuple = ()
    example_bad: str = ""
    example_good: str = ""

    def __init__(self, ctx: FileContext) -> None:
        self.ctx = ctx
        self.findings: list[Finding] = []

    def report(self, node: ast.AST, message: str) -> None:
        self.findings.append(
            Finding(
                rule=self.id,
                name=self.name,
                severity=self.severity,
                path=self.ctx.path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0),
                message=message,
            )
        )

    def run(self) -> list[Finding]:
        self.visit(self.ctx.tree)
        return self.findings


def _registered_rules() -> list[type]:
    from .rules import RULES

    return RULES


def resolve_rule_selection(
    select: tuple | None, ignore: tuple | None
) -> list[type]:
    """The active rule classes for a ``--select`` / ``--ignore`` pair.

    Entries are exact rule ids (``"D101"``) or family prefixes (``"D"``,
    ``"P"``).  Unknown entries raise :class:`ValueError` — the CLI turns
    that into a usage error — so a typo can never silently lint nothing.
    """
    rules = _registered_rules()
    known = {rule.id for rule in rules}
    families = {rule.id[0] for rule in rules} | {"X"}

    def expand(entries: tuple, what: str) -> set:
        chosen: set[str] = set()
        for entry in entries:
            token = entry.strip().upper()
            if token in known or token in (SYNTAX_RULE_ID, PRAGMA_RULE_ID):
                chosen.add(token)
            elif token in families:
                chosen.update(rule.id for rule in rules if rule.id.startswith(token))
                chosen.update(
                    meta for meta in (SYNTAX_RULE_ID, PRAGMA_RULE_ID)
                    if meta.startswith(token)
                )
            else:
                raise ValueError(
                    f"{what}: unknown rule {entry!r} "
                    f"(rules: {sorted(known)}; families: {sorted(families)})"
                )
        return chosen

    active = list(rules)
    if select:
        selected = expand(tuple(select), "--select")
        active = [rule for rule in active if rule.id in selected]
    if ignore:
        ignored = expand(tuple(ignore), "--ignore")
        active = [rule for rule in active if rule.id not in ignored]
    return active


def _meta_active(meta_id: str, select: tuple | None, ignore: tuple | None) -> bool:
    """Whether a pseudo-rule reports under this selection.

    Meta rules are on by default even under ``--select`` (a syntax error
    always matters) and are dropped only by naming them (or their family)
    in ``--ignore``.
    """
    if not ignore:
        return True
    tokens = {entry.strip().upper() for entry in ignore}
    return meta_id not in tokens and meta_id[0] not in tokens


def _collect_pragmas(
    source: str, path: str, known_ids: set
) -> tuple[dict, list[Finding]]:
    """Parse lint-ok pragmas; return ``{line: ids}`` plus meta findings.

    A pragma on a code line suppresses that line; a pragma on a
    comment-only line suppresses the line below it.  A missing reason or
    an unknown rule id makes the pragma invalid: it suppresses nothing and
    is reported as :data:`PRAGMA_RULE_ID`.
    """
    suppressed: dict[int, set] = {}
    problems: list[Finding] = []
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _PRAGMA.search(text)
        if match is None:
            continue
        ids = tuple(
            token.strip().upper() for token in match.group("ids").split(",")
            if token.strip()
        )
        reason = match.group("reason").strip()
        unknown = [rule_id for rule_id in ids if rule_id not in known_ids]
        bad = None
        if not ids:
            bad = "pragma names no rule ids (use lint-ok[RULE] reason)"
        elif unknown:
            bad = f"pragma names unknown rule id(s) {unknown}"
        elif not reason:
            bad = (
                f"pragma suppressing {list(ids)} has no reason — say why the "
                f"construct is safe"
            )
        if bad is not None:
            problems.append(
                Finding(
                    rule=PRAGMA_RULE_ID,
                    name="invalid-pragma",
                    severity="error",
                    path=path,
                    line=lineno,
                    col=match.start(),
                    message=bad,
                )
            )
            continue
        target = lineno
        if text[: match.start()].strip() == "":
            target = lineno + 1  # comment-only line: covers the next line
        suppressed.setdefault(target, set()).update(ids)
        suppressed.setdefault(lineno, set()).update(ids)
    return suppressed, problems


def lint_source(
    source: str,
    path: str = "<source>",
    *,
    select: tuple | None = None,
    ignore: tuple | None = None,
) -> list[Finding]:
    """Lint one source string; return findings sorted by location then id."""
    active = resolve_rule_selection(select, ignore)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        if not _meta_active(SYNTAX_RULE_ID, select, ignore):
            return []
        return [
            Finding(
                rule=SYNTAX_RULE_ID,
                name="syntax-error",
                severity="error",
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                message=f"file does not parse: {exc.msg}",
            )
        ]
    known_ids = {rule.id for rule in _registered_rules()}
    suppressed, pragma_findings = _collect_pragmas(source, path, known_ids)
    ctx = FileContext(path, source, tree)
    findings: list[Finding] = []
    if _meta_active(PRAGMA_RULE_ID, select, ignore):
        findings.extend(pragma_findings)
    for rule_cls in active:
        if rule_cls.exempt_paths and ctx.path_matches(rule_cls.exempt_paths):
            continue
        for finding in rule_cls(ctx).run():
            if finding.rule in suppressed.get(finding.line, ()):
                continue
            findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def lint_file(
    path: "str | Path",
    *,
    select: tuple | None = None,
    ignore: tuple | None = None,
) -> list[Finding]:
    text = Path(path).read_text(encoding="utf-8")
    return lint_source(text, str(path), select=select, ignore=ignore)


def _python_files(path: Path) -> list[Path]:
    if path.is_file():
        return [path]
    return sorted(
        candidate
        for candidate in path.rglob("*.py")
        if not any(part.startswith(".") for part in candidate.parts)
    )


def lint_paths(
    paths,
    *,
    select: tuple | None = None,
    ignore: tuple | None = None,
) -> tuple[list[Finding], list[str]]:
    """Lint files and directory trees; return ``(findings, files_checked)``.

    Directories are walked recursively for ``*.py`` (hidden components
    skipped) in sorted order, so output order — and therefore the CLI's
    text and JSON output — is deterministic for a given tree.  A path that
    does not exist raises :class:`FileNotFoundError`; the CLI reports it
    as a usage error.
    """
    findings: list[Finding] = []
    checked: list[str] = []
    for raw in paths:
        path = Path(raw)
        if not path.exists():
            raise FileNotFoundError(f"no such file or directory: {raw}")
        for file_path in _python_files(path):
            checked.append(str(file_path))
            findings.extend(lint_file(file_path, select=select, ignore=ignore))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings, checked
