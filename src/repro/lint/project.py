"""Whole-program model for flow rules: modules, symbols, calls, processes.

The visitor rules in :mod:`repro.lint.rules` see one file at a time; the
two worst historical bug classes in this repo (PR 4's ignored-seed
corruption, the fork-boundary store hazards around ``api/run.py``) are
*interprocedural* — a seed accepted here and dropped two calls away, a
pipe end written from both sides of a fork.  This module builds the
shared substrate those checks need:

* :class:`ProjectModel` — parses every file of a lint invocation once,
  derives dotted module names (walking up through ``__init__.py``
  packages), records per-module import maps (``import x as y``, absolute
  and relative ``from`` imports), symbol tables for functions, nested
  functions, classes and methods, and a package-wide **call graph**.
* Call resolution is best effort and honest about it: every call site
  becomes a :class:`CallEdge`; edges the model cannot resolve to a
  project function carry ``callee=None`` and a reason, and are reported
  (never silently dropped) via :meth:`ProjectModel.unresolved_edges`.
* :class:`Topology` — classifies functions as supervisor-side vs
  worker-side from ``Process(target=...)`` and pool dispatch sites, with
  the argument binding at each spawn site (which caller value lands in
  which worker parameter).  This is what lets F304 tell a legitimate
  worker ``result_pipe.send`` from a second writer on the same end.

The model never imports the analyzed code; everything is derived from
the ASTs, so linting a plugin cannot execute it.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

__all__ = [
    "ProjectModel",
    "ModuleInfo",
    "FunctionInfo",
    "ClassInfo",
    "CallEdge",
    "SpawnSite",
    "Topology",
]

#: Attribute names that dispatch a callable to a worker pool.  These are
#: only recognized as *attribute* calls (``pool.imap_unordered(f, ...)``)
#: so the ``map`` builtin never classifies its argument as worker-side.
POOL_DISPATCH = frozenset(
    {
        "apply",
        "apply_async",
        "map",
        "map_async",
        "imap",
        "imap_unordered",
        "starmap",
        "starmap_async",
        "submit",
    }
)


@dataclass
class FunctionInfo:
    """One function or method definition in the project."""

    qualname: str  # "repro.api.drivers:drive_sssp", "mod:Cls.m", "mod:f.inner"
    module: str
    path: str
    node: ast.AST  # FunctionDef | AsyncFunctionDef | Lambda
    params: list = field(default_factory=list)
    has_varargs: bool = False
    class_name: str | None = None  # enclosing class for methods
    parent: str | None = None  # qualname of the enclosing function, if nested

    @property
    def name(self) -> str:
        return self.qualname.rpartition(".")[2].rpartition(":")[2]

    @property
    def bindable_params(self) -> list:
        """Positional parameter names, minus the method receiver."""
        if self.class_name is not None and self.params:
            return self.params[1:]
        return list(self.params)


@dataclass
class ClassInfo:
    name: str
    module: str
    node: ast.ClassDef
    methods: dict = field(default_factory=dict)  # name -> FunctionInfo
    bases: list = field(default_factory=list)  # dotted base-name strings


@dataclass
class CallEdge:
    """One call site: resolved (``callee`` set) or explicitly unresolved."""

    caller: FunctionInfo
    call: ast.Call
    qual: str | None  # best-effort dotted text of the callee expression
    callee: FunctionInfo | None = None
    reason: str | None = None  # why resolution failed, when callee is None

    @property
    def resolved(self) -> bool:
        return self.callee is not None


@dataclass
class SpawnSite:
    """A ``Process(target=...)`` / pool dispatch call and its binding."""

    caller: FunctionInfo
    call: ast.Call
    target: FunctionInfo
    kind: str  # "process" | "pool"
    # (param_name, arg_expr) pairs for Process(args=...) tuples; empty for
    # pool dispatch (pools pickle their payloads, no shared objects).
    bindings: list = field(default_factory=list)


class Topology:
    """Supervisor/worker classification derived from spawn sites."""

    def __init__(self) -> None:
        self.spawn_sites: list[SpawnSite] = []
        self.worker_side: set[str] = set()  # qualnames reachable from targets
        self.supervisor_side: set[str] = set()  # spawners + their callees

    def is_worker(self, info: FunctionInfo) -> bool:
        return info.qualname in self.worker_side

    def is_supervisor(self, info: FunctionInfo) -> bool:
        return info.qualname in self.supervisor_side


def _module_name(path: Path) -> str:
    """Dotted module name: walk up while the directory is a package."""
    path = path.resolve()
    parts = [path.stem] if path.stem != "__init__" else []
    current = path.parent
    while (current / "__init__.py").exists():
        parts.insert(0, current.name)
        parent = current.parent
        if parent == current:
            break
        current = parent
    return ".".join(parts) if parts else path.stem


def _dotted(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class ModuleInfo:
    """Symbols and imports of one parsed file."""

    def __init__(self, name: str, path: str, tree: ast.Module, source: str) -> None:
        self.name = name
        self.path = path
        self.tree = tree
        self.source = source
        self.imports: dict[str, str] = {}  # local name -> dotted target
        self.functions: dict[str, FunctionInfo] = {}  # local qualpath -> info
        self.classes: dict[str, ClassInfo] = {}
        self.module_body = FunctionInfo(
            qualname=f"{name}:<module>",
            module=name,
            path=path,
            node=tree,
            params=[],
        )
        self._collect()

    # -- construction --------------------------------------------------

    def _package(self, level: int) -> str:
        """The package ``level`` relative-import dots resolve against."""
        parts = self.name.split(".")
        if not Path(self.path).name == "__init__.py":
            parts = parts[:-1]
        drop = level - 1
        if drop:
            parts = parts[:-drop] if drop <= len(parts) else []
        return ".".join(parts)

    def _collect(self) -> None:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.partition(".")[0]
                    target = alias.name if alias.asname else alias.name.partition(".")[0]
                    self.imports[local] = target
            elif isinstance(node, ast.ImportFrom):
                base = node.module or ""
                if node.level:
                    package = self._package(node.level)
                    base = f"{package}.{base}" if base else package
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self.imports[local] = f"{base}.{alias.name}" if base else alias.name
        self._collect_defs(self.tree.body, prefix="", class_name=None, parent=None)

    def _collect_defs(self, body, prefix: str, class_name, parent) -> None:
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                local = f"{prefix}{node.name}"
                args = node.args
                params = [
                    a.arg for a in (*args.posonlyargs, *args.args, *args.kwonlyargs)
                ]
                info = FunctionInfo(
                    qualname=f"{self.name}:{local}",
                    module=self.name,
                    path=self.path,
                    node=node,
                    params=params,
                    has_varargs=args.vararg is not None or args.kwarg is not None,
                    class_name=class_name,
                    parent=parent,
                )
                self.functions[local] = info
                if class_name is not None and prefix.count(".") == 1:
                    self.classes[class_name].methods[node.name] = info
                # Nested defs: methods of nested classes keep the outer
                # prefix; functions nested in functions record a parent.
                self._collect_defs(
                    node.body,
                    prefix=f"{local}.",
                    class_name=None,
                    parent=info.qualname,
                )
            elif isinstance(node, ast.ClassDef):
                if class_name is None and prefix == "":
                    self.classes[node.name] = ClassInfo(
                        name=node.name,
                        module=self.name,
                        node=node,
                        bases=[b for b in map(_dotted, node.bases) if b],
                    )
                    self._collect_defs(
                        node.body,
                        prefix=f"{node.name}.",
                        class_name=node.name,
                        parent=None,
                    )
                else:  # nested class: collect defs, skip method indexing
                    self._collect_defs(
                        node.body,
                        prefix=f"{prefix}{node.name}.",
                        class_name=None,
                        parent=parent,
                    )


class ProjectModel:
    """Cross-module symbol resolution, call graph, and topology."""

    def __init__(self, files) -> None:
        """``files`` is an iterable of ``(path, source, tree)`` triples."""
        self.modules: dict[str, ModuleInfo] = {}
        self.by_path: dict[str, ModuleInfo] = {}
        for path, source, tree in files:
            name = _module_name(Path(path))
            if name in self.modules:  # same stem outside packages: keep 1st
                name = f"{name}@{len(self.modules)}"
            info = ModuleInfo(name, str(path), tree, source)
            self.modules[name] = info
            self.by_path[str(path)] = info
        self.functions: dict[str, FunctionInfo] = {}
        for module in self.modules.values():
            for info in module.functions.values():
                self.functions[info.qualname] = info
            self.functions[module.module_body.qualname] = module.module_body
        self.edges: list[CallEdge] = []
        self.calls_by_caller: dict[str, list[CallEdge]] = {}
        self._build_call_graph()
        self.topology = self._build_topology()

    # -- symbol resolution ---------------------------------------------

    def resolve_dotted(self, module: ModuleInfo, dotted: str, _depth: int = 0):
        """Resolve ``a.b.c`` seen inside ``module`` to a project symbol.

        Returns a :class:`FunctionInfo`, a :class:`ClassInfo`, or ``None``
        (external / unknown).  Follows import aliases across modules with
        a small depth bound so re-export chains terminate.
        """
        if _depth > 6:
            return None
        parts = dotted.split(".")
        head, rest = parts[0], parts[1:]
        # Local definitions first: functions, then classes.
        if not rest and head in module.functions:
            return module.functions[head]
        if head in module.classes:
            cls = module.classes[head]
            if not rest:
                return cls
            if len(rest) == 1 and rest[0] in cls.methods:
                return cls.methods[rest[0]]
            return None
        if head in module.imports:
            target = module.imports[head]
            full = ".".join([target, *rest]) if rest else target
            return self._resolve_global(full, _depth + 1)
        return self._resolve_global(dotted, _depth + 1)

    def _resolve_global(self, dotted: str, _depth: int = 0):
        """Resolve a fully-qualified dotted name against project modules."""
        if _depth > 6:
            return None
        parts = dotted.split(".")
        for cut in range(len(parts), 0, -1):
            module_name = ".".join(parts[:cut])
            module = self.modules.get(module_name)
            if module is None:
                continue
            rest = parts[cut:]
            if not rest:
                return module
            local = ".".join(rest)
            if local in module.functions:
                return module.functions[local]
            if rest[0] in module.classes:
                cls = module.classes[rest[0]]
                if len(rest) == 1:
                    return cls
                if len(rest) == 2 and rest[1] in cls.methods:
                    return cls.methods[rest[1]]
                return None
            if rest[0] in module.imports:  # re-export: follow one hop
                target = ".".join([module.imports[rest[0]], *rest[1:]])
                return self._resolve_global(target, _depth + 1)
            return None
        return None

    # -- call graph -----------------------------------------------------

    def _enclosing_functions(self, module: ModuleInfo):
        """Yield ``(info, body_statements)`` for every def plus the module
        body, with nested defs excluded from their parents' statements."""

        def strip_nested(body):
            out = []
            for stmt in body:
                if isinstance(
                    stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                ):
                    continue
                out.append(stmt)
            return out

        for info in module.functions.values():
            yield info, info.node.body
        yield module.module_body, strip_nested(module.tree.body)

    def _instance_types(self, module: ModuleInfo, body) -> dict:
        """``var -> ClassInfo`` for ``var = SomeClass(...)`` assignments."""
        types: dict[str, ClassInfo] = {}
        for stmt in ast.walk(ast.Module(body=list(body), type_ignores=[])):
            if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1:
                continue
            target = stmt.targets[0]
            if not isinstance(target, ast.Name):
                continue
            if not isinstance(stmt.value, ast.Call):
                continue
            qual = _dotted(stmt.value.func)
            if qual is None:
                continue
            resolved = self.resolve_dotted(module, qual)
            if isinstance(resolved, ClassInfo):
                types[target.id] = resolved
        return types

    def resolve_call(
        self, module: ModuleInfo, caller: FunctionInfo, call: ast.Call, types: dict
    ):
        """Resolve one call expression; return ``(callee, qual, reason)``."""
        func = call.func
        qual = _dotted(func)
        if qual is None:
            return None, None, "callee is a computed expression"
        parts = qual.split(".")
        # self.method() inside a method body.
        if parts[0] == "self" and caller.class_name is not None:
            cls = module.classes.get(caller.class_name)
            if cls is not None and len(parts) == 2:
                method = cls.methods.get(parts[1])
                if method is not None:
                    return method, qual, None
                base_method = self._base_method(module, cls, parts[1])
                if base_method is not None:
                    return base_method, qual, None
            return None, qual, f"unknown attribute on self: {qual!r}"
        # instance.method() where the instance type is locally evident.
        if parts[0] in types and len(parts) == 2:
            cls = types[parts[0]]
            method = cls.methods.get(parts[1])
            if method is not None:
                return method, qual, None
            base_method = self._base_method(
                self.modules.get(cls.module, module), cls, parts[1]
            )
            if base_method is not None:
                return base_method, qual, None
            return None, qual, f"no method {parts[1]!r} on {cls.name}"
        # Nested defs visible from the enclosing function chain.
        if len(parts) == 1:
            scope = caller.qualname.partition(":")[2]
            while scope:
                nested = module.functions.get(f"{scope}.{parts[0]}")
                if nested is not None:
                    return nested, qual, None
                scope = scope.rpartition(".")[0]
        resolved = self.resolve_dotted(module, qual)
        if isinstance(resolved, FunctionInfo):
            return resolved, qual, None
        if isinstance(resolved, ClassInfo):
            init = resolved.methods.get("__init__")
            if init is not None:
                return init, qual, None
            return None, qual, f"constructor of {resolved.name} has no __init__"
        if isinstance(resolved, ModuleInfo):
            return None, qual, f"{qual!r} names a module, not a callable"
        root = module.imports.get(parts[0], parts[0])
        if root.partition(".")[0] in {m.partition(".")[0] for m in self.modules}:
            return None, qual, f"cannot resolve {qual!r} inside the project"
        return None, qual, f"external callable {qual!r}"

    def _base_method(self, module: ModuleInfo, cls: ClassInfo, name: str):
        for base in cls.bases:
            resolved = self.resolve_dotted(module, base)
            if isinstance(resolved, ClassInfo):
                method = resolved.methods.get(name)
                if method is not None:
                    return method
        return None

    def _build_call_graph(self) -> None:
        for module in self.modules.values():
            for info, body in self._enclosing_functions(module):
                types = self._instance_types(module, body)
                wrapper = ast.Module(body=list(body), type_ignores=[])
                for node in ast.walk(wrapper):
                    if not isinstance(node, ast.Call):
                        continue
                    callee, qual, reason = self.resolve_call(
                        module, info, node, types
                    )
                    edge = CallEdge(
                        caller=info,
                        call=node,
                        qual=qual,
                        callee=callee,
                        reason=reason,
                    )
                    self.edges.append(edge)
                    self.calls_by_caller.setdefault(info.qualname, []).append(edge)

    def import_dependencies(self) -> dict:
        """``{path: [paths]}``: project-internal files each file imports.

        This is the invalidation edge set for the flow cache: a change in
        any transitively imported file can change a module's flow
        findings, so the cache follows these edges when deciding whether
        a stored result is still valid.
        """
        deps: dict[str, list] = {}
        for module in self.modules.values():
            paths: set = set()
            for target in module.imports.values():
                parts = target.split(".")
                for cut in range(len(parts), 0, -1):
                    owner = self.modules.get(".".join(parts[:cut]))
                    if owner is not None:
                        if owner.path != module.path:
                            paths.add(owner.path)
                        break
            deps[module.path] = sorted(paths)
        return deps

    def unresolved_edges(self, internal_only: bool = False) -> list[CallEdge]:
        """Call sites the model could not resolve, for visible reporting.

        ``internal_only`` restricts to edges whose root name looks like a
        project module (a genuinely missed resolution, not numpy/stdlib).
        """
        out = []
        for edge in self.edges:
            if edge.resolved:
                continue
            if internal_only and edge.reason and edge.reason.startswith("external"):
                continue
            out.append(edge)
        return out

    def bind_arguments(self, call: ast.Call, callee: FunctionInfo) -> list:
        """``(param_name, arg_expr)`` pairs for a resolved call.

        Starred/double-starred arguments bind conservatively to every
        remaining parameter — flow rules must assume the value may reach
        any of them.
        """
        params = callee.bindable_params
        pairs: list = []
        index = 0
        for arg in call.args:
            if isinstance(arg, ast.Starred):
                for param in params[index:]:
                    pairs.append((param, arg.value))
                index = len(params)
                continue
            if index < len(params):
                pairs.append((params[index], arg))
            index += 1
        for keyword in call.keywords:
            if keyword.arg is None:  # **kwargs
                for param in params:
                    pairs.append((param, keyword.value))
            elif keyword.arg in params:
                pairs.append((keyword.arg, keyword.value))
        return pairs

    # -- process topology -----------------------------------------------

    def _function_reference(self, module: ModuleInfo, node: ast.AST):
        """A Name/Attribute argument that names a project function."""
        qual = _dotted(node)
        if qual is None:
            return None
        resolved = self.resolve_dotted(module, qual)
        return resolved if isinstance(resolved, FunctionInfo) else None

    def _build_topology(self) -> Topology:
        topology = Topology()
        for module in self.modules.values():
            for info, body in self._enclosing_functions(module):
                wrapper = ast.Module(body=list(body), type_ignores=[])
                for node in ast.walk(wrapper):
                    if not isinstance(node, ast.Call):
                        continue
                    site = self._spawn_site(module, info, node)
                    if site is not None:
                        topology.spawn_sites.append(site)
        worker_roots = {site.target.qualname for site in topology.spawn_sites}
        topology.worker_side = self._reachable(worker_roots)
        spawners = {site.caller.qualname for site in topology.spawn_sites}
        topology.supervisor_side = self._reachable(spawners) - worker_roots
        return topology

    def _spawn_site(self, module, caller, call: ast.Call):
        qual = _dotted(call.func)
        if qual is None:
            return None
        terminal = qual.rpartition(".")[2]
        if terminal == "Process":
            target_expr = None
            for keyword in call.keywords:
                if keyword.arg == "target":
                    target_expr = keyword.value
            if target_expr is None and call.args:
                target_expr = call.args[0]
            if target_expr is None:
                return None
            target = self._function_reference(module, target_expr)
            if target is None:
                return None
            bindings: list = []
            for keyword in call.keywords:
                if keyword.arg == "args" and isinstance(
                    keyword.value, (ast.Tuple, ast.List)
                ):
                    params = target.bindable_params
                    for index, element in enumerate(keyword.value.elts):
                        if index < len(params):
                            bindings.append((params[index], element))
            return SpawnSite(
                caller=caller, call=call, target=target, kind="process",
                bindings=bindings,
            )
        if terminal in POOL_DISPATCH and isinstance(call.func, ast.Attribute):
            if not call.args:
                return None
            target = self._function_reference(module, call.args[0])
            if target is None:
                return None
            return SpawnSite(caller=caller, call=call, target=target, kind="pool")
        return None

    def _reachable(self, roots: set) -> set:
        """Transitive closure over resolved call edges *and* function
        references passed as arguments (covers ``functools.partial``)."""
        seen = set(roots)
        frontier = list(roots)
        while frontier:
            current = frontier.pop()
            module = None
            info = self.functions.get(current)
            if info is not None:
                module = self.modules.get(info.module)
            for edge in self.calls_by_caller.get(current, ()):
                targets = []
                if edge.callee is not None:
                    targets.append(edge.callee.qualname)
                if module is not None:
                    for arg in [*edge.call.args, *[k.value for k in edge.call.keywords]]:
                        ref = self._function_reference(module, arg)
                        if ref is not None:
                            targets.append(ref.qualname)
                for target in targets:
                    if target not in seen:
                        seen.add(target)
                        frontier.append(target)
        return seen
