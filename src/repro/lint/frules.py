"""The F-rule family: project-wide flow findings on top of the call graph.

These rules are :class:`~repro.lint.engine.FlowRule` subclasses — they
run once per lint invocation over the whole :class:`ProjectModel`
instead of once per file, which is what lets them follow a seed across
function boundaries (F301), a nondeterministic value into a digest two
calls away (F302), a shared CSR column into a mutating callee (F303),
and pipe/shm ownership across a fork (F304).  Each generalizes a
single-file rule that caught the same bug class locally: F301 extends
P203, F302 extends D103–D107, F303 extends P206, F304 extends the
one-writer discipline documented in :mod:`repro.api.run`.
"""

from __future__ import annotations

import ast

from .engine import Finding, FlowRule
from .flow import TAINT_TEXT, FlowAnalysis, MUTATOR_METHODS
from .project import FunctionInfo, ProjectModel, _dotted

__all__ = ["FLOW_RULES"]

_RNG_FACTORIES = (
    "random.Random",
    "numpy.random.default_rng",
    "numpy.random.RandomState",
)

_MUTABLE_FACTORIES = frozenset(
    {"dict", "list", "set", "defaultdict", "deque", "OrderedDict", "Counter"}
)


def _expanded(module, qual: str | None) -> str | None:
    if qual is None:
        return None
    head, _, rest = qual.partition(".")
    target = module.imports.get(head)
    if target is None:
        return qual
    return f"{target}.{rest}" if rest else target


def _contains_names(node: ast.AST) -> bool:
    return any(
        isinstance(child, (ast.Name, ast.Attribute)) for child in ast.walk(node)
    )


def _finding(rule, info: FunctionInfo, node: ast.AST, message: str) -> Finding:
    return Finding(
        rule=rule.id,
        name=rule.name,
        severity=rule.severity,
        path=info.path,
        line=getattr(node, "lineno", 1),
        col=getattr(node, "col_offset", 0),
        message=message,
    )


def _is_driver(info: FunctionInfo) -> bool:
    params = info.bindable_params
    return info.name.startswith("drive_") or params[:3] == [
        "graph",
        "seed",
        "metrics",
    ]


def _p203_territory(module, info: FunctionInfo) -> bool:
    """Whether P203 already reports this function (constant-seeded RNG).

    F301 and P203 are the same bug at different distances; when the
    constant-argument factory is right there in the body, the visitor
    rule owns the report and F301 stays quiet instead of double-firing.
    """
    for sub in ast.walk(info.node):
        if not (isinstance(sub, ast.Call) and sub.args):
            continue
        if _expanded(module, _dotted(sub.func)) not in _RNG_FACTORIES:
            continue
        if not any(_contains_names(arg) for arg in sub.args):
            return True
    return False


class SeedLaundering(FlowRule):
    id = "F301"
    name = "seed-laundering"
    severity = "error"
    summary = (
        "a driver's seed parameter never transitively reaches an "
        "RNG/keyed-hash sink: every cell of the seed axis repeats one run"
    )
    example_bad = (
        "def pick_source(nodes, seed):\n"
        "    return nodes[0]\n"
        "\n"
        "\n"
        "def drive_demo(graph, seed, metrics):  # expect: F301\n"
        "    nodes = sorted(graph.nodes(), key=repr)\n"
        "    return {\"probe\": repr(pick_source(nodes, seed))}\n"
    )
    example_good = (
        "import random\n"
        "\n"
        "\n"
        "def pick_source(nodes, seed):\n"
        "    rng = random.Random(seed)\n"
        "    return nodes[rng.randrange(len(nodes))]\n"
        "\n"
        "\n"
        "def drive_demo(graph, seed, metrics):\n"
        "    nodes = sorted(graph.nodes(), key=repr)\n"
        "    return {\"probe\": repr(pick_source(nodes, seed))}\n"
    )

    @classmethod
    def check(cls, model: ProjectModel) -> list:
        analysis = FlowAnalysis.of(model)
        findings = []
        for info in sorted(model.functions.values(), key=lambda f: f.qualname):
            if not isinstance(info.node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if "seed" not in info.params or not _is_driver(info):
                continue
            module = model.modules[info.module]
            if _p203_territory(module, info):
                continue
            summary = analysis.summary_for(info)
            if "seed" in summary.consumes:
                continue
            handoffs = analysis.handoffs.get(info.qualname, {}).get("seed", [])
            if handoffs:
                into = ", ".join(f"{name}()" for name in handoffs)
                detail = (
                    f"seed flows only into {into}, which never passes it to "
                    f"an RNG or keyed hash"
                )
            else:
                detail = "seed is never read"
            findings.append(
                _finding(
                    cls,
                    info,
                    info.node,
                    f"{detail} — every cell of the seed axis repeats the "
                    f"same run (seed laundering)",
                )
            )
        return findings


class NondetDigestInput(FlowRule):
    id = "F302"
    name = "nondet-digest-input"
    severity = "error"
    summary = (
        "a nondeterministic value (set order, wall clock, environment, "
        "id()) transitively reaches a digest/resume-key sink"
    )
    example_bad = (
        "import hashlib\n"
        "import json\n"
        "\n"
        "\n"
        "def dirty_tags(row):\n"
        "    return {tag for tag in row[\"tags\"]}\n"
        "\n"
        "\n"
        "def canonical_digest(values):\n"
        "    payload = json.dumps(values, sort_keys=True)\n"
        "    return hashlib.sha256(payload.encode(\"utf-8\")).hexdigest()\n"
        "\n"
        "\n"
        "def resume_key(row):\n"
        "    tags = list(dirty_tags(row))\n"
        "    return canonical_digest(tags)  # expect: F302\n"
    )
    example_good = (
        "import hashlib\n"
        "import json\n"
        "\n"
        "\n"
        "def dirty_tags(row):\n"
        "    return {tag for tag in row[\"tags\"]}\n"
        "\n"
        "\n"
        "def canonical_digest(values):\n"
        "    payload = json.dumps(values, sort_keys=True)\n"
        "    return hashlib.sha256(payload.encode(\"utf-8\")).hexdigest()\n"
        "\n"
        "\n"
        "def resume_key(row):\n"
        "    tags = sorted(dirty_tags(row))\n"
        "    return canonical_digest(tags)\n"
    )

    @classmethod
    def check(cls, model: ProjectModel) -> list:
        analysis = FlowAnalysis.of(model)
        findings = []
        seen = set()
        for info, node, kind, detail in analysis.digest_flows:
            key = (info.path, getattr(node, "lineno", 1), kind)
            if key in seen:
                continue
            seen.add(key)
            findings.append(
                _finding(
                    cls,
                    info,
                    node,
                    f"{TAINT_TEXT.get(kind, kind)} {detail}; digests and "
                    f"resume keys must hash canonical data only",
                )
            )
        return findings


class SharedArrayMutation(FlowRule):
    id = "F303"
    name = "shared-array-mutation"
    severity = "error"
    summary = (
        "a CSR/shm-backed column is passed down a call chain and mutated "
        "in a callee — corrupts every later task on the shared plane"
    )
    example_bad = (
        "def scale_weights(column, factor):\n"
        "    for index in range(len(column)):\n"
        "        column[index] = column[index] * factor\n"
        "\n"
        "\n"
        "class Kernel:\n"
        "    def __init__(self, graph):\n"
        "        self._wt = graph.wt\n"
        "\n"
        "    def rescale(self, factor):\n"
        "        scale_weights(self._wt, factor)  # expect: F303\n"
    )
    example_good = (
        "def scaled_copy(column, factor):\n"
        "    return [value * factor for value in column]\n"
        "\n"
        "\n"
        "class Kernel:\n"
        "    def __init__(self, graph):\n"
        "        self._wt = graph.wt\n"
        "\n"
        "    def rescale(self, factor):\n"
        "        return scaled_copy(self._wt, factor)\n"
    )

    @classmethod
    def check(cls, model: ProjectModel) -> list:
        analysis = FlowAnalysis.of(model)
        findings = []
        seen = set()
        for info, node, detail in analysis.csr_flows:
            key = (info.path, getattr(node, "lineno", 1))
            if key in seen:
                continue
            seen.add(key)
            findings.append(
                _finding(
                    cls,
                    info,
                    node,
                    f"{detail}; CSR/shm-backed columns are shared read-only "
                    f"views — copy before writing",
                )
            )
        return findings


class ForkBoundaryHazard(FlowRule):
    id = "F304"
    name = "fork-boundary-hazard"
    severity = "error"
    summary = (
        "worker-side code writing supervisor-owned state: a second writer "
        "on a one-writer pipe, a worker-side shm unlink, or a fork-captured "
        "mutable mutated after the fork"
    )
    example_bad = (
        "from multiprocessing import Pipe, Process, shared_memory\n"
        "\n"
        "\n"
        "def worker(results, segment, cache):\n"
        "    cache[\"warm\"] = True  # expect: F304\n"
        "    shm = shared_memory.SharedMemory(name=segment)\n"
        "    results.send(bytes(shm.buf[:4]))\n"
        "    shm.unlink()  # expect: F304\n"
        "    shm.close()\n"
        "\n"
        "\n"
        "def launch(segment):\n"
        "    reader, writer = Pipe(duplex=False)\n"
        "    cache = {}\n"
        "    proc = Process(target=worker, args=(writer, segment, cache))\n"
        "    proc.start()\n"
        "    writer.send(b\"boot\")  # expect: F304\n"
        "    return reader.recv()\n"
    )
    example_good = (
        "from multiprocessing import Pipe, Process, shared_memory\n"
        "\n"
        "\n"
        "def worker(results, segment):\n"
        "    shm = shared_memory.SharedMemory(name=segment)\n"
        "    results.send(bytes(shm.buf[:4]))\n"
        "    shm.close()\n"
        "\n"
        "\n"
        "def launch(segment):\n"
        "    reader, writer = Pipe(duplex=False)\n"
        "    proc = Process(target=worker, args=(writer, segment))\n"
        "    proc.start()\n"
        "    writer.close()\n"
        "    payload = reader.recv()\n"
        "    reader.close()\n"
        "    return payload\n"
    )

    @classmethod
    def check(cls, model: ProjectModel) -> list:
        findings = []
        findings.extend(cls._worker_unlinks(model))
        findings.extend(cls._pipe_double_writers(model))
        findings.extend(cls._fork_captured_mutations(model))
        deduped = []
        seen = set()
        for finding in findings:
            key = (finding.path, finding.line, finding.message)
            if key not in seen:
                seen.add(key)
                deduped.append(finding)
        return deduped

    # -- worker-side unlink/unregister ----------------------------------

    @classmethod
    def _worker_unlinks(cls, model: ProjectModel) -> list:
        findings = []
        for qualname in sorted(model.topology.worker_side):
            info = model.functions.get(qualname)
            if info is None or not isinstance(
                info.node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            module = model.modules[info.module]
            shm_vars = cls._shm_assigned_names(module, info)
            for node in ast.walk(info.node):
                if not (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                ):
                    continue
                attr = node.func.attr
                if attr == "unregister":
                    qual = _expanded(module, _dotted(node.func)) or ""
                    if "resource_tracker" in qual:
                        findings.append(
                            _finding(
                                cls,
                                info,
                                node,
                                "worker-side resource_tracker.unregister() on "
                                "a shared segment the supervisor owns — only "
                                "the publishing process may unregister",
                            )
                        )
                    continue
                if attr != "unlink":
                    continue
                receiver = node.func.value
                text = (_dotted(receiver) or "").lower()
                root = text.partition(".")[0]
                if "shm" in text or "shared" in text or root in shm_vars:
                    findings.append(
                        _finding(
                            cls,
                            info,
                            node,
                            "worker-side unlink of a shared-memory segment "
                            "the supervisor owns — workers attach and close; "
                            "only the publisher unlinks",
                        )
                    )
        return findings

    @staticmethod
    def _shm_assigned_names(module, info: FunctionInfo) -> set:
        """Names bound from a SharedMemory-ish constructor in this body."""
        names = set()
        for node in ast.walk(info.node):
            if not (isinstance(node, ast.Assign) and isinstance(node.value, ast.Call)):
                continue
            qual = _expanded(module, _dotted(node.value.func)) or ""
            if "SharedMemory" in qual or "shared_memory" in qual:
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id.lower())
        return names

    # -- one-writer pipe discipline -------------------------------------

    @classmethod
    def _pipe_double_writers(cls, model: ProjectModel) -> list:
        ends: list[dict] = []
        for module in model.modules.values():
            for info, body in model._enclosing_functions(module):
                wrapper = ast.Module(body=list(body), type_ignores=[])
                for node in ast.walk(wrapper):
                    if not (
                        isinstance(node, ast.Assign)
                        and isinstance(node.value, ast.Call)
                        and _dotted(node.value.func) is not None
                        and _dotted(node.value.func).rpartition(".")[2] == "Pipe"
                        and len(node.targets) == 1
                        and isinstance(node.targets[0], (ast.Tuple, ast.List))
                        and len(node.targets[0].elts) == 2
                    ):
                        continue
                    duplex = True
                    for keyword in node.value.keywords:
                        if keyword.arg == "duplex" and isinstance(
                            keyword.value, ast.Constant
                        ):
                            duplex = bool(keyword.value.value)
                    elements = node.targets[0].elts
                    writers = elements if duplex else [elements[1]]
                    for element in writers:
                        identity = cls._end_identity(module, info, element)
                        if identity is not None:
                            ends.append(
                                {
                                    "identity": identity,
                                    "owner": "supervisor",
                                    "module": module.name,
                                    "created_in": info.qualname,
                                }
                            )
        if not ends:
            return []
        by_identity = {end["identity"]: end for end in ends}
        aliases: dict = {}  # ("param", target_qualname, param) -> end
        for site in model.topology.spawn_sites:
            for param, arg in site.bindings:
                identity = cls._end_identity(
                    model.modules[site.caller.module], site.caller, arg
                )
                end = by_identity.get(identity) if identity else None
                if end is not None:
                    end["owner"] = "worker"
                    aliases[("param", site.target.qualname, param)] = end
        findings = []
        for module in model.modules.values():
            for info, body in model._enclosing_functions(module):
                side = (
                    "worker"
                    if info.qualname in model.topology.worker_side
                    else "supervisor"
                )
                wrapper = ast.Module(body=list(body), type_ignores=[])
                for node in ast.walk(wrapper):
                    if not (
                        isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Attribute)
                        and node.func.attr == "send"
                    ):
                        continue
                    end = cls._end_for_receiver(
                        module, info, node.func.value, by_identity, aliases
                    )
                    if end is None or end["owner"] == side:
                        continue
                    if end["owner"] == "worker":
                        message = (
                            "supervisor-side send() on a pipe end handed to a "
                            "worker at fork — a second writer on a one-writer "
                            "pipe interleaves frames"
                        )
                    else:
                        message = (
                            "worker-side send() on a supervisor-owned pipe "
                            "end — a second writer on a one-writer pipe "
                            "interleaves frames"
                        )
                    findings.append(_finding(cls, info, node, message))
        return findings

    @staticmethod
    def _end_identity(module, info: FunctionInfo, node: ast.AST):
        if isinstance(node, ast.Name):
            return ("local", info.qualname, node.id)
        if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
            return ("attr", module.name, node.attr)
        return None

    @classmethod
    def _end_for_receiver(cls, module, info, receiver, by_identity, aliases):
        if isinstance(receiver, ast.Name):
            end = by_identity.get(("local", info.qualname, receiver.id))
            if end is not None:
                return end
            return aliases.get(("param", info.qualname, receiver.id))
        if isinstance(receiver, ast.Attribute) and isinstance(
            receiver.value, ast.Name
        ):
            return by_identity.get(("attr", module.name, receiver.attr))
        return None

    # -- fork-captured mutables -----------------------------------------

    @classmethod
    def _fork_captured_mutations(cls, model: ProjectModel) -> list:
        analysis = FlowAnalysis.of(model)
        findings = []
        for site in model.topology.spawn_sites:
            if site.kind != "process":
                continue
            caller_module = model.modules[site.caller.module]
            for param, arg in site.bindings:
                if not isinstance(arg, ast.Name):
                    continue
                if not cls._is_mutable_origin(caller_module, site.caller, arg.id):
                    continue
                target = site.target
                if param not in analysis.summary_for(target).mutates:
                    continue
                for node, message in cls._mutation_sites(model, target, param):
                    findings.append(_finding(cls, target, node, message))
        return findings

    @staticmethod
    def _is_mutable_origin(module, info: FunctionInfo, name: str) -> bool:
        body = info.node if isinstance(info.node, ast.AST) else None
        if body is None:
            return False
        for node in ast.walk(body):
            if not isinstance(node, ast.Assign):
                continue
            for target in node.targets:
                if not (isinstance(target, ast.Name) and target.id == name):
                    continue
                value = node.value
                if isinstance(
                    value,
                    (ast.Dict, ast.List, ast.Set, ast.ListComp, ast.DictComp,
                     ast.SetComp),
                ):
                    return True
                if isinstance(value, ast.Call):
                    qual = _dotted(value.func) or ""
                    if qual.rpartition(".")[2] in _MUTABLE_FACTORIES:
                        return True
        return False

    @classmethod
    def _mutation_sites(cls, model: ProjectModel, info: FunctionInfo, param: str):
        """Yield ``(node, message)`` for each place ``param`` is mutated."""
        analysis = FlowAnalysis.of(model)
        base = (
            f"worker mutates {param!r}, a mutable captured at fork — the "
            f"write is invisible to the supervisor (send results over the "
            f"pipe instead)"
        )
        for node in ast.walk(info.node):
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    if isinstance(target, ast.Subscript):
                        root = target.value
                        while isinstance(root, (ast.Attribute, ast.Subscript)):
                            root = root.value
                        if isinstance(root, ast.Name) and root.id == param:
                            yield node, base
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in MUTATOR_METHODS
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == param
            ):
                yield node, base
        for edge in model.calls_by_caller.get(info.qualname, ()):
            if edge.callee is None:
                continue
            for bound_param, expr in model.bind_arguments(edge.call, edge.callee):
                if (
                    isinstance(expr, ast.Name)
                    and expr.id == param
                    and bound_param in analysis.summary_for(edge.callee).mutates
                ):
                    yield edge.call, base


FLOW_RULES = (SeedLaundering, NondetDigestInput, SharedArrayMutation, ForkBoundaryHazard)
