"""``repro lint --plugins``: lint the resolved algorithm registry.

Third-party scenarios register through entry points or ``REPRO_PLUGINS``
(see :mod:`repro.api.algorithms`), so their driver source never sits under
a path the user would pass to ``repro lint``.  This mode closes the gap:
it runs plugin discovery, resolves every registered
:class:`~repro.api.algorithms.AlgorithmSpec` to its driver (and oracle)
source files, and lints each file once — the same determinism gate the
built-ins get, applied to whatever the registry actually loaded.

Resolution failures are findings, not crashes: a spec whose entry point
does not import is reported as :data:`RESOLVE_RULE_ID` so a broken plugin
fails the lint gate loudly instead of vanishing from the sweep catalog.
"""

from __future__ import annotations

from .engine import Finding, lint_file

__all__ = ["RESOLVE_RULE_ID", "lint_plugins"]

#: Pseudo-rule id for specs whose driver/oracle cannot be resolved.
RESOLVE_RULE_ID = "X200"


def lint_plugins(
    *,
    select: tuple | None = None,
    ignore: tuple | None = None,
) -> tuple:
    """Lint every registered algorithm's source; ``(findings, checked)``.

    Runs :func:`repro.api.algorithms.discover` first (forced, so a fresh
    ``REPRO_PLUGINS`` value takes effect even after an earlier discovery),
    then maps each registered spec to source files via
    :meth:`AlgorithmSpec.source_paths` and lints each file once.  The
    returned ``checked`` list pairs each file with the specs it backs,
    as ``"path (algorithms: a, b)"`` strings, so the CLI can show which
    algorithms a finding implicates.
    """
    from ..api.algorithms import discover, list_algorithm_specs

    # Registration is an import side effect: built-in specs live in
    # repro.api.drivers, built-in scenarios in repro.sim.experiments.
    # Import both so --plugins sees exactly the registry a sweep would.
    from ..api import drivers as _builtin_drivers  # noqa: F401
    from ..sim import experiments as _builtin_scenarios  # noqa: F401

    findings: list[Finding] = []
    discover(force=True)
    sources: dict[str, list[str]] = {}
    for spec in list_algorithm_specs():
        try:
            paths = spec.source_paths()
        except Exception as exc:
            findings.append(
                Finding(
                    rule=RESOLVE_RULE_ID,
                    name="unresolvable-spec",
                    severity="error",
                    path=f"<registry:{spec.name}>",
                    line=1,
                    col=0,
                    message=(
                        f"algorithm {spec.name!r} "
                        f"(entry point {spec.entry_point!r}) failed to "
                        f"resolve: {exc}"
                    ),
                )
            )
            continue
        for path in paths:
            sources.setdefault(path, []).append(spec.name)
    checked: list[str] = []
    for path in sorted(sources):
        names = ", ".join(sorted(sources[path]))
        checked.append(f"{path} (algorithms: {names})")
        findings.extend(lint_file(path, select=select, ignore=ignore))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings, checked
