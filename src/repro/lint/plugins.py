"""``repro lint --plugins``: lint the resolved algorithm registry.

Third-party scenarios register through entry points or ``REPRO_PLUGINS``
(see :mod:`repro.api.algorithms`), so their driver source never sits under
a path the user would pass to ``repro lint``.  This mode closes the gap:
it runs plugin discovery, resolves every registered
:class:`~repro.api.algorithms.AlgorithmSpec` to its driver (and oracle)
source files, and lints each file once — the same determinism gate the
built-ins get, applied to whatever the registry actually loaded.

Resolution failures are findings, not crashes: a spec whose entry point
does not import is reported as :data:`RESOLVE_RULE_ID` so a broken plugin
fails the lint gate loudly instead of vanishing from the sweep catalog.
"""

from __future__ import annotations

import ast
from pathlib import Path

from .engine import Finding, _analyze_source, _flow_findings

__all__ = ["RESOLVE_RULE_ID", "lint_plugins"]

#: Pseudo-rule id for specs whose driver/oracle cannot be resolved.
RESOLVE_RULE_ID = "X200"


def _library_context(exclude: set) -> list:
    """``(path, source, tree)`` triples for the repro package itself.

    Plugin drivers call into ``repro.*`` (runners, metrics, graph API);
    feeding the library to the project model lets the flow pass resolve
    those calls and read real summaries instead of treating every library
    call as an unresolved edge.  Findings anchored in these files are
    dropped by :func:`_flow_findings` — ``--plugins`` reports on the
    plugins, not on the library they link against.
    """
    import repro

    package_root = Path(repro.__file__).parent
    triples = []
    for path in sorted(package_root.rglob("*.py")):
        if str(path.resolve()) in exclude:
            continue
        try:
            source = path.read_text(encoding="utf-8")
            tree = ast.parse(source)
        except (OSError, SyntaxError):
            continue
        triples.append((str(path), source, tree))
    return triples


def lint_plugins(
    *,
    select: tuple | None = None,
    ignore: tuple | None = None,
    flow: bool = True,
    stats: dict | None = None,
) -> tuple:
    """Lint every registered algorithm's source; ``(findings, checked)``.

    Runs :func:`repro.api.algorithms.discover` first (forced, so a fresh
    ``REPRO_PLUGINS`` value takes effect even after an earlier discovery),
    then maps each registered spec to source files via
    :meth:`AlgorithmSpec.source_paths` and lints each file once.  The
    returned ``checked`` list pairs each file with the specs it backs,
    as ``"path (algorithms: a, b)"`` strings, so the CLI can show which
    algorithms a finding implicates.

    With ``flow`` on, all resolved driver files form one project and the
    F rules run over it, with the repro package itself loaded as symbol
    context — a plugin that launders its seed through a library helper is
    still caught, but findings are only ever anchored in plugin files.
    """
    from ..api.algorithms import discover, list_algorithm_specs

    # Registration is an import side effect: built-in specs live in
    # repro.api.drivers, built-in scenarios in repro.sim.experiments.
    # Import both so --plugins sees exactly the registry a sweep would.
    from ..api import drivers as _builtin_drivers  # noqa: F401
    from ..sim import experiments as _builtin_scenarios  # noqa: F401

    findings: list[Finding] = []
    discover(force=True)
    sources: dict[str, list[str]] = {}
    for spec in list_algorithm_specs():
        try:
            paths = spec.source_paths()
        except Exception as exc:
            findings.append(
                Finding(
                    rule=RESOLVE_RULE_ID,
                    name="unresolvable-spec",
                    severity="error",
                    path=f"<registry:{spec.name}>",
                    line=1,
                    col=0,
                    message=(
                        f"algorithm {spec.name!r} "
                        f"(entry point {spec.entry_point!r}) failed to "
                        f"resolve: {exc}"
                    ),
                )
            )
            continue
        for path in paths:
            sources.setdefault(path, []).append(spec.name)
    checked: list[str] = []
    records: list[dict] = []
    for path in sorted(sources):
        names = ", ".join(sorted(sources[path]))
        checked.append(f"{path} (algorithms: {names})")
        text = Path(path).read_text(encoding="utf-8")
        record = _analyze_source(text, path, select, ignore)
        findings.extend(record["findings"])
        records.append(record)
    if flow and records:
        flow_stats: dict = {}
        linted = {str(Path(r["path"]).resolve()) for r in records}
        extra = _library_context(exclude=linted)
        findings.extend(
            _flow_findings(
                records, select, ignore, extra_files=extra, stats=flow_stats
            )
        )
        if stats is not None:
            stats["flow"] = flow_stats
    elif stats is not None:
        stats["flow"] = None
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings, checked
