"""Pinned benchmark workloads and the ``BENCH.json`` perf tracker.

The experiment benchmarks under ``benchmarks/`` assert *shape* claims and
record tables; this module pins the exact workloads of the fast subset
(E2 CSSP time, E6 low-energy BFS, E8 baseline showdown, plus the CI smoke
sweep) as importable functions so that

* the pytest benchmarks and ``python -m repro bench`` time the *same* code
  paths (numbers stay comparable across harnesses), and
* every PR can refresh ``BENCH.json`` — a flat ``{experiment: median_ms}``
  map — so the perf trajectory is tracked in-repo, PR over PR.

``python -m repro bench`` runs the subset and writes ``BENCH.json``;
``python -m repro bench --quick`` runs one repetition and exits non-zero if
any experiment regressed beyond a factor (default 2x) of the recorded
baseline — the perf smoke gate used by tier-2 CI.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from statistics import median

from . import graphs, cssp, sssp, run_bellman_ford, run_distributed_dijkstra
from .analysis import fit_power_law
from .energy.covers import build_layered_cover
from .energy.low_energy_bfs import run_low_energy_bfs
from .sim import Metrics

__all__ = [
    "e2_sweep",
    "e6_sweep",
    "e8_sweep",
    "smoke",
    "WORKLOADS",
    "DEFAULT_EXPERIMENTS",
    "run_bench",
    "bench_provenance",
    "write_bench",
    "load_bench",
    "compare_to_baseline",
]

#: Pinned sizes — identical to the benchmarks' sweeps.
E2_SIZES = [16, 24, 32, 48, 64]
E6_SIZES = [16, 32, 64, 128]
E8_SIZES = [16, 24, 32, 48]


# ----------------------------------------------------------------------
# E2 — CSSP time scaling (Thm 2.6)
# ----------------------------------------------------------------------
def e2_measure(family: str, n: int, zero_weights: bool = False):
    g = graphs.make_family(family, n)
    g = graphs.random_weights(g, 9, seed=n, min_weight=0 if zero_weights else 1)
    m = Metrics()
    cssp(g, {next(iter(g.nodes())): 0}, metrics=m)
    return g.num_nodes, m


def e2_sweep():
    rows = []
    fits = {}
    for family in ("path", "grid", "er"):
        ns, rounds = [], []
        for n in E2_SIZES:
            real_n, m = e2_measure(family, n)
            ns.append(real_n)
            rounds.append(m.rounds)
            rows.append([family, real_n, m.rounds, m.total_messages, m.max_congestion])
        fits[family] = fit_power_law(ns, rounds)
    return rows, fits


# ----------------------------------------------------------------------
# E6 — low-energy BFS time/energy on paths (Thms 3.8/3.13)
# ----------------------------------------------------------------------
def e6_measure(n: int) -> dict:
    g = graphs.path_graph(n)
    cover = build_layered_cover(g, n, base=4, stretch=3)
    m = Metrics()
    dist, sched = run_low_energy_bfs(g, cover, {0: 0}, n, metrics=m)
    assert dist == g.hop_distances([0])
    total_roles: dict = {}
    for cov in cover.levels:
        for c in cov.clusters:
            for u in c.tree_parent:
                total_roles[u] = total_roles.get(u, 0) + 1
    max_roles = max(total_roles.values())
    mega_wakes = m.max_energy // sched.omega
    return {
        "n": n,
        "D": n - 1,
        "rounds": m.rounds,
        "sigma": sched.sigma,
        "omega": sched.omega,
        "energy": m.max_energy,
        "mega_wakes": mega_wakes,
        "max_roles": max_roles,
        "wakes_per_role": round(mega_wakes / max_roles, 1),
        "awake_fraction": round(m.max_energy / m.rounds, 3),
    }


def e6_sweep():
    return [e6_measure(n) for n in E6_SIZES]


# ----------------------------------------------------------------------
# E8 — baseline showdown (Section 1.1)
# ----------------------------------------------------------------------
def e8_sweep():
    rows = []
    summary = []
    for n in E8_SIZES:
        g = graphs.random_weights(
            graphs.random_connected_graph(n, extra_edge_prob=4.0 / n, seed=n), 9, seed=n
        )
        res = sssp(g, 0)
        m_bf, m_dij = Metrics(), Metrics()
        run_bellman_ford(g, 0, metrics=m_bf)
        run_distributed_dijkstra(g, 0, metrics=m_dij)
        for name, m in (
            ("cssp-sssp", res.metrics), ("bellman-ford", m_bf), ("dijkstra", m_dij)
        ):
            rows.append([n, name, m.rounds, m.total_messages, m.max_congestion])
        summary.append((n, res.metrics, m_bf, m_dij))
    return rows, summary


def smoke():
    from .sim.experiments import smoke_sweep

    return smoke_sweep()


WORKLOADS = {"E2": e2_sweep, "E6": e6_sweep, "E8": e8_sweep, "smoke": smoke}
DEFAULT_EXPERIMENTS = ("E2", "E6", "E8", "smoke")


# ----------------------------------------------------------------------
# timing + persistence
# ----------------------------------------------------------------------
def run_bench(
    experiments: tuple | list | None = None, repeats: int = 3
) -> dict[str, float]:
    """Time each pinned workload ``repeats`` times; return median ms each."""
    names = list(experiments) if experiments is not None else list(DEFAULT_EXPERIMENTS)
    results: dict[str, float] = {}
    for name in names:
        try:
            workload = WORKLOADS[name]
        except KeyError:
            raise ValueError(
                f"unknown experiment {name!r}; options: {sorted(WORKLOADS)}"
            ) from None
        times = []
        for _ in range(max(1, repeats)):
            start = time.perf_counter()
            workload()
            times.append((time.perf_counter() - start) * 1000.0)
        results[name] = round(median(times), 1)
    return results


def bench_provenance(backend: str | None = None) -> dict:
    """Provenance recorded alongside a refreshed baseline (``"_meta"``).

    Answers "what produced these numbers" when a later gate run trips:
    the resolved dispatch backend, the interpreter, and the numpy the
    kernels saw (``None`` on a scalar-only box).  Provenance is metadata,
    never a compared quantity — :func:`compare_to_baseline` only looks at
    numeric entries, so old baselines without it and new ones with it
    gate identically.
    """
    import platform
    import sys

    from . import __version__
    from .sim.kernels import current_backend, numpy_or_none, use_backend

    with use_backend(backend):
        active = current_backend()
    np = numpy_or_none()
    return {
        "backend": active,
        "engines": ["round", "event"],
        "numpy": getattr(np, "__version__", None),
        "platform": sys.platform,
        "python": platform.python_version(),
        "version": __version__,
    }


def write_bench(
    results: dict[str, float],
    path: str | Path = "BENCH.json",
    meta: dict | None = None,
) -> Path:
    """Persist ``{experiment: median_ms}`` (the PR-over-PR perf record).

    ``meta`` lands under the ``"_meta"`` key — a non-numeric entry the
    gate comparator skips by construction.
    """
    target = Path(path)
    payload = dict(results)
    if meta is not None:
        payload["_meta"] = meta
    target.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return target


def load_bench(path: str | Path = "BENCH.json") -> dict[str, float] | None:
    """Read a recorded ``BENCH.json``; ``None`` when absent or unreadable."""
    target = Path(path)
    if not target.is_file():
        return None
    try:
        data = json.loads(target.read_text())
    except (OSError, ValueError):
        return None
    return data if isinstance(data, dict) else None


def compare_to_baseline(
    current: dict[str, float],
    baseline: dict[str, float],
    *,
    factor: float = 2.0,
) -> list[str]:
    """Regression report: experiments slower than ``factor`` x the baseline.

    Returns human-readable violation lines (empty = within budget).  Only
    experiments present in both maps are compared.
    """
    violations = []
    for name, current_ms in sorted(current.items()):
        recorded = baseline.get(name)
        if not isinstance(recorded, (int, float)) or recorded <= 0:
            continue
        if current_ms > factor * recorded:
            violations.append(
                f"{name}: {current_ms:.0f}ms > {factor:g}x recorded {recorded:.0f}ms"
            )
    return violations
