"""Routing on top of distances: tree extraction, paths, and verification.

The CSSP recursion computes *distances*; routing needs *predecessors*.  In
the CONGEST model these are one round away: every node tells its neighbors
its distance, and each node picks a neighbor ``u`` with
``dist(v) == dist(u) + w(u, v)`` as its parent toward the sources.  That
exchange doubles as a *distributed verifier*: the distances are exactly
the closest-source distances iff

* every source ``s`` has ``dist(s) <= offset(s)`` and every node is
  "supported" (a source achieving its offset, or some neighbor with
  ``dist(u) + w = dist(v)``), and
* no edge is "tense" (``dist(v) > dist(u) + w(u, v)``).

Both directions are checked locally per node, so the verification is a
genuine self-check a deployment could run — and the test suite uses it as
an oracle-free cross-check of every algorithm in the library.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..graphs import Graph, INFINITY
from ..sim import Context, Metrics, Mode, NodeAlgorithm, make_runner
from .trees import RootedForest

__all__ = [
    "RoutingTree",
    "build_shortest_path_tree",
    "extract_path",
    "verify_distances",
    "VerificationReport",
]


class _DistanceExchange(NodeAlgorithm):
    """One-round exchange of distance values with all neighbors."""

    def __init__(self, node: object, dist: float) -> None:
        self.node = node
        self.dist = dist
        self.neighbor_dist: dict = {}

    def on_round(self, ctx: Context, inbox: list[tuple[object, object]]) -> None:
        for sender, d in inbox:
            self.neighbor_dist[sender] = d
        if ctx.round == 0:
            if self.dist != INFINITY:
                ctx.broadcast(self.dist)
            ctx.wake_at(1)
            return
        ctx.halt()


def _exchange(graph: Graph, distances: dict, metrics: Metrics | None) -> dict:
    algorithms = {u: _DistanceExchange(u, distances[u]) for u in graph.nodes()}
    make_runner(graph, algorithms, Mode.CONGEST, metrics=metrics).run()
    return {u: algorithms[u].neighbor_dist for u in graph.nodes()}


@dataclass
class RoutingTree:
    """A shortest-path forest: parent pointers toward the closest source."""

    parent: dict
    distances: dict

    def as_forest(self) -> RootedForest:
        return RootedForest({
            u: p for u, p in self.parent.items()
        })

    def next_hop(self, v: object) -> object:
        """The neighbor to forward to when routing from ``v`` to a source."""
        return self.parent[v]


def build_shortest_path_tree(
    graph: Graph,
    distances: dict,
    sources: dict | None = None,
    *,
    metrics: Metrics | None = None,
) -> RoutingTree:
    """Derive predecessor pointers from exact distances in one round.

    ``distances`` must be exact closest-source distances (e.g. the output
    of :func:`repro.core.cssp.cssp`).  Sources and unreachable nodes get
    parent ``None``.  Ties break toward the smallest neighbor key, so the
    tree is deterministic.
    """
    neighbor_dist = _exchange(graph, distances, metrics)
    source_set = set(sources or ())
    parent: dict = {}
    for v in graph.nodes():
        dv = distances[v]
        if dv == INFINITY:
            parent[v] = None
            continue
        if v in source_set and (sources is None or sources[v] == dv):
            parent[v] = None
            continue
        candidates = [
            u
            for u, du in neighbor_dist[v].items()
            if du != INFINITY and du + graph.weight(u, v) == dv
        ]
        if not candidates:
            if dv == 0:
                parent[v] = None  # implicit source at distance zero
                continue
            raise ValueError(
                f"distances are not consistent at {v!r}: no supporting neighbor"
            )
        parent[v] = min(candidates, key=repr)
    return RoutingTree(parent=parent, distances=dict(distances))


def extract_path(tree: RoutingTree, v: object) -> list:
    """The shortest path from ``v`` back to its source (inclusive)."""
    if tree.distances.get(v, INFINITY) == INFINITY:
        raise ValueError(f"{v!r} is unreachable; no path exists")
    path = [v]
    seen = {v}
    while tree.parent[path[-1]] is not None:
        nxt = tree.parent[path[-1]]
        if nxt in seen:
            raise ValueError("cycle in routing tree — distances were inconsistent")
        seen.add(nxt)
        path.append(nxt)
    return path


@dataclass
class VerificationReport:
    """Outcome of the distributed distance verification."""

    valid: bool
    tense_edges: list = field(default_factory=list)
    unsupported_nodes: list = field(default_factory=list)
    bad_sources: list = field(default_factory=list)

    def __bool__(self) -> bool:
        return self.valid


def verify_distances(
    graph: Graph,
    sources: dict,
    distances: dict,
    *,
    metrics: Metrics | None = None,
) -> VerificationReport:
    """Distributedly verify that ``distances`` solve the CSSP instance.

    One exchange round; every check is node-local afterwards.  Exactness
    characterization (for connected reachability): no tense edge, every
    finite node supported, every source at most its offset, and every
    node adjacent to a finite node is finite.
    """
    neighbor_dist = _exchange(graph, distances, metrics)
    tense: list = []
    unsupported: list = []
    bad_sources: list = []

    for s, offset in sources.items():
        if distances[s] == INFINITY or distances[s] > offset:
            bad_sources.append((s, distances[s], offset))

    for v in graph.nodes():
        dv = distances[v]
        for u, du in neighbor_dist[v].items():
            if du != INFINITY:
                w = graph.weight(u, v)
                if dv == INFINITY or dv > du + w:
                    tense.append((u, v, du, dv, w))
        if dv == INFINITY:
            continue
        supported = v in sources and sources[v] == dv
        if not supported:
            supported = any(
                du != INFINITY and du + graph.weight(u, v) == dv
                for u, du in neighbor_dist[v].items()
            )
        if not supported:
            unsupported.append((v, dv))

    valid = not tense and not unsupported and not bad_sources
    return VerificationReport(
        valid=valid,
        tense_edges=tense,
        unsupported_nodes=unsupported,
        bad_sources=bad_sources,
    )
