"""The paper's Section 1-2 algorithms: BFS, cutter, Boruvka, CSSP, SSSP, APSP."""

from .bfs import WeightedBFS, run_bfs, run_weighted_bfs
from .boruvka import (
    BoruvkaNode,
    boruvka_phase_count,
    boruvka_round_bound,
    build_maximal_forest,
)
from .cutter import approx_cssp, cutter_quantum
from .cssp import cssp, distance_upper_bound, thresholded_cssp
from .sssp import SSSPResult, sssp, sssp_distances
from .apsp import APSPResult, ScheduleReport, apsp, schedule_with_random_delays
from .paths import (
    RoutingTree,
    VerificationReport,
    build_shortest_path_tree,
    extract_path,
    verify_distances,
)
from .trees import (
    ConvergecastBroadcast,
    RootedForest,
    bfs_forest,
    run_convergecast_broadcast,
)

__all__ = [
    "RoutingTree",
    "VerificationReport",
    "build_shortest_path_tree",
    "extract_path",
    "verify_distances",
    "WeightedBFS",
    "run_bfs",
    "run_weighted_bfs",
    "BoruvkaNode",
    "boruvka_phase_count",
    "boruvka_round_bound",
    "build_maximal_forest",
    "approx_cssp",
    "cutter_quantum",
    "cssp",
    "distance_upper_bound",
    "thresholded_cssp",
    "SSSPResult",
    "sssp",
    "sssp_distances",
    "APSPResult",
    "ScheduleReport",
    "apsp",
    "schedule_with_random_delays",
    "ConvergecastBroadcast",
    "RootedForest",
    "bfs_forest",
    "run_convergecast_broadcast",
]
