"""Closest-Source Shortest Paths: the paper's Section 2 algorithm.

``D``-thresholded CSSP (Definition 2.3): given sources ``S``, every node
``v`` with ``dist(S, v) <= D`` outputs its exact distance; every other node
outputs infinity.  Plain CSSP is the ``D``-thresholded problem with
``D = 2^L >= n * max_weight`` (an upper bound on any finite distance).

The recursion (Section 2.3), implemented here phase-by-phase with every
phase an actual simulated distributed protocol whose rounds / messages /
congestion accrue into one shared :class:`~repro.sim.Metrics`:

1. base case ``D <= 1``: a threshold-1 weighted BFS (two rounds);
2. spanning trees of all connected components via distributed Boruvka
   (Theorem 2.2) — the coordination skeleton;
3. the **approximate cutter** (Lemma 2.1) with ``eps = 0.5`` and ``W = D``
   marks ``V1``, a superset of all nodes within distance ``D``;
4. recurse with threshold ``D1 = D/2`` on the graph induced by ``V1``;
   then one convergecast + broadcast per component tree implements the
   paper's "is everyone done / start at round X" coordination (step 4);
5. ``V2`` = nodes that learned an exact distance ``<= D1``.  Each edge
   ``(v, u)`` with ``v`` in ``V2`` and ``u`` in ``V1 \\ V2`` spawns the
   paper's imaginary cut node ``x_vu`` at distance ``D1`` from the sources;
   since ``x_vu`` only ever talks to ``u``, it is realized as a *source
   offset* ``dist1(v) + w(v, u) - D1`` on the real node ``u`` — exactly the
   simulation the paper describes in step 6;
6. recurse with threshold ``D1`` on ``V1 \\ V2`` with those offset sources;
   ``dist(S, u) = D1 + dist(X, u)`` stitches the answers together.

Theorem 2.7's zero-weight extension contracts every zero-weight component
(via Boruvka on the zero-subgraph) to a supernode before the recursion, and
broadcasts results back through the contraction trees afterwards.

Each recursive subproblem also records *participation* per node, which
experiment E5 checks against Lemma 2.4's ``O(log D)`` bound.
"""

from __future__ import annotations

import math

from ..graphs import Graph, INFINITY
from ..sim import Metrics
from .bfs import run_weighted_bfs
from .boruvka import build_maximal_forest
from .cutter import approx_cssp
from .trees import run_convergecast_broadcast

__all__ = ["cssp", "thresholded_cssp", "distance_upper_bound"]

#: The paper's choice in Section 2.3, step 3.
DEFAULT_EPS = 0.5


def distance_upper_bound(graph: Graph) -> int:
    """Smallest power of two ``>= n * max_weight`` (Section 2.3's ``D``)."""
    bound = graph.weighted_diameter_upper_bound()
    return 1 << max(0, math.ceil(math.log2(bound)))


def cssp(
    graph: Graph,
    sources,
    *,
    eps: float = DEFAULT_EPS,
    metrics: Metrics | None = None,
) -> tuple[dict, Metrics]:
    """Exact closest-source distances ``dist(S, v)`` for every node.

    ``sources`` is an iterable of source nodes, or a mapping
    source -> nonnegative integer offset (offsets support the recursion and
    arbitrary "virtual source" use cases).  Nonnegative integer weights;
    zero-weight edges are handled by contraction (Theorem 2.7).

    Returns ``(distances, metrics)``; unreachable nodes map to ``INFINITY``.
    """
    metrics = metrics if metrics is not None else Metrics()
    source_offsets = dict(sources) if isinstance(sources, dict) else {s: 0 for s in sources}
    for s in source_offsets:
        if s not in graph:
            raise KeyError(f"source {s!r} is not a node of the graph")
    if graph.num_nodes == 0:
        return {}, metrics
    if not source_offsets:
        return {u: INFINITY for u in graph.nodes()}, metrics

    if graph.num_edges and graph.min_weight() == 0:
        distances = _cssp_with_zero_weights(graph, source_offsets, eps, metrics)
        return distances, metrics

    bound = distance_upper_bound(graph)
    extra = max(source_offsets.values(), default=0)
    while bound < extra + graph.weighted_diameter_upper_bound():
        bound *= 2
    distances = _thresholded_recursive(
        graph, source_offsets, bound, eps=eps, metrics=metrics
    )
    return distances, metrics


def thresholded_cssp(
    graph: Graph,
    sources: dict,
    threshold: int,
    *,
    eps: float = DEFAULT_EPS,
    metrics: Metrics | None = None,
) -> dict:
    """``threshold``-thresholded CSSP (Definition 2.3) on positive weights.

    Every node with ``dist(S, v) <= threshold`` maps to its exact distance;
    all others map to ``INFINITY``.

    The recursion's distance algebra (``dist = D1 + dist(X, .)`` with
    ``D = 2 * D1``) needs the internal threshold to be a power of two — the
    paper runs with ``D = 2^L``.  Arbitrary thresholds are supported by
    rounding up to the next power of two and clipping the output.
    """
    metrics = metrics if metrics is not None else Metrics()
    if threshold < 0:
        raise ValueError(f"threshold must be >= 0, got {threshold}")
    pow2 = 1 << max(0, math.ceil(math.log2(max(1, threshold))))
    raw = _thresholded_recursive(graph, sources, pow2, eps=eps, metrics=metrics)
    return {
        u: (d if d != INFINITY and d <= threshold else INFINITY) for u, d in raw.items()
    }


def _thresholded_recursive(
    graph: Graph,
    sources: dict,
    threshold: int,
    *,
    eps: float,
    metrics: Metrics,
    cutter=None,
) -> dict:
    """The Section 2.3 recursion proper; ``threshold`` is a power of two.

    ``cutter`` is the approximate-cutter strategy with the signature of
    :func:`repro.core.cutter.approx_cssp`; the energy-model CSSP (Theorem
    3.15) injects its sleeping-model cutter here and reuses the entire
    recursion unchanged.
    """
    if cutter is None:
        cutter = approx_cssp
    if graph.num_nodes == 0:
        return {}
    for u in graph.nodes():
        metrics.record_participation(u)
    if not sources:
        return {u: INFINITY for u in graph.nodes()}

    if threshold <= 1:
        # Base case: only sources and their weight-1 / offset-compatible
        # neighbors can be within distance 1 — one BFS exchange settles it.
        return run_weighted_bfs(graph, sources, max(0, threshold), metrics=metrics)

    half = threshold // 2

    # Step 2: per-component rooted spanning trees (coordination skeleton).
    forest = build_maximal_forest(graph, metrics=metrics)

    # Step 3: approximate cutter with eps and W = threshold.
    approx = cutter(graph, sources, eps, threshold, metrics=metrics)
    v1 = {u for u, d in approx.items() if d < threshold + eps * threshold}

    # Step 4: recurse on V1 with threshold D/2.  When the cutter keeps
    # every node (the common case near the top of the recursion), reuse the
    # graph object itself — its cached IndexedGraph view and node views
    # carry over to every phase of the subproblem.
    sub1 = graph if len(v1) == graph.num_nodes else graph.induced_subgraph(v1)
    sources1 = {s: off for s, off in sources.items() if s in v1}
    dist1 = _thresholded_recursive(
        sub1, sources1, half, eps=eps, metrics=metrics, cutter=cutter
    )

    # Per-component "everyone done?" convergecast + start-round broadcast.
    # Components proceed independently (non-sequential merge would be ideal;
    # we charge the max component size, the paper's Theta(|C|) start gap).
    done_flags = {u: (u not in v1) or (u in dist1) for u in graph.nodes()}
    run_convergecast_broadcast(graph, forest, done_flags, all, metrics=metrics)
    components = forest.components()
    if components:
        metrics.record_rounds(max(len(c) for c in components.values()))

    # Step 5: V2 and the imaginary cut nodes, realized as source offsets.
    v2 = {u for u, d in dist1.items() if d != INFINITY and d <= half}
    cut_sources: dict = {}
    for u in v1 - v2:
        best = INFINITY
        for v in graph.neighbors(u):
            if v in v2:
                candidate = dist1[v] + graph.weight(u, v) - half
                best = min(best, candidate)
        if best != INFINITY and best <= half:
            cut_sources[u] = int(best)
    # A source whose own offset exceeds D1 acts "beyond the cut": it must
    # re-enter the second recursion with its offset reduced by D1.  (At the
    # top level offsets are 0 and this never fires; inside the recursion it
    # is part of the multi-source coordination the paper alludes to in
    # Section 1.1's closing remarks on CSSP.)
    for s, offset in sources.items():
        if s in v1 and s not in v2 and offset > half:
            reduced = offset - half
            if reduced <= half:
                cut_sources[s] = min(cut_sources.get(s, reduced), reduced)

    # Step 6: recurse on V1 \ V2 from the cut.
    rest = v1 - v2
    sub2 = graph if len(rest) == graph.num_nodes else graph.induced_subgraph(rest)
    dist2 = _thresholded_recursive(
        sub2, cut_sources, half, eps=eps, metrics=metrics, cutter=cutter
    )

    result: dict = {}
    for u in graph.nodes():
        if u in v2:
            result[u] = dist1[u]
        elif u in rest and dist2.get(u, INFINITY) != INFINITY:
            result[u] = half + dist2[u]
        else:
            result[u] = INFINITY
    return result


def _cssp_with_zero_weights(
    graph: Graph, sources: dict, eps: float, metrics: Metrics
) -> dict:
    """Theorem 2.7: contract zero-weight components, solve, broadcast back.

    Nodes joined by zero-weight paths share a distance, so each zero
    component collapses to its Boruvka leader; the quotient graph keeps the
    minimum positive weight between any two supernodes.
    """
    zero_edges = [(u, v) for u, v, w in graph.edges() if w == 0]
    zero_graph = Graph.from_edges(zero_edges, nodes=graph.nodes())
    zero_forest = build_maximal_forest(zero_graph, metrics=metrics)
    leader = zero_forest.root_of

    quotient = Graph()
    for u in graph.nodes():
        quotient.add_node(leader[u])
    for u, v, w in graph.edges():
        lu, lv = leader[u], leader[v]
        if lu != lv:
            quotient.add_edge(lu, lv, w)  # add_edge keeps the min weight

    quotient_sources: dict = {}
    for s, offset in sources.items():
        ls = leader[s]
        quotient_sources[ls] = min(quotient_sources.get(ls, offset), offset)

    bound = distance_upper_bound(quotient)
    extra = max(quotient_sources.values(), default=0)
    while bound < extra + quotient.weighted_diameter_upper_bound():
        bound *= 2
    quotient_dist = _thresholded_recursive(
        quotient, quotient_sources, bound, eps=eps, metrics=metrics
    )

    # Broadcast each leader's distance back through its zero-weight tree.
    values = {u: (quotient_dist[u] if u in quotient_dist and leader[u] == u else None) for u in graph.nodes()}
    spread = run_convergecast_broadcast(
        graph,
        zero_forest,
        values,
        lambda vals: next((v for v in vals if v is not None), None),
        metrics=metrics,
    )
    out = {}
    for u in graph.nodes():
        d = spread[u]
        out[u] = INFINITY if d is None else d
    return out
