"""Rooted spanning forests and tree communication primitives.

The CSSP recursion (Section 2.3) coordinates each connected component through
a rooted spanning tree: convergecast to detect "everyone in my subtree is
done", then broadcast of the chosen start round.  This module provides the
forest data structure those protocols share, and message-level convergecast /
broadcast node algorithms for the CONGEST mode.

The energy-model periodic variants (Section 3.1.1, with wake periods tied to
node depth) live in :mod:`repro.energy.cluster_comm`; here the tree protocols
are the plain always-awake versions.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable, Iterable

from ..graphs import Graph
from ..sim import Context, Metrics, Mode, NodeAlgorithm, make_runner
from ..sim.kernels import WAKE_HALT, WAKE_IDLE, BatchKernel

__all__ = [
    "RootedForest",
    "bfs_forest",
    "ConvergecastBroadcast",
    "run_convergecast_broadcast",
]

#: Distinguishes "no result yet" from aggregates that are themselves None.
_UNSET = object()


class RootedForest:
    """A rooted spanning forest given by parent pointers.

    Each node has a parent (``None`` for roots); ``children``, ``depth`` and
    ``root_of`` are derived.  Used both as the output format of the
    distributed Boruvka algorithm and as the input to tree protocols.
    """

    def __init__(self, parent: dict) -> None:
        self.parent: dict = dict(parent)
        self.children: dict[object, list] = {u: [] for u in self.parent}
        for u, p in self.parent.items():
            if p is not None:
                if p not in self.children:
                    raise ValueError(f"parent {p!r} of {u!r} is not a node of the forest")
                self.children[p].append(u)
        for u in self.children:
            self.children[u].sort(key=repr)
        self.depth: dict[object, int] = {}
        self.root_of: dict[object, object] = {}
        for u in self.parent:
            if self.parent[u] is None:
                self._label_from_root(u)
        unlabeled = [u for u in self.parent if u not in self.depth]
        if unlabeled:
            raise ValueError(f"cycle or dangling parent pointers at {unlabeled[:5]}")

    def _label_from_root(self, root: object) -> None:
        self.depth[root] = 0
        self.root_of[root] = root
        queue = deque([root])
        while queue:
            u = queue.popleft()
            for c in self.children[u]:
                self.depth[c] = self.depth[u] + 1
                self.root_of[c] = root
                queue.append(c)

    @property
    def roots(self) -> list:
        return [u for u, p in self.parent.items() if p is None]

    def nodes(self) -> Iterable[object]:
        return self.parent.keys()

    def component(self, root: object) -> set:
        """All nodes in the tree rooted at ``root``."""
        return {u for u, r in self.root_of.items() if r == root}

    def components(self) -> dict[object, set]:
        """Mapping root -> node set for every tree of the forest."""
        out: dict[object, set] = {r: set() for r in self.roots}
        for u, r in self.root_of.items():
            out[r].add(u)
        return out

    def tree_depth(self, root: object) -> int:
        """Depth (max node depth) of the tree rooted at ``root``."""
        return max(self.depth[u] for u in self.component(root))

    def validate_against(self, graph: Graph) -> None:
        """Check every tree edge is a graph edge and the forest is spanning."""
        for u, p in self.parent.items():
            if p is not None and not graph.has_edge(u, p):
                raise ValueError(f"forest edge {u!r}-{p!r} is not in the graph")
        if set(self.parent) != set(graph.nodes()):
            raise ValueError("forest does not span the graph's node set")
        # Spanning also means: two nodes share a tree iff they share a
        # graph component (maximality).
        comp_of = {}
        for i, comp in enumerate(graph.connected_components()):
            for u in comp:
                comp_of[u] = i
        for u in self.parent:
            if comp_of[u] != comp_of[self.root_of[u]]:
                raise ValueError("tree crosses graph components")
        by_root: dict[object, set] = self.components()
        for root, members in by_root.items():
            graph_comp = {u for u in comp_of if comp_of[u] == comp_of[root]}
            if members != graph_comp:
                raise ValueError(
                    f"tree of {root!r} covers {len(members)} nodes but its "
                    f"graph component has {len(graph_comp)}"
                )


def bfs_forest(graph: Graph, roots: Iterable[object] | None = None) -> RootedForest:
    """Centrally computed BFS spanning forest (oracle/test helper).

    Not a distributed algorithm — production paths use the distributed
    Boruvka construction (:mod:`repro.core.boruvka`); this helper exists for
    unit tests and for setting up tree-protocol fixtures directly.
    """
    chosen_roots = list(roots) if roots is not None else []
    seen: set = set()
    parent: dict = {}
    order = chosen_roots + sorted((u for u in graph.nodes()), key=repr)
    for start in order:
        if start in seen:
            continue
        parent[start] = None
        seen.add(start)
        queue = deque([start])
        while queue:
            u = queue.popleft()
            for v in sorted(graph.neighbors(u), key=repr):
                if v not in seen:
                    seen.add(v)
                    parent[v] = u
                    queue.append(v)
    return RootedForest(parent)


class ConvergecastBroadcast(NodeAlgorithm):
    """One convergecast up a rooted tree, then one broadcast back down.

    Every node contributes a value; values are folded bottom-up with an
    associative ``combine``; the root computes the final aggregate and
    broadcasts it; every node ends with the aggregate in ``self.result``.

    Time is ``O(tree depth)`` and exactly two messages traverse each tree
    edge (one up, one down) — the costs the paper charges for step 4 of the
    CSSP recursion, and the building block for "did everyone finish".
    """

    def __init__(
        self,
        forest: RootedForest,
        node: object,
        value: object,
        combine: Callable[[list], object],
    ) -> None:
        self.node = node
        self.parent = forest.parent[node]
        self.children = list(forest.children[node])
        self.value = value
        self.combine = combine
        self.result: object = _UNSET
        self._reports: list = []
        self._sent_up = False

    def on_round(self, ctx: Context, inbox) -> None:
        if inbox.senders:
            for payload in inbox.payloads:  # senders are not part of the fold
                kind, body = payload
                if kind == "up":
                    self._reports.append(body)
                elif kind == "down":
                    self.result = body
        if not self._sent_up and len(self._reports) == len(self.children):
            aggregate = self.combine([self.value] + self._reports)
            self._sent_up = True
            if self.parent is None:
                self.result = aggregate
            else:
                ctx.send(self.parent, ("up", aggregate))
        if self.result is not _UNSET and self._sent_up:
            for child in self.children:
                ctx.send(child, ("down", self.result))
            ctx.halt()
            return
        ctx.idle()

    #: Below this roster size the batch path's setup costs more than it
    #: saves (measured ~n=32 crossover); tests pin it to 0 to force the
    #: kernel on small fixtures.  Either path is byte-identical.
    _KERNEL_MIN_NODES = 32

    @classmethod
    def batch_kernel(cls, runner) -> "_ConvergecastKernel | None":
        algorithms = runner._algorithms_by_index
        if len(algorithms) < cls._KERNEL_MIN_NODES:
            return None
        return _ConvergecastKernel(runner, algorithms)


class _ConvergecastKernel(BatchKernel):
    """Batch kernel for :class:`ConvergecastBroadcast`.

    Every round of the protocol has the same regular shape (ingest, maybe
    fold up, maybe flood down, else idle), so the kernel handles all of
    them and never declines.  Instance-backed: ``_reports``/``_sent_up``/
    ``result`` are mutated in place, and ``combine`` is the caller's
    callable, invoked exactly as the scalar path would.
    """

    def __init__(self, runner, algorithms) -> None:
        self._algorithms = algorithms
        self._ports = [v[2] for v in runner.indexed.node_views()]

    def on_round_batch(
        self, r, awake, inboxes,
        out_ports, out_payloads, bcast_src, bcast_payloads,
    ):
        algorithms = self._algorithms
        ports_of = self._ports
        codes = []
        append = codes.append
        for i in awake:
            alg = algorithms[i]
            box = inboxes[i]
            if box.senders:
                for payload in box.payloads:  # senders are not part of the fold
                    kind, body = payload
                    if kind == "up":
                        alg._reports.append(body)
                    elif kind == "down":
                        alg.result = body
            if not alg._sent_up and len(alg._reports) == len(alg.children):
                aggregate = alg.combine([alg.value] + alg._reports)
                alg._sent_up = True
                if alg.parent is None:
                    alg.result = aggregate
                else:
                    out_ports.append(ports_of[i][alg.parent][0])
                    out_payloads.append(("up", aggregate))
            if alg.result is not _UNSET and alg._sent_up:
                ports = ports_of[i]
                result = alg.result
                for child in alg.children:
                    out_ports.append(ports[child][0])
                    out_payloads.append(("down", result))
                append(WAKE_HALT)
            else:
                append(WAKE_IDLE)
        return codes


def run_convergecast_broadcast(
    graph: Graph,
    forest: RootedForest,
    values: dict,
    combine: Callable[[list], object],
    *,
    metrics: Metrics | None = None,
) -> dict:
    """Run one convergecast+broadcast over every tree of ``forest``.

    Returns node -> aggregate-of-its-tree.  Costs accrue into ``metrics``.
    """
    algorithms = {
        u: ConvergecastBroadcast(forest, u, values[u], combine) for u in graph.nodes()
    }
    runner = make_runner(graph, algorithms, Mode.CONGEST, metrics=metrics)
    runner.run()
    return {u: algorithms[u].result for u in graph.nodes()}
