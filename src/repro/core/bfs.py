"""Distributed (weighted) BFS: thresholded closest-source shortest paths.

This is the primitive the whole paper is built from.  In a graph with
positive integer weights whose maximum source-to-node distance is bounded by
a threshold ``tau``, one can compute ``dist(S, v)`` by the classic
*wait-``t``-rounds-on-a-weight-``t``-edge* BFS (Section 2.1.1): the global
round counter doubles as a distance ruler.  A node that finalizes distance
``d`` does so exactly at round ``d`` and immediately offers ``d + w(u, v)``
to each neighbor ``v``; a node finalizes when the round counter reaches its
smallest received offer.  Each edge carries at most one message per
direction in the whole execution — congestion ``O(1)`` — and the run takes
``tau + 1`` rounds.

Generalizations needed by the CSSP recursion:

* **Multi-source with offsets** — sources carry initial distances
  ``delta_s >= 0`` and the output is ``min_s (delta_s + dist(s, v))``.  The
  recursion's "imaginary cut nodes" ``x_vu`` (Section 2.3, step 5) become
  offsets on the real node ``u``: ``u`` simulates ``x_vu`` exactly as the
  paper prescribes, so no virtual node ever appears in the network.
* **Thresholding** — nodes whose distance exceeds ``tau`` output infinity
  (Definition 2.3); everyone halts by round ``tau + 1``.

The unweighted BFS of Section 3 is the special case of unit weights.
"""

from __future__ import annotations

from ..graphs import Graph, INFINITY
from ..sim import Context, Metrics, Mode, NodeAlgorithm, make_runner
from ..sim.kernels import WAKE_HALT, BatchKernel, numpy_or_none

__all__ = ["WeightedBFS", "run_weighted_bfs", "run_bfs"]


class _WeightedBFSKernel(BatchKernel):
    """Batch kernel for :class:`WeightedBFS`: the whole roster as columns.

    Full-state kernel — per-node fields (``_best``, ``dist``, ...) live in
    parallel lists for the duration of the run and are written back onto
    the instances in :meth:`finalize`.  Every branch below mirrors one
    branch of :meth:`WeightedBFS.on_round`; the offer expansion on
    finalization is the vector hot spot (numpy over the CSR weight column
    for high-degree nodes, with ``tolist()`` keeping payloads plain ints so
    downstream comparisons stay byte-identical).
    """

    def __init__(self, runner, algorithms) -> None:
        indexed = runner.indexed
        self._algorithms = algorithms
        self._indptr = indexed.indptr
        self._wt = indexed.wt
        self._np = np = numpy_or_none()
        csr = indexed.csr() if np is not None else None
        self._np_wt = csr[2] if csr is not None else None
        self._best = [a._best for a in algorithms]
        self._best_from = [a._best_from for a in algorithms]
        self._finalized = [a._finalized for a in algorithms]
        self._dist = [a.dist for a in algorithms]
        self._parent = [a.parent for a in algorithms]
        self._threshold = [a.threshold for a in algorithms]
        self._collect = [a.collect_parent for a in algorithms]

    def on_round_batch(
        self, r, awake, inboxes,
        out_ports, out_payloads, bcast_src, bcast_payloads,
    ):
        best = self._best
        best_from = self._best_from
        finalized = self._finalized
        dist = self._dist
        threshold = self._threshold
        indptr = self._indptr
        wt = self._wt
        np = self._np
        np_wt = self._np_wt
        codes = []
        append = codes.append
        for i in awake:
            if finalized[i]:
                append(WAKE_HALT)
                continue
            box = inboxes[i]
            b = best[i]
            if box.senders:
                for sender, offer in zip(box.senders, box.payloads):
                    if offer < b:
                        b = offer
                        best_from[i] = sender
                best[i] = b
            thr = threshold[i]
            if b <= r and b <= thr:
                dist[i] = b
                if self._collect[i]:
                    self._parent[i] = best_from[i]
                finalized[i] = True
                lo = indptr[i]
                hi = indptr[i + 1]
                if np_wt is not None and hi - lo >= 16:
                    offers = np_wt[lo:hi] + b
                    sel = np.flatnonzero(offers <= thr)
                    out_ports.extend((sel + lo).tolist())
                    out_payloads.extend(offers[sel].tolist())
                else:
                    for p in range(lo, hi):
                        offer = b + wt[p]
                        if offer <= thr:
                            out_ports.append(p)
                            out_payloads.append(offer)
                append(WAKE_HALT)
            elif b <= thr:
                append(b)  # wake_at(_best): b > r in this branch
            elif r <= thr:
                append(thr + 1)
            else:
                dist[i] = INFINITY
                append(WAKE_HALT)
        return codes

    def finalize(self) -> None:
        for i, alg in enumerate(self._algorithms):
            alg.dist = self._dist[i]
            alg.parent = self._parent[i]
            alg._best = self._best[i]
            alg._best_from = self._best_from[i]
            alg._finalized = self._finalized[i]


class WeightedBFS(NodeAlgorithm):
    """One node's role in the thresholded multi-source weighted BFS.

    Parameters
    ----------
    node:
        This node's id.
    threshold:
        The distance bound ``tau``; distances above it come out as infinity.
    source_offset:
        ``None`` for non-sources; otherwise the source's initial distance
        (0 for an ordinary source).
    collect_parent:
        If true, remember which neighbor supplied the winning offer — this
        yields a shortest-path forest on top of the distances.

    After the run, ``self.dist`` holds the finalized distance (or
    ``INFINITY``) and ``self.parent`` the predecessor on a shortest path
    (``None`` for sources/unreached nodes).
    """

    def __init__(
        self,
        node: object,
        threshold: int,
        source_offset: int | None = None,
        *,
        collect_parent: bool = False,
    ) -> None:
        if threshold < 0:
            raise ValueError(f"threshold must be >= 0, got {threshold}")
        if source_offset is not None and source_offset < 0:
            raise ValueError(f"source offset must be >= 0, got {source_offset}")
        self.node = node
        self.threshold = threshold
        self.dist: float = INFINITY
        self.parent: object = None
        self.collect_parent = collect_parent
        self._best: float = INFINITY if source_offset is None else source_offset
        self._best_from: object = None
        self._finalized = False

    def on_round(self, ctx: Context, inbox: list[tuple[object, object]]) -> None:
        if self._finalized:
            ctx.halt()
            return
        if inbox.senders:
            for sender, offer in zip(inbox.senders, inbox.payloads):
                if offer < self._best:
                    self._best = offer
                    self._best_from = sender
        r = ctx.round
        if self._best <= r and self._best <= self.threshold:
            # The round ruler has reached our smallest offer: no shorter
            # path can exist (any better offer would have arrived earlier).
            # In CONGEST the equality _best == r holds exactly; the <= only
            # fires under sleeping-model misuse (see the negative-control
            # tests), where it degrades to a best-effort value instead of
            # crashing on a stale wake.
            self.dist = self._best
            if self.collect_parent:
                self.parent = self._best_from
            self._finalized = True
            dist = self.dist
            threshold = self.threshold
            for v, w in zip(ctx.neighbors, ctx.edge_weights):
                offer = dist + w
                if offer <= threshold:
                    ctx.send(v, offer)
            ctx.halt()
            return
        if self._best <= self.threshold:
            ctx.wake_at(self._best)
            return
        if r <= self.threshold:
            # Nothing pending within the threshold: give up at tau + 1 so
            # the round count honestly reflects the Theta(tau) running time
            # the paper charges for a thresholded BFS.
            ctx.wake_at(self.threshold + 1)
            return
        # Past the threshold with no offer in range: unreachable within tau.
        self.dist = INFINITY
        ctx.halt()

    @classmethod
    def batch_kernel(cls, runner) -> _WeightedBFSKernel:
        return _WeightedBFSKernel(runner, runner._algorithms_by_index)


def run_weighted_bfs(
    graph: Graph,
    sources: dict,
    threshold: int,
    *,
    metrics: Metrics | None = None,
    collect_parents: bool = False,
) -> dict:
    """Run the thresholded multi-source weighted BFS over ``graph``.

    ``sources`` maps source node -> integer offset (use 0 for plain
    sources).  Returns node -> distance (``INFINITY`` beyond ``threshold``).
    Edge weights must be strictly positive (weight-0 edges are handled one
    level up, by contraction — Theorem 2.7).
    """
    if graph.num_edges and graph.min_weight() <= 0:
        u, v, w = next((u, v, w) for u, v, w in graph.edges() if w <= 0)
        raise ValueError(
            f"weighted BFS needs positive weights; edge {u!r}-{v!r} has {w}"
        )
    for s, offset in sources.items():
        if s not in graph:
            raise KeyError(f"source {s!r} not in graph")
        if offset < 0 or int(offset) != offset:
            raise ValueError(f"offset of {s!r} must be a nonnegative integer, got {offset}")
    algorithms = {
        u: WeightedBFS(
            u,
            threshold,
            source_offset=sources.get(u),
            collect_parent=collect_parents,
        )
        for u in graph.nodes()
    }
    runner = make_runner(graph, algorithms, Mode.CONGEST, metrics=metrics)
    runner.run()
    return {u: algorithms[u].dist for u in graph.nodes()}


def run_bfs(
    graph: Graph,
    sources: list | set | tuple,
    threshold: int | None = None,
    *,
    metrics: Metrics | None = None,
) -> dict:
    """Unweighted (hop-count) BFS: unit weights, plain sources.

    ``threshold`` defaults to ``n`` (no thresholding in effect).
    """
    # Skip the copy when the graph is already unit-weighted — the cached
    # indexed view then carries over to the runner.
    if graph.num_edges and graph.min_weight() == 1 and graph.max_weight() == 1:
        hop_graph = graph
    else:
        hop_graph = graph.reweighted(lambda _w: 1)
    tau = threshold if threshold is not None else graph.num_nodes
    return run_weighted_bfs(hop_graph, {s: 0 for s in sources}, tau, metrics=metrics)
