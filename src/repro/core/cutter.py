"""The approximate cutter: Lemma 2.1's rounding-based CSSP approximation.

The paper cannot afford an exact cutter (that is the whole point of
Section 2.2 vs 2.3), so it uses Nanongkai's rounding trick: scale every
weight down by a quantum ``q``, round up, and run one thresholded weighted
BFS in the rounded graph.  With ``q = max(1, floor(eps * W / n))``:

* rounding up never shortens a path, so ``q * dist_rounded >= dist``;
* a shortest path has at most ``n - 1`` edges and each edge gains less than
  ``q``, so ``q * dist_rounded < dist + n * q <= dist + eps * W`` (and when
  ``eps * W < n`` the quantum is 1 and the computation is exact);
* running the rounded BFS to threshold ``ceil(2W / q) + n`` costs
  ``O(W/q + n) = O(n / eps)`` rounds and ``O(1)`` congestion per edge.

The exported guarantee matches Lemma 2.1 verbatim:

* finite output   => ``dist(S, v) <= dist'(S, v) < dist(S, v) + eps * W``;
* infinite output => ``dist(S, v) > 2 * W``.

Source *offsets* (the imaginary-cut-node distances of the CSSP recursion)
are rounded up with the same quantum; they contribute at most one more ``q``
of error, absorbed by using ``n`` = true node count + 1 in the quantum.
"""

from __future__ import annotations

import math

from ..graphs import Graph, INFINITY
from ..sim import Metrics
from .bfs import run_weighted_bfs

__all__ = ["approx_cssp", "cutter_quantum"]


def cutter_quantum(num_nodes: int, eps: float, bound: int) -> int:
    """The rounding quantum ``q = max(1, floor(eps * W / (n + 1)))``."""
    return max(1, math.floor(eps * bound / (num_nodes + 1)))


def approx_cssp(
    graph: Graph,
    sources: dict,
    eps: float,
    bound: int,
    *,
    metrics: Metrics | None = None,
) -> dict:
    """Approximate closest-source distances per Lemma 2.1.

    Parameters
    ----------
    graph:
        Positive integer weights (zero-weight edges are contracted one level
        up, per Theorem 2.7).
    sources:
        Mapping source -> nonnegative integer offset.
    eps:
        Relative additive error knob, in ``(0, 1)``.
    bound:
        The lemma's ``W``: outputs are reliable for distances up to ``2W``.

    Returns node -> approximate distance ``dist'`` (float ``INFINITY`` when
    the true distance exceeds ``2W``... or merely exceeds the scan horizon).
    """
    if not 0 < eps < 1:
        raise ValueError(f"eps must be in (0, 1), got {eps}")
    if bound <= 0:
        raise ValueError(f"bound W must be positive, got {bound}")
    if not sources:
        return {u: INFINITY for u in graph.nodes()}

    n = graph.num_nodes
    q = cutter_quantum(n, eps, bound)
    if q == 1:
        # Quantum 1 rounds every weight to itself: run on the graph as-is
        # (reusing its cached indexed view) — the computation is exact.
        rounded = graph
        rounded_sources = dict(sources)
    else:
        rounded = graph.reweighted(lambda w: -(-w // q))  # ceil division
        rounded_sources = {s: -(-offset // q) for s, offset in sources.items()}
    threshold = -(-2 * bound // q) + n + 1
    rounded_dist = run_weighted_bfs(rounded, rounded_sources, threshold, metrics=metrics)
    if q == 1:
        return rounded_dist
    return {
        u: (INFINITY if d == INFINITY else q * d) for u, d in rounded_dist.items()
    }
