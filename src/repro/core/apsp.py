"""All-Pairs Shortest Paths via ``n`` concurrent SSSPs (Section 1.1).

The paper's APSP result: because the Section 2 SSSP has polylog congestion
per edge, ``n`` instances (one per source) can run *concurrently* under
random-delay scheduling [LMR94, Gha15], giving ``~O(n)`` total time.  The
only randomness in the whole APSP algorithm is the delays.

Reproduction strategy (DESIGN.md, decision 3): every SSSP instance is
executed once on the simulator, recording its per-(edge, round) message
trace.  The scheduler then draws one uniform random start delay per
instance from a window ``[0, n)`` and superimposes the traces.  The run is
*schedulable* if no (edge, direction, round) slot exceeds the per-round
capacity ``c`` (the CONGEST bandwidth left for each instance-bundle; the
scheduling theorems allow ``O(log n)`` messages per round to be bundled
since each message is ``O(log n)`` bits and ``B``-bit CONGEST messages with
``B = O(log^2 n)`` — or equivalently grouping rounds — changes bounds only
by polylog factors).  The reported makespan is ``max_i (delay_i +
duration_i)``; experiment E7 checks it scales ``~O(n)`` and that capacity
violations don't occur for ``c = O(log n)``.
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass, field

from ..graphs import Graph
from ..sim import Metrics
from .cssp import DEFAULT_EPS
from .sssp import SSSPResult, sssp

__all__ = ["APSPResult", "apsp", "schedule_with_random_delays", "ScheduleReport"]


@dataclass
class ScheduleReport:
    """Outcome of superimposing delayed SSSP traces."""

    makespan: int
    max_slot_load: int
    capacity: int
    delays: dict = field(repr=False)

    @property
    def feasible(self) -> bool:
        """True when no (edge, round) slot exceeded the per-round capacity."""
        return self.max_slot_load <= self.capacity


@dataclass
class APSPResult:
    """All-pairs distances plus per-instance metrics and the schedule."""

    distances: dict  # (source, node) -> distance
    per_source: dict  # source -> SSSPResult
    schedule: ScheduleReport

    def distance(self, u: object, v: object) -> float:
        return self.distances[(u, v)]


def schedule_with_random_delays(
    traces: dict,
    durations: dict,
    *,
    window: int,
    capacity: int,
    seed: int = 0,
) -> ScheduleReport:
    """Superimpose per-instance (edge, round) traces under random delays.

    ``traces`` maps instance -> Counter{(edge, round): messages};
    ``durations`` maps instance -> rounds.  Returns the makespan and the
    worst per-slot load so callers can verify feasibility at their chosen
    capacity.
    """
    rng = random.Random(seed)
    delays = {i: rng.randrange(max(1, window)) for i in traces}
    slot_load: Counter = Counter()
    for instance, trace in traces.items():
        delay = delays[instance]
        for (edge, round_number), count in trace.items():
            slot_load[(edge, round_number + delay)] += count
    makespan = max(
        (delays[i] + durations[i] for i in traces), default=0
    )
    max_slot_load = max(slot_load.values(), default=0)
    return ScheduleReport(
        makespan=makespan, max_slot_load=max_slot_load, capacity=capacity, delays=delays
    )


class _TracingMetrics(Metrics):
    """Metrics that additionally record when each edge message was sent.

    The per-round position is approximated by the current accumulated round
    clock at send time: phases compose sequentially, so the clock at the
    moment a phase runs is exactly the round at which its messages travel.

    Being a :class:`Metrics` *subclass* also disables batch kernels for
    every phase run under it (see :func:`repro.sim.kernels.kernel_for`):
    the per-send hook below observes individual sends, which the batch
    path folds away — so APSP's traced relaxations always take the
    scalar path, by the same gate that keeps the trace exact.
    """

    def __init__(self) -> None:
        super().__init__()
        self.trace: Counter = Counter()
        self.current_round = 0

    def record_send(self, src: object, dst: object, delivered: bool) -> None:
        super().record_send(src, dst, delivered)
        # Absolute send round = rounds of completed phases + in-phase round.
        self.trace[((src, dst), self.rounds + self.current_round)] += 1


def apsp(
    graph: Graph,
    *,
    eps: float = DEFAULT_EPS,
    seed: int = 0,
    capacity_log_factor: int = 4,
) -> APSPResult:
    """All-pairs distances by ``n`` independent SSSP runs + random delays.

    Exact distances for every ordered pair.  The schedule report states the
    concurrent makespan and whether the per-round edge capacity
    ``capacity_log_factor * ceil(log2 n)`` was respected.
    """
    import math

    nodes = sorted(graph.nodes(), key=repr)
    per_source: dict = {}
    traces: dict = {}
    durations: dict = {}
    for s in nodes:
        tracing = _TracingMetrics()
        distances, metrics = _traced_sssp(graph, s, eps, tracing)
        per_source[s] = SSSPResult(source=s, distances=distances, metrics=metrics)
        traces[s] = tracing.trace
        durations[s] = metrics.rounds

    n = max(2, graph.num_nodes)
    capacity = capacity_log_factor * math.ceil(math.log2(n))
    window = max(1, max(durations.values(), default=1))
    schedule = schedule_with_random_delays(
        traces, durations, window=window, capacity=capacity, seed=seed
    )
    distances = {
        (s, v): per_source[s].distances[v] for s in nodes for v in graph.nodes()
    }
    return APSPResult(distances=distances, per_source=per_source, schedule=schedule)


def _traced_sssp(graph: Graph, source: object, eps: float, tracing: Metrics):
    from .cssp import cssp

    return cssp(graph, {source: 0}, eps=eps, metrics=tracing)
