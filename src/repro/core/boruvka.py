"""Distributed Boruvka: maximal spanning forest in ``O(n log n)`` rounds.

Theorem 2.2 (classic, [Bor26, GHS83]): a deterministic distributed algorithm
computing a maximal spanning forest with ``O(n log n)`` time and polylog
congestion.  The CSSP recursion uses it in step 2 to get per-component
rooted spanning trees for the convergecast coordination.

Structure (all nodes know ``n``, so the schedule is globally agreed):

* ``ceil(log2 n) + 1`` *phases*; fragment count per component at least
  halves each phase, so by the last phase every fragment spans its whole
  component and detects completion.
* Each phase has five fixed-budget *segments* of ``n + 2`` rounds each:

  1. **refresh** — the fragment root floods (fragment id, depth) down the
     current tree, repairing labels left stale by the previous merge;
  2. **hello** — every node tells each neighbor its fragment id (the only
     all-edges traffic: 1 message per direction per phase);
  3. **convergecast** — fold the minimum outgoing edge candidate
     ``(target fragment key, edge key)`` up to the root; choosing the
     *minimum* target fragment makes the fragment pointer graph have only
     2-cycles, and the shared edge-key tiebreak makes both sides of a
     2-cycle pick the same physical edge (so merges never create cycles);
  4. **decision** — the root floods the chosen edge (or "complete" when no
     outgoing edge exists — the fragment then spans its component and
     halts at phase end);
  5. **merge** — chosen endpoints fire a ``join`` across the chosen edge;
     core edges (both fragments chose the same edge) elect the endpoint in
     the larger-keyed fragment as the new root; every fragment re-roots by
     flipping parent pointers along the path from its join point to its old
     root (a ``flip`` walk of at most ``n`` rounds).

Costs: time ``5 (n + 2) (log2 n + 2) = O(n log n)``; per-edge congestion
``O(log n)`` (hellos dominate); messages ``O((n + m) log n)``.  Because the
implementation is event-driven, each node is *awake* for only ``O(log n)``
scheduled rounds plus its message arrivals — the low-energy adaptation of
[AMJP22] (Theorem 3.1) is obtained by running this same protocol under the
sleeping-model accounting with buffered wake-ups standing in for AMJP22's
wake-up machinery (see DESIGN.md, decision 2).
"""

from __future__ import annotations

import math

from ..graphs import Graph
from ..sim import Context, Metrics, Mode, NodeAlgorithm, SimulationError, make_runner
from ..sim.kernels import WAKE_HALT, BatchKernel
from .trees import RootedForest

__all__ = ["BoruvkaNode", "build_maximal_forest", "boruvka_phase_count", "boruvka_round_bound"]


def boruvka_phase_count(n: int) -> int:
    """Phases needed: fragment counts halve, plus one detection phase."""
    return max(1, math.ceil(math.log2(max(2, n)))) + 1


def boruvka_round_bound(n: int) -> int:
    """Upper bound on total rounds, for schedule-aware callers."""
    segment = n + 2
    return 5 * segment * boruvka_phase_count(n)


def _fragment_key(frag: object) -> str:
    return repr(frag)


def _edge_key(u: object, v: object) -> tuple[str, str]:
    a, b = repr(u), repr(v)
    return (a, b) if a <= b else (b, a)


class BoruvkaNode(NodeAlgorithm):
    """One node's role in the phase-scheduled Boruvka protocol."""

    def __init__(self, node: object, n: int) -> None:
        self.node = node
        self.n = n
        self.segment = n + 2
        self.phase_len = 5 * self.segment
        self.total_phases = boruvka_phase_count(n)
        # Tree state (the algorithm's real output).
        self.parent: object = None
        self.children: set = set()
        self.fragment: object = node
        self.depth: int = 0
        self.complete = False
        # Per-phase scratch state.
        self._neighbor_fragment: dict = {}
        self._reports: list = []
        self._report_count = 0
        self._sent_report = False
        self._decision: object = "pending"  # "pending" | None | (cu, cv)
        self._sent_join_to: object = None
        # repr-sorted children, rebuilt only when the child set changes.
        self._kids_cache: list | None = []
        # Lazily built per-run repr tables (repr is the hottest string work
        # in the protocol: fragment and edge keys are all repr-based).
        self._edge_key_of: dict | None = None

    def _kids(self) -> list:
        kids = self._kids_cache
        if kids is None:
            kids = self._kids_cache = sorted(self.children, key=repr)
        return kids

    # -- helpers ---------------------------------------------------------
    def _my_candidate(self) -> tuple | None:
        """Minimum outgoing edge at this node: (frag key, edge key, u, v)."""
        best: tuple | None = None
        fragment = self.fragment
        edge_key_of = self._edge_key_of
        node = self.node
        for v, (frag_v, frag_key) in self._neighbor_fragment.items():
            if frag_v == fragment:
                continue
            cand = (frag_key, edge_key_of[v], node, v)
            if best is None or cand[:2] < best[:2]:
                best = cand
        return best

    def _reset_phase_state(self) -> None:
        self._neighbor_fragment = {}
        self._reports = []
        self._report_count = 0
        self._sent_report = False
        self._decision = "pending"
        self._sent_join_to = None

    def _try_send_report(self, ctx: Context) -> None:
        """Convergecast step: fold and forward once all children reported."""
        if self._sent_report or self._report_count < len(self.children):
            return
        candidates = [c for c in self._reports if c is not None]
        own = self._my_candidate()
        if own is not None:
            candidates.append(own)
        best = min(candidates, key=lambda c: c[:2]) if candidates else None
        self._sent_report = True
        if self.parent is None:
            self._decision = None if best is None else (best[2], best[3])
        else:
            ctx.send(self.parent, ("report", best))

    def _broadcast_decision(self, ctx: Context) -> None:
        for child in self._kids():
            ctx.send(child, ("decision", self._decision))

    def _start_flip_walk(self, ctx: Context, new_parent: object) -> None:
        """Re-root my old tree at me; hang me under ``new_parent``.

        ``new_parent`` is None when I become the merged fragment's root.
        """
        old_parent = self.parent
        self.parent = new_parent
        if old_parent is not None:
            self.children.add(old_parent)
            self._kids_cache = None
            ctx.send(old_parent, ("flip",))

    # -- main dispatch -----------------------------------------------------
    def on_round(self, ctx: Context, inbox: list[tuple[object, object]]) -> None:
        r = ctx.round
        phase, offset = divmod(r, self.phase_len)
        seg = self.segment

        if offset == 0:
            self._reset_phase_state()
            if phase >= self.total_phases:
                raise SimulationError(
                    f"Boruvka did not converge in {self.total_phases} phases at {self.node!r}"
                )
            if self.parent is None:
                self.fragment = self.node
                self.depth = 0
                for child in self._kids():
                    ctx.send(child, ("refresh", self.fragment, 1))

        for sender, payload in zip(inbox.senders, inbox.payloads) if inbox.senders else ():
            kind = payload[0]
            if kind == "refresh":
                _, frag, depth = payload
                self.fragment = frag
                self.depth = depth
                for child in self._kids():
                    ctx.send(child, ("refresh", frag, depth + 1))
            elif kind == "hello":
                self._neighbor_fragment[sender] = (payload[1], payload[2])
            elif kind == "report":
                self._reports.append(payload[1])
                self._report_count += 1
            elif kind == "decision":
                self._decision = payload[1]
                self._broadcast_decision(ctx)
            elif kind == "join":
                self._handle_join(ctx, sender, payload[1])
            elif kind == "flip":
                # Continue the re-rooting walk: sender is my new parent.
                old_parent = self.parent
                self.parent = sender
                self.children.discard(sender)
                self._kids_cache = None
                if old_parent is not None:
                    self.children.add(old_parent)
                    ctx.send(old_parent, ("flip",))

        phase_start = phase * self.phase_len
        if offset == seg:
            # The only all-edges traffic — one columnar broadcast record
            # instead of ``degree`` individual sends.  The fragment key rides
            # along so each receiver skips recomputing the repr.
            if self._edge_key_of is None:
                node = self.node
                self._edge_key_of = {v: _edge_key(node, v) for v in ctx.neighbors}
            ctx.broadcast(("hello", self.fragment, _fragment_key(self.fragment)))
        elif 2 * seg <= offset < 3 * seg:
            self._try_send_report(ctx)
        elif offset == 3 * seg and self.parent is None:
            if self._decision is None:
                self.complete = True
            self._broadcast_decision(ctx)
        elif offset == 4 * seg:
            if self._decision is None:
                self.complete = True
            if (
                self._decision not in ("pending", None)
                and self._decision[0] == self.node
            ):
                cu, cv = self._decision
                self._sent_join_to = cv
                ctx.send(cv, ("join", self.fragment))
        elif offset == 4 * seg + 1 and self._sent_join_to is not None:
            # No reciprocal join arrived over the chosen edge, so this is
            # not a core edge: my fragment hangs under the target fragment.
            target = self._sent_join_to
            self._sent_join_to = None
            self._start_flip_walk(ctx, new_parent=target)

        # Completion: fragments with no outgoing edge span their whole
        # component; their nodes stop at the end of the detection phase.
        if self.complete and offset == 4 * seg + 2:
            ctx.halt()
            return

        # Next wake: the next segment boundary this node acts on (messages
        # wake it too).  Inlined from the former _schedule_next helper —
        # this runs once per awake round.
        if self.complete:
            ctx.wake_at(phase_start + 4 * seg + 2)
            return
        nxt = phase_start + self.phase_len  # next phase's offset 0; always > r
        for b in (
            phase_start + seg,
            phase_start + 2 * seg,
            phase_start + 4 * seg,
        ):
            if r < b < nxt:
                nxt = b
        if self.parent is None:
            b = phase_start + 3 * seg
            if r < b < nxt:
                nxt = b
        if self._sent_join_to is not None:
            b = phase_start + 4 * seg + 1
            if r < b < nxt:
                nxt = b
        ctx.wake_at(nxt)

    def _handle_join(self, ctx: Context, sender: object, sender_fragment: object) -> None:
        my_edge = None if self._decision in ("pending", None) else self._decision
        is_core = (
            my_edge is not None
            and my_edge[0] == self.node
            and my_edge[1] == sender
        )
        if is_core:
            # Both fragments chose this same physical edge.  The endpoint in
            # the larger-keyed fragment becomes the merged fragment's root.
            self._sent_join_to = None
            i_win = _fragment_key(self.fragment) > _fragment_key(sender_fragment)
            if i_win:
                self.children.add(sender)
                self._kids_cache = None
                self._start_flip_walk(ctx, new_parent=None)
            else:
                self.children.discard(sender)
                self._kids_cache = None
                self._start_flip_walk(ctx, new_parent=sender)
        else:
            # A foreign fragment hangs its tree under me via this edge.
            self.children.add(sender)
            self._kids_cache = None

    # Non-core endpoint: after sending a join at 4*seg we must learn by
    # 4*seg + 1 whether the partner fragment chose the same edge (its join
    # would arrive then); if not, we hang under it.  Handled in on_round via
    # the message wake plus the explicit boundary below.

    @classmethod
    def batch_kernel(cls, runner) -> "_BoruvkaKernel | None":
        algorithms = runner._algorithms_by_index
        n = algorithms[0].n
        if any(alg.n != n for alg in algorithms):
            return None  # mixed schedules: no globally agreed offsets
        return _BoruvkaKernel(runner, algorithms)


class _JoinFollowUp:
    """Marker documenting the 4*seg+1 follow-up; logic lives in BoruvkaNode."""


class _BoruvkaKernel(BatchKernel):
    """Declining kernel for Boruvka's globally scheduled offsets.

    Most in-phase offsets have a regular batch shape every node agrees on
    (the schedule is global — all nodes know ``n``):

    * ``1 .. seg-1`` — refresh forwarding (the down-the-tree flood);
    * ``seg`` — the hello broadcast, the only all-edges traffic;
    * ``seg + 1`` — the hello ingest (``degree`` messages per node);
    * ``2 seg`` — the convergecast kickoff (leaves fold and report);
    * ``2 seg + 1 .. 3 seg - 1`` — the report folds up the tree;
    * ``3 seg + 1 .. 4 seg - 1`` — the decision flood down the tree;
    * ``4 seg`` — the merge kickoff (chosen endpoints fire joins).

    Everything else (the ``3 seg`` root/ingest mix, join handshakes, flip
    walks) is message-driven and irregular, so the kernel declines (``None``)
    and the scalar dispatch runs unchanged.  Offsets that *emit sends*
    validate the whole awake set before mutating anything — a scalar
    replay after a half-stepped round would double-send.  The hello
    ingest emits nothing and its writes are idempotent, so it may bail
    mid-scan: the scalar replay redoes the same assignments.

    Instance-backed: state stays on the :class:`BoruvkaNode` instances
    (the scalar path handles the irregular offsets), so there is nothing
    to write back in ``finalize``.
    """

    def __init__(self, runner, algorithms) -> None:
        first = algorithms[0]
        self._algorithms = algorithms
        self._seg = first.segment
        self._total_phases = first.total_phases
        self._phase_len = first.phase_len
        views = runner.indexed.node_views()
        self._nbr_labels = [v[0] for v in views]
        self._ports = [v[2] for v in views]
        self._degree0 = [v[3] == v[4] for v in views]

    def on_round_batch(
        self, r, awake, inboxes,
        out_ports, out_payloads, bcast_src, bcast_payloads,
    ):
        seg = self._seg
        phase_len = self._phase_len
        phase, offset = divmod(r, phase_len)
        algorithms = self._algorithms
        phase_start = phase * phase_len

        if offset == 0:
            # Phase reset; roots rename their fragment and start the
            # refresh flood.  No message ever lands here (flip walks die
            # out by offset 5*seg - 1), so a non-empty inbox or the
            # convergence overrun both fall back to the scalar path (the
            # latter so the SimulationError carries the exact node).
            if phase >= self._total_phases:
                return None
            for i in awake:
                if inboxes[i].senders or algorithms[i].complete:
                    return None
            wake = phase_start + seg
            codes = []
            for i in awake:
                alg = algorithms[i]
                alg._reset_phase_state()
                if alg.parent is None:
                    alg.fragment = alg.node
                    alg.depth = 0
                    if alg.children:
                        ports = self._ports[i]
                        message = ("refresh", alg.node, 1)
                        for child in alg._kids():
                            out_ports.append(ports[child][0])
                            out_payloads.append(message)
                codes.append(wake)
            return codes

        if offset == seg:
            for i in awake:
                if inboxes[i].senders or algorithms[i].complete:
                    return None
            # Scalar wake scan resolves to the convergecast boundary for
            # every non-complete node at this offset.
            wake = phase_start + 2 * seg
            codes = []
            for i in awake:
                alg = algorithms[i]
                if alg._edge_key_of is None:
                    node = alg.node
                    alg._edge_key_of = {
                        v: _edge_key(node, v) for v in self._nbr_labels[i]
                    }
                if not self._degree0[i]:  # broadcast's degree-0 early return
                    bcast_src.append(i)
                    bcast_payloads.append(
                        ("hello", alg.fragment, _fragment_key(alg.fragment))
                    )
                codes.append(wake)
            return codes

        if offset == seg + 1:
            # Ingest-only round: no sends, idempotent writes — single pass,
            # safe to decline mid-scan.
            wake = phase_start + 2 * seg
            codes = []
            for i in awake:
                alg = algorithms[i]
                if alg.complete:
                    return None
                box = inboxes[i]
                neighbor_fragment = alg._neighbor_fragment
                for sender, payload in zip(box.senders, box.payloads):
                    if payload[0] != "hello":
                        return None
                    neighbor_fragment[sender] = (payload[1], payload[2])
                codes.append(wake)
            return codes

        if 0 < offset < seg:
            # Refresh forwarding: relabel and flood down the current tree.
            for i in awake:
                for payload in inboxes[i].payloads:
                    if payload[0] != "refresh":
                        return None
            wake = phase_start + seg
            codes = []
            for i in awake:
                alg = algorithms[i]
                box = inboxes[i]
                ports = self._ports[i]
                for payload in box.payloads:
                    _, frag, depth = payload
                    alg.fragment = frag
                    alg.depth = depth
                    if alg.children:
                        message = ("refresh", frag, depth + 1)
                        for child in alg._kids():
                            out_ports.append(ports[child][0])
                            out_payloads.append(message)
                codes.append(wake)
            return codes

        if offset == 2 * seg:
            # Convergecast kickoff: leaves (and childless roots) fold and
            # report; everyone else just waits for child reports.
            for i in awake:
                if inboxes[i].senders or algorithms[i].complete:
                    return None
            root_wake = phase_start + 3 * seg
            wake = phase_start + 4 * seg
            codes = []
            for i in awake:
                alg = algorithms[i]
                if not alg._sent_report and alg._report_count >= len(alg.children):
                    candidates = [c for c in alg._reports if c is not None]
                    own = alg._my_candidate()
                    if own is not None:
                        candidates.append(own)
                    best = (
                        min(candidates, key=lambda c: c[:2]) if candidates else None
                    )
                    alg._sent_report = True
                    if alg.parent is None:
                        alg._decision = None if best is None else (best[2], best[3])
                    else:
                        out_ports.append(self._ports[i][alg.parent][0])
                        out_payloads.append(("report", best))
                codes.append(root_wake if alg.parent is None else wake)
            return codes

        if 2 * seg < offset < 3 * seg:
            # Report folds: ingest child reports, forward when the subtree
            # is accounted for.  Offset 3*seg itself stays scalar (roots
            # broadcast their decision there while late reports ingest).
            for i in awake:
                if algorithms[i].complete:
                    return None
                for payload in inboxes[i].payloads:
                    if payload[0] != "report":
                        return None
            root_wake = phase_start + 3 * seg
            wake = phase_start + 4 * seg
            codes = []
            for i in awake:
                alg = algorithms[i]
                box = inboxes[i]
                for payload in box.payloads:
                    alg._reports.append(payload[1])
                    alg._report_count += 1
                if not alg._sent_report and alg._report_count >= len(alg.children):
                    candidates = [c for c in alg._reports if c is not None]
                    own = alg._my_candidate()
                    if own is not None:
                        candidates.append(own)
                    best = (
                        min(candidates, key=lambda c: c[:2]) if candidates else None
                    )
                    alg._sent_report = True
                    if alg.parent is None:
                        alg._decision = None if best is None else (best[2], best[3])
                    else:
                        out_ports.append(self._ports[i][alg.parent][0])
                        out_payloads.append(("report", best))
                codes.append(root_wake if alg.parent is None else wake)
            return codes

        if 3 * seg < offset < 4 * seg:
            # Decision flood: relabel and forward down the tree.
            for i in awake:
                if algorithms[i].complete:
                    return None
                for payload in inboxes[i].payloads:
                    if payload[0] != "decision":
                        return None
            wake = phase_start + 4 * seg
            codes = []
            for i in awake:
                alg = algorithms[i]
                box = inboxes[i]
                ports = self._ports[i]
                for payload in box.payloads:
                    decision = alg._decision = payload[1]
                    if alg.children:
                        message = ("decision", decision)
                        for child in alg._kids():
                            out_ports.append(ports[child][0])
                            out_payloads.append(message)
                codes.append(wake)
            return codes

        if offset == 4 * seg:
            # Merge kickoff: completion detection plus the join fire.
            for i in awake:
                if inboxes[i].senders:
                    return None
            next_phase = phase_start + phase_len
            codes = []
            for i in awake:
                alg = algorithms[i]
                decision = alg._decision
                if decision is None:
                    alg.complete = True
                if alg.complete:
                    codes.append(phase_start + 4 * seg + 2)
                    continue
                if decision != "pending" and decision[0] == alg.node:
                    cv = decision[1]
                    alg._sent_join_to = cv
                    out_ports.append(self._ports[i][cv][0])
                    out_payloads.append(("join", alg.fragment))
                    codes.append(phase_start + 4 * seg + 1)
                else:
                    codes.append(next_phase)
            return codes

        if offset == 4 * seg + 2:
            # Completion round: fragments that found no outgoing edge halt
            # together.  Mixed with flip-walk arrivals it stays scalar.
            for i in awake:
                if inboxes[i].senders or not algorithms[i].complete:
                    return None
            return [WAKE_HALT] * len(awake)

        return None


def build_maximal_forest(graph: Graph, *, metrics: Metrics | None = None) -> RootedForest:
    """Run distributed Boruvka over ``graph`` and return the rooted forest.

    The returned forest is validated structurally (parent pointers acyclic);
    ``RootedForest.validate_against`` offers the full spanning check for
    tests.  Costs accrue into ``metrics``.
    """
    n = graph.num_nodes
    if n == 0:
        return RootedForest({})
    algorithms = {u: BoruvkaNode(u, n) for u in graph.nodes()}
    runner = make_runner(graph, algorithms, Mode.CONGEST, metrics=metrics)
    runner.run()
    parent = {u: algorithms[u].parent for u in graph.nodes()}
    return RootedForest(parent)
