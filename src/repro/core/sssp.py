"""Single-Source Shortest Paths: the paper's headline deliverable.

SSSP is CSSP with ``S = {s}`` (Theorem 2.6 / Theorem 1.1, CONGEST half).
This module provides the user-facing API and a result object carrying both
the distances and the measured complexity, so downstream code (examples,
benchmarks, the APSP scheduler) has one handle for everything.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..graphs import Graph, INFINITY
from ..sim import Metrics
from .cssp import DEFAULT_EPS, cssp

__all__ = ["SSSPResult", "sssp", "sssp_distances"]


@dataclass
class SSSPResult:
    """Distances from one source plus the execution's complexity metrics."""

    source: object
    distances: dict
    metrics: Metrics = field(repr=False)

    def distance(self, v: object) -> float:
        return self.distances[v]

    def reachable(self) -> set:
        return {u for u, d in self.distances.items() if d != INFINITY}

    @property
    def rounds(self) -> int:
        return self.metrics.rounds

    @property
    def congestion(self) -> int:
        return self.metrics.max_congestion

    @property
    def messages(self) -> int:
        return self.metrics.total_messages


def sssp(graph: Graph, source: object, *, eps: float = DEFAULT_EPS) -> SSSPResult:
    """Exact single-source shortest paths via the Section 2 recursion.

    Deterministic; ``~O(n)`` rounds; ``~O(m)`` messages; polylog congestion
    per edge (Theorem 2.6).  Nonnegative integer weights.  The result —
    distances *and* every metered observable — is independent of the
    active dispatch backend (:mod:`repro.sim.kernels`): kernels are bound
    to metering parity, so ``scalar`` and ``numpy`` runs are
    byte-identical here.
    """
    distances, metrics = cssp(graph, {source: 0}, eps=eps)
    return SSSPResult(source=source, distances=distances, metrics=metrics)


def sssp_distances(graph: Graph, source: object, *, eps: float = DEFAULT_EPS) -> dict:
    """Distances only, for callers that don't need the metrics."""
    return sssp(graph, source, eps=eps).distances
