"""Distributed Bellman-Ford — the classic baseline the paper argues against.

Section 1.1: "a major drawback is that this algorithm relaxes each edge in
each round, and thus has message complexity ``Theta(mn)`` and ``Omega(n)``
congestion".  We implement exactly that naive variant (every node re-sends
its estimate to every neighbor every round for ``n`` rounds), plus the folk
*send-on-change* optimization as an ablation, so experiment E8 can show both
the time optimality (``O(n)`` rounds) and the congestion blow-up that makes
concurrent instances (APSP) infeasible.
"""

from __future__ import annotations

from ..graphs import Graph, INFINITY
from ..sim import (
    Context,
    Metrics,
    Mode,
    NodeAlgorithm,
    fault_horizon_factor,
    latency_bound,
    make_runner,
)
from ..sim.kernels import WAKE_HALT, WAKE_NEXT, BatchKernel

__all__ = ["BellmanFordNode", "run_bellman_ford"]


class _BellmanFordKernel(BatchKernel):
    """Batch kernel for the all-edges relaxation rounds.

    Mirrors :meth:`BellmanFordNode.on_round` branch for branch over state
    columns; the per-round win is skipping the context/wake machinery for
    the ``Theta(n)`` rounds in which every node relaxes and re-broadcasts.
    """

    def __init__(self, runner, algorithms) -> None:
        views = runner.indexed.node_views()
        self._algorithms = algorithms
        self._views = views
        self._weight_of: list = [a._weight_of for a in algorithms]
        self._dist = [a.dist for a in algorithms]
        self._changed = [a._changed for a in algorithms]
        self._horizon = [a.horizon for a in algorithms]
        self._soc = [a.send_on_change for a in algorithms]
        self._degree0 = [v[3] == v[4] for v in views]

    def on_round_batch(
        self, r, awake, inboxes,
        out_ports, out_payloads, bcast_src, bcast_payloads,
    ):
        dist = self._dist
        changed = self._changed
        weight_of = self._weight_of
        degree0 = self._degree0
        codes = []
        append = codes.append
        for i in awake:
            box = inboxes[i]
            if box.senders:
                wo = weight_of[i]
                if wo is None:
                    view = self._views[i]
                    wo = weight_of[i] = dict(zip(view[0], view[1]))
                d = dist[i]
                for sender, estimate in zip(box.senders, box.payloads):
                    candidate = estimate + wo[sender]
                    if candidate < d:
                        d = candidate
                        changed[i] = True
                dist[i] = d
            if r >= self._horizon[i]:
                append(WAKE_HALT)
                continue
            soc = self._soc[i]
            should_send = dist[i] != INFINITY and (changed[i] or not soc)
            if should_send:
                if not degree0[i]:  # ctx.broadcast's degree-0 early return
                    bcast_src.append(i)
                    bcast_payloads.append(dist[i])
                changed[i] = False
            if soc and not should_send:
                append(self._horizon[i])  # wake_at(horizon): r < horizon here
            else:
                append(WAKE_NEXT)
        return codes

    def finalize(self) -> None:
        for i, alg in enumerate(self._algorithms):
            alg.dist = self._dist[i]
            alg._changed = self._changed[i]
            alg._weight_of = self._weight_of[i]


class BellmanFordNode(NodeAlgorithm):
    """One node's Bellman-Ford role: relax every incident edge every round."""

    def __init__(
        self, node: object, is_source: bool, horizon: int, *, send_on_change: bool
    ) -> None:
        self.node = node
        self.dist: float = 0 if is_source else INFINITY
        self.horizon = horizon
        self.send_on_change = send_on_change
        self._changed = True  # sources must announce in round 0
        self._weight_of: dict | None = None

    def on_round(self, ctx: Context, inbox: list[tuple[object, object]]) -> None:
        # The relaxation loop runs once per received message for n rounds —
        # cache the neighbor->weight map out of it (one bulk read per node).
        if inbox.senders:
            weight_of = self._weight_of
            if weight_of is None:
                weight_of = self._weight_of = dict(zip(ctx.neighbors, ctx.edge_weights))
            dist = self.dist
            for sender, estimate in zip(inbox.senders, inbox.payloads):
                candidate = estimate + weight_of[sender]
                if candidate < dist:
                    dist = candidate
                    self._changed = True
            self.dist = dist
        if ctx.round >= self.horizon:
            ctx.halt()
            return
        should_send = self.dist != INFINITY and (self._changed or not self.send_on_change)
        if should_send:
            ctx.broadcast(self.dist)
            self._changed = False
        if self.send_on_change and not should_send:
            # Optimized variant: sleep until something arrives or the end.
            ctx.wake_at(self.horizon)

    @classmethod
    def batch_kernel(cls, runner) -> _BellmanFordKernel:
        return _BellmanFordKernel(runner, runner._algorithms_by_index)


def run_bellman_ford(
    graph: Graph,
    source: object,
    *,
    metrics: Metrics | None = None,
    send_on_change: bool = False,
) -> dict:
    """Distances from ``source`` by distributed Bellman-Ford.

    ``send_on_change=False`` is the paper's ``Theta(mn)``-message baseline;
    ``True`` is the folk optimization (same worst case, better in practice).
    The horizon is ``n`` rounds — enough for any shortest path (at most
    ``n - 1`` edges), and all nodes know ``n``.  Under an asynchronous
    engine it scales by the latency bound: an estimate needs at most
    ``L`` time units per hop, so ``n * L`` covers every path.  That makes
    Bellman-Ford *delay-tolerant* — it converges to correct distances
    under any per-edge latency model (relaxation is monotone; timing only
    changes when estimates improve, not what they converge to).  The same
    monotonicity makes it *fault-tolerant*: every node with a finite
    estimate re-broadcasts each round, so a dropped message retries next
    round and a restarted node relearns from its neighbors — the horizon
    scales by :func:`~repro.sim.fault_horizon_factor` to leave room.
    """
    horizon = graph.num_nodes * latency_bound() * fault_horizon_factor()
    algorithms = {
        u: BellmanFordNode(u, u == source, horizon, send_on_change=send_on_change)
        for u in graph.nodes()
    }
    runner = make_runner(graph, algorithms, Mode.CONGEST, metrics=metrics)
    runner.run()
    return {u: algorithms[u].dist for u in graph.nodes()}
