"""Baseline distributed SSSP algorithms the paper compares against."""

from .bellman_ford import BellmanFordNode, run_bellman_ford
from .dijkstra import run_distributed_dijkstra

__all__ = ["BellmanFordNode", "run_bellman_ford", "run_distributed_dijkstra"]
