"""Naive distributed Dijkstra — the other baseline from Section 1.1.

"A direct distributed implementation of Dijkstra would have time complexity
``O(nD)`` ... and message complexity ``O(n^2 + m)``."  We implement exactly
that direct port: a BFS tree rooted at the source; then, per iteration, a
convergecast finds the globally minimum-estimate unvisited node, the root
broadcasts the winner, the winner relaxes its incident edges, repeat.
Each iteration costs ``Theta(tree depth)`` rounds and ``Theta(n)`` messages,
so the totals match the paper's quoted ``O(nD)`` / ``O(n^2 + m)`` and
experiment E8 shows the contrast with the recursion-based SSSP.
"""

from __future__ import annotations

from ..graphs import Graph, INFINITY
from ..sim import Context, Metrics, Mode, NodeAlgorithm, make_runner
from ..core.bfs import WeightedBFS
from ..core.trees import RootedForest, run_convergecast_broadcast

__all__ = ["run_distributed_dijkstra"]


class _RelaxNode(NodeAlgorithm):
    """One-round edge relaxation by the freshly visited node."""

    def __init__(self, node: object, is_winner: bool, dist: float) -> None:
        self.node = node
        self.is_winner = is_winner
        self.dist = dist
        self.offers: dict = {}

    def on_round(self, ctx: Context, inbox: list[tuple[object, object]]) -> None:
        for sender, d in inbox:
            self.offers[sender] = d + ctx.weight(sender)
        if ctx.round == 0 and self.is_winner:
            ctx.broadcast(self.dist)
        if ctx.round >= 1:
            ctx.halt()
            return
        ctx.wake_at(1)


def _build_bfs_tree(graph: Graph, source: object, metrics: Metrics) -> RootedForest:
    """Hop-BFS tree rooted at the source (parents collected distributedly)."""
    unit = graph.reweighted(lambda _w: 1)
    algorithms = {
        u: WeightedBFS(
            u,
            graph.num_nodes,
            source_offset=0 if u == source else None,
            collect_parent=True,
        )
        for u in unit.nodes()
    }
    make_runner(unit, algorithms, Mode.CONGEST, metrics=metrics).run()
    return RootedForest({u: algorithms[u].parent for u in unit.nodes()})


def run_distributed_dijkstra(
    graph: Graph, source: object, *, metrics: Metrics | None = None
) -> dict:
    """Exact SSSP by the direct distributed Dijkstra port.

    Returns node -> distance.  ``O(n D)`` rounds, ``O(n^2 + m)`` messages,
    with per-edge congestion up to ``Theta(n)`` on the tree edges near the
    root — the coordination bottleneck the paper's approach removes.
    """
    metrics = metrics if metrics is not None else Metrics()
    tree = _build_bfs_tree(graph, source, metrics)

    estimate: dict = {u: INFINITY for u in graph.nodes()}
    estimate[source] = 0
    visited: set = set()

    for _ in range(graph.num_nodes):
        # Convergecast the minimum-estimate unvisited node to the root.
        def key_of(u: object):
            if u in visited or estimate[u] == INFINITY:
                return None
            return (estimate[u], repr(u), u)

        def pick_min(values: list):
            finite = [v for v in values if v is not None]
            if not finite:
                return None
            return min(finite, key=lambda t: t[:2])

        aggregate = run_convergecast_broadcast(
            graph, tree, {u: key_of(u) for u in graph.nodes()}, pick_min, metrics=metrics
        )
        winner_entry = aggregate[source]
        if winner_entry is None:
            break
        _, _, winner = winner_entry
        visited.add(winner)

        # The winner's estimate is final; relax its incident edges.
        relaxers = {
            u: _RelaxNode(u, u == winner, estimate[winner]) for u in graph.nodes()
        }
        make_runner(graph, relaxers, Mode.CONGEST, metrics=metrics).run()
        for u in graph.nodes():
            for _sender, offer in relaxers[u].offers.items():
                if u not in visited and offer < estimate[u]:
                    estimate[u] = offer

    return estimate
