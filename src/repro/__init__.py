"""repro — reproduction of Ghaffari & Trygub (PODC 2024).

"A Near-Optimal Low-Energy Deterministic Distributed SSSP with Ramifications
on Congestion and APSP" — a full implementation of the paper's algorithms on
a round-accurate simulator of the synchronous CONGEST model and its sleeping
(energy) variant, with the baselines it compares against.

Quickstart::

    from repro import graphs, sssp

    g = graphs.random_connected_graph(64, seed=1)
    g = graphs.random_weights(g, max_weight=100, seed=2)
    result = sssp(g, source=0)
    print(result.distances[63], result.rounds, result.congestion)

Public surface:

* :mod:`repro.graphs` — weighted graphs, generators, IO;
* :mod:`repro.sim` — the CONGEST / sleeping-model simulator and metrics;
* :mod:`repro.core` — BFS, the approximate cutter, Boruvka, the recursive
  CSSP (Theorem 2.6/2.7), SSSP, and the random-delay APSP;
* :mod:`repro.baselines` — distributed Bellman-Ford and naive Dijkstra;
* :mod:`repro.energy` — sparse covers, network decomposition, the
  low-energy BFS/CSSP of Section 3 (Theorems 3.8-3.15);
* :mod:`repro.analysis` — scaling fits and experiment tables.
"""

from . import graphs
from .graphs import Graph, INFINITY
from .sim import Metrics, Mode
from .core import (
    APSPResult,
    SSSPResult,
    apsp,
    approx_cssp,
    build_maximal_forest,
    cssp,
    run_bfs,
    run_weighted_bfs,
    sssp,
    sssp_distances,
    thresholded_cssp,
)
from .baselines import run_bellman_ford, run_distributed_dijkstra

__version__ = "1.0.0"

__all__ = [
    "graphs",
    "Graph",
    "INFINITY",
    "Metrics",
    "Mode",
    "APSPResult",
    "SSSPResult",
    "apsp",
    "approx_cssp",
    "build_maximal_forest",
    "cssp",
    "run_bfs",
    "run_weighted_bfs",
    "sssp",
    "sssp_distances",
    "thresholded_cssp",
    "run_bellman_ford",
    "run_distributed_dijkstra",
    "__version__",
]
