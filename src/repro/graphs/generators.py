"""Deterministic and seeded graph-family generators for experiments.

The paper's lower bounds and claimed complexities are parameterized by the
node count ``n``, edge count ``m``, hop diameter ``D`` and max weight ``W``.
The families here let experiments sweep each parameter independently:

* ``path``/``cycle``: extreme diameter (``D = Theta(n)``) — the worst case in
  which the ``~O(n)`` SSSP time bound is trivially tight.
* ``grid``: ``D = Theta(sqrt(n))`` — intermediate diameter.
* ``balanced_tree``/``star``: logarithmic / constant diameter.
* ``random_graph`` (Erdos–Renyi G(n, p)): dense low-diameter graphs, the
  regime where congestion (not distance) is the bottleneck.
* ``random_connected_graph``: ER conditioned on connectivity via a random
  spanning-tree backbone — used when an experiment needs one component.
* ``caterpillar``/``lollipop``/``barbell``: classic stress shapes mixing a
  long path with a dense blob, exercising the recursion's uneven splits.
* ``weighted(...)``: wraps any family with random integer weights in
  ``[1, W]`` (or ``[0, W]`` for the Theorem 2.7 zero-weight experiments).

All randomness flows through an explicit ``random.Random(seed)`` so every
experiment is reproducible bit-for-bit.
"""

from __future__ import annotations

import random
from collections.abc import Callable

from .weighted_graph import Graph

__all__ = [
    "path_graph",
    "cycle_graph",
    "grid_graph",
    "star_graph",
    "complete_graph",
    "balanced_tree",
    "random_tree",
    "caterpillar_graph",
    "lollipop_graph",
    "barbell_graph",
    "random_graph",
    "random_connected_graph",
    "hypercube_graph",
    "random_geometric_graph",
    "circulant_graph",
    "random_weights",
    "with_random_weights",
    "FAMILIES",
    "make_family",
]


def path_graph(n: int) -> Graph:
    """Path ``0 - 1 - ... - n-1``; hop diameter ``n - 1``."""
    _require_positive(n)
    graph = Graph.from_edges(((i, i + 1) for i in range(n - 1)), nodes=range(n))
    return graph


def cycle_graph(n: int) -> Graph:
    """Cycle on ``n >= 3`` nodes; hop diameter ``floor(n / 2)``."""
    if n < 3:
        raise ValueError(f"cycle needs n >= 3, got {n}")
    edges = [(i, (i + 1) % n) for i in range(n)]
    return Graph.from_edges(edges)


def grid_graph(rows: int, cols: int) -> Graph:
    """``rows x cols`` 4-neighbor grid; nodes are ``r * cols + c``."""
    _require_positive(rows)
    _require_positive(cols)
    edges = []
    for r in range(rows):
        for c in range(cols):
            u = r * cols + c
            if c + 1 < cols:
                edges.append((u, u + 1))
            if r + 1 < rows:
                edges.append((u, u + cols))
    return Graph.from_edges(edges, nodes=range(rows * cols))


def star_graph(n: int) -> Graph:
    """Star with center 0 and ``n - 1`` leaves; hop diameter 2."""
    _require_positive(n)
    return Graph.from_edges(((0, i) for i in range(1, n)), nodes=range(n))


def complete_graph(n: int) -> Graph:
    """Complete graph ``K_n``."""
    _require_positive(n)
    edges = [(i, j) for i in range(n) for j in range(i + 1, n)]
    return Graph.from_edges(edges, nodes=range(n))


def balanced_tree(branching: int, height: int) -> Graph:
    """Complete ``branching``-ary tree of the given height (root = 0)."""
    if branching < 1:
        raise ValueError(f"branching must be >= 1, got {branching}")
    if height < 0:
        raise ValueError(f"height must be >= 0, got {height}")
    edges = []
    next_id = 1
    frontier = [0]
    for _ in range(height):
        new_frontier = []
        for parent in frontier:
            for _ in range(branching):
                edges.append((parent, next_id))
                new_frontier.append(next_id)
                next_id += 1
        frontier = new_frontier
    return Graph.from_edges(edges, nodes=range(next_id))


def random_tree(n: int, seed: int = 0) -> Graph:
    """Uniform-attachment random tree: node ``i`` attaches to a random ``j < i``."""
    _require_positive(n)
    rng = random.Random(seed)
    edges = [(i, rng.randrange(i)) for i in range(1, n)]
    return Graph.from_edges(edges, nodes=range(n))


def caterpillar_graph(spine: int, legs_per_node: int = 2) -> Graph:
    """A path of length ``spine`` with ``legs_per_node`` pendant leaves each."""
    _require_positive(spine)
    graph = path_graph(spine)
    next_id = spine
    for u in range(spine):
        for _ in range(legs_per_node):
            graph.add_edge(u, next_id)
            next_id += 1
    return graph


def lollipop_graph(clique: int, tail: int) -> Graph:
    """``K_clique`` with a path of ``tail`` extra nodes hanging off node 0."""
    graph = complete_graph(clique)
    prev = 0
    for i in range(tail):
        node = clique + i
        graph.add_edge(prev, node)
        prev = node
    return graph


def barbell_graph(clique: int, bridge: int) -> Graph:
    """Two ``K_clique`` blobs joined by a path of ``bridge`` nodes."""
    graph = complete_graph(clique)
    offset = clique + bridge
    for i in range(clique):
        for j in range(i + 1, clique):
            graph.add_edge(offset + i, offset + j)
    prev = 0
    for i in range(bridge):
        node = clique + i
        graph.add_edge(prev, node)
        prev = node
    graph.add_edge(prev, offset)
    return graph


def random_graph(n: int, p: float, seed: int = 0) -> Graph:
    """Erdos–Renyi ``G(n, p)`` (possibly disconnected)."""
    _require_positive(n)
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"p must be in [0, 1], got {p}")
    rng = random.Random(seed)
    graph = Graph()
    for u in range(n):
        graph.add_node(u)
    for i in range(n):
        for j in range(i + 1, n):
            if rng.random() < p:
                graph.add_edge(i, j)
    return graph


def random_connected_graph(n: int, extra_edge_prob: float = 0.05, seed: int = 0) -> Graph:
    """A connected random graph: random tree backbone + ER extra edges."""
    rng = random.Random(seed)
    graph = random_tree(n, seed=rng.randrange(2**31))
    for i in range(n):
        for j in range(i + 1, n):
            if not graph.has_edge(i, j) and rng.random() < extra_edge_prob:
                graph.add_edge(i, j)
    return graph


def hypercube_graph(dimension: int) -> Graph:
    """The ``dimension``-cube: ``2^d`` nodes, diameter ``d`` — the classic
    low-diameter topology where congestion, not distance, dominates."""
    if dimension < 1:
        raise ValueError(f"dimension must be >= 1, got {dimension}")
    n = 1 << dimension
    edges = []
    for u in range(n):
        for bit in range(dimension):
            v = u ^ (1 << bit)
            if u < v:
                edges.append((u, v))
    return Graph.from_edges(edges, nodes=range(n))


def random_geometric_graph(n: int, radius: float, seed: int = 0) -> Graph:
    """Unit-square geometric graph — the standard sensor-network model.

    Nodes get uniform positions; edges join pairs within ``radius``.  May
    be disconnected for small radii; weight = rounded scaled distance
    (minimum 1), so nearby sensors are "cheap" to reach.
    """
    _require_positive(n)
    if radius <= 0:
        raise ValueError(f"radius must be positive, got {radius}")
    rng = random.Random(seed)
    positions = [(rng.random(), rng.random()) for _ in range(n)]
    graph = Graph()
    for u in range(n):
        graph.add_node(u)
    for i in range(n):
        for j in range(i + 1, n):
            dx = positions[i][0] - positions[j][0]
            dy = positions[i][1] - positions[j][1]
            dist = (dx * dx + dy * dy) ** 0.5
            if dist <= radius:
                graph.add_edge(i, j, max(1, round(10 * dist / radius)))
    return graph


def circulant_graph(n: int, jumps: tuple = (1, 2)) -> Graph:
    """Circulant (ring + chords) — a simple bounded-degree expander-ish
    family with adjustable diameter via the jump set."""
    if n < 3:
        raise ValueError(f"circulant needs n >= 3, got {n}")
    edges = set()
    for u in range(n):
        for j in jumps:
            if j % n == 0:
                continue
            v = (u + j) % n
            edges.add((min(u, v), max(u, v)))
    return Graph.from_edges(edges, nodes=range(n))


def random_weights(
    graph: Graph, max_weight: int, seed: int = 0, min_weight: int = 1
) -> Graph:
    """Copy of ``graph`` with uniform random integer weights in ``[min, max]``.

    ``min_weight=0`` produces the zero-weight-edge instances of Theorem 2.7.
    """
    if max_weight < min_weight:
        raise ValueError("max_weight must be >= min_weight")
    rng = random.Random(seed)
    return graph.reweighted(lambda _w: rng.randint(min_weight, max_weight))


def with_random_weights(
    family: Callable[..., Graph], max_weight: int, seed: int = 0, min_weight: int = 1
) -> Callable[..., Graph]:
    """Wrap a generator so it emits randomly weighted instances."""

    def build(*args, **kwargs) -> Graph:
        return random_weights(family(*args, **kwargs), max_weight, seed=seed, min_weight=min_weight)

    return build


#: Name -> (builder taking only n, description).  Used by experiments that
#: sweep node count across families uniformly.
FAMILIES: dict[str, Callable[[int], Graph]] = {
    "path": path_graph,
    "cycle": cycle_graph,
    "grid": lambda n: grid_graph(max(1, int(round(n**0.5))), max(1, int(round(n**0.5)))),
    "star": star_graph,
    "tree": lambda n: random_tree(n, seed=1),
    "er": lambda n: random_connected_graph(n, extra_edge_prob=min(1.0, 4.0 / max(n, 2)), seed=1),
    "caterpillar": lambda n: caterpillar_graph(max(1, n // 3), 2),
}


def make_family(name: str, n: int, max_weight: int = 1, seed: int = 0) -> Graph:
    """Build a named family instance at (approximately) ``n`` nodes.

    For ``max_weight > 1`` the instance gets random integer weights in
    ``[1, max_weight]``.
    """
    if name not in FAMILIES:
        raise KeyError(f"unknown family {name!r}; options: {sorted(FAMILIES)}")
    graph = FAMILIES[name](n)
    if max_weight > 1:
        graph = random_weights(graph, max_weight, seed=seed)
    return graph


def _require_positive(n: int) -> None:
    if n < 1:
        raise ValueError(f"need at least one node, got n={n}")
