"""Frozen, index-addressed view of a :class:`Graph` (CSR adjacency).

Everything in :mod:`repro` speaks in arbitrary hashable node labels — small
ints mostly, but the CSSP recursion also manufactures tuple-labelled
imaginary nodes.  That flexibility costs the simulator dearly: dict-of-dict
adjacency, per-message dict lookups, and ``repr``-keyed sorting in the hot
loop.  :class:`IndexedGraph` is the bridge between the two worlds: it maps
the labels once to contiguous integer indices ``0..n-1`` and lays the
adjacency out in CSR form (``indptr`` / ``nbr`` / ``wt`` flat lists), so the
runner can do all per-round work on plain integer arrays while algorithms
keep their labels.

The view is *frozen*: it never mutates, and :class:`Graph` invalidates its
cached view on every ``add_node`` / ``add_edge``, so ``IndexedGraph.of(g)``
is safe to call repeatedly — recursive algorithms that run many phases over
one graph pay the O(n + m) build exactly once.

Directed-edge numbering: the CSR slot of neighbor ``v`` in ``u``'s adjacency
run is the *port id* of the directed edge ``u -> v``.  Port ids are what the
runner uses for O(1) per-round edge-capacity accounting.
"""

from __future__ import annotations

from collections.abc import Iterator
from itertools import repeat

__all__ = ["IndexedGraph"]


class IndexedGraph:
    """CSR snapshot of a :class:`Graph` with a stable label <-> index map.

    Attributes
    ----------
    labels:
        ``labels[i]`` is the original node label of index ``i`` (graph
        insertion order, so deterministic for a given construction).
    index_of:
        Inverse map ``label -> index``.
    indptr / nbr / wt:
        Standard CSR: the neighbors of index ``i`` are
        ``nbr[indptr[i]:indptr[i + 1]]`` with matching weights in ``wt``.
    """

    __slots__ = (
        "labels",
        "index_of",
        "indptr",
        "nbr",
        "wt",
        "num_nodes",
        "num_edges",
        "_node_views",
        "_port_pairs",
        "_port_src_labels",
        "_broadcast_views",
        "_engine_pool",
        "_csr",
    )

    def __init__(self, graph) -> None:
        labels = list(graph.nodes())
        index_of = {u: i for i, u in enumerate(labels)}
        indptr = [0]
        nbr: list[int] = []
        wt: list[int] = []
        adj = getattr(graph, "_adj", None)
        if adj is not None:
            # Fast path for the standard Graph: bulk-copy each adjacency row
            # (keys mapped through index_of, values verbatim) instead of one
            # weight lookup per directed edge.
            index_lookup = index_of.__getitem__
            for u in labels:
                row = adj[u]
                nbr.extend(map(index_lookup, row))
                wt.extend(row.values())
                indptr.append(len(nbr))
        else:
            for u in labels:
                for v in graph.neighbors(u):
                    nbr.append(index_of[v])
                    wt.append(graph.weight(u, v))
                indptr.append(len(nbr))
        self.labels = labels
        self.index_of = index_of
        self.indptr = indptr
        self.nbr = nbr
        self.wt = wt
        self.num_nodes = len(labels)
        self.num_edges = len(nbr) // 2
        self._node_views: list[tuple] | None = None
        self._port_pairs: list[tuple] | None = None
        self._port_src_labels: list | None = None
        self._broadcast_views: list[list] | None = None
        # Single-slot pool of runner engine state (contexts, inboxes, port
        # loads) — checked out by Runner.__init__, returned by a clean run().
        self._engine_pool: tuple | None = None
        # Cached (indptr, nbr, wt) numpy export; see csr().
        self._csr: tuple | None = None

    @classmethod
    def from_csr(cls, labels, indptr, nbr, wt, *, csr_views=None) -> "IndexedGraph":
        """Build a view directly from CSR columns (the shm attach path).

        ``indptr``/``nbr``/``wt`` are any integer sequences; they are
        materialized into the plain lists the engine indexes.  When the
        caller already holds numpy views over the same data (e.g. mapped
        shared memory), passing them as ``csr_views`` seeds the
        :meth:`csr` cache so the flat-array export stays zero-copy.
        """
        self = object.__new__(cls)
        self.labels = labels = list(labels)
        self.index_of = {u: i for i, u in enumerate(labels)}
        self.indptr = list(indptr)
        self.nbr = list(nbr)
        self.wt = list(wt)
        self.num_nodes = len(labels)
        self.num_edges = len(self.nbr) // 2
        self._node_views = None
        self._port_pairs = None
        self._port_src_labels = None
        self._broadcast_views = None
        self._engine_pool = None
        self._csr = csr_views
        return self

    def csr(self) -> tuple | None:
        """The CSR structure as flat ``int64`` numpy arrays, or ``None``.

        Returns ``(indptr, nbr, wt)`` — read-only views batch kernels use
        for vectorized expansion — built once per view and cached.  The
        engine's own bookkeeping stays on the plain lists (scalar indexing
        of numpy arrays is slower and yields ``np.int64``); the arrays
        exist for *bulk* operations only.  ``None`` when numpy is
        unavailable (callers fall back to the lists).
        """
        arrays = self._csr
        if arrays is None:
            try:
                import numpy as np
            except ImportError:  # pragma: no cover - numpy-less fallback
                return None
            arrays = (
                np.asarray(self.indptr, dtype=np.int64),
                np.asarray(self.nbr, dtype=np.int64),
                np.asarray(self.wt, dtype=np.int64),
            )
            for a in arrays:
                a.flags.writeable = False
            self._csr = arrays
        return arrays

    # ------------------------------------------------------------------
    @classmethod
    def of(cls, graph) -> "IndexedGraph":
        """The cached indexed view of ``graph`` (built on first use).

        The cache lives on the :class:`Graph` instance and is dropped by its
        mutators, so a stale view is never returned.
        """
        view = getattr(graph, "_indexed_view", None)
        if view is None:
            view = cls(graph)
            graph._indexed_view = view
        return view

    # ------------------------------------------------------------------
    # index-space queries (what the runner uses)
    # ------------------------------------------------------------------
    def degree(self, i: int) -> int:
        return self.indptr[i + 1] - self.indptr[i]

    def neighbor_indices(self, i: int) -> list[int]:
        return self.nbr[self.indptr[i] : self.indptr[i + 1]]

    def neighbor_weights(self, i: int) -> list[int]:
        return self.wt[self.indptr[i] : self.indptr[i + 1]]

    def node_views(self) -> list[tuple]:
        """Per-node ``(neighbor_labels, weights, port_by_label, lo, hi)``.

        ``weights`` is a tuple aligned with ``neighbor_labels`` (the bulk
        weight accessor); ``port_by_label[v] = (port_id, v_index, weight)``
        — everything a node-local send needs in one dict hit; ``lo:hi`` is
        the node's CSR port slice (the broadcast fast path meters it as one
        block).  Built lazily once and shared by every
        :class:`~repro.sim.Runner` over this view, which is the big win for
        recursive algorithms that spin up many runners per graph.
        """
        views = self._node_views
        if views is None:
            labels = self.labels
            views = []
            for i in range(self.num_nodes):
                lo, hi = self.indptr[i], self.indptr[i + 1]
                nbr_labels = tuple(labels[j] for j in self.nbr[lo:hi])
                ports = {
                    v: (lo + k, self.nbr[lo + k], self.wt[lo + k])
                    for k, v in enumerate(nbr_labels)
                }
                views.append((nbr_labels, tuple(self.wt[lo:hi]), ports, lo, hi))
            self._node_views = views
        return views

    def port_pairs(self) -> list[tuple]:
        """Flat per-port ``(src_label, dst_label)`` table (parallel to ``nbr``).

        Used by the runner's per-message slow path (tracing metrics); the
        fast path folds port counts through :meth:`port_src_labels` instead.
        Built lazily once per view.
        """
        pairs = self._port_pairs
        if pairs is None:
            labels = self.labels
            indptr = self.indptr
            nbr = self.nbr
            pairs = []
            for i in range(self.num_nodes):
                src = labels[i]
                pairs.extend((src, labels[j]) for j in nbr[indptr[i] : indptr[i + 1]])
            self._port_pairs = pairs
        return pairs

    def port_src_labels(self) -> list:
        """Flat per-port sender-label column (parallel to ``nbr``).

        ``port_src_labels()[p]`` is the label of the node that owns port
        ``p`` — what delivery writes into the inbox ``senders`` column
        without building a label pair per message.  Built lazily once per
        view with bulk ``repeat`` extends (no per-port Python work).
        """
        out = self._port_src_labels
        if out is None:
            indptr = self.indptr
            out = []
            for i, label in enumerate(self.labels):
                out.extend(repeat(label, indptr[i + 1] - indptr[i]))
            self._port_src_labels = out
        return out

    def broadcast_views(self) -> list[list]:
        """Per-node neighbor-index runs (``nbr`` slices) for broadcast expansion.

        The delivery phase expands one broadcast record by walking this
        list instead of re-slicing the CSR arrays per record.  Built lazily
        on the first broadcast over this view.
        """
        views = self._broadcast_views
        if views is None:
            indptr = self.indptr
            nbr = self.nbr
            views = [
                nbr[indptr[i] : indptr[i + 1]] for i in range(self.num_nodes)
            ]
            self._broadcast_views = views
        return views

    # ------------------------------------------------------------------
    # label-space round-trip
    # ------------------------------------------------------------------
    def edges(self) -> Iterator[tuple[object, object, int]]:
        """Each undirected edge once as ``(u_label, v_label, w)``."""
        labels = self.labels
        for i in range(self.num_nodes):
            for k in range(self.indptr[i], self.indptr[i + 1]):
                j = self.nbr[k]
                if i < j:
                    yield labels[i], labels[j], self.wt[k]

    def to_graph(self):
        """Rebuild an equivalent :class:`Graph` (same labels, edges, weights)."""
        from .weighted_graph import Graph

        out = Graph()
        for u in self.labels:
            out.add_node(u)
        for u, v, w in self.edges():
            out.add_edge(u, v, w)
        return out

    def __repr__(self) -> str:
        return f"IndexedGraph(n={self.num_nodes}, m={self.num_edges})"
