"""Edge-list serialization for graphs.

Plain-text, one edge per line (``u v w``), with a header comment carrying the
node count so isolated nodes round-trip.  Used by the examples to persist
generated topologies and by users who want to feed their own networks in.
"""

from __future__ import annotations

import io
from pathlib import Path

from .weighted_graph import Graph

__all__ = ["write_edge_list", "read_edge_list", "dumps", "loads"]


def dumps(graph: Graph) -> str:
    """Serialize to the edge-list text format."""
    out = io.StringIO()
    out.write(f"# nodes {graph.num_nodes}\n")
    for u in sorted(graph.nodes(), key=repr):
        out.write(f"# node {u}\n")
    for u, v, w in sorted(graph.edges(), key=lambda e: (repr(e[0]), repr(e[1]))):
        out.write(f"{u} {v} {w}\n")
    return out.getvalue()


def loads(text: str) -> Graph:
    """Parse the edge-list text format (integer node ids only)."""
    graph = Graph()
    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line[1:].split()
            if len(parts) == 2 and parts[0] == "node":
                graph.add_node(int(parts[1]))
            continue
        u_str, v_str, w_str = line.split()
        graph.add_edge(int(u_str), int(v_str), int(w_str))
    return graph


def write_edge_list(graph: Graph, path: str | Path) -> None:
    """Write ``graph`` to ``path`` in the edge-list format."""
    Path(path).write_text(dumps(graph))


def read_edge_list(path: str | Path) -> Graph:
    """Read a graph previously written by :func:`write_edge_list`."""
    return loads(Path(path).read_text())
