"""Undirected weighted graph substrate used by every algorithm in the library.

The paper's model (Section 1.1) abstracts the network as an undirected
weighted graph ``G = (V, E)`` with integer edge weights in ``[1, poly(n)]``
(extended to weight 0 in Theorem 2.7).  This module provides that substrate:
a small, dependency-free adjacency structure with the handful of operations
the distributed algorithms need (neighbor iteration, induced subgraphs,
connected components) plus an exact sequential Dijkstra used as the internal
reference oracle.

Nothing in here is "distributed"; the distributed semantics (rounds,
messages, sleeping) live in :mod:`repro.sim`.
"""

from __future__ import annotations

import heapq
from collections.abc import Iterable, Iterator

__all__ = ["Graph", "INFINITY"]

#: Sentinel distance for unreachable nodes.  An integer larger than any
#: realizable distance would also work, but ``float('inf')`` composes cleanly
#: with ``min``.
INFINITY = float("inf")


class Graph:
    """An undirected weighted multigraph-free graph with integer node ids.

    Nodes are arbitrary hashable identifiers (the library uses small ints
    and, inside the CSSP recursion, tuples for imaginary cut nodes).  Edge
    weights are nonnegative integers, matching the paper's model.

    The structure is append-only: algorithms never mutate a shared graph;
    they derive induced subgraphs instead.
    """

    def __init__(self) -> None:
        self._adj: dict[object, dict[object, int]] = {}
        self._num_edges = 0
        # Cached frozen CSR view (see repro.graphs.indexed); dropped on any
        # mutation so IndexedGraph.of(self) never returns a stale snapshot.
        self._indexed_view = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_node(self, u: object) -> None:
        """Insert node ``u`` if absent."""
        if u not in self._adj:
            self._adj[u] = {}
            self._indexed_view = None

    def add_edge(self, u: object, v: object, weight: int = 1) -> None:
        """Insert undirected edge ``{u, v}`` with the given integer weight.

        Re-adding an existing edge keeps the smaller weight (the graphs the
        generators build never do this, but induced/merged constructions may).
        Self-loops are rejected: they carry no information for shortest paths
        and the CONGEST model has no self-edges.
        """
        if u == v:
            raise ValueError(f"self-loop on node {u!r} is not allowed")
        if weight < 0 or int(weight) != weight:
            raise ValueError(f"edge weight must be a nonnegative integer, got {weight!r}")
        weight = int(weight)
        self.add_node(u)
        self.add_node(v)
        self._indexed_view = None
        if v in self._adj[u]:
            keep = min(self._adj[u][v], weight)
            self._adj[u][v] = keep
            self._adj[v][u] = keep
            return
        self._adj[u][v] = weight
        self._adj[v][u] = weight
        self._num_edges += 1

    @classmethod
    def from_edges(cls, edges: Iterable[tuple], nodes: Iterable[object] = ()) -> "Graph":
        """Build a graph from ``(u, v)`` or ``(u, v, w)`` tuples.

        ``nodes`` adds isolated nodes that appear in no edge.
        """
        graph = cls()
        for node in nodes:
            graph.add_node(node)
        for edge in edges:
            if len(edge) == 2:
                u, v = edge
                graph.add_edge(u, v, 1)
            else:
                u, v, w = edge
                graph.add_edge(u, v, w)
        return graph

    # ------------------------------------------------------------------
    # basic queries
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        return self._num_edges

    def nodes(self) -> Iterator[object]:
        return iter(self._adj)

    def has_node(self, u: object) -> bool:
        return u in self._adj

    def has_edge(self, u: object, v: object) -> bool:
        return u in self._adj and v in self._adj[u]

    def neighbors(self, u: object) -> Iterator[object]:
        return iter(self._adj[u])

    def degree(self, u: object) -> int:
        return len(self._adj[u])

    def weight(self, u: object, v: object) -> int:
        """Weight of edge ``{u, v}``; raises ``KeyError`` if absent."""
        return self._adj[u][v]

    def edges(self) -> Iterator[tuple[object, object, int]]:
        """Iterate each undirected edge exactly once as ``(u, v, w)``.

        An edge is emitted when its first endpoint (in node insertion order)
        is visited — one set lookup per directed edge, no per-edge key
        objects.
        """
        done: set = set()
        for u, nbrs in self._adj.items():
            for v, w in nbrs.items():
                if v not in done:
                    yield u, v, w
            done.add(u)

    def max_weight(self) -> int:
        """Largest edge weight (0 for an edgeless graph)."""
        # Each undirected edge appears in both adjacency rows; the max is
        # unaffected, and scanning rows directly skips edge dedup entirely.
        return max(
            (max(nbrs.values()) for nbrs in self._adj.values() if nbrs), default=0
        )

    def min_weight(self) -> int:
        """Smallest edge weight (0 for an edgeless graph)."""
        return min(
            (min(nbrs.values()) for nbrs in self._adj.values() if nbrs), default=0
        )

    def weighted_diameter_upper_bound(self) -> int:
        """The paper's coarse bound ``n * max_weight >= max dist`` (Sec 2.2)."""
        return max(1, self.num_nodes * max(1, self.max_weight()))

    # ------------------------------------------------------------------
    # derived graphs
    # ------------------------------------------------------------------
    def induced_subgraph(self, keep: Iterable[object]) -> "Graph":
        """The subgraph induced by the node set ``keep``.

        Used by the CSSP recursion, where nodes outside ``V1`` (resp. inside
        ``V2``) are removed before recursing (Section 2.3, steps 4 and 6).
        """
        keep_set = set(keep)
        sub = Graph()
        sub_adj = sub._adj
        for u in keep_set:
            if u in self._adj:
                sub_adj[u] = {}
        # Walk only the kept rows (O(sum of kept degrees), not O(m)) and
        # write the half-rows directly — the weights were validated when the
        # parent graph was built.
        directed = 0
        for u, row in sub_adj.items():
            for v, w in self._adj[u].items():
                if v in sub_adj:
                    row[v] = w
                    directed += 1
        sub._num_edges = directed // 2
        return sub

    def reweighted(self, fn) -> "Graph":
        """A copy with each weight ``w`` replaced by ``fn(w)``.

        The Nanongkai rounding trick (Lemma 2.1) is a reweighting followed by
        a weighted BFS; this helper keeps that transformation explicit.
        ``fn`` is called exactly once per undirected edge, in ``edges()``
        order (stateful fns like seeded RNG draws rely on both), with the
        rows written directly instead of going through ``add_edge``.
        """
        out = Graph()
        out_adj = out._adj
        for u in self._adj:
            out_adj[u] = {}
        for u, v, w in self.edges():
            raw = fn(w)
            nw = int(raw)
            if nw != raw or nw < 0:
                raise ValueError(
                    f"edge weight must be a nonnegative integer, got {raw!r}"
                )
            out_adj[u][v] = nw
            out_adj[v][u] = nw
        out._num_edges = self._num_edges
        return out

    # ------------------------------------------------------------------
    # connectivity
    # ------------------------------------------------------------------
    def connected_components(self) -> list[set]:
        """Connected components as a list of node sets (deterministic order)."""
        seen: set = set()
        components: list[set] = []
        for start in self._adj:
            if start in seen:
                continue
            component = {start}
            stack = [start]
            while stack:
                u = stack.pop()
                for v in self._adj[u]:
                    if v not in component:
                        component.add(v)
                        stack.append(v)
            seen |= component
            components.append(component)
        return components

    def is_connected(self) -> bool:
        if self.num_nodes == 0:
            return True
        return len(self.connected_components()) == 1

    # ------------------------------------------------------------------
    # sequential oracles (ground truth for tests and for simulator-internal
    # assertions; the distributed algorithms never call these)
    # ------------------------------------------------------------------
    def dijkstra(self, sources: Iterable[object]) -> dict[object, float]:
        """Exact closest-source distances ``dist(S, v)`` for all nodes.

        Standard binary-heap Dijkstra.  Nonnegative weights only, which the
        constructor already enforces.  Unreachable nodes map to ``INFINITY``.
        """
        dist: dict[object, float] = {u: INFINITY for u in self._adj}
        heap: list[tuple[float, int, object]] = []
        counter = 0  # tie-break so heterogeneous node ids never get compared
        for s in sources:
            if s not in self._adj:
                raise KeyError(f"source {s!r} is not a node of the graph")
            if dist[s] != 0:
                dist[s] = 0
                heapq.heappush(heap, (0, counter, s))
                counter += 1
        while heap:
            d, _, u = heapq.heappop(heap)
            if d > dist[u]:
                continue
            for v, w in self._adj[u].items():
                nd = d + w
                if nd < dist[v]:
                    dist[v] = nd
                    heapq.heappush(heap, (nd, counter, v))
                    counter += 1
        return dist

    def hop_distances(self, sources: Iterable[object]) -> dict[object, float]:
        """Unweighted (hop) distances from the closest source — a BFS oracle."""
        from collections import deque

        dist: dict[object, float] = {u: INFINITY for u in self._adj}
        queue: deque = deque()
        for s in sources:
            if s not in self._adj:
                raise KeyError(f"source {s!r} is not a node of the graph")
            if dist[s] != 0:
                dist[s] = 0
                queue.append(s)
        while queue:
            u = queue.popleft()
            for v in self._adj[u]:
                if dist[v] == INFINITY:
                    dist[v] = dist[u] + 1
                    queue.append(v)
        return dist

    def mst_weight(self) -> int:
        """Total weight of a minimum spanning forest (sequential Kruskal).

        A sequential oracle like :meth:`dijkstra`: ground truth for the
        distributed Boruvka forest (Thm 2.2).  Disconnected graphs get a
        minimum spanning *forest* — one tree per component.
        """
        parent: dict[object, object] = {u: u for u in self._adj}

        def find(u: object) -> object:
            root = u
            while parent[root] != root:
                root = parent[root]
            while parent[u] != root:  # path compression
                parent[u], u = root, parent[u]
            return root

        total = 0
        # Deterministic tie-break: sort by (weight, endpoint reprs).
        for u, v, w in sorted(self.edges(), key=lambda e: (e[2], repr(e[0]), repr(e[1]))):
            ru, rv = find(u), find(v)
            if ru != rv:
                parent[ru] = rv
                total += w
        return total

    def hop_diameter(self) -> int:
        """Exact hop diameter of the (connected) graph.

        ``O(n * m)`` — fine at simulation scale; used only by experiments.
        Raises on disconnected graphs because the diameter is then infinite.
        """
        if not self.is_connected():
            raise ValueError("hop diameter of a disconnected graph is infinite")
        diameter = 0
        for u in self._adj:
            ecc = max(self.hop_distances([u]).values())
            diameter = max(diameter, int(ecc))
        return diameter

    def hop_eccentricity(self, u: object) -> int:
        """Max hop distance from ``u`` to any node in its component."""
        dist = self.hop_distances([u])
        finite = [d for d in dist.values() if d != INFINITY]
        return int(max(finite))

    # ------------------------------------------------------------------
    # dunder conveniences
    # ------------------------------------------------------------------
    def __contains__(self, u: object) -> bool:
        return u in self._adj

    def __len__(self) -> int:
        return len(self._adj)

    def __repr__(self) -> str:
        return f"Graph(n={self.num_nodes}, m={self.num_edges})"
