"""Compile recorded experiment tables into one evaluation report.

``pytest benchmarks/ --benchmark-only`` drops one rendered table per
experiment into ``benchmarks/results/``; this module stitches them into a
single Markdown document so EXPERIMENTS.md's raw appendix can be
regenerated in one call (and so CI can diff evaluation output runs).
"""

from __future__ import annotations

from pathlib import Path

__all__ = ["compile_report", "write_report"]

#: Canonical experiment order (E1..E13 with sub-experiments).
_ORDER = [
    "E1_correctness",
    "E2_cssp_time",
    "E2z_zero_weights",
    "E3_congestion",
    "E4_messages",
    "E5_recursion",
    "E6_energy_bfs",
    "E7_apsp",
    "E8_baselines",
    "E9_cutter",
    "E10_boruvka",
    "E11_covers",
    "E12_energy_cssp",
    "E13a_eps",
    "E13b_cover",
    "E13c_bf",
]


def compile_report(results_dir: str | Path) -> str:
    """Concatenate all recorded tables in canonical order as Markdown."""
    results = Path(results_dir)
    if not results.is_dir():
        raise FileNotFoundError(
            f"{results} does not exist — run `pytest benchmarks/ --benchmark-only` first"
        )
    sections = ["# Recorded experiment tables\n"]
    known = {p.stem: p for p in results.glob("*.txt")}
    ordered = [name for name in _ORDER if name in known]
    ordered += sorted(set(known) - set(_ORDER))
    if not ordered:
        raise FileNotFoundError(f"no experiment tables found in {results}")
    for name in ordered:
        sections.append(f"## {name}\n")
        sections.append("```")
        sections.append(known[name].read_text().rstrip())
        sections.append("```\n")
    return "\n".join(sections)


def write_report(results_dir: str | Path, output: str | Path) -> Path:
    """Compile and write the report; returns the output path."""
    out = Path(output)
    out.write_text(compile_report(results_dir))
    return out
