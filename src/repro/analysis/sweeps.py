"""Table rendering and scaling-law fits for experiment-sweep rows.

Bridges the sweep executor (:func:`repro.api.run_sweep_spec` tidy rows, or
a persistent :class:`repro.api.ResultSet`) to the analysis toolkit:
:func:`sweep_table` renders the rows as the usual monospace experiment
table, :func:`fit_sweep` fits a power law ``y = a * n^b`` per scenario
(averaging over seeds at each size), and :func:`sweep_report` stitches both
into one Markdown section — the same shape the recorded benchmark tables
feed into :mod:`repro.analysis.report`.  Every entry point accepts either a
list of row dicts or a :class:`~repro.api.ResultSet` (records' extra
``metrics`` payloads are ignored by the tabular views).
"""

from __future__ import annotations

from collections import defaultdict

from .fits import PowerFit, fit_power_law
from .tables import render_table

__all__ = ["sweep_columns", "sweep_table", "fit_sweep", "sweep_report"]


def _as_rows(rows) -> list[dict]:
    """Accept a plain row list or anything with ``.rows()`` (a ResultSet)."""
    return rows.rows() if hasattr(rows, "rows") else list(rows)


def sweep_columns(rows) -> list[str]:
    """Table column order: :data:`ROW_FIELDS`, then extra quality columns.

    Scenario-specific columns (``mst_weight``, ``cover_degree``,
    ``preprocess_rounds``, ...) appear sorted after the core fields; rows
    that lack a column render it blank.  Provenance that is not a
    measurement is never tabulated: ``metrics`` payloads (full serialized
    :class:`~repro.sim.Metrics` from a persistent store) and the
    ``size``/``params_digest`` resume-key components stay in the rows but
    out of the display columns (``n``, the built instance's node count, is
    the measurement; ``size`` is the request it answered).
    """
    from ..sim.experiments import ROW_FIELDS

    extras = set()
    for row in _as_rows(rows):
        extras.update(row)
    extras -= set(ROW_FIELDS) | {"metrics"}
    columns = [field for field in ROW_FIELDS if field not in ("size", "params_digest")]
    return columns + sorted(extras)


def sweep_table(rows, title: str = "experiment sweep") -> str:
    """Render sweep rows as an aligned table (core columns, then extras)."""
    rows = _as_rows(rows)
    columns = sweep_columns(rows)
    body = [[row.get(field, "") for field in columns] for row in rows]
    return render_table(title, columns, body)


def fit_sweep(rows, y: str = "rounds") -> dict[str, PowerFit]:
    """Per-scenario power-law fit of column ``y`` against ``n``.

    Rows are grouped by scenario; multiple seeds at one size are averaged
    before fitting.  Scenarios with fewer than two distinct sizes are
    skipped (a fit needs a sweep), as are rows lacking column ``y`` — so a
    scenario-specific quality column (``cover_degree``, ``energy_avg``,
    ...) fits over exactly the scenarios that report it.  A ``y`` no row
    carries at all raises ``KeyError`` (a typo'd column name must be loud,
    not an empty fits dict).
    """
    rows = _as_rows(rows)
    if rows and all(y not in row for row in rows):
        raise KeyError(
            f"column {y!r} appears in no sweep row (columns: {sweep_columns(rows)})"
        )
    grouped: dict[str, dict[int, list[float]]] = defaultdict(lambda: defaultdict(list))
    for row in rows:
        if y in row:
            grouped[row["scenario"]][row["n"]].append(float(row[y]))
    fits: dict[str, PowerFit] = {}
    for scenario, by_n in grouped.items():
        if len(by_n) < 2:
            continue
        ns = sorted(by_n)
        ys = [sum(by_n[n]) / len(by_n[n]) for n in ns]
        if min(ys) <= 0:
            continue
        fits[scenario] = fit_power_law(ns, ys)
    return fits


def sweep_report(rows, title: str = "experiment sweep", y: str = "rounds") -> str:
    """Markdown report: the sweep table plus per-scenario scaling fits."""
    rows = _as_rows(rows)
    sections = [f"## {title}\n", "```", sweep_table(rows, title), "```\n"]
    fits = fit_sweep(rows, y=y)
    if fits:
        sections.append(f"Power-law fits of `{y}` vs `n`:\n")
        for scenario in sorted(fits):
            fit = fits[scenario]
            sections.append(
                f"- `{scenario}`: {y} ~ n^{fit.exponent:.2f} (r2={fit.r2:.3f})"
            )
        sections.append("")
    return "\n".join(sections)
