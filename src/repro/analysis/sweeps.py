"""Table rendering and scaling-law fits for experiment-sweep rows.

Bridges :func:`repro.sim.experiments.run_sweep` (tidy rows) to the analysis
toolkit: :func:`sweep_table` renders the rows as the usual monospace
experiment table, :func:`fit_sweep` fits a power law ``y = a * n^b`` per
scenario (averaging over seeds at each size), and :func:`sweep_report`
stitches both into one Markdown section — the same shape the recorded
benchmark tables feed into :mod:`repro.analysis.report`.
"""

from __future__ import annotations

from collections import defaultdict

from .fits import PowerFit, fit_power_law
from .tables import render_table

__all__ = ["sweep_table", "fit_sweep", "sweep_report"]


def sweep_table(rows: list[dict], title: str = "experiment sweep") -> str:
    """Render sweep rows as an aligned table in :data:`ROW_FIELDS` order."""
    from ..sim.experiments import ROW_FIELDS

    body = [[row[field] for field in ROW_FIELDS] for row in rows]
    return render_table(title, list(ROW_FIELDS), body)


def fit_sweep(rows: list[dict], y: str = "rounds") -> dict[str, PowerFit]:
    """Per-scenario power-law fit of column ``y`` against ``n``.

    Rows are grouped by scenario; multiple seeds at one size are averaged
    before fitting.  Scenarios with fewer than two distinct sizes are
    skipped (a fit needs a sweep).
    """
    grouped: dict[str, dict[int, list[float]]] = defaultdict(lambda: defaultdict(list))
    for row in rows:
        grouped[row["scenario"]][row["n"]].append(float(row[y]))
    fits: dict[str, PowerFit] = {}
    for scenario, by_n in grouped.items():
        if len(by_n) < 2:
            continue
        ns = sorted(by_n)
        ys = [sum(by_n[n]) / len(by_n[n]) for n in ns]
        if min(ys) <= 0:
            continue
        fits[scenario] = fit_power_law(ns, ys)
    return fits


def sweep_report(rows: list[dict], title: str = "experiment sweep", y: str = "rounds") -> str:
    """Markdown report: the sweep table plus per-scenario scaling fits."""
    sections = [f"## {title}\n", "```", sweep_table(rows, title), "```\n"]
    fits = fit_sweep(rows, y=y)
    if fits:
        sections.append(f"Power-law fits of `{y}` vs `n`:\n")
        for scenario in sorted(fits):
            fit = fits[scenario]
            sections.append(
                f"- `{scenario}`: {y} ~ n^{fit.exponent:.2f} (r2={fit.r2:.3f})"
            )
        sections.append("")
    return "\n".join(sections)
