"""Scaling-law fitting for the experiments.

The paper's claims are asymptotic (``~O(n)`` time, polylog congestion and
energy).  The experiments validate them by sweeping a size parameter and
fitting two rival models to each measured series:

* power law      ``y = a * x^b``          (log-log linear regression);
* polylog        ``y = a * (log2 x)^c``   (log vs log-log regression).

A near-linear claim passes when the power-law exponent ``b`` is close to 1;
a polylog claim passes when the polylog model fits at least as well as the
power law *or* the power-law exponent is small (the honest criterion at
simulation scale, where a polylog curve looks like a tiny power).  All
fitting is plain least squares on transformed coordinates — no scipy needed
— with ``r2`` reported so EXPERIMENTS.md can show goodness of fit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["PowerFit", "fit_power_law", "fit_polylog", "compare_models", "linear_regression"]


def linear_regression(xs: list[float], ys: list[float]) -> tuple[float, float, float]:
    """Least-squares ``y = a + b x``; returns ``(a, b, r2)``."""
    n = len(xs)
    if n < 2:
        raise ValueError("need at least two points to fit")
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    sxx = sum((x - mean_x) ** 2 for x in xs)
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    if sxx == 0:
        raise ValueError("degenerate x values")
    slope = sxy / sxx
    intercept = mean_y - slope * mean_x
    ss_res = sum((y - (intercept + slope * x)) ** 2 for x, y in zip(xs, ys))
    ss_tot = sum((y - mean_y) ** 2 for y in ys)
    r2 = 1.0 if ss_tot == 0 else 1.0 - ss_res / ss_tot
    return intercept, slope, r2


@dataclass
class PowerFit:
    """``y = coefficient * x^exponent`` with the regression's ``r2``.

    A fit over a series that cannot support one (fewer than two points, or
    all sizes identical after the log transform) is *degenerate*: NaN
    coefficient/exponent with ``r2 = 0.0``.  Report code checks
    :attr:`degenerate` instead of wrapping every fit in ``try``.
    """

    coefficient: float
    exponent: float
    r2: float

    @property
    def degenerate(self) -> bool:
        """True when the series could not support a regression."""
        return math.isnan(self.exponent)

    def predict(self, x: float) -> float:
        return self.coefficient * x**self.exponent


def _degenerate_fit() -> PowerFit:
    return PowerFit(coefficient=math.nan, exponent=math.nan, r2=0.0)


def fit_power_law(xs: list[float], ys: list[float]) -> PowerFit:
    """Fit ``y = a x^b`` by regression in log-log space.

    Non-positive coordinates are clamped to ``1e-12`` before the log
    transform (x exactly like y — a zero-size or zero-valued point must
    not crash report generation with a ``math domain error``), and a
    series the regression rejects (fewer than two points, or no two
    distinct sizes) returns the degenerate sentinel instead of raising.
    """
    lx = [math.log(max(x, 1e-12)) for x in xs]
    ly = [math.log(max(y, 1e-12)) for y in ys]
    try:
        intercept, slope, r2 = linear_regression(lx, ly)
    except ValueError:
        return _degenerate_fit()
    return PowerFit(coefficient=math.exp(intercept), exponent=slope, r2=r2)


def fit_polylog(xs: list[float], ys: list[float]) -> PowerFit:
    """Fit ``y = a (log2 x)^c``: a power law in ``log2 x``.

    Clamped and sentinel'd exactly like :func:`fit_power_law` — here even
    positive sizes need the guard, since ``log2 x`` is non-positive for
    ``x <= 1`` and the outer log would reject it.
    """
    lx = [math.log(max(math.log2(max(x, 1e-12)), 1e-12)) for x in xs]
    ly = [math.log(max(y, 1e-12)) for y in ys]
    try:
        intercept, slope, r2 = linear_regression(lx, ly)
    except ValueError:
        return _degenerate_fit()
    return PowerFit(coefficient=math.exp(intercept), exponent=slope, r2=r2)


def compare_models(xs: list[float], ys: list[float]) -> dict:
    """Fit both models; report which explains the series better.

    ``verdict`` is "polylog" when the polylog model's r2 is at least as
    good, or when the fitted power exponent is below 0.5 (sub-square-root
    growth — at experiment scale a polylog masquerades as a small power).
    A series neither model can be fitted to (see :attr:`PowerFit.degenerate`)
    gets verdict ``"degenerate"`` — no winner should be claimed from a
    sentinel's NaNs.
    """
    power = fit_power_law(xs, ys)
    polylog = fit_polylog(xs, ys)
    if power.degenerate or polylog.degenerate:
        verdict = "degenerate"
    elif polylog.r2 >= power.r2 - 1e-9 or power.exponent < 0.5:
        verdict = "polylog"
    else:
        verdict = "power"
    return {"power": power, "polylog": polylog, "verdict": verdict}
