"""Analysis toolkit: scaling-law fits and experiment table rendering."""

from .fits import PowerFit, compare_models, fit_polylog, fit_power_law, linear_regression
from .sweeps import fit_sweep, sweep_columns, sweep_report, sweep_table
from .tables import render_table

__all__ = [
    "PowerFit",
    "compare_models",
    "fit_polylog",
    "fit_power_law",
    "fit_sweep",
    "linear_regression",
    "render_table",
    "sweep_columns",
    "sweep_report",
    "sweep_table",
]
