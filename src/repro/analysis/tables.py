"""Plain-text table rendering for benchmark output.

The benchmark harness prints, for every experiment, the same kind of rows
the paper's evaluation section would contain.  This keeps the output
greppable from ``pytest benchmarks/ --benchmark-only`` logs and pastes
directly into EXPERIMENTS.md.
"""

from __future__ import annotations

__all__ = ["render_table"]


def render_table(title: str, headers: list[str], rows: list[list]) -> str:
    """Render an aligned monospace table with a title banner."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = [f"== {title} =="]
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if cell == float("inf"):
            return "inf"
        return f"{cell:.3g}"
    return str(cell)
