"""Round-accurate simulator of the synchronous message-passing model.

Two execution modes mirror the paper's two settings:

* :data:`Mode.CONGEST` — the classic synchronous CONGEST model of
  Section 1.1.  Every node is conceptually awake every round.  As a pure
  simulation optimization, node algorithms may *sleep* through rounds in
  which they have nothing to do; the runner then buffers their messages and
  wakes them on arrival ("wake-on-message").  This changes no observable of
  the model — time, message and congestion accounting are exactly those of
  an always-awake execution — it only skips no-op Python work.  The energy
  metric is *not meaningful* in this mode.

* :data:`Mode.SLEEPING` — the sleeping model of Section 1.2.  A node is
  awake only in rounds it scheduled; **messages sent to a sleeping node are
  lost** (recorded in ``Metrics.lost_messages``) and there is no
  wake-on-message.  The awake-round count per node is the energy complexity.

Rounds are lock-step.  In round ``r`` every awake node consumes the messages
delivered to it in earlier rounds (its mailbox), updates state, and sends at
most ``edge_capacity`` messages per incident directed edge.  Messages sent in
round ``r`` are available from round ``r + 1``.

``round_width`` supports the paper's *megarounds* (Section 3.1.3): when
``k`` logical subroutines share edges, the paper groups ``k`` real rounds
into one megaround and a node awake in any of them stays awake for all of
them.  Setting ``round_width=k, edge_capacity=k`` makes one simulated round
stand for one megaround: the rounds/energy metrics advance by ``k`` per
simulated round and up to ``k`` messages may cross an edge (one per real
slot).  All paper-facing metrics remain exact.

Engine
------
The runner executes on the frozen :class:`~repro.graphs.IndexedGraph` view
of the network (built once per graph and cached on it), so all per-round
bookkeeping is integer-indexed array work.  The message plane is
*columnar*: per-round state lives in flat parallel arrays, not per-message
objects.

* the outbox is a pair of parallel lists ``(port_id, payload)`` — a unicast
  send appends one integer and one payload, no tuple is built;
* :meth:`Context.broadcast` is a fast path: one batched capacity check
  against the node's CSR port slice, one touched-list extend, and a single
  ``(src_index, payload)`` record that the delivery phase expands — not
  ``degree`` individual sends;
* delivery writes into reusable per-node :class:`Inbox` buffers (parallel
  ``senders`` / ``payloads`` lists cleared by truncation after each node
  steps), with sender labels taken from a precomputed per-port label table
  — steady-state rounds allocate no per-message tuples;
* the wake schedule is a heap of *distinct pending rounds* over per-round
  integer buckets, so quiet stretches between wakes are skipped outright
  (a round is pushed once when its bucket is created — no per-node heap
  churn);
* per-round edge-capacity accounting is a flat per-port counter array reset
  via a touched-list, not a fresh ``Counter`` per round;
* awake nodes step in node-index order (graph insertion order), which is
  deterministic.

The :class:`Inbox` handed to ``on_round`` is a *view* over the runner's
reusable buffers: it iterates as ``(sender, payload)`` pairs exactly like
the old list-of-tuples mailbox, but it is valid **only during that
``on_round`` call** — algorithms that need the contents later must copy
them (``list(inbox)``).

Semantics are identical to :class:`repro.sim.reference.ReferenceRunner`
(the retained original implementation); the differential tests in
``tests/test_runner_differential.py`` pin the two engines to byte-identical
metrics, including broadcast-heavy, megaround and ``edge_capacity > 1``
protocols in both modes.
"""

from __future__ import annotations

import copy
import enum
from collections import Counter
from heapq import heappop, heappush
from itertools import repeat

from ..graphs import Graph
from ..graphs.indexed import IndexedGraph
from .kernels import WAKE_HALT, WAKE_NEXT, kernel_for
from .metrics import Metrics

__all__ = ["Mode", "Context", "Inbox", "NodeAlgorithm", "Runner", "SimulationError"]


class Mode(enum.Enum):
    """Execution semantics: classic CONGEST vs the sleeping (energy) model."""

    CONGEST = "congest"
    SLEEPING = "sleeping"


class SimulationError(RuntimeError):
    """Raised on protocol violations (capacity breach, bad target, overrun)."""


#: Sentinel for :meth:`Context.idle` — sleep with no scheduled wake.
_IDLE = -1

#: Deferred metric logs fold into their counters once they reach this many
#: entries, bounding runner memory on message-heavy executions.
_LOG_FOLD = 1 << 20


def _fold_wakes(awake_rounds: Counter, wake_log: list, labels: list, width: int) -> None:
    for i, count in Counter(wake_log).items():
        awake_rounds[labels[i]] += count * width


def _fold_ports(edge_messages: Counter, port_log: list, port_src: list,
                labels: list, nbr: list) -> None:
    for port_id, count in Counter(port_log).items():
        edge_messages[(port_src[port_id], labels[nbr[port_id]])] += count


def _fold_bcasts(edge_messages: Counter, bcast_log: list, labels: list,
                 nbr: list, indptr: list) -> None:
    for src_i, count in Counter(bcast_log).items():
        sender = labels[src_i]
        for port_id in range(indptr[src_i], indptr[src_i + 1]):
            edge_messages[(sender, labels[nbr[port_id]])] += count

#: ``next_wake`` marker for "no live wake scheduled".
_NONE = -1


class Inbox:
    """Columnar mailbox view: parallel ``senders`` / ``payloads`` lists.

    Iterating yields ``(sender, payload)`` pairs, so existing algorithms
    written against the list-of-tuples mailbox keep working unchanged; hot
    algorithms may read the parallel lists directly.  The view is backed by
    the runner's reusable per-node buffers and is valid **only during the
    ``on_round`` call it was handed to** — the runner truncates the buffers
    when the node's step returns.  Copy (``list(inbox)``) to keep contents.
    """

    __slots__ = ("senders", "payloads")

    def __init__(self) -> None:
        self.senders: list = []
        self.payloads: list = []

    def __len__(self) -> int:
        return len(self.senders)

    def __bool__(self) -> bool:
        return bool(self.senders)

    def __iter__(self):
        return zip(self.senders, self.payloads)

    def __getitem__(self, key):
        if isinstance(key, slice):
            return list(zip(self.senders[key], self.payloads[key]))
        return (self.senders[key], self.payloads[key])

    def __eq__(self, other) -> bool:
        if isinstance(other, Inbox):
            return self.senders == other.senders and self.payloads == other.payloads
        if isinstance(other, (list, tuple)):
            return list(self) == list(other)
        return NotImplemented

    def __repr__(self) -> str:
        return f"Inbox({list(self)!r})"


class Context:
    """Per-node handle through which an algorithm interacts with the network.

    Exposes the node's local view only: its id, its incident edges and their
    weights, the current round, and the actions *send*, *broadcast*, *sleep*,
    *halt*.  Algorithms must not touch the graph globally — that is what
    keeps the implementations honest distributed algorithms.
    """

    __slots__ = (
        "node",
        "round",
        "_runner",
        "_index",
        "_neighbors",
        "_weights",
        "_ports",
        "_lo",
        "_hi",
        "_next_wake",
        "_halted",
    )

    def __init__(self, runner: "Runner", node: object, index: int, view: tuple) -> None:
        self.node = node
        self.round = 0
        self._runner = runner
        self._index = index
        # Shared, read-only per-node structures from IndexedGraph.node_views()
        # — built once per graph, reused by every runner over it.
        self._neighbors, self._weights, self._ports, self._lo, self._hi = view
        self._next_wake: int | None = None
        self._halted = False

    # -- local topology -------------------------------------------------
    @property
    def neighbors(self) -> tuple:
        return self._neighbors

    @property
    def edge_weights(self) -> tuple:
        """Weights aligned with :attr:`neighbors` — the bulk accessor.

        ``zip(ctx.neighbors, ctx.edge_weights)`` is the no-lookup way to
        walk incident edges in hot per-node loops.
        """
        return self._weights

    def weight(self, neighbor: object) -> int:
        # One dict hit on the port table (which the send path needs anyway)
        # instead of a second weight-only dict.
        return self._ports[neighbor][2]

    @property
    def degree(self) -> int:
        return len(self._neighbors)

    # -- actions ---------------------------------------------------------
    def send(self, neighbor: object, payload: object) -> None:
        """Send ``payload`` to ``neighbor`` this round (arrives next round)."""
        port = self._ports.get(neighbor)
        if port is None:
            raise SimulationError(f"{self.node!r} tried to message non-neighbor {neighbor!r}")
        port_id, _dst_index, _weight = port
        runner = self._runner
        load = runner._edge_load
        count = load[port_id] + 1
        if count > runner.edge_capacity:
            raise SimulationError(
                f"edge capacity exceeded: {self.node!r}->{neighbor!r} sent "
                f"{count} messages in one round "
                f"(capacity {runner.edge_capacity})"
            )
        load[port_id] = count
        if count == 1:
            runner._touched.append(port_id)
        runner._out_ports.append(port_id)
        runner._out_payloads.append(payload)

    def broadcast(self, payload: object) -> None:
        """Send ``payload`` to every neighbor (one message per edge).

        Fast path: the node's whole CSR port slice is metered in one batched
        capacity check and the outbox records a single ``(src, payload)``
        entry that the delivery phase expands — per-edge Python work is
        avoided entirely in the common ``edge_capacity == 1`` case.
        """
        lo, hi = self._lo, self._hi
        if lo == hi:
            return
        runner = self._runner
        load = runner._edge_load
        if runner.edge_capacity == 1 and not any(load[lo:hi]):
            load[lo:hi] = repeat(1, hi - lo)
            runner._touched.extend(range(lo, hi))
        else:
            self._meter_ports(load, runner)
        runner._bcast_src.append(self._index)
        runner._bcast_payloads.append(payload)

    def _meter_ports(self, load: list, runner: "Runner") -> None:
        """Per-port capacity metering for broadcasts (capacity > 1 or reuse)."""
        cap = runner.edge_capacity
        touched = runner._touched
        neighbors = self._neighbors
        lo = self._lo
        for port_id in range(lo, self._hi):
            count = load[port_id] + 1
            if count > cap:
                raise SimulationError(
                    f"edge capacity exceeded: {self.node!r}->{neighbors[port_id - lo]!r} "
                    f"sent {count} messages in one round (capacity {cap})"
                )
            load[port_id] = count
            if count == 1:
                touched.append(port_id)

    def wake_at(self, round_number: int) -> None:
        """Sleep after this round and wake at the given absolute round."""
        if round_number <= self.round:
            raise SimulationError(
                f"{self.node!r} scheduled wake at {round_number} <= current round {self.round}"
            )
        if self._next_wake is None or round_number < self._next_wake:
            self._next_wake = round_number

    def sleep_for(self, rounds: int) -> None:
        """Sleep for ``rounds`` rounds (wake at ``round + rounds``)."""
        self.wake_at(self.round + rounds)

    def wake_at_unchecked(self, round_number: int) -> None:
        """Fast-path :meth:`wake_at` for a round's *single* schedule writer.

        Skips the future-round validation and the min-combine with earlier
        requests — the caller guarantees ``round_number > self.round`` and
        that no other ``wake_at`` was issued this round.  Hot schedulers
        that compute one final wake per round use this; everything else
        should call :meth:`wake_at`.
        """
        self._next_wake = round_number

    def idle(self) -> None:
        """Sleep with no scheduled wake.

        In CONGEST mode an arriving message wakes the node (this is the
        no-op-skipping optimization; the node is conceptually awake).  In the
        SLEEPING model an idle node genuinely never wakes again — use only
        when the protocol guarantees nothing more is coming.
        """
        self._next_wake = _IDLE

    def halt(self) -> None:
        """Finish: never wake again.  Output must already be in local state."""
        self._halted = True


class NodeAlgorithm:
    """Base class for one node's protocol logic.

    Subclasses implement :meth:`on_round`.  The same instance persists for
    the whole execution, so instance attributes are the node's local memory.
    By default a node stays awake every round until it calls ``ctx.halt()``
    or schedules a wake; override behavior entirely in ``on_round``.
    """

    def on_round(self, ctx: Context, inbox: Inbox) -> None:
        """Handle one awake round.

        ``inbox`` iterates as ``(sender, payload)`` pairs; it is a view over
        reusable buffers and is valid only during this call.
        """
        raise NotImplementedError

    @classmethod
    def batch_kernel(cls, runner) -> object | None:
        """Build a :class:`~repro.sim.kernels.BatchKernel` for ``runner``.

        Protocols ported to the batch path override this to return a
        kernel instance (or ``None`` when this particular run does not fit
        the kernel's shape).  The default keeps the scalar path.  The
        engine only consults this hook when every dispatch gate in
        :func:`~repro.sim.kernels.kernel_for` passes.
        """
        return None


class Runner:
    """Executes one protocol over a graph and meters it.

    Parameters
    ----------
    graph:
        The network — a :class:`~repro.graphs.Graph` (its cached
        :class:`~repro.graphs.IndexedGraph` view is used) or an
        :class:`~repro.graphs.IndexedGraph` directly.  Every node must have
        an algorithm.
    algorithms:
        Mapping node label -> :class:`NodeAlgorithm` instance.
    mode:
        :data:`Mode.CONGEST` (buffered, wake-on-message) or
        :data:`Mode.SLEEPING` (lossy, strict schedules).
    round_width / edge_capacity:
        Megaround support; see the module docstring.
    metrics:
        Optional shared accumulator (for phase composition).  A fresh one is
        created if omitted.
    max_rounds:
        Hard safety bound; exceeding it raises :class:`SimulationError`.
    faults:
        Optional :class:`~repro.sim.faults.FaultModel` (or axis string) —
        seeded message drop/duplication and node crash-restart applied in
        the delivery phase.  ``None``/``"none"`` leaves every hot path
        byte-identical to the fault-free engine.
    """

    def __init__(
        self,
        graph: Graph | IndexedGraph,
        algorithms: dict,
        mode: Mode = Mode.CONGEST,
        *,
        round_width: int = 1,
        edge_capacity: int = 1,
        metrics: Metrics | None = None,
        max_rounds: int = 10_000_000,
        faults=None,
    ) -> None:
        indexed = graph if isinstance(graph, IndexedGraph) else IndexedGraph.of(graph)
        try:
            algorithms_by_index = [algorithms[label] for label in indexed.labels]
        except KeyError:
            missing = [u for u in indexed.labels if u not in algorithms]
            raise SimulationError(
                f"nodes without an algorithm: {missing[:5]}"
            ) from None
        self.graph = graph
        self.indexed = indexed
        self.algorithms = algorithms
        self.mode = mode
        self.round_width = round_width
        self.edge_capacity = edge_capacity
        self.metrics = metrics if metrics is not None else Metrics()
        self.max_rounds = max_rounds
        from .faults import parse_fault_model

        self.faults = parse_fault_model(faults)
        # Restart snapshots: a rebooted node comes back with *fresh*
        # algorithm state, so capture each node's initial instance before
        # the first step mutates it.  Only crash+restart plans pay for the
        # copies.
        if self.faults is not None and self.faults.crashes and self.faults.restart_after:
            self._restart_snapshots = [copy.deepcopy(alg) for alg in algorithms_by_index]
        else:
            self._restart_snapshots = None
        # Per-graph engine-state pool: recursive algorithms create runners
        # by the thousand over the same frozen view, so contexts, inbox
        # buffers and the port-load array are checked out of a single-slot
        # pool on the IndexedGraph instead of rebuilt.  The slot is returned
        # only by a clean run(); a second live runner over the same view (or
        # a run that raised, leaving dirty state) simply builds fresh.
        pool = indexed._engine_pool
        if pool is not None:
            indexed._engine_pool = None
            contexts, inboxes, edge_load = pool
            for ctx in contexts:
                ctx._runner = self
                ctx._halted = False
                ctx._next_wake = None
            for box in inboxes:
                if box.senders:
                    box.senders.clear()
                    box.payloads.clear()
            self._contexts_by_index = contexts
            self._inboxes = inboxes
            self._edge_load = edge_load
        else:
            self._build_state()
        self._algorithms_by_index = algorithms_by_index
        # Columnar outboxes: unicast sends as parallel (port, payload) lists,
        # broadcasts as one (src_index, payload) record each.
        self._out_ports: list[int] = []
        self._out_payloads: list[object] = []
        self._bcast_src: list[int] = []
        self._bcast_payloads: list[object] = []
        self._touched: list[int] = []

    def _build_state(self) -> None:
        """Fresh per-run engine state (contexts, inbox buffers, port loads)."""
        indexed = self.indexed
        views = indexed.node_views()
        self._contexts_by_index = [
            Context(self, label, i, views[i])
            for i, label in enumerate(indexed.labels)
        ]
        self._inboxes = [Inbox() for _ in range(indexed.num_nodes)]
        self._edge_load = [0] * len(indexed.nbr)

    # ------------------------------------------------------------------
    def run(self) -> Metrics:
        """Simulate until quiescence; return the (possibly shared) metrics."""
        indexed = self.indexed
        n = indexed.num_nodes
        labels = indexed.labels
        nbr = indexed.nbr
        port_src = indexed.port_src_labels()
        bviews = None  # indexed.broadcast_views(), fetched on first broadcast
        contexts = self._contexts_by_index
        if contexts and contexts[0]._runner is not self:
            # Our pooled state was checked out by a runner created after us
            # (pool checkout happens in __init__); rebuild private state so
            # this run stays correct and isolated.
            self._build_state()
            contexts = self._contexts_by_index
        algorithms = self._algorithms_by_index
        on_rounds = [alg.on_round for alg in algorithms]
        inboxes = self._inboxes
        out_ports = self._out_ports
        out_payloads = self._out_payloads
        bcast_src = self._bcast_src
        bcast_payloads = self._bcast_payloads
        edge_load = self._edge_load
        touched = self._touched
        metrics = self.metrics
        max_rounds = self.max_rounds
        sleeping = self.mode is Mode.SLEEPING
        # Bulk counter updates are only valid for a plain Metrics; subclasses
        # (TracingMetrics etc.) override the record_* hooks and get the
        # per-event calls — same accumulated state either way.
        fast = type(metrics) is Metrics
        # The per-message slow path (tracing metrics) records full label
        # pairs; the fast path never touches this table.
        port_pairs = None if fast else indexed.port_pairs()
        # Batch-kernel dispatch: when every gate passes (numpy backend,
        # plain Metrics, no fault plane, capacity 1, homogeneous roster
        # that opts in) the per-round node loop below is replaced by one
        # kernel call over the whole awake set.  Delivery, scheduling and
        # all metering stay on the exact scalar code path, which is what
        # keeps kernel runs byte-identical (see repro.sim.kernels).
        kernel = kernel_for(self)

        # Wake schedule: per-round buckets of node indices plus a heap of the
        # *distinct* pending rounds.  A round enters the heap exactly once,
        # when its bucket is created, so the main loop pops straight from one
        # active round to the next — empty stretches cost nothing.  Stale
        # bucket entries (nodes rescheduled elsewhere) are filtered against
        # ``next_wake`` at pop time, exactly like the old ring scheduler.
        heap: list[int] = []
        buckets: dict[int, list[int]] = {}
        next_wake = [0] * n
        if n:
            buckets[0] = list(range(n))
            heap.append(0)
        # last round each node woke (for sleeping-mode delivery).
        awake_stamp = [-1] * n if sleeping else None
        # --- fault plane (repro.sim.faults) ---------------------------
        # ``plane is None`` on fault-free runs: every branch below then
        # follows the exact pre-fault code path (the byte-identity
        # guarantee the differential tests pin).
        plane = self.faults
        crashed: list[bool] | None = None
        crash_at: dict[int, list[int]] | None = None
        restart_at: dict[int, list[int]] = {}
        if plane is not None:
            crashed = [False] * n
            if plane.crashes:
                index_of = {label: i for i, label in enumerate(labels)}
                crash_at = {}
                for node, (when, restart) in plane.crash_plan(labels).items():
                    crash_at.setdefault(when, []).append(index_of[node])
                    if restart is not None:
                        restart_at.setdefault(restart, []).append(index_of[node])
                # Force a scheduler visit at every fault-event round so
                # crashes and restarts fire even in quiet stretches.
                for when in (*crash_at, *restart_at):
                    if when not in buckets:
                        buckets[when] = []
                        heappush(heap, when)
        last_round = -1
        # Fast-path metric logs: per-round counter updates are deferred to
        # batched folds (Counter.update and dict increments have per-call
        # overhead that dominates sparse rounds).  The logs fold mid-run
        # whenever they pass _LOG_FOLD entries, so memory stays bounded even
        # on Theta(mn)-message workloads.
        wake_log: list[int] = []
        port_log: list[int] = []
        bcast_log: list[int] = []

        while heap:
            r = heappop(heap)
            bucket = buckets.pop(r)
            if crash_at is not None:
                # Crash events fire before anything else at their round: the
                # victim does not step, its buffered inbox is destroyed (the
                # messages were metered as delivered sends — they vanish
                # into ``messages_dropped`` only).  Restarts rebind a fresh
                # copy of the node's initial algorithm and book it to wake
                # *this* round, as if it had just joined the network.
                for i in crash_at.get(r, ()):
                    crashed[i] = True
                    metrics.record_crash(labels[i])
                    box = inboxes[i]
                    if box.senders:
                        metrics.messages_dropped += len(box.senders)
                        box.senders.clear()
                        box.payloads.clear()
                for i in restart_at.get(r, ()):
                    fresh = copy.deepcopy(self._restart_snapshots[i])
                    algorithms[i] = fresh
                    self.algorithms[labels[i]] = fresh
                    on_rounds[i] = fresh.on_round
                    ctx = contexts[i]
                    ctx._halted = False
                    ctx._next_wake = None
                    crashed[i] = False
                    metrics.record_recovery(labels[i])
                    next_wake[i] = r
                    bucket.append(i)
            # Keep live entries only; consuming an entry marks it dead so a
            # node double-booked into one bucket still steps once.
            awake: list[int] = []
            if crashed is None:
                for i in bucket:
                    if next_wake[i] == r:
                        next_wake[i] = _NONE
                        awake.append(i)
            else:
                for i in bucket:
                    if next_wake[i] == r:
                        next_wake[i] = _NONE
                        if not crashed[i]:
                            awake.append(i)
            if not awake:
                continue
            if r >= max_rounds:
                raise SimulationError(f"exceeded max_rounds={max_rounds}")
            last_round = r
            awake.sort()

            # --- node steps (deterministic node-index order) ------------
            if not fast:
                # Only the per-event slow path (metric subclasses) reads the
                # in-phase round stamp.
                metrics.current_round = r
            nxt_round = r + 1
            codes = None
            if kernel is not None:
                codes = kernel.on_round_batch(
                    r, awake, inboxes,
                    out_ports, out_payloads, bcast_src, bcast_payloads,
                )
            if codes is not None:
                # Kernel round: apply the returned wake codes with the
                # same scheduling logic as the scalar loop below.  Kernel
                # sends bypass the per-port capacity counters (the kernel
                # contract caps it at one message per port per round), so
                # the touched-list reset after delivery is a no-op.
                for k, i in enumerate(awake):
                    if sleeping:
                        awake_stamp[i] = r
                    box = inboxes[i]
                    if box.senders:
                        box.senders.clear()
                        box.payloads.clear()
                    wake = codes[k]
                    if wake == WAKE_NEXT:
                        s = nxt_round
                    elif wake >= 0:
                        s = wake
                    else:
                        if wake == WAKE_HALT:
                            contexts[i]._halted = True
                        continue  # halted or idle: no wake scheduled
                    next_wake[i] = s
                    slot_bucket = buckets.get(s)
                    if slot_bucket is None:
                        buckets[s] = [i]
                        heappush(heap, s)
                    else:
                        slot_bucket.append(i)
                wake_log.extend(awake)
                awake = ()  # the shared metering tail below already ran
            for i in awake:
                if sleeping:
                    awake_stamp[i] = r
                ctx = contexts[i]
                ctx.round = r
                ctx._next_wake = None
                box = inboxes[i]
                on_rounds[i](ctx, box)
                # Truncate the reusable buffers; the Inbox view the
                # algorithm saw is now dead (documented contract).
                if box.senders:
                    box.senders.clear()
                    box.payloads.clear()
                # Schedule the node's next wake right here: all steps finish
                # before delivery runs, so wake-on-message still sees the
                # complete post-round schedule.
                wake = ctx._next_wake
                if ctx._halted or wake is _IDLE:
                    continue
                s = wake if wake is not None else nxt_round
                next_wake[i] = s
                slot_bucket = buckets.get(s)
                if slot_bucket is None:
                    buckets[s] = [i]
                    heappush(heap, s)
                else:
                    slot_bucket.append(i)
            if fast:
                wake_log.extend(awake)
            else:
                for i in awake:
                    metrics.record_awake(labels[i], self.round_width)

            # --- delivery -------------------------------------------------
            if out_ports or bcast_src:
                if bcast_src and bviews is None:
                    bviews = indexed.broadcast_views()
                if plane is not None:
                    # Faulted delivery: one per-message path for both modes.
                    # Draws are keyed by (seed, kind, edge, send round,
                    # occurrence index) with occurrences counted in send
                    # order — the same order the event engine resolves at
                    # send time — so unit-latency faulted runs agree across
                    # engines just like fault-free ones.
                    indptr = indexed.indptr
                    occ: dict[int, int] = {}
                    nxt_bucket = buckets.get(nxt_round)

                    def deliver(port_id: int, src: object, payload: object) -> None:
                        nonlocal nxt_bucket
                        dst_i = nbr[port_id]
                        dst = labels[dst_i]
                        k = occ.get(port_id, 0)
                        occ[port_id] = k + 1
                        if plane.drop_message(src, dst, r, k) or crashed[dst_i]:
                            metrics.record_dropped(src, dst)
                            return
                        if sleeping:
                            delivered = (
                                awake_stamp[dst_i] == r and not contexts[dst_i]._halted
                            )
                            metrics.record_send(src, dst, delivered)
                            if not delivered:
                                return
                        else:
                            metrics.record_send(src, dst, True)
                            if contexts[dst_i]._halted:
                                return
                        box = inboxes[dst_i]
                        box.senders.append(src)
                        box.payloads.append(payload)
                        if plane.duplicate_message(src, dst, r, k):
                            # The duplicate lands right after the original
                            # (same round) — a fault artifact outside the
                            # capacity and message-complexity metering.
                            box.senders.append(src)
                            box.payloads.append(payload)
                            metrics.record_duplicated(src, dst)
                        if not sleeping:
                            cur = next_wake[dst_i]
                            if cur == _NONE or cur > nxt_round:
                                next_wake[dst_i] = nxt_round
                                if nxt_bucket is None:
                                    nxt_bucket = buckets[nxt_round] = [dst_i]
                                    heappush(heap, nxt_round)
                                else:
                                    nxt_bucket.append(dst_i)

                    for port_id, payload in zip(out_ports, out_payloads):
                        deliver(port_id, port_src[port_id], payload)
                    for src_i, payload in zip(bcast_src, bcast_payloads):
                        sender = labels[src_i]
                        for port_id in range(indptr[src_i], indptr[src_i + 1]):
                            deliver(port_id, sender, payload)
                elif sleeping:
                    # A message reaches its target only if the target was
                    # awake in the round it was sent (Sec 1.2).
                    if fast:
                        lost = 0
                        if out_ports:
                            port_log.extend(out_ports)
                            metrics.total_messages += len(out_ports)
                            for port_id, payload in zip(out_ports, out_payloads):
                                dst_i = nbr[port_id]
                                if awake_stamp[dst_i] == r and not contexts[dst_i]._halted:
                                    box = inboxes[dst_i]
                                    box.senders.append(port_src[port_id])
                                    box.payloads.append(payload)
                                else:
                                    lost += 1
                        if bcast_src:
                            for src_i, payload in zip(bcast_src, bcast_payloads):
                                dsts = bviews[src_i]
                                metrics.total_messages += len(dsts)
                                sender = labels[src_i]
                                for dst_i in dsts:
                                    if (
                                        awake_stamp[dst_i] == r
                                        and not contexts[dst_i]._halted
                                    ):
                                        box = inboxes[dst_i]
                                        box.senders.append(sender)
                                        box.payloads.append(payload)
                                    else:
                                        lost += 1
                            bcast_log.extend(bcast_src)
                        metrics.lost_messages += lost
                    else:
                        for port_id, payload in zip(out_ports, out_payloads):
                            dst_i = nbr[port_id]
                            src, dst = port_pairs[port_id]
                            delivered = (
                                awake_stamp[dst_i] == r and not contexts[dst_i]._halted
                            )
                            metrics.record_send(src, dst, delivered)
                            if delivered:
                                box = inboxes[dst_i]
                                box.senders.append(src)
                                box.payloads.append(payload)
                        indptr = indexed.indptr
                        for src_i, payload in zip(bcast_src, bcast_payloads):
                            sender = labels[src_i]
                            for port_id in range(indptr[src_i], indptr[src_i + 1]):
                                dst_i = nbr[port_id]
                                delivered = (
                                    awake_stamp[dst_i] == r
                                    and not contexts[dst_i]._halted
                                )
                                metrics.record_send(
                                    sender, port_pairs[port_id][1], delivered
                                )
                                if delivered:
                                    box = inboxes[dst_i]
                                    box.senders.append(sender)
                                    box.payloads.append(payload)
                else:
                    # CONGEST: never lost; a halted node discards arrivals
                    # silently, others wake-on-message.
                    nxt_bucket = buckets.get(nxt_round)
                    if fast and out_ports:
                        port_log.extend(out_ports)
                        metrics.total_messages += len(out_ports)
                    for port_id, payload in zip(out_ports, out_payloads):
                        dst_i = nbr[port_id]
                        dst_ctx = contexts[dst_i]
                        if not fast:
                            pair = port_pairs[port_id]
                            metrics.record_send(pair[0], pair[1], True)
                        if not dst_ctx._halted:
                            box = inboxes[dst_i]
                            box.senders.append(port_src[port_id])
                            box.payloads.append(payload)
                            cur = next_wake[dst_i]
                            if cur == _NONE or cur > nxt_round:
                                next_wake[dst_i] = nxt_round
                                if nxt_bucket is None:
                                    nxt_bucket = buckets[nxt_round] = [dst_i]
                                    heappush(heap, nxt_round)
                                else:
                                    nxt_bucket.append(dst_i)
                    for src_i, payload in zip(bcast_src, bcast_payloads):
                        dsts = bviews[src_i]
                        sender = labels[src_i]
                        if fast:
                            metrics.total_messages += len(dsts)
                        else:
                            indptr = indexed.indptr
                            for port_id in range(indptr[src_i], indptr[src_i + 1]):
                                metrics.record_send(
                                    sender, port_pairs[port_id][1], True
                                )
                        for dst_i in dsts:
                            if not contexts[dst_i]._halted:
                                box = inboxes[dst_i]
                                box.senders.append(sender)
                                box.payloads.append(payload)
                                cur = next_wake[dst_i]
                                if cur == _NONE or cur > nxt_round:
                                    next_wake[dst_i] = nxt_round
                                    if nxt_bucket is None:
                                        nxt_bucket = buckets[nxt_round] = [dst_i]
                                        heappush(heap, nxt_round)
                                    else:
                                        nxt_bucket.append(dst_i)
                    if fast and bcast_src:
                        bcast_log.extend(bcast_src)
                out_ports.clear()
                out_payloads.clear()
                bcast_src.clear()
                bcast_payloads.clear()
                for port_id in touched:
                    edge_load[port_id] = 0
                touched.clear()
                if len(port_log) >= _LOG_FOLD:
                    _fold_ports(metrics.edge_messages, port_log, port_src, labels, nbr)
                    port_log.clear()
                if len(bcast_log) >= _LOG_FOLD:
                    _fold_bcasts(
                        metrics.edge_messages, bcast_log, labels, nbr, indexed.indptr
                    )
                    bcast_log.clear()
            # wake_log grows on message-free rounds too, so its bound check
            # cannot hide inside the delivery block.
            if len(wake_log) >= _LOG_FOLD:
                _fold_wakes(metrics.awake_rounds, wake_log, labels, self.round_width)
                wake_log.clear()

        if kernel is not None:
            # Kernels that mirror instance state in their own columns write
            # it back here — drivers read results off the instances.
            kernel.finalize()
        if fast:
            # Final fold of the deferred logs (see _fold_* below): counting
            # happens in C over plain integer columns, and label pairs are
            # materialized once per *distinct* port/source, not per message.
            if wake_log:
                _fold_wakes(metrics.awake_rounds, wake_log, labels, self.round_width)
            if port_log:
                _fold_ports(metrics.edge_messages, port_log, port_src, labels, nbr)
            if bcast_log:
                _fold_bcasts(
                    metrics.edge_messages, bcast_log, labels, nbr, indexed.indptr
                )
        self.metrics.record_rounds((last_round + 1) * self.round_width)
        if indexed._engine_pool is None:
            # Park the state for the next runner over this view.  Drop the
            # backreferences first: the pool outlives this runner (it hangs
            # off the cached IndexedGraph), and a live ctx._runner would pin
            # the whole finished runner — algorithms, metrics and all — for
            # the graph's lifetime.  Checkout re-points _runner anyway.
            for ctx in contexts:
                ctx._runner = None
            indexed._engine_pool = (contexts, inboxes, self._edge_load)
        return self.metrics
